"""Guard the measured end-to-end epoch numbers against regressions.

Compares a freshly produced ``BENCH_sampling.json`` (typically a
``--smoke`` run on a CI box) against the committed baseline at the repo
root.  Raw wall-clock milliseconds are useless across machines and
problem sizes, so the comparison sticks to quantities that travel:

* **the overlap invariant** — the pipelined schedule's blocked-in-recv
  fraction must stay below the synchronous schedule's in the fresh run
  (the measured form of the paper's communication-hiding claim; size-
  and machine-independent), with a small ``--blocked-margin`` so a
  noisy shared runner's scheduler jitter over a handful of smoke
  epochs cannot flip an unrelated PR red — the *committed* baseline
  holds the strict inequality;
* **the overlap ratio** — fresh ``pipelined/synchronous`` epoch-time
  ratio must not exceed the baseline's ratio by more than the
  (deliberately generous) ``--ratio-tolerance`` factor, catching a
  pipelined path that quietly stopped overlapping without flaking on
  scheduler noise;
* **the sampler-planning invariant** — importance-weighted BNS plan
  construction must stay O(boundary) like uniform BNS: the fresh
  ``sampler_planning.importance_over_bns_cost`` ratio (same machine,
  same run, so it travels) must not exceed ``--plan-cost-tolerance``.
  A regression here means π stopped being served from the rank-level
  cache and planning went superlinear;
* **the fused-kernel invariant** — the fused numpy kernel's forward
  must stay within ``--fused-tolerance`` of the stacked CSR matmul on
  the same plan (``spmm_backend.*.fused_over_stacked``, a same-run
  ratio that travels).  A regression here means the operator stopped
  serving the cached merged CSR and every epoch went back to paying
  the two-pass split gap;
* **the zero-copy invariant** — shared-memory AllReduce must stay
  faster than the pipe-based multiprocess transport in the *committed*
  baseline's ``transport_allreduce`` section: the committed
  ``multiprocess/shm`` speedup (same machine, same run) must be at
  least ``--shm-speedup-tolerance`` for both ring and tree.  A
  violation means someone refreshed the baseline with a shm data
  plane that re-grew serialization or copies.

Usage:
    python benchmarks/check_perf_regression.py FRESH.json \
        [--baseline BENCH_sampling.json] [--ratio-tolerance 1.75] \
        [--plan-cost-tolerance 1.5]
"""

from __future__ import annotations

import argparse
import json
import os

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "BENCH_sampling.json")


def _load_sections(path: str) -> dict:
    with open(path) as fh:
        data = json.load(fh)
    if "e2e_epoch" not in data:
        raise SystemExit(f"{path} has no 'e2e_epoch' section")
    return data


def _ratio(section: dict) -> float:
    sync = float(section["synchronous_epoch_ms"])
    pipe = float(section["pipelined_epoch_ms"])
    if sync <= 0:
        raise SystemExit("non-positive synchronous epoch time in e2e_epoch")
    return pipe / sync


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("fresh", help="freshly written BENCH_sampling.json")
    ap.add_argument("--baseline", default=DEFAULT_BASELINE,
                    help="committed baseline (default: repo root)")
    ap.add_argument("--ratio-tolerance", type=float, default=1.75,
                    help="allowed multiplicative slack on the "
                         "pipelined/synchronous epoch-time ratio")
    ap.add_argument("--plan-cost-tolerance", type=float, default=1.5,
                    help="allowed importance/uniform BNS plan-cost ratio "
                         "(sampler_planning section): importance planning "
                         "must stay O(boundary) like BNS")
    ap.add_argument("--fused-tolerance", type=float, default=1.35,
                    help="allowed fused-numpy/stacked forward SpMM ratio "
                         "(spmm_backend section) — generous enough for "
                         "smoke-size noise, tight enough to catch the "
                         "fused path regressing to two-pass cost")
    ap.add_argument("--shm-speedup-tolerance", type=float, default=None,
                    help="minimum multiprocess/shm AllReduce speedup the "
                         "committed baseline's transport_allreduce section "
                         "must show, for both ring and tree (omit to skip "
                         "the gate; the acceptance bar is 2.0)")
    ap.add_argument("--blocked-margin", type=float, default=0.10,
                    help="additive noise margin on the blocked-fraction "
                         "invariant — wide enough that scheduler jitter "
                         "on a shared runner cannot flip it, so it only "
                         "catches a clear inversion (0 = require "
                         "strictly below, as the committed baseline "
                         "does)")
    args = ap.parse_args()

    fresh_all = _load_sections(args.fresh)
    baseline_all = _load_sections(args.baseline)
    fresh = fresh_all["e2e_epoch"]
    baseline = baseline_all["e2e_epoch"]

    failures = []

    if "sampler_planning" not in fresh_all:
        failures.append("fresh run has no 'sampler_planning' section")
    else:
        plan_ratio = float(
            fresh_all["sampler_planning"]["importance_over_bns_cost"]
        )
        print(
            f"sampler planning: importance/bns cost ratio {plan_ratio:.3f}  "
            f"allowed <= {args.plan_cost_tolerance:.2f}"
        )
        if plan_ratio > args.plan_cost_tolerance:
            failures.append(
                "sampler planning regression: importance/bns plan cost "
                f"ratio {plan_ratio:.3f} exceeds {args.plan_cost_tolerance}"
            )

    if "spmm_backend" not in fresh_all:
        failures.append("fresh run has no 'spmm_backend' section")
    else:
        for label in ("fp64", "fp32"):
            fused_ratio = float(
                fresh_all["spmm_backend"][label]["fused_over_stacked"]
            )
            print(
                f"fused kernel [{label}]: fused/stacked forward ratio "
                f"{fused_ratio:.3f}  allowed <= {args.fused_tolerance:.2f}"
            )
            if fused_ratio > args.fused_tolerance:
                failures.append(
                    f"fused kernel regression [{label}]: fused/stacked "
                    f"forward ratio {fused_ratio:.3f} exceeds "
                    f"{args.fused_tolerance}"
                )

    sync_frac = float(fresh["synchronous_blocked_fraction"])
    pipe_frac = float(fresh["pipelined_blocked_fraction"])
    print(
        f"blocked-in-recv: synchronous {sync_frac * 100:.1f}%  "
        f"pipelined {pipe_frac * 100:.1f}%  "
        f"(margin {args.blocked_margin * 100:.1f} pts)"
    )
    if not pipe_frac < sync_frac + args.blocked_margin:
        failures.append(
            "overlap invariant violated: pipelined blocked fraction "
            f"{pipe_frac} is not below synchronous {sync_frac} "
            f"(+{args.blocked_margin} margin)"
        )

    if args.shm_speedup_tolerance is not None:
        allreduce = baseline_all.get("transport_allreduce")
        if allreduce is None:
            failures.append(
                "baseline has no 'transport_allreduce' section to hold "
                "the shm speedup gate against"
            )
        else:
            for algorithm in ("ring", "tree"):
                try:
                    mp_ms = float(allreduce[f"multiprocess_{algorithm}_ms"])
                    shm_ms = float(allreduce[f"shm_{algorithm}_ms"])
                except KeyError as exc:
                    failures.append(
                        f"baseline transport_allreduce lacks {exc} — "
                        "refresh BENCH_sampling.json with the shm bench"
                    )
                    continue
                speedup = mp_ms / shm_ms
                print(
                    f"shm allreduce [{algorithm}]: multiprocess "
                    f"{mp_ms:.3f} ms / shm {shm_ms:.3f} ms = "
                    f"{speedup:.2f}x  required >= "
                    f"{args.shm_speedup_tolerance:.2f}x"
                )
                if speedup < args.shm_speedup_tolerance:
                    failures.append(
                        f"zero-copy regression [{algorithm}]: committed "
                        f"shm AllReduce is only {speedup:.2f}x faster "
                        "than multiprocess, below "
                        f"{args.shm_speedup_tolerance}x"
                    )

    fresh_ratio = _ratio(fresh)
    base_ratio = _ratio(baseline)
    bound = base_ratio * args.ratio_tolerance
    print(
        f"pipelined/synchronous epoch ratio: fresh {fresh_ratio:.3f}  "
        f"baseline {base_ratio:.3f}  allowed <= {bound:.3f}"
    )
    if fresh_ratio > bound:
        failures.append(
            f"overlap regression: fresh ratio {fresh_ratio:.3f} exceeds "
            f"baseline {base_ratio:.3f} x tolerance {args.ratio_tolerance}"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("e2e_epoch perf check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
