"""Plan-construction / SpMM microbenchmark for the split-operator path.

Times, on a ~20k-node synthetic graph:

1. **plan construction** — the legacy explicit construction
   (per-epoch ``tocsc → column slice → tocsr → hstack →
   row_normalise``, four O(nnz) sparse reallocations) vs the
   split-operator planner (``BoundaryNodeSampler.plan``: O(kept)
   column selection + one SpMV worth of row scaling), same draws;
2. **SpMM** — the stacked CSR matmul vs the split-form matmul on the
   same operator and features;
3. the other samplers' plan rates, for the record.

Writes ``BENCH_sampling.json`` at the repo root (plans/sec before vs
after) to seed the performance trajectory, and verifies numerical
agreement of the two paths while doing so.

Usage:
    PYTHONPATH=src python benchmarks/perf_microbench.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np

from repro.core import (
    BoundaryEdgeSampler,
    BoundaryNodeSampler,
    DropEdgeSampler,
    FullBoundarySampler,
    ImportanceBoundarySampler,
    PartitionRuntime,
    explicit_stacked_operator,
)
from repro.graph.generators import SyntheticSpec, generate_graph
from repro.partition import partition_graph

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_sampling.json")


def build_runtime(nodes: int, parts: int, seed: int) -> PartitionRuntime:
    spec = SyntheticSpec(
        n=nodes,
        num_communities=32,
        avg_degree=16.0,
        homophily=0.6,
        degree_exponent=2.2,
        feature_dim=32,
        name="microbench",
    )
    graph = generate_graph(spec, seed=seed)
    # Random partition: fast to compute and boundary-heavy, the worst
    # case for per-epoch plan construction.
    part = partition_graph(graph, parts, method="random", seed=seed)
    return PartitionRuntime(graph, part)


def time_explicit_plans(runtime, p: float, epochs: int, mode: str) -> float:
    """Legacy path: rebuild the stacked operator every epoch."""
    rngs = [np.random.default_rng(1000 + i) for i in range(len(runtime.ranks))]
    t0 = time.perf_counter()
    for _ in range(epochs):
        for i, rank in enumerate(runtime.ranks):
            kept = np.flatnonzero(rngs[i].random(rank.n_boundary) < p)
            explicit_stacked_operator(rank, kept, mode, rate=p)
    return time.perf_counter() - t0


def time_split_plans(sampler, runtime, epochs: int) -> float:
    """Split-operator path: lazy selection from precomputed structures."""
    rngs = [np.random.default_rng(1000 + i) for i in range(len(runtime.ranks))]
    t0 = time.perf_counter()
    for _ in range(epochs):
        for i, rank in enumerate(runtime.ranks):
            sampler.plan(rank, rngs[i])
    return time.perf_counter() - t0


def check_equivalence(runtime, p: float, mode: str) -> float:
    """Max |split − explicit| over a product with random features."""
    worst = 0.0
    for rank in runtime.ranks:
        plan = BoundaryNodeSampler(p, mode=mode).plan(
            rank, np.random.default_rng(5)
        )
        explicit = explicit_stacked_operator(
            rank, plan.kept_positions, mode, rate=p
        )
        h = np.random.default_rng(6).normal(size=(plan.prop.shape[1], 16))
        worst = max(
            worst, float(np.abs(plan.prop.matmul(h) - explicit @ h).max())
        )
    return worst


def time_spmm(runtime, p: float, mode: str, reps: int, d: int = 64):
    """Stacked CSR matmul vs split-form matmul on identical operators."""
    rank = max(runtime.ranks, key=lambda r: r.n_boundary)
    plan = BoundaryNodeSampler(p, mode=mode).plan(rank, np.random.default_rng(9))
    h = np.random.default_rng(10).normal(size=(plan.prop.shape[1], d))
    stacked = plan.prop.csr  # materialise once, outside the timer
    t0 = time.perf_counter()
    for _ in range(reps):
        stacked @ h
    stacked_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(reps):
        plan.prop.matmul(h)
    split_s = time.perf_counter() - t0
    return stacked_s / reps, split_s / reps


def time_sampler_planning(runtime, p: float, epochs: int) -> dict:
    """Uniform vs importance plan construction on the same runtime.

    Importance planning must stay O(boundary) like BNS: π is computed
    once per rank (water-filling over the precomputed boundary-degree
    vector, cached on the RankData) and each epoch then costs one
    Bernoulli draw per boundary node plus the kept columns' slice —
    exactly BNS's profile plus the per-kept 1/π gather.  The steady-
    state cost ratio is the guarded number (≤ ~1.5x); the one-off π
    build is reported separately.
    """
    bns = BoundaryNodeSampler(p)
    imp = ImportanceBoundarySampler(p)
    # One-off π construction (cold cache: the water-filling itself,
    # no plan work), then warm both samplers so the timed loops
    # measure the steady state.
    t0 = time.perf_counter()
    for rank in runtime.ranks:
        rank.boundary_keep_probs(p, imp.p_min, imp.mode)
    pi_build_s = time.perf_counter() - t0
    for i, rank in enumerate(runtime.ranks):
        imp.plan(rank, np.random.default_rng(i))
        bns.plan(rank, np.random.default_rng(i))
    n_plans = epochs * len(runtime.ranks)
    bns_s = time_split_plans(bns, runtime, epochs)
    imp_s = time_split_plans(imp, runtime, epochs)
    out = {
        "p": p,
        "epochs": epochs,
        "bns_plans_per_sec": round(n_plans / bns_s, 2),
        "importance_plans_per_sec": round(n_plans / imp_s, 2),
        "importance_over_bns_cost": round(imp_s / bns_s, 3),
        "pi_build_ms_total": round(pi_build_s * 1e3, 3),
    }
    print(
        f"sampler planning p={p}:  bns {out['bns_plans_per_sec']:9.1f} plans/s   "
        f"importance {out['importance_plans_per_sec']:9.1f} plans/s   "
        f"cost ratio {out['importance_over_bns_cost']:.2f}x   "
        f"(pi build {out['pi_build_ms_total']:.1f} ms once)"
    )
    return out


def time_spmm_dtypes(runtime, p: float, reps: int, d: int = 64) -> dict:
    """fp32 vs fp64 split SpMM on the same operator — the ROADMAP's
    "~2x throughput" claim, measured.

    The fp32 operator is the cast of the fp64 one (identical draws and
    structure), so the timing difference is purely the scalar width.
    """
    rank = max(runtime.ranks, key=lambda r: r.n_boundary)
    plan = BoundaryNodeSampler(p).plan(rank, np.random.default_rng(21))
    op64 = plan.prop.astype(np.float64)
    op32 = plan.prop.astype(np.float32)
    h64 = np.random.default_rng(22).normal(size=(plan.prop.shape[1], d))
    h32 = h64.astype(np.float32)
    op64.matmul(h64), op32.matmul(h32)  # warm caches outside the timer
    t0 = time.perf_counter()
    for _ in range(reps):
        op64.matmul(h64)
    fp64_s = (time.perf_counter() - t0) / reps
    t0 = time.perf_counter()
    for _ in range(reps):
        out32 = op32.matmul(h32)
    fp32_s = (time.perf_counter() - t0) / reps
    assert out32.dtype == np.float32, "fp32 SpMM upcast on the way through"
    err = float(np.abs(op64.matmul(h64) - op32.matmul(h32)).max())
    return {
        "d": d,
        "reps": reps,
        "fp64_ms": round(fp64_s * 1e3, 4),
        "fp32_ms": round(fp32_s * 1e3, 4),
        "speedup": round(fp64_s / fp32_s, 2) if fp32_s > 0 else float("inf"),
        "max_abs_error": err,
    }


def time_spmm_backends(runtime, p: float, reps: int, d: int = 64) -> dict:
    """Kernel backend shoot-out on the same plan: stacked CSR vs the
    two-pass ``split`` reference vs the fused one-pass kernels, forward
    and backward, at fp64 and fp32.

    The fused numpy kernel's cached merge/transpose builds are timed
    separately (they amortise over layers x epochs x directions); the
    per-call numbers are steady state.  ``fused_over_stacked`` is the
    guarded ratio: the fused forward must stay within a small factor of
    the stacked matmul — the two-pass split path's 25-40% gap is the
    thing this backend closes.
    """
    from repro.tensor.kernels import available_backends, resolve_backend

    rank = max(runtime.ranks, key=lambda r: r.n_boundary)
    plan = BoundaryNodeSampler(p).plan(rank, np.random.default_rng(33))
    out = {"d": d, "reps": reps, "backends": sorted(available_backends())}
    for label, dtype in (("fp64", np.float64), ("fp32", np.float32)):
        op = plan.prop.astype(dtype)
        h = np.random.default_rng(34).normal(
            size=(op.shape[1], d)).astype(dtype)
        g = np.random.default_rng(35).normal(
            size=(op.shape[0], d)).astype(dtype)
        stacked = op.csr  # materialised once, outside the timers
        stacked_t = stacked.T.tocsr()
        # One-off fused preparation, measured before the caches warm.
        t0 = time.perf_counter()
        op.fused_csr
        build_ms = (time.perf_counter() - t0) * 1e3
        t0 = time.perf_counter()
        op.fused_csr_t
        build_t_ms = (time.perf_counter() - t0) * 1e3
        section = {
            "fused_build_ms": round(build_ms, 4),
            "fused_build_t_ms": round(build_t_ms, 4),
        }
        t0 = time.perf_counter()
        for _ in range(reps):
            stacked @ h
        section["stacked_fwd_ms"] = round(
            (time.perf_counter() - t0) / reps * 1e3, 4)
        t0 = time.perf_counter()
        for _ in range(reps):
            stacked_t @ g
        section["stacked_bwd_ms"] = round(
            (time.perf_counter() - t0) / reps * 1e3, 4)
        ref_fwd = stacked @ h
        for name in out["backends"]:
            backend = resolve_backend(name)
            backend.split_spmm_forward(op, h)  # warm (numba jit, caches)
            backend.split_spmm_backward(op, g)
            t0 = time.perf_counter()
            for _ in range(reps):
                fwd = backend.split_spmm_forward(op, h)
            section[f"{name}_fwd_ms"] = round(
                (time.perf_counter() - t0) / reps * 1e3, 4)
            t0 = time.perf_counter()
            for _ in range(reps):
                backend.split_spmm_backward(op, g)
            section[f"{name}_bwd_ms"] = round(
                (time.perf_counter() - t0) / reps * 1e3, 4)
            err = float(np.abs(fwd - ref_fwd).max())
            assert err < (1e-9 if dtype is np.float64 else 1e-3), (
                f"backend {name} diverged from stacked reference: {err}")
        section["fused_over_stacked"] = round(
            section["numpy_fwd_ms"] / section["stacked_fwd_ms"], 3)
        section["fused_over_split_fwdbwd"] = round(
            (section["numpy_fwd_ms"] + section["numpy_bwd_ms"])
            / (section["split_fwd_ms"] + section["split_bwd_ms"]), 3)
        out[label] = section
        msg = "  ".join(
            f"{name} {section[f'{name}_fwd_ms']:.3f}/"
            f"{section[f'{name}_bwd_ms']:.3f}"
            for name in sorted(available_backends())
        )
        print(
            f"spmm backends [{label}] fwd/bwd ms: "
            f"stacked {section['stacked_fwd_ms']:.3f}/"
            f"{section['stacked_bwd_ms']:.3f}  {msg}  "
            f"fused/stacked {section['fused_over_stacked']:.2f}x"
        )
    return out


def dtype_wire_ledger(parts: int, seed: int) -> dict:
    """Per-tag metered bytes of one seeded epoch at fp64 vs fp32.

    The honesty claim in one measurement: identical draws, identical
    scalar counts, and every tag's fp32 bytes exactly half of fp64
    (scalar width 4 vs 8).
    """
    from repro.core import DistributedTrainer
    from repro.graph.generators import SyntheticSpec, generate_graph
    from repro.nn.models import GraphSAGEModel

    spec = SyntheticSpec(
        n=2000, num_communities=8, avg_degree=10.0, feature_dim=16,
        name="dtype-ledger",
    )
    graph = generate_graph(spec, seed=seed)
    part = partition_graph(graph, parts, method="random", seed=seed)

    ledgers = {}
    for dtype in ("float64", "float32"):
        model = GraphSAGEModel(
            graph.feature_dim, 32, graph.num_classes, 2, 0.0,
            np.random.default_rng(3), dtype=dtype,
        )
        trainer = DistributedTrainer(
            graph, part, model, BoundaryNodeSampler(0.1), seed=seed
        )
        trainer.train_epoch()
        ledgers[dtype] = dict(trainer.comm.meter.by_tag)
    halved = all(
        ledgers["float64"][tag] == 2 * ledgers["float32"][tag]
        for tag in ledgers["float64"]
    )
    assert halved, f"fp32 ledger is not half of fp64: {ledgers}"
    return {
        "parts": parts,
        "by_tag_fp64": ledgers["float64"],
        "by_tag_fp32": ledgers["float32"],
        "fp32_exactly_half": halved,
    }


def time_e2e_epoch(nodes: int, parts: int, epochs: int, seed: int,
                   transport: str = "multiprocess") -> dict:
    """Measured (not modeled) end-to-end epochs: synchronous vs
    pipelined schedules on real process-backed ranks over the chosen
    transport (pickling pipes or zero-copy shared-memory rings).

    A boundary-heavy random partition at p=1 (full boundary sets) is
    the worst case for synchronous exchanges — every layer of every
    rank blocks on its neighbours' compute.  The pipelined schedule
    posts epoch t−1's layer inputs while epoch t's SpMM runs, so its
    blocked-in-recv fraction must come out strictly below the
    synchronous schedule's; wall times and blocked fractions land in
    ``BENCH_sampling.json`` for the perf trajectory.
    """
    from repro.core import FullBoundarySampler
    from repro.dist.executor import ProcessRankExecutor
    from repro.graph.generators import SyntheticSpec, generate_graph
    from repro.nn.models import GraphSAGEModel

    spec = SyntheticSpec(
        n=nodes, num_communities=16, avg_degree=12.0, feature_dim=64,
        name="e2e-epoch",
    )
    graph = generate_graph(spec, seed=seed)
    part = partition_graph(graph, parts, method="random", seed=seed)
    out = {
        "nodes": nodes,
        "parts": parts,
        "epochs": epochs,
        "transport": transport,
        "sampler": "full boundary (p=1)",
    }
    for schedule in ("synchronous", "pipelined"):
        model = GraphSAGEModel(
            graph.feature_dim, 64, graph.num_classes, 2, 0.0,
            np.random.default_rng(3),
        )
        executor = ProcessRankExecutor(
            graph, part, model, FullBoundarySampler(),
            transport=transport, seed=seed, schedule=schedule,
            timeout=900.0,
        )
        result = executor.train(epochs)
        # Steady state: skip the first epoch (pipelined warm-up runs
        # synchronously; the synchronous schedule pays cold caches).
        steady = 1 if epochs > 1 else 0
        walls = result.history.wall_seconds[steady:]
        out[f"{schedule}_epoch_ms"] = round(float(np.mean(walls)) * 1e3, 3)
        out[f"{schedule}_blocked_fraction"] = round(
            result.blocked_fraction(start_epoch=steady), 4
        )
        print(
            f"e2e[{transport}/{schedule:11s}] "
            f"{out[f'{schedule}_epoch_ms']:9.2f} ms/epoch   "
            f"blocked-in-recv {out[f'{schedule}_blocked_fraction'] * 100:5.1f}%"
        )
    out["overlap_speedup"] = round(
        out["synchronous_epoch_ms"] / out["pipelined_epoch_ms"], 3
    )
    out["overlap_measured"] = (
        out["pipelined_blocked_fraction"] < out["synchronous_blocked_fraction"]
    )
    if not out["overlap_measured"]:
        print(
            "WARNING: pipelined blocked-in-recv fraction is not below the "
            "synchronous schedule's — overlap not measured on this host"
        )
    return out


def _allreduce_bench_worker(ep, task):
    """One rank's timed AllReduce loop (module-level for process spawn)."""
    scalars, reps, algorithm = task
    # Payload width must match what the transport meters (the data
    # plane enforces metered == shipped).
    from repro.tensor import float_dtype_for_nbytes

    data = np.full(
        scalars, float(ep.rank + 1),
        dtype=float_dtype_for_nbytes(ep.bytes_per_scalar),
    )
    out = ep.allreduce(data, "bench", algorithm=algorithm)  # warm-up
    t0 = time.perf_counter()
    for _ in range(reps):
        out = ep.allreduce(data, "bench", algorithm=algorithm)
    elapsed = time.perf_counter() - t0
    expected = ep.num_parts * (ep.num_parts + 1) / 2.0
    assert np.allclose(out, expected), "allreduce produced a wrong sum"
    return elapsed / reps


def time_transports(parts: int, scalars: int, reps: int) -> dict:
    """Per-AllReduce wall time on the three data-moving transports.

    The simulated path is the 0-cost reference (metering only); the
    local, multiprocess and shm numbers show what the wire actually
    costs — the multiprocess-vs-shm gap is pure pickle framing + pipe
    copies (the zero-copy win), the remaining shm-vs-local gap is OS
    process scheduling.
    """
    from repro.dist.transport import (
        LocalTransport,
        MultiprocessTransport,
        SharedMemoryTransport,
    )

    out = {"parts": parts, "scalars": scalars, "reps": reps}
    for name, cls in (("local", LocalTransport),
                      ("multiprocess", MultiprocessTransport),
                      ("shm", SharedMemoryTransport)):
        for algorithm in ("ring", "tree"):
            transport = cls(parts, recv_timeout=60.0)
            per_rank = transport.launch(
                _allreduce_bench_worker,
                [(scalars, reps, algorithm)] * parts,
                timeout=300.0,
            )
            seconds = max(per_rank)  # collective is paced by the slowest rank
            out[f"{name}_{algorithm}_ms"] = round(seconds * 1e3, 4)
            print(
                f"allreduce[{name}/{algorithm}] {scalars} scalars x "
                f"{parts} ranks: {seconds * 1e3:8.3f} ms"
            )
    return out


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--nodes", type=int, default=20000)
    ap.add_argument("--parts", type=int, default=8)
    ap.add_argument("--epochs", type=int, default=30,
                    help="planning rounds to average over")
    ap.add_argument("--p", type=float, default=0.1,
                    help="BNS sampling rate for the headline numbers")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--out", default=DEFAULT_OUT)
    ap.add_argument("--smoke", action="store_true",
                    help="tiny configuration for CI smoke runs")
    args = ap.parse_args()
    if args.smoke:
        args.nodes, args.parts, args.epochs = 4000, 4, 5

    t0 = time.perf_counter()
    runtime = build_runtime(args.nodes, args.parts, args.seed)
    build_s = time.perf_counter() - t0
    n_plans = args.epochs * len(runtime.ranks)
    stats = {
        "nodes": args.nodes,
        "edges": int(runtime.graph.adj.nnz // 2),
        "parts": args.parts,
        "total_boundary": runtime.total_boundary(),
        "runtime_build_seconds": round(build_s, 4),
    }
    print(f"graph: {stats}")

    results = {"graph": stats, "p": args.p, "epochs": args.epochs}
    for mode in ("renorm", "scale"):
        explicit_s = time_explicit_plans(runtime, args.p, args.epochs, mode)
        split_s = time_split_plans(
            BoundaryNodeSampler(args.p, mode=mode), runtime, args.epochs
        )
        err = check_equivalence(runtime, args.p, mode)
        spmm_stacked, spmm_split = time_spmm(runtime, args.p, mode, reps=20)
        results[f"bns_{mode}"] = {
            "explicit_plans_per_sec": round(n_plans / explicit_s, 2),
            "split_plans_per_sec": round(n_plans / split_s, 2),
            "plan_speedup": round(explicit_s / split_s, 2),
            "spmm_stacked_ms": round(spmm_stacked * 1e3, 4),
            "spmm_split_ms": round(spmm_split * 1e3, 4),
            "max_abs_error": err,
        }
        print(
            f"BNS p={args.p} [{mode:6s}]  "
            f"explicit {n_plans / explicit_s:8.1f} plans/s   "
            f"split {n_plans / split_s:9.1f} plans/s   "
            f"speedup {explicit_s / split_s:5.2f}x   "
            f"max|err| {err:.2e}"
        )

    # Timed before the sampler-rate sweep below so the one-off pi
    # water-filling really is measured against a cold RankData cache.
    results["sampler_planning"] = time_sampler_planning(
        runtime, args.p, args.epochs
    )

    sampler_rates = {}
    for sampler in (
        FullBoundarySampler(),
        BoundaryNodeSampler(args.p),
        ImportanceBoundarySampler(args.p),
        BoundaryEdgeSampler(args.p),
        DropEdgeSampler(args.p),
    ):
        seconds = time_split_plans(sampler, runtime, args.epochs)
        rate = n_plans / seconds if seconds > 0 else float("inf")
        sampler_rates[sampler.name] = round(rate, 2)
        print(f"{sampler.name:10s} split planner: {rate:12.1f} plans/s")
    results["sampler_plans_per_sec"] = sampler_rates
    # The acceptance headline: BoundaryNodeSampler(p=0.1) in its
    # default (renorm) mode, plans/sec before vs after.
    results["headline"] = {
        "sampler": "BoundaryNodeSampler",
        "p": args.p,
        "mode": "renorm",
        "before_plans_per_sec": results["bns_renorm"]["explicit_plans_per_sec"],
        "after_plans_per_sec": results["bns_renorm"]["split_plans_per_sec"],
        "speedup": results["bns_renorm"]["plan_speedup"],
    }

    results["spmm_dtype"] = time_spmm_dtypes(
        runtime, args.p, reps=10 if args.smoke else 30
    )
    print(
        f"SpMM dtype: fp64 {results['spmm_dtype']['fp64_ms']:.3f} ms  "
        f"fp32 {results['spmm_dtype']['fp32_ms']:.3f} ms  "
        f"speedup {results['spmm_dtype']['speedup']:.2f}x"
    )
    results["spmm_backend"] = time_spmm_backends(
        runtime, args.p, reps=10 if args.smoke else 30
    )
    results["dtype_wire_ledger"] = dtype_wire_ledger(
        parts=min(args.parts, 4), seed=args.seed
    )
    print(
        "wire ledger: fp32 bytes exactly half of fp64 per tag -> "
        f"{results['dtype_wire_ledger']['fp32_exactly_half']}"
    )

    results["transport_allreduce"] = time_transports(
        parts=min(args.parts, 4),
        scalars=10_000 if args.smoke else 250_000,
        reps=3 if args.smoke else 10,
    )

    results["e2e_epoch"] = time_e2e_epoch(
        nodes=2500 if args.smoke else 8000,
        parts=min(args.parts, 4),
        epochs=6 if args.smoke else 8,
        seed=args.seed,
    )

    results["e2e_epoch_shm"] = time_e2e_epoch(
        nodes=2500 if args.smoke else 8000,
        parts=min(args.parts, 4),
        epochs=6 if args.smoke else 8,
        seed=args.seed,
        transport="shm",
    )

    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    speedup = results["bns_renorm"]["plan_speedup"]
    target = 5.0
    if not args.smoke and speedup < target:
        print(f"WARNING: renorm plan speedup {speedup}x below {target}x target")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
