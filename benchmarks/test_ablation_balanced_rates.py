"""Ablation (Fig. 8 extension) — per-partition sampling rates that
equalise memory, vs the paper's uniform rate.

Fig. 8 shows uniform BNS already narrows the memory spread
statistically.  :func:`repro.core.balanced_rates` solves the imbalance
directly: the straggler keeps the target rate, everyone else raises
theirs until memory equalises.  Expected shape on the papers-sim
192-partition workload: same peak memory as uniform, a strictly
smaller spread, and a higher mean sampling rate (= lower estimator
variance) for free.
"""

import numpy as np

from repro.bench import BENCH_CONFIGS, format_table, get_graph, get_partition, make_model, save_result
from repro.core import balanced_rates
from repro.dist import MemoryModel, build_workload
from repro.nn.models import layer_dims

DATASET = "papers-sim"
NUM_PARTS = 192
P_TARGET = 0.1


def run():
    cfg = BENCH_CONFIGS[DATASET]
    graph = get_graph(DATASET)
    part = get_partition(DATASET, NUM_PARTS, method="metis")
    model = make_model(graph, cfg)
    dims = layer_dims(graph.feature_dim, cfg.hidden, graph.num_classes, cfg.num_layers)
    workload = build_workload(graph, part, dims, model.num_parameters())
    mm = MemoryModel()

    def mem(rates):
        return mm.per_partition_bytes(
            workload.inner_sizes,
            workload.boundary_sizes * rates,
            workload.layer_dims,
            workload.model_params,
        )

    uniform = np.full(workload.num_parts, P_TARGET)
    tuned = balanced_rates(workload, p_target=P_TARGET)
    results = {}
    rows = []
    for name, rates in (("uniform p=0.1", uniform), ("balanced rates", tuned)):
        m = mem(rates)
        results[name] = {
            "peak": m.max(), "spread": m.max() - m.min(),
            "rel_spread": (m.max() - m.min()) / m.max(),
            "mean_p": rates.mean(),
        }
        rows.append([
            name,
            f"{m.max()/1e6:.2f}",
            f"{100*(m.max()-m.min())/m.max():.1f}%",
            f"{rates.mean():.3f}",
        ])
    table = format_table(
        ["scheme", "peak memory (MB)", "rel. spread", "mean p"],
        rows,
        title=(
            f"Ablation: balanced per-partition rates on {DATASET} "
            f"({NUM_PARTS} parts, target p={P_TARGET}) "
            "(expected: same peak, smaller spread, higher mean p)"
        ),
    )
    save_result("ablation_balanced_rates", table)
    return results


def test_ablation_balanced_rates(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    uni, bal = results["uniform p=0.1"], results["balanced rates"]
    # Peak memory does not grow (straggler pinned at the target rate).
    assert bal["peak"] <= uni["peak"] * (1 + 1e-9)
    # The spread shrinks decisively.
    assert bal["spread"] < uni["spread"] * 0.5
    # And the average sampling fidelity improves.
    assert bal["mean_p"] > uni["mean_p"]
