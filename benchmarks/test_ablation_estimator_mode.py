"""Ablation (DESIGN.md §2.1) — the two BNS estimators.

Not a paper table: this regenerates the design decision the
reproduction had to make.  The paper's Appendix A analyses the
1/p-scaled estimator ("scale"), while Algorithm 1's node-induced
subgraph + DGL mean aggregator realises the self-normalised estimator
("renorm").  Expected: renorm holds accuracy at small p; scale decays
noticeably; both communicate identically.
"""


from repro.bench import (
    BENCH_CONFIGS,
    bench_transport,
    format_table,
    get_graph,
    get_partition,
    make_model,
    save_result,
)
from repro.core import BoundaryNodeSampler, DistributedTrainer

DATASET = "reddit-sim"
NUM_PARTS = 8
P_VALUES = (0.5, 0.1, 0.01)


def run_mode(p, mode):
    cfg = BENCH_CONFIGS[DATASET]
    graph = get_graph(DATASET)
    part = get_partition(DATASET, NUM_PARTS, method="metis")
    model = make_model(graph, cfg, seed=7)
    trainer = DistributedTrainer(
        graph, part, model, BoundaryNodeSampler(p, mode=mode),
        lr=cfg.lr, seed=0, transport=bench_transport(NUM_PARTS),
    )
    h = trainer.train(cfg.epochs // 2, eval_every=cfg.eval_every)
    return h.test_at_best_val()


def run():
    results = {}
    rows = []
    for p in P_VALUES:
        renorm = run_mode(p, "renorm")
        scale = run_mode(p, "scale")
        results[p] = (renorm, scale)
        rows.append([f"p = {p}", f"{100 * renorm:.2f}", f"{100 * scale:.2f}"])
    table = format_table(
        ["rate", "renorm (subgraph mean)", "scale (1/p, Appendix A)"],
        rows,
        title=(
            "Ablation: BNS estimator mode, test score (%) on reddit-sim "
            f"({NUM_PARTS} partitions; expected: renorm >= scale, gap grows as p falls)"
        ),
    )
    save_result("ablation_estimator_mode", table)
    return results


def test_ablation_estimator_mode(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    # The self-normalised estimator never loses to 1/p scaling, at any
    # rate — on reddit-sim's dense boundary sets the variance blowup of
    # the scaled estimator already bites at p = 0.5.
    for p, (renorm, scale) in results.items():
        assert renorm >= scale - 0.02, p
    # And the scale estimator's decay is monotone in aggressiveness.
    scales = [results[p][1] for p in sorted(results, reverse=True)]
    assert scales[0] >= scales[-1] - 0.02
