"""Ablation (Section 3.2, Goal-1) — partitioner objective: minimise
communication *volume* (boundary nodes, Eq. 3 — the paper's choice)
vs the conventional edge-*cut* objective (DistDGL et al.) vs random.

Expected shape: both METIS-like objectives produce far fewer boundary
nodes than random; the volume objective is competitive-or-better on
Eq. 3 volume (they are correlated heuristics, so parity within noise
is acceptable); modelled vanilla epoch time tracks boundary volume.
"""

import numpy as np

from repro.bench import (
    BENCH_CONFIGS,
    format_table,
    get_graph,
    make_model,
    save_result,
)
from repro.dist import RTX2080TI_CLUSTER, bns_epoch_model, build_workload
from repro.nn.models import layer_dims
from repro.partition import (
    MetisLikeConfig,
    communication_volume,
    edge_cut,
    metis_like_partition,
    random_partition,
)

DATASET = "products-sim"
NUM_PARTS = 8


def analyse(name, partition):
    cfg = BENCH_CONFIGS[name]
    graph = get_graph(name)
    model = make_model(graph, cfg)
    dims = layer_dims(graph.feature_dim, cfg.hidden, graph.num_classes, cfg.num_layers)
    w = build_workload(graph, partition, dims, model.num_parameters())
    return {
        "volume": communication_volume(graph.adj, partition),
        "cut": edge_cut(graph.adj, partition.assignment),
        "epoch_ms": 1e3 * bns_epoch_model(w, RTX2080TI_CLUSTER, 1.0).total,
    }


def run():
    graph = get_graph(DATASET)
    partitions = {
        "metis/volume": metis_like_partition(
            graph.adj, NUM_PARTS, MetisLikeConfig(objective="volume", seed=0)
        ),
        "metis/cut": metis_like_partition(
            graph.adj, NUM_PARTS, MetisLikeConfig(objective="cut", seed=0)
        ),
        "random": random_partition(
            graph.num_nodes, NUM_PARTS, np.random.default_rng(0)
        ),
    }
    results = {k: analyse(DATASET, p) for k, p in partitions.items()}
    rows = [
        [k, r["volume"], r["cut"], f"{r['epoch_ms']:.3f}"]
        for k, r in results.items()
    ]
    table = format_table(
        ["partitioner", "comm volume (Eq.3)", "edge cut", "vanilla epoch (ms)"],
        rows,
        title=(
            f"Ablation: partition objective on {DATASET} ({NUM_PARTS} parts) "
            "(expected: both metis objectives << random; epoch tracks volume)"
        ),
    )
    save_result("ablation_partition_objective", table)
    return results


def test_ablation_partition_objective(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    # Any structured partitioner beats random on both metrics.
    for key in ("metis/volume", "metis/cut"):
        assert results[key]["volume"] < results["random"]["volume"], key
        assert results[key]["cut"] < results["random"]["cut"], key
    # The volume objective is competitive on its own metric.  Both
    # objectives are correlated greedy heuristics and the minimum-cut
    # refinement sometimes edges ahead on dense graphs, so parity is
    # asserted within 25% rather than strict dominance.
    assert (
        results["metis/volume"]["volume"]
        <= results["metis/cut"]["volume"] * 1.25
    )
    # Epoch time ordering follows boundary volume.
    ordered = sorted(results.values(), key=lambda r: r["volume"])
    assert ordered[0]["epoch_ms"] <= ordered[-1]["epoch_ms"]
