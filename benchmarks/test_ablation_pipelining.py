"""Ablation (Section 3.2) — BNS composed with pipelined (PipeGCN-style)
partition parallelism.

The paper notes BNS-GCN "can be easily plugged into any partition-
parallel training methods".  This bench composes the two axes on
products-sim / 8 partitions:

* exchange discipline: synchronous (Algorithm 1) vs pipelined
  (staleness-1 boundary features + stale gradients, communication
  hidden behind compute);
* boundary sampling: p = 1 vs p = 0.1.

Expected shape: pipelining alone removes most of the communication
term from the critical path (epoch ~= max(comp, comm)); BNS alone
shrinks the communication term itself; the composition is the fastest;
all variants stay within a few points of synchronous full-graph
accuracy.

Dataset note: the homophilous products analogue is used because it is
the regime staleness-based methods actually run in — under a METIS
partition only a small share of each node's aggregation mass crosses
partitions.  The reddit analogue cuts far *more* aggregation mass
than real Reddit does under METIS (SBM graphs have no local
clustering), and staleness-1 training destabilises there; see
DESIGN.md §2.3.
"""

import numpy as np

from repro.bench import (
    BENCH_CONFIGS,
    bench_transport,
    format_table,
    get_graph,
    get_partition,
    make_model,
    save_result,
)
from repro.core import (
    BoundaryNodeSampler,
    DistributedTrainer,
    FullBoundarySampler,
    PipelinedTrainer,
)
from repro.dist import RTX2080TI_CLUSTER

DATASET = "products-sim"
NUM_PARTS = 8


def run_variant(trainer_cls, p):
    cfg = BENCH_CONFIGS[DATASET]
    graph = get_graph(DATASET)
    part = get_partition(DATASET, NUM_PARTS, method="metis")
    model = make_model(graph, cfg, seed=7)
    sampler = FullBoundarySampler() if p >= 1.0 else BoundaryNodeSampler(p)
    trainer = trainer_cls(
        graph, part, model, sampler, lr=cfg.lr, seed=0,
        cluster=RTX2080TI_CLUSTER, transport=bench_transport(NUM_PARTS),
    )
    h = trainer.train(cfg.epochs // 2, eval_every=cfg.eval_every)
    epoch = float(np.mean([b.total for b in h.modeled]))
    return {"epoch_s": epoch, "test": h.test_at_best_val()}


def run():
    variants = {
        "sync (p=1)": (DistributedTrainer, 1.0),
        "sync + BNS (p=0.1)": (DistributedTrainer, 0.1),
        "pipelined (p=1)": (PipelinedTrainer, 1.0),
        "pipelined + BNS (p=0.1)": (PipelinedTrainer, 0.1),
    }
    results = {name: run_variant(cls, p) for name, (cls, p) in variants.items()}
    rows = [
        [name, f"{r['epoch_s']*1e3:.3f}", f"{100*r['test']:.2f}"]
        for name, r in results.items()
    ]
    table = format_table(
        ["variant", "modelled epoch (ms)", "test acc (%)"],
        rows,
        title=(
            f"Ablation: BNS x pipelining on {DATASET} ({NUM_PARTS} parts) "
            "(expected: each axis speeds up the epoch; composition fastest; "
            "accuracy within a few points of sync)"
        ),
    )
    save_result("ablation_pipelining", table)
    return results


def test_ablation_pipelining(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    sync = results["sync (p=1)"]
    bns = results["sync + BNS (p=0.1)"]
    pipe = results["pipelined (p=1)"]
    both = results["pipelined + BNS (p=0.1)"]
    # Each axis alone speeds up the epoch.
    assert bns["epoch_s"] < sync["epoch_s"]
    assert pipe["epoch_s"] < sync["epoch_s"]
    # The composition is at least as fast as either axis alone.
    assert both["epoch_s"] <= min(bns["epoch_s"], pipe["epoch_s"]) * 1.05
    # No variant collapses in accuracy.
    for name, r in results.items():
        assert r["test"] > sync["test"] - 0.12, name
