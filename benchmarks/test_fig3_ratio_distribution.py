"""Figure 3 — distribution of boundary/inner ratios for the
papers100M analogue under 192 partitions.

Paper's observation: the ratio distribution is wide with a long right
tail; the straggler partition sits at ratio ≈ 8 while the bulk sits
much lower — the memory-imbalance motivation of Section 3.1.
Expected shape: right-skewed distribution (mean > median is not
guaranteed for every seed, but max >> median is).
"""

import numpy as np

from repro.bench import format_table, get_graph, get_partition, save_result
from repro.partition import ratio_distribution


def run():
    graph = get_graph("papers-sim")
    part = get_partition("papers-sim", 192, method="metis")
    ratios = ratio_distribution(graph.adj, part)
    hist, edges = np.histogram(ratios, bins=10)
    rows = [
        [f"{edges[i]:.2f}-{edges[i+1]:.2f}", int(hist[i]),
         f"{100.0 * hist[i] / len(ratios):.1f}%"]
        for i in range(len(hist))
    ]
    rows.append(["straggler (max)", f"{ratios.max():.2f}", ""])
    rows.append(["median", f"{np.median(ratios):.2f}", ""])
    table = format_table(
        ["ratio bin", "# partitions", "percent"],
        rows,
        title=(
            "Figure 3: boundary/inner ratio distribution, papers-sim, "
            "192 partitions (paper: long right tail, straggler ~8)"
        ),
    )
    save_result("fig3_ratio_distribution", table)
    return ratios


def test_fig3_ratio_distribution(benchmark):
    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(ratios) == 192
    # Long right tail: the straggler is far above the typical partition.
    assert ratios.max() > 1.5 * np.median(ratios)
    # Boundary sets dominate inner sets at this partition count.
    assert np.median(ratios) > 1.0
