"""Figure 4 — training throughput (epochs/s) vs number of partitions:
BNS-GCN (p ∈ {1, 0.1, 0.01}) against the ROC and CAGNET cost models.

Paper's observations, which must reproduce in shape:
  * BNS p=0.01 is fastest everywhere (paper: 8.9-16.2× over ROC,
    9.2-13.8× over CAGNET c=2 on Reddit);
  * even p=1 (vanilla partition parallelism done right) beats ROC and
    CAGNET;
  * BNS throughput *grows* with partitions while the baselines stall.
"""


from repro.bench import (
    BENCH_CONFIGS,
    format_table,
    get_graph,
    get_partition,
    make_model,
    save_result,
)
from repro.dist import (
    RTX2080TI_CLUSTER,
    bns_epoch_model,
    build_workload,
    cagnet_epoch_model,
    roc_epoch_model,
)
from repro.nn.models import layer_dims

DATASETS = ("reddit-sim", "products-sim", "yelp-sim")


def throughputs_for(name):
    cfg = BENCH_CONFIGS[name]
    graph = get_graph(name)
    model = make_model(graph, cfg)
    dims = layer_dims(graph.feature_dim, cfg.hidden, graph.num_classes, cfg.num_layers)
    out = {}
    for k in cfg.partition_grid:
        part = get_partition(name, k, method="metis")
        w = build_workload(graph, part, dims, model.num_parameters())
        out[k] = {
            "ROC": roc_epoch_model(w, RTX2080TI_CLUSTER).throughput,
            "CAGNET (c=1)": cagnet_epoch_model(w, RTX2080TI_CLUSTER, 1).throughput,
            "CAGNET (c=2)": cagnet_epoch_model(w, RTX2080TI_CLUSTER, 2).throughput,
            "BNS (p=1.0)": bns_epoch_model(w, RTX2080TI_CLUSTER, 1.0).throughput,
            "BNS (p=0.1)": bns_epoch_model(w, RTX2080TI_CLUSTER, 0.1).throughput,
            "BNS (p=0.01)": bns_epoch_model(w, RTX2080TI_CLUSTER, 0.01).throughput,
        }
    return out


def run():
    results = {}
    for name in DATASETS:
        data = throughputs_for(name)
        results[name] = data
        systems = list(next(iter(data.values())).keys())
        rows = [
            [k] + [round(data[k][s], 2) for s in systems] for k in sorted(data)
        ]
        table = format_table(
            ["#partitions"] + systems,
            rows,
            title=(
                f"Figure 4 ({name}): modelled throughput in epochs/s "
                "(paper: BNS p=0.01 fastest, gap grows with partitions)"
            ),
        )
        save_result(f"fig4_throughput_{name}", table)
    return results


def test_fig4_throughput(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, data in results.items():
        for k, row in data.items():
            # BNS p=0.01 beats everything at every point.
            best_baseline = max(row["ROC"], row["CAGNET (c=1)"], row["CAGNET (c=2)"])
            assert row["BNS (p=0.01)"] > best_baseline, (name, k)
            # Vanilla partition parallelism still beats ROC everywhere.
            assert row["BNS (p=1.0)"] > row["ROC"], (name, k)
            # Monotone in p.
            assert row["BNS (p=0.01)"] >= row["BNS (p=0.1)"] >= row["BNS (p=1.0)"]
        ks = sorted(data)
        # Against CAGNET c=2 the paper reports 1.0×-5.5×: parity is
        # allowed at the smallest partition count, a clear win at the
        # largest (broadcast traffic doesn't shrink with k; boundary
        # traffic per rank does).
        assert data[ks[0]]["BNS (p=1.0)"] > 0.6 * data[ks[0]]["CAGNET (c=2)"], name
        assert data[ks[-1]]["BNS (p=0.1)"] > data[ks[-1]]["CAGNET (c=2)"], name
        # Paper reports 8.9-16.2x over ROC on Reddit; at laptop scale
        # the latency/AllReduce floor caps absolute scaling, but the
        # speedup factor must stay large.
        best_over_roc = max(data[k]["BNS (p=0.01)"] / data[k]["ROC"] for k in ks)
        assert best_over_roc > 4.0, (name, best_over_roc)
