"""Figure 5 — epoch-time breakdown (compute / boundary communication /
AllReduce) for BNS-GCN at p ∈ {1, 0.1, 0.01} across partition counts.

Paper's observations:
  * communication dominates the vanilla (p=1) epoch — up to 67% on
    Reddit, 64% on products;
  * p = 0.01 removes 74-93% of the communication time;
  * the compute slice also shrinks slightly with p (fewer aggregation
    nnz), but far less than communication.
"""


from repro.bench import BENCH_CONFIGS, format_table, run_config_cached, save_result

DATASETS = ("reddit-sim", "products-sim")
P_VALUES = (1.0, 0.1, 0.01)


def run():
    results = {}
    for name in DATASETS:
        grid = BENCH_CONFIGS[name].partition_grid
        rows = []
        data = {}
        for k in grid:
            for p in P_VALUES:
                s = run_config_cached(name, k, p)
                data[(k, p)] = s
                rows.append(
                    [
                        k,
                        f"p = {p}",
                        f"{s.epoch_seconds * 1e3:.3f}",
                        f"{s.compute_seconds * 1e3:.3f}",
                        f"{s.comm_seconds * 1e3:.3f}",
                        f"{s.reduce_seconds * 1e3:.3f}",
                        f"{100 * s.comm_seconds / s.epoch_seconds:.0f}%",
                    ]
                )
        table = format_table(
            ["#parts", "rate", "total ms", "compute ms", "comm ms", "reduce ms", "comm share"],
            rows,
            title=(
                f"Figure 5 ({name}): modelled epoch breakdown "
                "(paper: comm dominates p=1; p=0.01 cuts 74-93% of comm)"
            ),
        )
        save_result(f"fig5_breakdown_{name}", table)
        results[name] = data
    return results


def test_fig5_breakdown(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, data in results.items():
        grid = BENCH_CONFIGS[name].partition_grid
        for k in grid:
            vanilla = data[(k, 1.0)]
            sampled = data[(k, 0.01)]
            # Communication is the dominant vanilla cost at scale.
            assert vanilla.comm_seconds > vanilla.compute_seconds, (name, k)
            # p=0.01 removes the lion's share of communication time.
            cut = 1.0 - sampled.comm_seconds / vanilla.comm_seconds
            assert cut > 0.6, (name, k, cut)
            # Total epoch time improves accordingly.
            assert sampled.epoch_seconds < vanilla.epoch_seconds, (name, k)
