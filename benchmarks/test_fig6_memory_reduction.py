"""Figure 6 — training-memory reduction of BNS vs the unsampled
baseline, across partition counts and sampling rates.

Paper: p=0.01 saves up to 58% on Reddit (8 parts) and 27% on products
(10 parts); savings GROW with the partition count (more boundary
nodes to drop) and are sublinear in p (activation caches remain).
"""


from repro.bench import BENCH_CONFIGS, format_table, memory_for, save_result

DATASETS = ("reddit-sim", "products-sim")
P_VALUES = (0.5, 0.1, 0.01)


def run():
    results = {}
    for name in DATASETS:
        grid = BENCH_CONFIGS[name].partition_grid
        rows = []
        reductions = {}
        for k in grid:
            base = memory_for(name, k, 1.0).max()
            row = [k]
            for p in P_VALUES:
                red = 1.0 - memory_for(name, k, p).max() / base
                reductions[(k, p)] = red
                row.append(f"{100 * red:.1f}%")
            rows.append(row)
        table = format_table(
            ["#parts"] + [f"p = {p}" for p in P_VALUES],
            rows,
            title=(
                f"Figure 6 ({name}): peak-partition memory reduction vs p=1 "
                "(paper: up to 58% on Reddit / 27% on products at p=0.01)"
            ),
        )
        save_result(f"fig6_memory_reduction_{name}", table)
        results[name] = reductions
    return results


def test_fig6_memory_reduction(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, red in results.items():
        grid = BENCH_CONFIGS[name].partition_grid
        for k in grid:
            # More aggressive sampling saves more memory.
            assert red[(k, 0.01)] > red[(k, 0.1)] > red[(k, 0.5)] > 0, (name, k)
            # Savings are sublinear: dropping 99% of boundary nodes
            # saves less than 99% of memory (inner-node terms remain).
            assert red[(k, 0.01)] < 0.99, (name, k)
        # Savings grow with the partition count.
        assert red[(grid[-1], 0.01)] > red[(grid[0], 0.01)], name
    # The denser graph saves more (Reddit vs products in the paper).
    last_r = BENCH_CONFIGS["reddit-sim"].partition_grid[-1]
    last_p = BENCH_CONFIGS["products-sim"].partition_grid[-1]
    assert (
        results["reddit-sim"][(last_r, 0.01)]
        > results["products-sim"][(last_p, 0.01)]
    )
