"""Figures 7 & 9 — test-accuracy convergence curves on the products
analogue (the dataset with train/test distribution shift).

Paper's observations:
  * p = 1 and p = 0 overfit: their test accuracy peaks then decays;
  * p = 0.1 / 0.01 mitigate the overfitting (random graph modification
    each epoch acts as a regulariser) and end at least as high;
  * p = 0 converges worst.
"""


from repro.bench import BENCH_CONFIGS, format_series, run_config_cached, save_result

DATASET = "products-sim"
P_VALUES = (1.0, 0.1, 0.01, 0.0)


def run():
    cfg = BENCH_CONFIGS[DATASET]
    curves = {}
    for k in cfg.partition_grid:
        for p in P_VALUES:
            h = run_config_cached(DATASET, k, p).history
            curves[(k, p)] = (list(h.eval_epochs), list(h.test_metric))
    for k in cfg.partition_grid:
        epochs = curves[(k, P_VALUES[0])][0]
        series = {
            f"p = {p}": [round(v * 100, 2) for v in curves[(k, p)][1]]
            for p in P_VALUES
        }
        text = format_series(
            "epoch", epochs, series,
            title=(
                f"Figure 7 ({DATASET}, {k} partitions): test accuracy (%) vs epoch "
                "(paper: p=1 and p=0 overfit; p=0.1/0.01 hold their peak)"
            ),
        )
        save_result(f"fig7_convergence_{k}parts", text)
    return curves


def overfit_gap(curve):
    """Peak minus final test accuracy — positive = decayed after peak."""
    values = curve[1]
    return max(values) - values[-1]


def test_fig7_convergence(benchmark):
    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    cfg = BENCH_CONFIGS[DATASET]
    for k in cfg.partition_grid:
        final = {p: curves[(k, p)][1][-1] for p in P_VALUES}
        best = {p: max(curves[(k, p)][1]) for p in P_VALUES}
        # Sampled training ends at least on par with unsampled.
        assert final[0.1] > final[1.0] - 0.03, k
        # p=0 is the weakest configuration.
        assert best[0.0] <= max(best[1.0], best[0.1], best[0.01]) + 0.005, k
        # The regularisation effect: sampled runs hold their peak at
        # least as well as the unsampled run.
        assert overfit_gap(curves[(k, 0.1)]) <= overfit_gap(curves[(k, 1.0)]) + 0.02, k
