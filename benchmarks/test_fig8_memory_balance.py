"""Figure 8 — per-partition memory balance on the papers100M analogue
(192 partitions), normalised to the heaviest partition.

Paper's box plots: at p=1 one straggler forces ~20% extra memory while
three quarters of the partitions sit below 60% utilisation; at
p=0.1/0.01 all partitions rise above ~70% of the (much lower) peak —
sampling both SHRINKS and BALANCES memory.
"""

import numpy as np

from repro.bench import format_table, memory_for, save_result

DATASET = "papers-sim"
P_VALUES = (1.0, 0.1, 0.01)


def run():
    results = {}
    rows = []
    for p in P_VALUES:
        mem = memory_for(DATASET, 192, p)
        norm = mem / mem.max()
        results[p] = norm
        rows.append(
            [
                f"p = {p}",
                f"{np.percentile(norm, 25):.3f}",
                f"{np.median(norm):.3f}",
                f"{np.percentile(norm, 75):.3f}",
                f"{norm.min():.3f}",
                f"{mem.max() / 1e6:.2f} MB",
            ]
        )
    table = format_table(
        ["rate", "Q1", "median", "Q3", "min", "peak (abs)"],
        rows,
        title=(
            "Figure 8 (papers-sim, 192 partitions): per-partition memory "
            "normalised to the heaviest partition "
            "(paper: p=1 badly imbalanced; p=0.1/0.01 all above ~70%)"
        ),
    )
    save_result("fig8_memory_balance", table)
    return results


def test_fig8_memory_balance(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    # Sampling tightens the distribution: the lower quartile moves up.
    q1 = {p: np.percentile(results[p], 25) for p in P_VALUES}
    assert q1[0.01] > q1[0.1] > q1[1.0]
    # At p=0.01 nearly every partition is close to the peak.
    assert np.median(results[0.01]) > 0.7
    # At p=1 the straggler leaves most partitions far below the peak.
    assert np.median(results[1.0]) < 0.75
