"""Table 10 — epoch-time speedup of BNS on a 2-layer GAT, 10 partitions.

Paper: p=0.1/0.01/0 speed GAT training up by 1.53-2.20× over p=1 —
smaller factors than for GraphSAGE because GAT's per-edge attention
makes compute a bigger share of the epoch.
"""

import numpy as np

from repro.bench import (
    bench_transport,
    format_table,
    get_graph,
    get_partition,
    save_result,
)
from repro.core import DistributedGATTrainer
from repro.dist import RTX2080TI_CLUSTER
from repro.nn import GATModel

DATASETS = ("reddit-sim", "products-sim", "yelp-sim")
P_VALUES = (1.0, 0.1, 0.01, 0.0)
EPOCHS = 3
NUM_PARTS = 10


def epoch_seconds(name, p):
    graph = get_graph(name)
    part = get_partition(name, NUM_PARTS, method="metis")
    model = GATModel(
        graph.feature_dim, 16, graph.num_classes, num_layers=2, dropout=0.1,
        rng=np.random.default_rng(7), num_heads=2,
    )
    trainer = DistributedGATTrainer(
        graph, part, model, p=p, cluster=RTX2080TI_CLUSTER, seed=0,
        transport=bench_transport(NUM_PARTS),
    )
    trainer.train(EPOCHS)
    return float(np.mean([b.total for b in trainer.history.modeled]))


def run():
    results = {}
    for name in DATASETS:
        base = epoch_seconds(name, 1.0)
        results[(name, 1.0)] = 1.0
        for p in P_VALUES[1:]:
            results[(name, p)] = base / epoch_seconds(name, p)
    rows = [
        [f"p = {p}"] + [f"{results[(name, p)]:.2f}x" for name in DATASETS]
        for p in P_VALUES
    ]
    table = format_table(
        ["BNS-GCN"] + list(DATASETS),
        rows,
        title=(
            "Table 10: 2-layer GAT epoch-time speedup over p=1 "
            f"({NUM_PARTS} partitions; paper: 1.53-2.20x for p<=0.1)"
        ),
    )
    save_result("table10_gat", table)
    return results


def test_table10_gat(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for name in DATASETS:
        # Speedups grow as p falls, topping out at p=0.
        assert results[(name, 0.0)] >= results[(name, 0.01)] >= results[
            (name, 0.1)
        ] > 1.1, name
        # Shape check: meaningful but not unbounded speedup (compute
        # remains, unlike the pure-communication regime).
        assert results[(name, 0.0)] < 50, name
