"""Table 11 — per-epoch training time: BNS (8 partitions) vs the
sampling-based methods on the Reddit analogue.

Paper: BNS p=1 is already 8× faster per epoch than GraphSAGE neighbour
sampling; p=0.01 reaches 41×.  Distributed epochs are modelled with the
cluster cost model; baselines with the same device model (FLOPs +
sampler ops), so the comparison axis is consistent.
"""

import numpy as np

from repro.baselines import (
    ClusterGCNTrainer,
    FastGCNTrainer,
    NeighborSamplingTrainer,
    VRGCNTrainer,
)
from repro.bench import (
    BENCH_CONFIGS,
    baseline_epoch_seconds,
    format_table,
    get_graph,
    make_model,
    run_config_cached,
    save_result,
)
from repro.nn import GCNModel

DATASET = "reddit-sim"
NUM_PARTS = 8
BASELINE_EPOCHS = 3
# The paper's baselines run ~150 minibatches per Reddit epoch
# (153k train nodes / DGL's 1024 batch).  Batch sizes here scale with
# the 1/30-size analogue so the per-epoch batch count — what drives
# neighbour-sampling's recomputation penalty — keeps the same shape.
BATCH = 64


def baseline_epoch(ctor, model_kind="sage"):
    cfg = BENCH_CONFIGS[DATASET]
    graph = get_graph(DATASET)
    if model_kind == "gcn":
        model = GCNModel(
            graph.feature_dim, cfg.hidden, graph.num_classes, cfg.num_layers,
            cfg.dropout, np.random.default_rng(7),
        )
    else:
        model = make_model(graph, cfg, seed=7)
    trainer = ctor(graph, model)
    trainer.train(BASELINE_EPOCHS)
    h = trainer.history
    return float(
        np.mean(
            [
                baseline_epoch_seconds(f, e)
                for f, e in zip(h.compute_flops, h.sampler_edges)
            ]
        )
    )


def run():
    cfg = BENCH_CONFIGS[DATASET]
    times = {}
    times["GraphSAGE (NS)"] = baseline_epoch(
        lambda g, m: NeighborSamplingTrainer(g, m, fanout=10, batch_size=BATCH, seed=0)
    )
    times["FastGCN"] = baseline_epoch(
        lambda g, m: FastGCNTrainer(g, m, layer_size=256, batch_size=BATCH, seed=0),
        model_kind="gcn",
    )
    times["VR-GCN"] = baseline_epoch(
        lambda g, m: VRGCNTrainer(g, m, fanout=2, batch_size=BATCH, seed=0)
    )
    times["ClusterGCN"] = baseline_epoch(
        lambda g, m: ClusterGCNTrainer(
            g, m, num_clusters=64, clusters_per_batch=2, seed=0
        )
    )
    for p in (1.0, 0.1, 0.01):
        times[f"BNS-GCN ({p})"] = run_config_cached(DATASET, NUM_PARTS, p).epoch_seconds
    # Importance-weighted BNS at the same rate: π matches the expected
    # kept count of uniform BNS, so the epoch cost must match too —
    # the variance reduction (Table 2) is free on this axis.
    times["BNS-imp (0.1)"] = run_config_cached(
        DATASET, NUM_PARTS, 0.1, sampler_name="importance"
    ).epoch_seconds
    ns = times["GraphSAGE (NS)"]
    rows = [
        [name, f"{t * 1e3:.3f} ms", f"{ns / t:.1f}x"] for name, t in times.items()
    ]
    table = format_table(
        ["Method", "epoch time (modelled)", "speedup vs GraphSAGE-NS"],
        rows,
        title=(
            f"Table 11 ({DATASET}, {NUM_PARTS} partitions): "
            "(paper: BNS p=1 8x, p=0.1 31x, p=0.01 41x over GraphSAGE)"
        ),
    )
    save_result("table11_sampler_efficiency", table)
    return times


def test_table11_sampler_efficiency(benchmark):
    times = benchmark.pedantic(run, rounds=1, iterations=1)
    # The node-sampling family (the neighbour-explosion story) is
    # slower than every BNS variant, as in the paper.
    bns_slowest = times["BNS-GCN (1.0)"]
    for b in ("GraphSAGE (NS)", "VR-GCN"):
        assert bns_slowest < times[b], b
    # Sampled BNS beats every baseline.  (In the paper even p=1 wins
    # against FastGCN/ClusterGCN; at 1/30 scale the fixed-latency
    # share of the comm model inflates the unsampled epoch — the
    # known calibration artifact of DESIGN.md §2.2 — so the dominance
    # claim is asserted at the paper's recommended rates.)
    for b in ("GraphSAGE (NS)", "FastGCN", "VR-GCN", "ClusterGCN"):
        assert times["BNS-GCN (0.01)"] < times[b], b
    # Speedup grows as p falls.
    assert times["BNS-GCN (0.01)"] <= times["BNS-GCN (0.1)"] <= bns_slowest
    # Order-of-magnitude advantage over neighbour sampling at p=0.01.
    assert times["GraphSAGE (NS)"] / times["BNS-GCN (0.01)"] > 5.0
    # Importance weighting is traffic-neutral: at matched expected
    # sample size its modelled epoch cost tracks uniform BNS closely.
    ratio = times["BNS-imp (0.1)"] / times["BNS-GCN (0.1)"]
    assert 0.8 < ratio < 1.25, ratio
