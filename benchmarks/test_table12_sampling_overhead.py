"""Table 12 / Appendix D — sampling overhead as a fraction of training
time: BNS across (p, #partitions) vs GraphSAINT's node/edge/RW samplers
and ClusterGCN's clustering.

Paper: whole-graph samplers cost 20-24% of training time; BNS costs
0-7.3% because it only touches boundary blocks (and p=1/p=0 cost 0%).
"""

import numpy as np

from repro.baselines import ClusterGCNTrainer, GraphSaintTrainer
from repro.bench import (
    BENCH_CONFIGS,
    bench_transport,
    format_table,
    get_graph,
    get_partition,
    make_model,
    sampler_overhead_fraction,
    save_result,
)
from repro.core import BoundaryNodeSampler, DistributedTrainer, FullBoundarySampler
from repro.dist import RTX2080TI_CLUSTER

DATASET = "reddit-sim"
PART_GRID = (2, 4, 8)
EPOCHS = 3


def saint_overhead(sampler):
    cfg = BENCH_CONFIGS[DATASET]
    graph = get_graph(DATASET)
    model = make_model(graph, cfg, seed=7)
    t = GraphSaintTrainer(graph, model, sampler=sampler, budget=600, seed=0)
    t.train(EPOCHS)
    h = t.history
    return float(
        np.mean(
            [
                sampler_overhead_fraction(f, e)
                for f, e in zip(h.compute_flops, h.sampler_edges)
            ]
        )
    )


def cluster_overhead():
    cfg = BENCH_CONFIGS[DATASET]
    graph = get_graph(DATASET)
    model = make_model(graph, cfg, seed=7)
    t = ClusterGCNTrainer(graph, model, num_clusters=32, clusters_per_batch=4, seed=0)
    t.train(EPOCHS)
    h = t.history
    return float(
        np.mean(
            [
                sampler_overhead_fraction(f, e)
                for f, e in zip(h.compute_flops, h.sampler_edges)
            ]
        )
    )


def bns_overhead(p, k):
    cfg = BENCH_CONFIGS[DATASET]
    graph = get_graph(DATASET)
    part = get_partition(DATASET, k, method="metis")
    model = make_model(graph, cfg, seed=7)
    sampler = FullBoundarySampler() if p == 1.0 else BoundaryNodeSampler(p)
    t = DistributedTrainer(
        graph, part, model, sampler, lr=cfg.lr, seed=0,
        cluster=RTX2080TI_CLUSTER, transport=bench_transport(k),
    )
    t.train(EPOCHS)
    fracs = [b.sampling / b.total for b in t.history.modeled]
    return float(np.mean(fracs))


def run():
    results = {"saint": {}, "bns": {}}
    rows = []
    for sampler in ("node", "edge", "rw"):
        f = saint_overhead(sampler)
        results["saint"][sampler] = f
        rows.append([f"GraphSAINT {sampler}", "-", f"{100 * f:.1f}%"])
    f = cluster_overhead()
    results["saint"]["cluster"] = f
    rows.append(["ClusterGCN", "-", f"{100 * f:.1f}%"])
    for p in (1.0, 0.1, 0.01, 0.0):
        for k in PART_GRID:
            f = bns_overhead(p, k)
            results["bns"][(p, k)] = f
            rows.append([f"BNS p={p}", f"{k} parts", f"{100 * f:.1f}%"])
    table = format_table(
        ["sampler", "partitions", "overhead (% of epoch)"],
        rows,
        title=(
            "Table 12: sampling overhead share "
            "(paper: whole-graph samplers 20-24%; BNS 0-7.3%)"
        ),
    )
    save_result("table12_sampling_overhead", table)
    return results


def test_table12_sampling_overhead(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    # The node/edge samplers that touch the whole graph sit in the
    # tens of percent; subgraph-reusing samplers (RW roots, cluster
    # lookups) are cheaper but still clearly above BNS.
    assert results["saint"]["node"] > 0.10
    assert results["saint"]["edge"] > 0.10
    for sampler in ("rw", "cluster"):
        assert results["saint"][sampler] > 0.02, sampler
    # BNS overhead is comparatively negligible (paper: 0-7.3%).
    for (p, k), frac in results["bns"].items():
        assert frac < 0.08, (p, k)
        if p == 1.0:
            # Cached plan at p=1: free.
            assert frac < 0.01, (p, k)
    # And strictly below the cheapest whole-graph sampler.
    worst_bns = max(results["bns"].values())
    best_saint = min(results["saint"].values())
    assert worst_bns < best_saint
