"""Table 13 / Appendix E — accuracy across the sampling-rate sweep
p ∈ {0.1, 0.3, 0.5, 0.8, 1.0}.

Paper: the whole range lands within ~0.2 accuracy points — p=0.1 "keeps
the best of all worlds" (same accuracy, far less communication), which
is the practical recommendation the appendix derives.
"""

import numpy as np

from repro.bench import format_table, run_config_cached, save_result

CASES = {
    "reddit-sim": 2,
    "products-sim": 5,
}
P_VALUES = (0.1, 0.3, 0.5, 0.8, 1.0)


def run():
    results = {}
    rows = []
    for name, k in CASES.items():
        scores = {p: run_config_cached(name, k, p).test_score for p in P_VALUES}
        results[name] = scores
        rows.append(
            [f"{name} ({k} parts)"]
            + [f"{100 * scores[p]:.2f}" for p in P_VALUES]
        )
    table = format_table(
        ["dataset"] + [f"p = {p}" for p in P_VALUES],
        rows,
        title=(
            "Table 13: test score (%) across sampling rates "
            "(paper: flat within ~0.2 points; p=0.1 recommended)"
        ),
    )
    save_result("table13_choice_of_p", table)
    return results


def test_table13_choice_of_p(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, scores in results.items():
        values = np.array([scores[p] for p in P_VALUES])
        # The sweep is flat up to the single-seed noise floor.  The
        # paper's ±0.2pt flatness averages 10 runs of a 233k-node
        # graph; one seed of a 2k-node analogue carries a few points
        # of val-selection noise, so flat-within-12pts is the
        # resolvable version of the claim.
        assert values.max() - values.min() < 0.12, name
        # p = 0.1 specifically holds the full-graph score.
        assert scores[0.1] > scores[1.0] - 0.05, name
