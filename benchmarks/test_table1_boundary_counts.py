"""Table 1 — boundary vs inner node counts under 10-way METIS-like
partitioning of the Reddit analogue.

Paper's observation: every partition holds ~15k inner nodes but up to
86k boundary nodes (ratios 0.42-5.49), i.e. the boundary sets dominate.
Expected reproduction shape: balanced inner sizes, boundary/inner
ratios well above 1 for most partitions, with large spread.
"""

import numpy as np

from repro.bench import format_table, save_result
from repro.graph import load_dataset
from repro.partition import boundary_inner_table, partition_graph


def run():
    # Full-scale reddit-sim: at bench scale the boundary sets saturate
    # (every partition neighbours most of the graph), which compresses
    # the ratio spread Table 1 demonstrates.
    graph = load_dataset("reddit-sim", scale=1.0, seed=0)
    part = partition_graph(graph, 10, method="metis", seed=0)
    rows = boundary_inner_table(graph.adj, part)
    table = format_table(
        ["Partition", "# Inner", "# Boundary", "Ratio"],
        [[r["partition"], r["inner"], r["boundary"], round(r["ratio"], 2)] for r in rows],
        title=(
            "Table 1: boundary vs inner nodes, reddit-sim, 10 partitions "
            "(paper: inner ~15k each, ratios 0.42-5.49)"
        ),
    )
    save_result("table1_boundary_counts", table)
    return rows


def test_table1_boundary_counts(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    inner = np.array([r["inner"] for r in rows])
    ratios = np.array([r["ratio"] for r in rows])
    # Inner sizes balanced (Goal-2), boundary sets dominant (the paper's
    # headline observation) with visible spread across partitions.
    assert inner.max() <= 1.35 * inner.min()
    assert np.median(ratios) > 1.0
    assert ratios.max() > 1.25 * ratios.min()
