"""Table 2 — feature-approximation variance of BNS vs SOTA samplers.

Paper's claim: at matched sample size, Var(BNS) < Var(LADIES) <
Var(FastGCN) because B_i ⊆ N_i ⊆ V.  We evaluate both the analytic
Table 2 expressions and Monte-Carlo estimates of E‖Z̃−Z‖²_F on a real
partition of the Reddit analogue.
"""

import numpy as np

from repro.bench import BENCH_CONFIGS, format_table, get_graph, get_partition, save_result
from repro.core import PartitionRuntime
from repro.core.variance import (
    OneStepProblem,
    analytic_bounds,
    bns_estimate,
    empirical_variance,
    fastgcn_estimate,
    graphsage_estimate,
    ladies_estimate,
)

P = 0.1
DRAWS = 100


def run():
    graph = get_graph("reddit-sim")
    part = get_partition("reddit-sim", 8, method="metis")
    runtime = PartitionRuntime(graph, part)
    rank = max(runtime.ranks, key=lambda r: r.n_boundary)
    rng = np.random.default_rng(0)
    d, d_out = 16, 8
    problem = OneStepProblem(
        p_in=rank.p_in, p_bd=rank.p_bd, a_in=rank.a_in, a_bd=rank.a_bd,
        h_in=rng.normal(size=(rank.n_inner, d)),
        h_bd=rng.normal(size=(rank.n_boundary, d)),
        weight=rng.normal(size=(d, d_out)) / np.sqrt(d),
    )
    s = max(int(P * problem.n_boundary), 1)
    empirical = {
        "BNS-GCN (scale)": empirical_variance(
            lambda r: bns_estimate(problem, P, r, "scale"), problem.exact, DRAWS
        ),
        "BNS-GCN (renorm)": empirical_variance(
            lambda r: bns_estimate(problem, P, r, "renorm"), problem.exact, DRAWS
        ),
        "LADIES": empirical_variance(
            lambda r: ladies_estimate(problem, s, r), problem.exact, DRAWS
        ),
        "FastGCN": empirical_variance(
            lambda r: fastgcn_estimate(problem, s, r), problem.exact, DRAWS
        ),
        "GraphSAGE": empirical_variance(
            lambda r: graphsage_estimate(problem, max(s // problem.n_inner, 2), r),
            problem.exact, DRAWS,
        ),
    }
    bounds = analytic_bounds(problem, P)
    rows = []
    for name in ("BNS-GCN (scale)", "BNS-GCN (renorm)", "LADIES", "FastGCN", "GraphSAGE"):
        bound_key = name.split(" ")[0] if name.startswith("BNS") else name
        bound_key = "BNS-GCN" if name.startswith("BNS") else name
        rows.append([name, f"{empirical[name]:.4f}", f"{bounds.get(bound_key, float('nan')):.2f}"])
    rows.append(["|B_i| / |N_i| / |V|",
                 f"{bounds['|B_i|']} / {bounds['|N_i|']} / {bounds['|V|']}", ""])
    table = format_table(
        ["Method", "empirical Var", "Table-2 expression"],
        rows,
        title=(
            f"Table 2: one-step variance at matched sample size (p={P}, "
            f"{DRAWS} draws; paper: BNS < LADIES < FastGCN)"
        ),
    )
    save_result("table2_variance", table)
    return empirical


def test_table2_variance(benchmark):
    emp = benchmark.pedantic(run, rounds=1, iterations=1)
    assert emp["BNS-GCN (scale)"] < emp["LADIES"]
    assert emp["LADIES"] <= emp["FastGCN"] * 1.1
    # The self-normalised estimator the trainer uses is even tighter.
    assert emp["BNS-GCN (renorm)"] < emp["BNS-GCN (scale)"]
