"""Table 2 — feature-approximation variance of BNS vs SOTA samplers.

Paper's claim: at matched sample size, Var(BNS) < Var(LADIES) <
Var(FastGCN) because B_i ⊆ N_i ⊆ V.  We evaluate both the analytic
Table 2 expressions and Monte-Carlo estimates of E‖Z̃−Z‖²_F on a real
partition of the Reddit analogue.

Two extensions ride on the same harness:

* **importance-weighted BNS** — degree-proportional keep probabilities
  (π_v ∝ ‖P[:,v]‖², FastGCN's importance measure applied rank-locally)
  at *matched expected kept count*, asserted strictly below uniform
  BNS in scale mode — on the Reddit partition and on a power-law-
  degree random partition where the boundary-degree skew is heaviest;
* **the FastGCN estimator speedup** — the Monte-Carlo hot path is one
  column-scaled SpMM; the per-column rank-1 update loop it replaced is
  timed next to it (and pinned to ≤1e-12 agreement in the test suite).
"""

import time

import numpy as np

from repro.bench import format_table, get_graph, get_partition, save_result
from repro.core import PartitionRuntime
from repro.core.variance import (
    OneStepProblem,
    _fastgcn_estimate_loop,
    analytic_bounds,
    bns_estimate,
    empirical_variance,
    fastgcn_estimate,
    graphsage_estimate,
    importance_analytic_bound,
    importance_bns_estimate,
    ladies_estimate,
)
from repro.graph.generators import SyntheticSpec, generate_graph
from repro.partition import partition_graph

P = 0.1
DRAWS = 100


def _one_step_problem(rank, seed=0, d=16, d_out=8):
    rng = np.random.default_rng(seed)
    return OneStepProblem(
        p_in=rank.p_in, p_bd=rank.p_bd, a_in=rank.a_in, a_bd=rank.a_bd,
        h_in=rng.normal(size=(rank.n_inner, d)),
        h_bd=rng.normal(size=(rank.n_boundary, d)),
        weight=rng.normal(size=(d, d_out)) / np.sqrt(d),
    )


def _skewed_problem():
    """A power-law-degree graph under a *random* partition: maximal
    boundary-degree skew, the regime importance weighting targets."""
    spec = SyntheticSpec(
        n=4000, num_communities=16, avg_degree=12.0, homophily=0.6,
        degree_exponent=1.6, feature_dim=16, name="table2-skewed",
    )
    graph = generate_graph(spec, seed=1)
    part = partition_graph(graph, 4, method="random", seed=1)
    runtime = PartitionRuntime(graph, part)
    rank = max(runtime.ranks, key=lambda r: r.n_boundary)
    return _one_step_problem(rank, seed=1)


def _fastgcn_speedup(problem, s, reps=30):
    """Wall time of the rank-1-update loop vs the column-scaled SpMM."""
    fastgcn_estimate(problem, s, np.random.default_rng(0))  # warm caches
    t0 = time.perf_counter()
    for r in range(reps):
        _fastgcn_estimate_loop(problem, s, np.random.default_rng(r))
    loop_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for r in range(reps):
        fastgcn_estimate(problem, s, np.random.default_rng(r))
    spmm_s = time.perf_counter() - t0
    return {
        "loop_ms": loop_s / reps * 1e3,
        "spmm_ms": spmm_s / reps * 1e3,
        "speedup": loop_s / spmm_s if spmm_s > 0 else float("inf"),
    }


def run():
    graph = get_graph("reddit-sim")
    part = get_partition("reddit-sim", 8, method="metis")
    runtime = PartitionRuntime(graph, part)
    rank = max(runtime.ranks, key=lambda r: r.n_boundary)
    problem = _one_step_problem(rank)
    s = max(int(P * problem.n_boundary), 1)
    empirical = {
        "BNS-GCN (scale)": empirical_variance(
            lambda r: bns_estimate(problem, P, r, "scale"), problem.exact, DRAWS
        ),
        "BNS-GCN (renorm)": empirical_variance(
            lambda r: bns_estimate(problem, P, r, "renorm"), problem.exact, DRAWS
        ),
        "BNS-imp (scale)": empirical_variance(
            lambda r: importance_bns_estimate(problem, P, r, "scale"),
            problem.exact, DRAWS,
        ),
        "BNS-imp (renorm)": empirical_variance(
            lambda r: importance_bns_estimate(problem, P, r, "renorm"),
            problem.exact, DRAWS,
        ),
        "LADIES": empirical_variance(
            lambda r: ladies_estimate(problem, s, r), problem.exact, DRAWS
        ),
        "FastGCN": empirical_variance(
            lambda r: fastgcn_estimate(problem, s, r), problem.exact, DRAWS
        ),
        "GraphSAGE": empirical_variance(
            lambda r: graphsage_estimate(problem, max(s // problem.n_inner, 2), r),
            problem.exact, DRAWS,
        ),
    }
    bounds = analytic_bounds(problem, P)
    bounds["BNS-imp (appendix bound)"] = importance_analytic_bound(problem, P)
    rows = []
    for name in (
        "BNS-GCN (scale)", "BNS-GCN (renorm)", "BNS-imp (scale)",
        "BNS-imp (renorm)", "LADIES", "FastGCN", "GraphSAGE",
    ):
        if name.startswith("BNS-imp"):
            bound_key = "BNS-imp (appendix bound)"
        elif name.startswith("BNS"):
            bound_key = "BNS-GCN"
        else:
            bound_key = name
        rows.append([name, f"{empirical[name]:.4f}",
                     f"{bounds.get(bound_key, float('nan')):.2f}"])
    rows.append(["|B_i| / |N_i| / |V|",
                 f"{bounds['|B_i|']} / {bounds['|N_i|']} / {bounds['|V|']}", ""])
    table = format_table(
        ["Method", "empirical Var", "Table-2 expression"],
        rows,
        title=(
            f"Table 2: one-step variance at matched sample size (p={P}, "
            f"{DRAWS} draws; paper: BNS < LADIES < FastGCN)"
        ),
    )

    # Uniform vs importance on the skewed random partition — the
    # regime where degree-proportional keep probabilities pay off most.
    skewed = _skewed_problem()
    skewed_rows = []
    skewed_var = {}
    for mode in ("scale", "renorm"):
        v_uni = empirical_variance(
            lambda r, m=mode: bns_estimate(skewed, P, r, m),
            skewed.exact, DRAWS,
        )
        v_imp = empirical_variance(
            lambda r, m=mode: importance_bns_estimate(skewed, P, r, m),
            skewed.exact, DRAWS,
        )
        skewed_var[f"uniform ({mode})"] = v_uni
        skewed_var[f"importance ({mode})"] = v_imp
        skewed_rows.append(
            [mode, f"{v_uni:.4f}", f"{v_imp:.4f}", f"{v_imp / v_uni:.3f}"]
        )
    table += "\n" + format_table(
        ["mode", "uniform BNS", "importance BNS", "ratio"],
        skewed_rows,
        title=(
            f"\nUniform vs importance BNS, power-law random partition "
            f"(p={P}, matched expected kept count, {DRAWS} draws)"
        ),
    )

    speed = _fastgcn_speedup(problem, s)
    table += "\n" + format_table(
        ["estimator path", "ms / draw"],
        [
            ["rank-1 update loop (retired)", f"{speed['loop_ms']:.3f}"],
            ["column-scaled SpMM", f"{speed['spmm_ms']:.3f}"],
            ["speedup", f"{speed['speedup']:.1f}x"],
        ],
        title="\nFastGCN estimator hot path",
    )
    save_result("table2_variance", table)
    return {"empirical": empirical, "skewed": skewed_var, "fastgcn": speed}


def test_table2_variance(benchmark):
    out = benchmark.pedantic(run, rounds=1, iterations=1)
    emp = out["empirical"]
    assert emp["BNS-GCN (scale)"] < emp["LADIES"]
    assert emp["LADIES"] <= emp["FastGCN"] * 1.1
    # The self-normalised estimator the trainer uses is even tighter.
    assert emp["BNS-GCN (renorm)"] < emp["BNS-GCN (scale)"]
    # Importance weighting beats uniform BNS at matched expected kept
    # count in scale mode — on the Reddit partition...
    assert emp["BNS-imp (scale)"] < emp["BNS-GCN (scale)"]
    # ...and (the acceptance case) on the power-law random partition,
    # in both estimator modes.
    skewed = out["skewed"]
    assert skewed["importance (scale)"] < skewed["uniform (scale)"]
    assert skewed["importance (renorm)"] < skewed["uniform (renorm)"]
    # The vectorised FastGCN path is the fast one (same draws, same
    # estimate to 1e-12 — asserted in tests/core/test_variance.py).
    assert out["fastgcn"]["speedup"] > 1.0
