"""Table 4 — full-graph test accuracy of BNS-GCN across sampling rates
and partition counts, vs the sampling-based baselines.

Paper's observations to reproduce in shape:
  * p = 1 (full-graph) matches or beats every sampling-based method;
  * p = 0.1 and p = 0.01 maintain the full-graph score (small deltas);
  * p = 0 (isolated training) is consistently the worst BNS setting;
  * scores are stable across partition counts.

Scores here are on the synthetic analogues, so absolute values differ
from the paper; orderings and deltas are the reproduction target.
"""

import numpy as np

from repro.bench import BENCH_CONFIGS, format_table, run_config_cached, save_result

DATASETS = ("reddit-sim", "products-sim", "yelp-sim")
P_VALUES = (1.0, 0.1, 0.01, 0.0)


def run():
    results = {}
    for name in DATASETS:
        grid = BENCH_CONFIGS[name].partition_grid
        scores = {}
        for p in P_VALUES:
            for k in grid:
                scores[(p, k)] = run_config_cached(name, k, p).test_score
        results[name] = scores
        rows = [
            [f"p = {p}"] + [round(scores[(p, k)] * 100, 2) for k in grid]
            for p in P_VALUES
        ]
        table = format_table(
            ["BNS-GCN"] + [f"{k} parts" for k in grid],
            rows,
            title=(
                f"Table 4 ({name}): test score (%) at best val epoch "
                "(paper: p=0.1/0.01 maintain the p=1 score; p=0 worst)"
            ),
        )
        save_result(f"table4_accuracy_{name}", table)
    return results


def test_table4_accuracy(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, scores in results.items():
        grid = BENCH_CONFIGS[name].partition_grid
        for k in grid:
            full = scores[(1.0, k)]
            # Moderate sampling maintains accuracy (within a few points
            # at laptop scale / shorter training).
            assert scores[(0.1, k)] > full - 0.08, (name, k)
            # p = 0 never beats moderate sampling by a real margin.
            assert scores[(0.0, k)] <= scores[(0.1, k)] + 0.03, (name, k)
        # Aggregate ordering: mean over partition counts puts p=0 last.
        means = {
            p: np.mean([scores[(p, k)] for k in grid]) for p in (1.0, 0.1, 0.01, 0.0)
        }
        assert means[0.0] <= min(means[1.0], means[0.1]) + 0.01, name
