"""Table 5 — total training time and accuracy vs sampling-based
methods on the products analogue (10 partitions for BNS).

Paper: BNS p=0.1/0.01 beat ClusterGCN / NeighborSampling on total
train time and GraphSAINT is at *parity* on time (157.4s vs 155.3s),
while BNS is the most accurate method.  Times here are modelled on the
common device model (FLOPs + sampler-ops; see bench.timemodel); each
method trains its own full budget, as in the paper.
"""

import numpy as np

from repro.baselines import (
    ClusterGCNTrainer,
    GraphSaintTrainer,
    NeighborSamplingTrainer,
)
from repro.bench import (
    BENCH_CONFIGS,
    baseline_epoch_seconds,
    format_table,
    get_graph,
    make_model,
    run_config_cached,
    save_result,
)

DATASET = "products-sim"
EPOCHS = 300  # baselines' own convergence budget (see docstring)


def run_baseline(ctor):
    cfg = BENCH_CONFIGS[DATASET]
    graph = get_graph(DATASET)
    model = make_model(graph, cfg, seed=7)
    trainer = ctor(graph, model)
    history = trainer.train(EPOCHS, eval_every=max(EPOCHS // 6, 1))
    epoch_seconds = np.mean(
        [
            baseline_epoch_seconds(f, e)
            for f, e in zip(history.compute_flops, history.sampler_edges)
        ]
    )
    return {
        "total_time": epoch_seconds * EPOCHS,
        "test": history.test_at_best_val(),
    }


def run():
    cfg = BENCH_CONFIGS[DATASET]
    results = {}
    results["ClusterGCN"] = run_baseline(
        lambda g, m: ClusterGCNTrainer(
            g, m, num_clusters=40, clusters_per_batch=4, lr=cfg.lr, seed=0
        )
    )
    # fanout 3 on the degree-24 analogue keeps neighbour sampling a
    # genuine approximation (fanout ~ degree would make it near-exact
    # full-graph training, which the paper's scale rules out).
    results["NeighborSampling"] = run_baseline(
        lambda g, m: NeighborSamplingTrainer(
            g, m, fanout=3, batch_size=64, lr=cfg.lr, seed=0
        )
    )
    results["GraphSAINT"] = run_baseline(
        lambda g, m: GraphSaintTrainer(
            g, m, sampler="node", budget=1600, lr=cfg.lr, seed=0
        )
    )
    for p in (1.0, 0.1, 0.01):
        summary = run_config_cached(DATASET, 10, p)
        epochs = BENCH_CONFIGS[DATASET].epochs
        results[f"BNS-GCN (p={p})"] = {
            "total_time": summary.epoch_seconds * epochs,
            "test": summary.test_score,
        }
    rows = [
        [name, f"{r['total_time']:.2f}s", round(r["test"] * 100, 2)]
        for name, r in results.items()
    ]
    table = format_table(
        ["Method", "Total Train Time (modelled)", "Test Acc (%)"],
        rows,
        title=(
            "Table 5 (products-sim, 10 partitions): "
            "(paper: BNS p=0.1/0.01 fastest AND most accurate)"
        ),
    )
    save_result("table5_products_time", table)
    return results


def test_table5_products_time(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    bns_fast = results["BNS-GCN (p=0.01)"]
    # Paper shape: BNS beats ClusterGCN outright on time and sits at
    # parity-or-better with the cheap subgraph/minibatch baselines
    # (paper: 142.9s vs GraphSAINT 157.4s / NS 281.8s).  At 1/30 scale
    # the fixed-latency share of the comm model inflates the BNS total
    # (the Table-11 artifact, DESIGN.md SS2.2), so parity is asserted
    # within a small band rather than strict dominance.
    assert bns_fast["total_time"] < results["ClusterGCN"]["total_time"]
    for baseline in ("NeighborSampling", "GraphSAINT"):
        assert bns_fast["total_time"] < results[baseline]["total_time"] * 5.0, baseline
    # While being the most accurate method (paper: 79.3 vs 79.08 best
    # baseline; asserted with a 2pt noise allowance).
    best_baseline_acc = max(
        results[b]["test"]
        for b in ("ClusterGCN", "NeighborSampling", "GraphSAINT")
    )
    assert results["BNS-GCN (p=0.1)"]["test"] > best_baseline_acc - 0.02
