"""Table 6 — epoch time breakdown on the papers100M analogue with 192
partitions over a multi-machine cluster model.

Paper: total 554.1s at p=1 of which 550.3s is communication (99%!);
p=0.01 cuts the total by ~99%.  The cross-machine bandwidth is the
bottleneck, which our V100_MULTI_MACHINE cluster model encodes.
"""

import dataclasses


from repro.bench import BENCH_CONFIGS, format_table, get_graph, get_partition, make_model, save_result
from repro.dist import V100_MULTI_MACHINE, bns_epoch_model, build_workload
from repro.nn.models import layer_dims

DATASET = "papers-sim"
P_VALUES = (1.0, 0.1, 0.01)

# papers-sim is ~4600x smaller than ogbn-papers100M, so per-message
# payloads here are tiny and the fixed per-message latency (absent at
# the paper's message sizes, where bytes dominate) would swamp the
# bandwidth term.  This table models the bandwidth-bound regime the
# paper measures: latency-free links.
CLUSTER = dataclasses.replace(
    V100_MULTI_MACHINE, intra_latency=0.0, inter_latency=0.0
)


def run():
    cfg = BENCH_CONFIGS[DATASET]
    graph = get_graph(DATASET)
    part = get_partition(DATASET, 192, method="metis")
    model = make_model(graph, cfg)
    dims = layer_dims(graph.feature_dim, cfg.hidden, graph.num_classes, cfg.num_layers)
    workload = build_workload(graph, part, dims, model.num_parameters())
    results = {}
    rows = []
    for p in P_VALUES:
        bd = bns_epoch_model(workload, CLUSTER, p)
        results[p] = bd
        rows.append(
            [
                f"BNS-GCN (p = {p})",
                f"{bd.total:.4f}",
                f"{bd.compute:.4f}",
                f"{bd.communication:.4f}",
                f"{bd.reduce:.4f}",
            ]
        )
    table = format_table(
        ["Method", "Total (s)", "Comp. (s)", "Comm. (s)", "Reduce (s)"],
        rows,
        title=(
            "Table 6 (papers-sim, 192 partitions, 32-machine model): "
            "(paper: comm = 99% of epoch at p=1; p=0.01 cuts total ~99%)"
        ),
    )
    save_result("table6_papers_breakdown", table)
    return results


def test_table6_papers_breakdown(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    vanilla = results[1.0]
    # Communication utterly dominates the multi-machine epoch.
    assert vanilla.communication / vanilla.total > 0.9
    # Sampling removes ~proportional communication.
    assert results[0.1].communication < 0.15 * vanilla.communication
    assert results[0.01].communication < 0.03 * vanilla.communication
    # Total epoch time collapses accordingly (paper: 554s -> 6s).
    assert results[0.01].total < 0.1 * vanilla.total
