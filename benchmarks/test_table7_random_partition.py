"""Table 7 — BNS-GCN on top of random partitioning: accuracy deltas
from METIS-based BNS-GCN.

Paper: with normal sampling (p=0.1) random partitioning costs almost
nothing (-0.20 to +0.27 points) — BNS is partitioner-agnostic; but at
p=0 random partitioning collapses (-3.4 points on Reddit/products)
because isolated random parts carry no community structure.
"""


from repro.bench import format_table, run_config_cached, save_result

CASES = {  # dataset -> the partition count Table 7 uses
    "reddit-sim": 8,
    "products-sim": 10,
    "yelp-sim": 10,
}
P_VALUES = (1.0, 0.1, 0.0)


def run():
    results = {}
    rows = []
    for name, k in CASES.items():
        for p in P_VALUES:
            metis = run_config_cached(name, k, p, method="metis").test_score
            rand = run_config_cached(name, k, p, method="random").test_score
            results[(name, p)] = (rand, rand - metis)
        rows.append(
            [name]
            + [
                f"{100 * results[(name, p)][0]:.2f} ({100 * results[(name, p)][1]:+.2f})"
                for p in P_VALUES
            ]
        )
    table = format_table(
        ["dataset"] + [f"Random+BNS (p={p})" for p in P_VALUES],
        rows,
        title=(
            "Table 7: test score (%) with random partition (delta vs METIS-like) "
            "(paper: p=0.1 within ±0.3; p=0 collapses by ~-3.4)"
        ),
    )
    save_result("table7_random_partition", table)
    return results


def test_table7_random_partition(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for name in CASES:
        # Unsampled training is partitioner-agnostic (the p=1 column of
        # the paper's Table 7 is identical to METIS by construction;
        # here only seeds differ).
        assert abs(results[(name, 1.0)][1]) < 0.04, name
        # Accuracy degrades monotonically as sampling sharpens under a
        # random partition: p=1 >= p=0.1 >= p=0 (up to noise).
        assert results[(name, 0.1)][1] <= results[(name, 1.0)][1] + 0.02, name
        assert results[(name, 0.0)][1] <= results[(name, 0.1)][1] + 0.02, name
    # The p=0 collapse is visible (paper: -3.4 on Reddit).
    worst = min(results[(name, 0.0)][1] for name in CASES)
    assert worst < -0.01
    # Scale note, asserted so a future recalibration revisits it: the
    # paper additionally shows random+p=0.1 *holding* accuracy (±0.3).
    # That requires paper-scale degrees (keeping 10% of hundreds of
    # boundary neighbours); at 1/30 scale it resolves only on the
    # yelp analogue, whose task saturates at low degree.
    assert abs(results[("yelp-sim", 0.1)][1]) < 0.05
