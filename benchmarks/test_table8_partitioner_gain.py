"""Table 8 — how much BNS (p=0.1) improves throughput/memory on top of
METIS-like vs random partitioning, plus the boundary-node counts.

Paper: random partitioning has ~2-9× the boundary nodes of METIS, so
BNS helps it MORE (Reddit: 5.0× vs 3.1× throughput; memory to 0.36×
vs 0.47×) — i.e. the worse the partitioner, the bigger BNS's win.
"""


from repro.bench import (
    BENCH_CONFIGS,
    format_table,
    get_graph,
    get_partition,
    make_model,
    memory_for,
    save_result,
)
from repro.dist import RTX2080TI_CLUSTER, bns_epoch_model, build_workload
from repro.nn.models import layer_dims
from repro.partition import partition_stats

CASES = {
    "reddit-sim": 8,
    "products-sim": 10,
    "yelp-sim": 10,
}


def analyse(name, k, method):
    cfg = BENCH_CONFIGS[name]
    graph = get_graph(name)
    part = get_partition(name, k, method=method)
    model = make_model(graph, cfg)
    dims = layer_dims(graph.feature_dim, cfg.hidden, graph.num_classes, cfg.num_layers)
    w = build_workload(graph, part, dims, model.num_parameters())
    t_full = bns_epoch_model(w, RTX2080TI_CLUSTER, 1.0).total
    t_bns = bns_epoch_model(w, RTX2080TI_CLUSTER, 0.1).total
    mem_full = memory_for(name, k, 1.0, method=method).max()
    mem_bns = memory_for(name, k, 0.1, method=method).max()
    return {
        "speedup": t_full / t_bns,
        "mem_ratio": mem_bns / mem_full,
        "boundary": int(partition_stats(graph.adj, part).total_boundary),
    }


def run():
    results = {}
    rows = []
    for name, k in CASES.items():
        m = analyse(name, k, "metis")
        r = analyse(name, k, "random")
        results[name] = {"metis": m, "random": r}
        rows.append(
            [
                f"{name} ({k} parts)",
                f"{m['speedup']:.2f}x", f"{r['speedup']:.2f}x",
                f"{m['mem_ratio']:.2f}x", f"{r['mem_ratio']:.2f}x",
                m["boundary"], r["boundary"],
            ]
        )
    table = format_table(
        [
            "dataset", "speedup METIS", "speedup Random",
            "mem METIS", "mem Random", "#bd METIS", "#bd Random",
        ],
        rows,
        title=(
            "Table 8: BNS (p=0.1) gains on top of each partitioner "
            "(paper: random has more boundary nodes, so BNS helps it more)"
        ),
    )
    save_result("table8_partitioner_gain", table)
    return results


def test_table8_partitioner_gain(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, r in results.items():
        # Random partitioning produces more boundary nodes...
        assert r["random"]["boundary"] > r["metis"]["boundary"], name
        # ...so BNS's throughput gain is at least as large on random...
        assert r["random"]["speedup"] >= r["metis"]["speedup"] * 0.95, name
        # ...and its relative memory footprint shrinks at least as much.
        assert r["random"]["mem_ratio"] <= r["metis"]["mem_ratio"] * 1.05, name
        # BNS improves throughput on both partitioners.
        assert r["metis"]["speedup"] > 1.2, name
