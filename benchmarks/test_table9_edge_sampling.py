"""Table 9 — BNS vs DropEdge vs Boundary Edge Sampling (BES) at a
MATCHED number of dropped edges.

Paper: with all methods dropping the same edge count as BNS p=0.1,
DropEdge/BES still communicate 7-10× more than BNS (many boundary
edges share a boundary node — dropping edges rarely frees a node), so
BNS trains up to 2.4× faster at equal accuracy.
"""

import numpy as np

from repro.bench import (
    BENCH_CONFIGS,
    bench_transport,
    format_table,
    get_graph,
    get_partition,
    make_model,
    save_result,
)
from repro.core import (
    BoundaryEdgeSampler,
    BoundaryNodeSampler,
    DistributedTrainer,
    DropEdgeSampler,
    PartitionRuntime,
)
from repro.dist import RTX2080TI_CLUSTER

CASES = {  # dataset -> partition count (paper's minimal full-graph setup)
    "reddit-sim": 2,
    "products-sim": 5,
    "yelp-sim": 3,
}
P = 0.1
EPOCHS = 40


def run_one(name, k, sampler):
    cfg = BENCH_CONFIGS[name]
    graph = get_graph(name)
    part = get_partition(name, k, method="metis")
    model = make_model(graph, cfg, seed=7)
    trainer = DistributedTrainer(
        graph, part, model, sampler, lr=cfg.lr, seed=0,
        cluster=RTX2080TI_CLUSTER, transport=bench_transport(k),
    )
    history = trainer.train(EPOCHS, eval_every=max(EPOCHS // 4, 1))
    return {
        "comm_mb": float(np.mean(history.comm_bytes)) / 1e6,
        "epoch_s": float(np.mean([b.total for b in history.modeled])),
        "test": history.test_at_best_val(),
    }


def run():
    results = {}
    rows = []
    for name, k in CASES.items():
        graph = get_graph(name)
        part = get_partition(name, k, method="metis")
        runtime = PartitionRuntime(graph, part)
        bd_edges = sum(r.a_bd.nnz for r in runtime.ranks)
        total_edges = sum(r.a_in.nnz + r.a_bd.nnz for r in runtime.ranks)
        dropped = (1 - P) * bd_edges
        # DropEdge spreads the same dropped-edge budget over ALL edges.
        q_dropedge = max(1.0 - dropped / total_edges, 0.0)
        for label, sampler in (
            ("DropEdge", DropEdgeSampler(q_dropedge)),
            ("BES", BoundaryEdgeSampler(P)),
            ("BNS-GCN", BoundaryNodeSampler(P)),
        ):
            r = run_one(name, k, sampler)
            results[(name, label)] = r
            rows.append(
                [
                    f"{name} ({k} parts)", label,
                    f"{r['comm_mb']:.2f}", f"{1e3 * r['epoch_s']:.3f}",
                    f"{100 * r['test']:.2f}",
                ]
            )
    table = format_table(
        ["dataset", "method", "epoch comm (MB)", "epoch time (ms)", "test score (%)"],
        rows,
        title=(
            "Table 9: edge sampling vs BNS at matched dropped edges "
            "(paper: DropEdge/BES need 7-10x BNS's communication)"
        ),
    )
    save_result("table9_edge_sampling", table)
    return results


def test_table9_edge_sampling(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for name in CASES:
        bns = results[(name, "BNS-GCN")]
        bes = results[(name, "BES")]
        de = results[(name, "DropEdge")]
        # The headline: edge sampling barely reduces node traffic.
        # Paper: 7-10x on Reddit; the factor shrinks with graph density
        # (paper's own Yelp column is 2.6x), so the sparse yelp
        # analogue is asserted at a lower floor.
        floor = 1.3 if name == "yelp-sim" else 2.0
        assert bes["comm_mb"] > floor * bns["comm_mb"], name
        assert de["comm_mb"] > 2.0 * bns["comm_mb"], name
        # Which translates into slower epochs.
        assert bns["epoch_s"] < bes["epoch_s"], name
        assert bns["epoch_s"] < de["epoch_s"], name
        # At comparable accuracy.
        assert bns["test"] > max(bes["test"], de["test"]) - 0.06, name
