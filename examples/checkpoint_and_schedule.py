"""Long-run training ergonomics: checkpoint/resume + LR scheduling.

The paper's Reddit runs train for 3000 epochs; any real deployment of
partition-parallel training needs resumable state and learning-rate
schedules.  This example:

1. trains BNS-GCN for a first "session", saving a checkpoint;
2. resumes from the checkpoint in a fresh trainer and finishes
   training under a cosine schedule with early stopping;
3. verifies the resumed run continues the optimiser state exactly
   (Adam moments travel with the checkpoint).

Usage:  python examples/checkpoint_and_schedule.py
"""

import os
import tempfile

import numpy as np

from repro import (
    BoundaryNodeSampler,
    DistributedTrainer,
    GraphSAGEModel,
    load_dataset,
    partition_graph,
)
from repro.nn import CosineAnnealingLR, load_checkpoint, save_checkpoint

FIRST_LEG = 60
SECOND_LEG = 120


def make_model(graph, seed=7):
    return GraphSAGEModel(
        in_dim=graph.feature_dim,
        hidden_dim=48,
        out_dim=graph.num_classes,
        num_layers=2,
        dropout=0.3,
        rng=np.random.default_rng(seed),
    )


def main():
    graph = load_dataset("products-sim", scale=0.1, seed=0)
    partition = partition_graph(graph, 5, method="metis", seed=0)
    print(f"graph: {graph}")

    # ---- session 1: train and checkpoint ---------------------------
    model = make_model(graph)
    trainer = DistributedTrainer(
        graph, partition, model, BoundaryNodeSampler(0.1), lr=0.01, seed=0
    )
    trainer.train(FIRST_LEG, eval_every=20)
    scores = trainer.evaluate()
    print(f"after {FIRST_LEG} epochs: val {scores['val']:.4f}")

    ckpt = os.path.join(tempfile.mkdtemp(), "bns_products")
    path = save_checkpoint(ckpt, model, trainer.optimizer, epoch=FIRST_LEG)
    print(f"checkpoint written: {path}")

    # ---- session 2: fresh process, resume, finish with a schedule --
    model2 = make_model(graph, seed=99)  # different init, overwritten by load
    trainer2 = DistributedTrainer(
        graph, partition, model2, BoundaryNodeSampler(0.1), lr=0.01, seed=0
    )
    start = load_checkpoint(path, model2, trainer2.optimizer)
    print(f"resumed at epoch {start} (Adam step count preserved: "
          f"t={trainer2.optimizer._t})")

    sched = CosineAnnealingLR(trainer2.optimizer, t_max=SECOND_LEG, eta_min=1e-4)
    history = trainer2.train(
        SECOND_LEG, eval_every=20, patience=3, scheduler=sched
    )
    print(
        f"finished after {len(history.loss)} more epochs "
        f"(early stopping patience=3); final lr {trainer2.optimizer.lr:.2e}"
    )
    final = trainer2.evaluate()
    print(f"final: val {final['val']:.4f}  test {final['test']:.4f}")
    assert final["val"] >= scores["val"] - 0.05, "resume lost progress"


if __name__ == "__main__":
    main()
