"""Distributed GAT with boundary node sampling (Table 10 live).

BNS is model-agnostic: for attention models a dropped boundary node
simply removes its cross-partition edges and the per-destination
softmax renormalises.  This example trains a 2-layer, 2-head GAT under
several sampling rates and reports accuracy + modelled epoch speedup.

Usage:  python examples/gat_training.py
"""

import numpy as np

from repro import (
    DistributedGATTrainer,
    GATModel,
    RTX2080TI_CLUSTER,
    load_dataset,
    partition_graph,
)

EPOCHS = 60


def main():
    graph = load_dataset("reddit-sim", scale=0.2, seed=0)
    partition = partition_graph(graph, 4, method="metis", seed=0)
    print(f"graph: {graph}\n")

    base_epoch = None
    print(f"{'p':>6} {'test acc':>9} {'epoch (model)':>14} {'speedup':>8}")
    for p in (1.0, 0.1, 0.01, 0.0):
        model = GATModel(
            graph.feature_dim, hidden_dim=16, out_dim=graph.num_classes,
            num_layers=2, dropout=0.2, rng=np.random.default_rng(7), num_heads=2,
        )
        trainer = DistributedGATTrainer(
            graph, partition, model, p=p, lr=0.01, seed=0,
            cluster=RTX2080TI_CLUSTER,
        )
        history = trainer.train(EPOCHS, eval_every=15)
        epoch_s = float(np.mean([b.total for b in history.modeled]))
        if base_epoch is None:
            base_epoch = epoch_s
        print(
            f"{p:>6} {history.test_at_best_val():>9.3f} "
            f"{1e3 * epoch_s:>12.2f}ms {base_epoch / epoch_s:>7.2f}x"
        )

    print(
        "\nShape (paper Table 10): speedup grows as p falls (1.5-2.2x), "
        "less dramatic than SAGE because attention compute dilutes the "
        "communication share; accuracy holds for moderate p."
    )


if __name__ == "__main__":
    main()
