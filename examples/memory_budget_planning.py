"""Planning a training deployment against a device memory budget.

Given a partitioned graph and a GPU memory budget, this example walks
the deployment questions of Sections 3.1/4.2 and Appendix E:

1. how much memory does vanilla partition-parallel training need per
   partition (Eq. 4 + caches), and how imbalanced is it?
2. what is the largest boundary-sampling rate p that fits the budget
   (``max_rate_for_memory``)?
3. how much better balanced is memory with per-partition rates
   (``balanced_rates``) than with the uniform paper setting?
4. train briefly at the tuned rates to confirm the plan is executable.

Usage:  python examples/memory_budget_planning.py
"""

import numpy as np

from repro import (
    DistributedTrainer,
    GraphSAGEModel,
    MemoryModel,
    load_dataset,
    partition_graph,
)
from repro.core import PerPartitionSampler, balanced_rates, max_rate_for_memory
from repro.dist import build_workload
from repro.nn.models import layer_dims

NUM_PARTS = 16
HIDDEN = 64
LAYERS = 3


def main():
    graph = load_dataset("papers-sim", scale=0.25, seed=0)
    partition = partition_graph(graph, NUM_PARTS, method="metis", seed=0)
    model = GraphSAGEModel(
        graph.feature_dim, HIDDEN, graph.num_classes, LAYERS, 0.5,
        np.random.default_rng(7),
    )
    dims = layer_dims(graph.feature_dim, HIDDEN, graph.num_classes, LAYERS)
    workload = build_workload(graph, partition, dims, model.num_parameters())
    mm = MemoryModel()

    def per_part_mb(rates):
        return mm.per_partition_bytes(
            workload.inner_sizes,
            workload.boundary_sizes * rates,
            workload.layer_dims,
            workload.model_params,
        ) / 1e6

    # 1. Vanilla memory profile.
    vanilla = per_part_mb(np.ones(NUM_PARTS))
    print(f"graph: {graph}")
    print(f"vanilla (p=1) per-partition memory: "
          f"min {vanilla.min():.2f} MB, max {vanilla.max():.2f} MB "
          f"(imbalance {vanilla.max()/vanilla.min():.2f}x)")

    # 2. Fit a budget at 60% of the vanilla peak.
    budget = vanilla.max() * 0.6 * 1e6
    p_fit = max_rate_for_memory(workload, budget, mm)
    print(f"\nbudget {budget/1e6:.2f} MB per device -> max uniform p = {p_fit:.3f}")

    # 3. Balance memory at that rate.
    uniform = np.full(NUM_PARTS, p_fit)
    tuned = balanced_rates(workload, p_target=p_fit, memory_model=mm)
    mu, mt = per_part_mb(uniform), per_part_mb(tuned)
    print(f"uniform  p={p_fit:.3f}: spread {mu.max()-mu.min():7.2f} MB "
          f"(mean rate {uniform.mean():.3f})")
    print(f"balanced rates:  spread {mt.max()-mt.min():7.2f} MB "
          f"(mean rate {tuned.mean():.3f}, straggler keeps {tuned.min():.3f})")

    # 4. Execute the plan for a few epochs.
    trainer = DistributedTrainer(
        graph, partition, model, PerPartitionSampler(tuned), lr=0.01, seed=0
    )
    history = trainer.train(10)
    print(f"\ntrained 10 epochs at the tuned rates; "
          f"loss {history.loss[0]:.3f} -> {history.loss[-1]:.3f}, "
          f"comm {np.mean(history.comm_bytes)/1e6:.2f} MB/epoch")


if __name__ == "__main__":
    main()
