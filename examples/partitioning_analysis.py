"""Why boundary nodes are the problem — the Section 3.1 analysis.

Reproduces the paper's motivating measurements on a synthetic graph:

* Table-1-style per-partition inner/boundary counts,
* the Eq. 3 identity (sender-side Σ D(v) == receiver-side Σ|B_i|),
* edge-cut vs communication-volume objectives (why min-cut partitioners
  optimise the wrong thing for GCN training),
* how boundary volume scales with the partition count,
* METIS-like vs random partitioning.

Usage:  python examples/partitioning_analysis.py
"""

import numpy as np

from repro import load_dataset, partition_graph
from repro.partition import (
    boundary_inner_table,
    communication_volume,
    edge_cut,
    partition_stats,
    sender_degrees,
)


def main():
    graph = load_dataset("reddit-sim", scale=0.5, seed=0)
    print(f"graph: {graph}\n")

    # ------------------------------------------------------------------
    print("== Table-1 style analysis: 10-way METIS-like partition ==")
    part = partition_graph(graph, 10, method="metis", seed=0)
    print(f"{'part':>4} {'inner':>7} {'boundary':>9} {'ratio':>6}")
    for row in boundary_inner_table(graph.adj, part):
        print(
            f"{row['partition']:>4} {row['inner']:>7} "
            f"{row['boundary']:>9} {row['ratio']:>6.2f}"
        )

    # ------------------------------------------------------------------
    print("\n== Eq. 3: two ways to count communication volume ==")
    sender_view = int(sender_degrees(graph.adj, part.assignment).sum())
    receiver_view = communication_volume(graph.adj, part)
    print(f"sender view   Σ_v D(v)  = {sender_view}")
    print(f"receiver view Σ_i |B_i| = {receiver_view}")
    assert sender_view == receiver_view

    # ------------------------------------------------------------------
    print("\n== Objective ablation: edge cut vs communication volume ==")
    for objective in ("cut", "volume"):
        p = partition_graph(graph, 8, method="metis", seed=0, objective=objective)
        print(
            f"objective={objective:<7} edge_cut={edge_cut(graph.adj, p.assignment):>7} "
            f"comm_volume={communication_volume(graph.adj, p):>7}"
        )
    print("(the paper's point: minimise VOLUME — boundary nodes — not cut)")

    # ------------------------------------------------------------------
    print("\n== Boundary volume vs partition count ==")
    for k in (2, 4, 8, 16):
        p = partition_graph(graph, k, method="metis", seed=0)
        st = partition_stats(graph.adj, p)
        print(
            f"k={k:>3}  total boundary={st.total_boundary:>7}  "
            f"max ratio={st.max_ratio:.2f}"
        )
    print("(more partitions -> more boundary nodes -> BNS saves more)")

    # ------------------------------------------------------------------
    print("\n== METIS-like vs random (Table 8's third column) ==")
    for method in ("metis", "random"):
        p = partition_graph(graph, 8, method=method, seed=0)
        st = partition_stats(graph.adj, p)
        print(f"{method:<7} total boundary = {st.total_boundary}")


if __name__ == "__main__":
    main()
