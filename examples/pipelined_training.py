"""Composing BNS with pipelined (PipeGCN-style) partition parallelism.

The paper notes that boundary node sampling "can be easily plugged
into any partition-parallel training method" (Section 3.2).  This
example composes the two orthogonal axes on a Reddit-like graph:

* exchange discipline — synchronous (Algorithm 1) vs pipelined
  (staleness-1 boundary features; communication hides behind compute);
* boundary sampling — p = 1 (vanilla) vs p = 0.1 (the recommended rate).

For each of the four combinations it reports the modelled epoch time
on the paper's RTX-2080Ti testbed and the achieved test accuracy,
showing that the speedups compose while accuracy holds.

Usage:  python examples/pipelined_training.py
"""

import numpy as np

from repro import (
    BoundaryNodeSampler,
    DistributedTrainer,
    FullBoundarySampler,
    GraphSAGEModel,
    PipelinedTrainer,
    RTX2080TI_CLUSTER,
    load_dataset,
    partition_graph,
)

EPOCHS = 120
NUM_PARTS = 8


def make_model(graph, seed=7):
    return GraphSAGEModel(
        in_dim=graph.feature_dim,
        hidden_dim=64,
        out_dim=graph.num_classes,
        num_layers=2,
        dropout=0.5,
        rng=np.random.default_rng(seed),
    )


def run(trainer_cls, sampler, graph, partition, label):
    trainer = trainer_cls(
        graph, partition, make_model(graph), sampler,
        lr=0.01, seed=0, cluster=RTX2080TI_CLUSTER,
    )
    history = trainer.train(EPOCHS, eval_every=EPOCHS // 4)
    epoch_ms = 1e3 * float(np.mean([b.total for b in history.modeled]))
    comm_mb = float(np.mean(history.comm_bytes)) / 1e6
    print(
        f"  {label:<26} epoch {epoch_ms:7.3f} ms   "
        f"comm {comm_mb:6.2f} MB   test acc {history.test_at_best_val():.4f}"
    )
    return epoch_ms


def main():
    graph = load_dataset("reddit-sim", scale=0.25, seed=0)
    partition = partition_graph(graph, NUM_PARTS, method="metis", seed=0)
    print(f"graph: {graph}")
    print(f"partitions: {NUM_PARTS} (METIS-like, volume objective)\n")

    print("variant                      modelled epoch / metered comm / accuracy")
    base = run(DistributedTrainer, FullBoundarySampler(), graph, partition,
               "sync, p=1 (vanilla)")
    bns = run(DistributedTrainer, BoundaryNodeSampler(0.1), graph, partition,
              "sync + BNS p=0.1")
    pipe = run(PipelinedTrainer, FullBoundarySampler(), graph, partition,
               "pipelined, p=1")
    both = run(PipelinedTrainer, BoundaryNodeSampler(0.1), graph, partition,
               "pipelined + BNS p=0.1")

    print(
        f"\nspeedups over vanilla: BNS {base / bns:.2f}x, "
        f"pipelining {base / pipe:.2f}x, composed {base / both:.2f}x"
    )


if __name__ == "__main__":
    main()
