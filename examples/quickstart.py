"""Quickstart: partition a graph, train BNS-GCN, compare to full-graph.

Runs in well under a minute on a laptop.  What it shows:

1. generate a synthetic Reddit-like graph,
2. partition it with the METIS-like partitioner (minimising the
   communication volume of Eq. 3),
3. train a GraphSAGE model with partition-parallelism and boundary
   node sampling (p = 0.1, the paper's recommended rate),
4. report accuracy, per-epoch communication, and the modelled epoch
   time against unsampled (p = 1) training.

Usage:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    BoundaryNodeSampler,
    DistributedTrainer,
    FullBoundarySampler,
    GraphSAGEModel,
    RTX2080TI_CLUSTER,
    load_dataset,
    partition_graph,
)
from repro.partition import partition_stats


def make_model(graph, seed=7):
    return GraphSAGEModel(
        in_dim=graph.feature_dim,
        hidden_dim=64,
        out_dim=graph.num_classes,
        num_layers=2,
        dropout=0.5,
        rng=np.random.default_rng(seed),
    )


def main():
    # 1. Data: a scaled-down Reddit analogue (dense, 41 classes).
    graph = load_dataset("reddit-sim", scale=0.25, seed=0)
    print(f"graph: {graph}")

    # 2. Partition into 4 parts, minimising boundary nodes.
    partition = partition_graph(graph, num_parts=4, method="metis", seed=0)
    stats = partition_stats(graph.adj, partition)
    print(
        f"partition: sizes={stats.inner_sizes.tolist()} "
        f"boundary={stats.boundary_sizes.tolist()} "
        f"comm volume (Eq.3)={stats.comm_volume}"
    )

    # 3. Train with BNS at p = 0.1 and with p = 1 for comparison.
    results = {}
    for label, sampler in (
        ("BNS p=0.1", BoundaryNodeSampler(0.1)),
        ("vanilla p=1", FullBoundarySampler()),
    ):
        model = make_model(graph)
        trainer = DistributedTrainer(
            graph, partition, model, sampler,
            lr=0.01, seed=0, cluster=RTX2080TI_CLUSTER,
        )
        history = trainer.train(epochs=100, eval_every=25)
        results[label] = {
            "test": history.test_at_best_val(),
            "comm_mb": np.mean(history.comm_bytes) / 1e6,
            "epoch_ms": 1e3 * np.mean([b.total for b in history.modeled]),
        }

    # 4. Report.
    print(f"\n{'config':<14} {'test acc':>9} {'comm/epoch':>11} {'epoch (modelled)':>17}")
    for label, r in results.items():
        print(
            f"{label:<14} {r['test']:>8.3f} {r['comm_mb']:>9.2f}MB "
            f"{r['epoch_ms']:>15.2f}ms"
        )
    speedup = results["vanilla p=1"]["epoch_ms"] / results["BNS p=0.1"]["epoch_ms"]
    saving = 1 - results["BNS p=0.1"]["comm_mb"] / results["vanilla p=1"]["comm_mb"]
    print(
        f"\nBNS p=0.1: {speedup:.1f}x modelled speedup, "
        f"{100 * saving:.0f}% less communication, same-ballpark accuracy."
    )


if __name__ == "__main__":
    main()
