"""BNS vs DropEdge vs BES vs sampling-based training (Tables 4/9 live).

Trains the same GraphSAGE model under several sampling regimes on the
products analogue (the dataset with train/test distribution shift) and
prints accuracy, metered communication, and modelled epoch time — the
axes the paper compares on.

Usage:  python examples/sampler_comparison.py
"""

import numpy as np

from repro import (
    BoundaryEdgeSampler,
    BoundaryNodeSampler,
    DistributedTrainer,
    DropEdgeSampler,
    FullBoundarySampler,
    GraphSAGEModel,
    RTX2080TI_CLUSTER,
    load_dataset,
    partition_graph,
)
from repro.baselines import GraphSaintTrainer, NeighborSamplingTrainer

EPOCHS = 60


def make_model(graph, seed=7):
    return GraphSAGEModel(
        graph.feature_dim, 64, graph.num_classes,
        num_layers=3, dropout=0.3, rng=np.random.default_rng(seed),
    )


def main():
    graph = load_dataset("products-sim", scale=0.2, seed=0)
    partition = partition_graph(graph, 5, method="metis", seed=0)
    print(f"graph: {graph}")
    print(f"{'method':<22} {'test':>7} {'comm/epoch':>11} {'epoch (model)':>14}")

    # Partition-parallel variants.
    for label, sampler in (
        ("vanilla (p=1)", FullBoundarySampler()),
        ("BNS (p=0.1)", BoundaryNodeSampler(0.1)),
        ("BNS (p=0.01)", BoundaryNodeSampler(0.01)),
        ("isolated (p=0)", BoundaryNodeSampler(0.0)),
        ("BES (q=0.1)", BoundaryEdgeSampler(0.1)),
        ("DropEdge (q=0.9)", DropEdgeSampler(0.9)),
    ):
        trainer = DistributedTrainer(
            graph, partition, make_model(graph), sampler,
            lr=0.003, seed=0, cluster=RTX2080TI_CLUSTER,
        )
        h = trainer.train(EPOCHS, eval_every=15)
        print(
            f"{label:<22} {h.test_at_best_val():>7.3f} "
            f"{np.mean(h.comm_bytes) / 1e6:>9.2f}MB "
            f"{1e3 * np.mean([b.total for b in h.modeled]):>12.2f}ms"
        )

    # Two classic sampling-based baselines for context (single device).
    for label, ctor in (
        (
            "GraphSAINT (node)",
            lambda m: GraphSaintTrainer(graph, m, sampler="node", budget=800, seed=0),
        ),
        (
            "NeighborSampling",
            lambda m: NeighborSamplingTrainer(graph, m, fanout=8, batch_size=256, seed=0),
        ),
    ):
        trainer = ctor(make_model(graph))
        h = trainer.train(EPOCHS // 3, eval_every=5)
        print(f"{label:<22} {h.test_at_best_val():>7.3f} {'n/a':>11} {'n/a':>14}")

    print(
        "\nShapes to look for (paper): BNS p=0.1 matches or beats p=1; "
        "p=0 is worst; BES/DropEdge communicate several times more than BNS."
    )


if __name__ == "__main__":
    main()
