"""Scaling study: throughput and memory as partitions grow (Figs 4/6/8).

Uses the calibrated cluster cost models to sweep partition counts and
sampling rates, comparing BNS against the ROC and CAGNET system models
and showing the memory balance effect of sampling.

Usage:  python examples/scaling_study.py
"""

import numpy as np

from repro import MemoryModel, RTX2080TI_CLUSTER, load_dataset, partition_graph
from repro.dist import (
    bns_epoch_model,
    build_workload,
    cagnet_epoch_model,
    roc_epoch_model,
)
from repro.nn.models import layer_dims
from repro.partition import partition_stats


def main():
    graph = load_dataset("reddit-sim", scale=0.5, seed=0)
    dims = layer_dims(graph.feature_dim, 64, graph.num_classes, 4)
    model_params = sum(
        2 * d_in * d_out + d_out for d_in, d_out in zip(dims[:-1], dims[1:])
    )
    print(f"graph: {graph}; model dims {dims}\n")

    print("== Throughput (epochs/s, modelled on the 2080Ti cluster) ==")
    header = f"{'k':>3} {'ROC':>8} {'CAGNET1':>8} {'CAGNET2':>8} {'p=1':>8} {'p=0.1':>8} {'p=0.01':>8}"
    print(header)
    workloads = {}
    for k in (2, 4, 8, 16):
        part = partition_graph(graph, k, method="metis", seed=0)
        w = build_workload(graph, part, dims, model_params)
        workloads[k] = (part, w)
        print(
            f"{k:>3} "
            f"{roc_epoch_model(w, RTX2080TI_CLUSTER).throughput:>8.1f} "
            f"{cagnet_epoch_model(w, RTX2080TI_CLUSTER, 1).throughput:>8.1f} "
            f"{cagnet_epoch_model(w, RTX2080TI_CLUSTER, 2).throughput:>8.1f} "
            f"{bns_epoch_model(w, RTX2080TI_CLUSTER, 1.0).throughput:>8.1f} "
            f"{bns_epoch_model(w, RTX2080TI_CLUSTER, 0.1).throughput:>8.1f} "
            f"{bns_epoch_model(w, RTX2080TI_CLUSTER, 0.01).throughput:>8.1f}"
        )

    print("\n== Peak-partition memory (MB) and balance ==")
    mm = MemoryModel()
    print(f"{'k':>3} {'p':>6} {'peak MB':>9} {'min/max':>8}")
    for k in (4, 16):
        part, w = workloads[k]
        stats = partition_stats(graph.adj, part)
        for p in (1.0, 0.1, 0.01):
            mem = mm.per_partition_bytes(
                stats.inner_sizes, stats.boundary_sizes * p, dims, model_params
            )
            print(
                f"{k:>3} {p:>6} {mem.max() / 1e6:>9.2f} "
                f"{mem.min() / mem.max():>8.2f}"
            )
    print(
        "\nShapes (paper): BNS wins everywhere and sampling both shrinks "
        "and balances memory; savings grow with the partition count."
    )


if __name__ == "__main__":
    main()
