"""BNS-GCN reproduction (MLSys 2022).

Partition-parallel full-graph GCN training with random boundary-node
sampling, built from scratch on numpy/scipy: autograd engine, GNN
layers, METIS-like partitioner, metered communication simulation,
cost/memory models, the BNS/BES/DropEdge samplers, and the
sampling-based training baselines the paper compares against.

Quickstart::

    from repro import (load_dataset, partition_graph, GraphSAGEModel,
                       BoundaryNodeSampler, DistributedTrainer)
    import numpy as np

    g = load_dataset("reddit-sim", scale=0.25)
    part = partition_graph(g, num_parts=4)
    model = GraphSAGEModel(g.feature_dim, 64, g.num_classes,
                           num_layers=2, dropout=0.5,
                           rng=np.random.default_rng(0))
    trainer = DistributedTrainer(g, part, model, BoundaryNodeSampler(0.1))
    trainer.train(epochs=100, eval_every=10)
    print(trainer.evaluate())
"""

from .tensor import (
    default_dtype,
    get_default_dtype,
    resolve_dtype,
    scalar_nbytes,
    set_default_dtype,
)
from .graph import Graph, load_dataset, generate_graph, SyntheticSpec
from .partition import (
    partition_graph,
    metis_like_partition,
    random_partition,
    PartitionResult,
    partition_stats,
)
from .nn import GraphSAGEModel, GCNModel, GATModel, Adam, SGD
from .core import (
    BoundaryNodeSampler,
    BoundaryEdgeSampler,
    DropEdgeSampler,
    FullBoundarySampler,
    BNSTrainer,
    DistributedTrainer,
    DistributedGATTrainer,
    PipelinedTrainer,
    PartitionRuntime,
)
from .baselines import FullGraphTrainer
from .dist import (
    SimulatedCommunicator,
    LocalTransport,
    MultiprocessTransport,
    Transport,
    ProcessRankExecutor,
    RTX2080TI_CLUSTER,
    V100_MULTI_MACHINE,
    MemoryModel,
)

__version__ = "0.1.0"

__all__ = [
    "default_dtype",
    "get_default_dtype",
    "resolve_dtype",
    "scalar_nbytes",
    "set_default_dtype",
    "Graph",
    "load_dataset",
    "generate_graph",
    "SyntheticSpec",
    "partition_graph",
    "metis_like_partition",
    "random_partition",
    "PartitionResult",
    "partition_stats",
    "GraphSAGEModel",
    "GCNModel",
    "GATModel",
    "Adam",
    "SGD",
    "BoundaryNodeSampler",
    "BoundaryEdgeSampler",
    "DropEdgeSampler",
    "FullBoundarySampler",
    "DistributedTrainer",
    "DistributedGATTrainer",
    "PipelinedTrainer",
    "PartitionRuntime",
    "FullGraphTrainer",
    "BNSTrainer",
    "SimulatedCommunicator",
    "LocalTransport",
    "MultiprocessTransport",
    "Transport",
    "ProcessRankExecutor",
    "RTX2080TI_CLUSTER",
    "V100_MULTI_MACHINE",
    "MemoryModel",
    "__version__",
]
