"""Static analysis + runtime sanitizers for the repo's invariants.

Submodules:

* :mod:`repro.analysis.engine` — AST pass framework, diagnostics,
  registry, committed baseline.
* :mod:`repro.analysis.dataflow` — the intraprocedural CFG builder and
  forward worklist solver the flow-sensitive passes run on.
* :mod:`repro.analysis.passes` — dtype-width, metering, kernel-purity
  and determinism passes.
* :mod:`repro.analysis.concurrency` — discarded-result,
  blocking-in-lock and project-wide lock-order passes.
* :mod:`repro.analysis.lifecycle` — flow-sensitive resource-lifecycle
  and exception-safety passes (close/unlink/release on every path).
* :mod:`repro.analysis.typestate` — protocol state tables (data) and
  the flow-sensitive typestate pass over them.
* :mod:`repro.analysis.sanitizer` — opt-in runtime checkers: lock
  order (``REPRO_SANITIZE=locks``) and protocol typestate proxies
  (``REPRO_SANITIZE=protocol``).
* :mod:`repro.analysis.lint` — the ``repro lint`` CLI.
"""

from .dataflow import (
    CFG,
    CFGError,
    CFGNode,
    SolverDivergence,
    build_cfg,
    function_cfgs,
    solve_forward,
)
from .engine import (
    Diagnostic,
    FlowPass,
    LintPass,
    SourceModule,
    baseline_keys,
    collect_modules,
    diff_against_baseline,
    get_passes,
    load_baseline,
    pass_names,
    register_pass,
    run_passes,
    save_baseline,
)
from .lint import run_lint
from .sanitizer import (
    LockOrderError,
    ProtocolError,
    SanitizedLock,
    TypestateProxy,
    install_protocol_sanitizer,
    locks_enabled,
    make_lock,
    protocol_enabled,
    wrap_protocol,
)
from .typestate import PROTOCOLS, Protocol, protocol_for_class

__all__ = [
    "CFG",
    "CFGError",
    "CFGNode",
    "Diagnostic",
    "FlowPass",
    "LintPass",
    "LockOrderError",
    "PROTOCOLS",
    "Protocol",
    "ProtocolError",
    "SanitizedLock",
    "SolverDivergence",
    "SourceModule",
    "TypestateProxy",
    "baseline_keys",
    "build_cfg",
    "collect_modules",
    "diff_against_baseline",
    "function_cfgs",
    "get_passes",
    "install_protocol_sanitizer",
    "load_baseline",
    "locks_enabled",
    "make_lock",
    "pass_names",
    "protocol_enabled",
    "protocol_for_class",
    "register_pass",
    "run_lint",
    "run_passes",
    "save_baseline",
    "solve_forward",
    "wrap_protocol",
]
