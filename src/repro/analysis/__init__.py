"""Static analysis + runtime sanitizers for the repo's invariants.

Submodules:

* :mod:`repro.analysis.engine` — AST pass framework, diagnostics,
  registry, committed baseline.
* :mod:`repro.analysis.passes` — dtype-width, metering, kernel-purity
  and determinism passes.
* :mod:`repro.analysis.concurrency` — discarded-result,
  blocking-in-lock and project-wide lock-order passes.
* :mod:`repro.analysis.sanitizer` — opt-in runtime lock-order checker
  (``REPRO_SANITIZE=locks``).
* :mod:`repro.analysis.lint` — the ``repro lint`` CLI.
"""

from .engine import (
    Diagnostic,
    LintPass,
    SourceModule,
    collect_modules,
    diff_against_baseline,
    get_passes,
    load_baseline,
    pass_names,
    register_pass,
    run_passes,
    save_baseline,
)
from .lint import run_lint
from .sanitizer import (
    LockOrderError,
    SanitizedLock,
    locks_enabled,
    make_lock,
)

__all__ = [
    "Diagnostic",
    "LintPass",
    "LockOrderError",
    "SanitizedLock",
    "SourceModule",
    "collect_modules",
    "diff_against_baseline",
    "get_passes",
    "load_baseline",
    "locks_enabled",
    "make_lock",
    "pass_names",
    "register_pass",
    "run_lint",
    "run_passes",
    "save_baseline",
]
