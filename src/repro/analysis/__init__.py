"""Static analysis + runtime sanitizers for the repo's invariants.

Submodules:

* :mod:`repro.analysis.engine` — AST pass framework, diagnostics,
  registry, committed baseline.
* :mod:`repro.analysis.dataflow` — the intraprocedural CFG builder and
  forward worklist solver the flow-sensitive passes run on.
* :mod:`repro.analysis.passes` — dtype-width, metering, kernel-purity
  and determinism passes.
* :mod:`repro.analysis.concurrency` — discarded-result,
  blocking-in-lock and project-wide lock-order passes.
* :mod:`repro.analysis.lifecycle` — flow-sensitive resource-lifecycle
  and exception-safety passes (close/unlink/release on every path).
* :mod:`repro.analysis.typestate` — protocol state tables (data) and
  the flow-sensitive typestate pass over them.
* :mod:`repro.analysis.summaries` — call graph + interprocedural
  per-function communication-effect summaries (the abstract
  interpreter the comm passes run on).
* :mod:`repro.analysis.commgraph` — composes summaries into symbolic
  per-rank sequences and simulates them at world sizes 2–4.
* :mod:`repro.analysis.commcheck` — the ``comm-matching`` /
  ``comm-deadlock`` / ``comm-exchange`` passes over that analysis.
* :mod:`repro.analysis.sanitizer` — opt-in runtime checkers: lock
  order (``REPRO_SANITIZE=locks``), protocol typestate proxies
  (``REPRO_SANITIZE=protocol``) and the schedule-exploration
  deadlock detector (``REPRO_SANITIZE=schedule``).
* :mod:`repro.analysis.lint` — the ``repro lint`` CLI.
"""

from .dataflow import (
    CFG,
    CFGError,
    CFGNode,
    SolverDivergence,
    build_cfg,
    function_cfgs,
    solve_forward,
)
from .engine import (
    Diagnostic,
    FlowPass,
    LintPass,
    SourceModule,
    baseline_keys,
    collect_modules,
    diff_against_baseline,
    get_passes,
    load_baseline,
    pass_names,
    register_pass,
    run_passes,
    save_baseline,
)
from .commcheck import analyze_modules, discover_entries
from .commgraph import CommFinding, EntrySpec, analyze_entry
from .lint import run_lint
from .sanitizer import (
    DeadlockError,
    LockOrderError,
    ProtocolError,
    SanitizedLock,
    ScheduleError,
    ScheduleExplorer,
    TypestateProxy,
    install_protocol_sanitizer,
    install_schedule_sanitizer,
    locks_enabled,
    make_lock,
    protocol_enabled,
    schedule_enabled,
    wrap_protocol,
)
from .summaries import CommEvent, CommInterpreter, ProgramIndex, direct_comm_ops
from .typestate import PROTOCOLS, Protocol, protocol_for_class

__all__ = [
    "CFG",
    "CFGError",
    "CFGNode",
    "CommEvent",
    "CommFinding",
    "CommInterpreter",
    "DeadlockError",
    "Diagnostic",
    "EntrySpec",
    "FlowPass",
    "LintPass",
    "LockOrderError",
    "PROTOCOLS",
    "ProgramIndex",
    "Protocol",
    "ProtocolError",
    "SanitizedLock",
    "ScheduleError",
    "ScheduleExplorer",
    "SolverDivergence",
    "SourceModule",
    "TypestateProxy",
    "analyze_entry",
    "analyze_modules",
    "baseline_keys",
    "build_cfg",
    "collect_modules",
    "diff_against_baseline",
    "direct_comm_ops",
    "discover_entries",
    "function_cfgs",
    "get_passes",
    "install_protocol_sanitizer",
    "install_schedule_sanitizer",
    "load_baseline",
    "locks_enabled",
    "make_lock",
    "pass_names",
    "protocol_enabled",
    "protocol_for_class",
    "register_pass",
    "run_lint",
    "run_passes",
    "save_baseline",
    "schedule_enabled",
    "solve_forward",
    "wrap_protocol",
]
