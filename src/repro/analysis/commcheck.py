"""The three cross-rank communication lint passes.

``comm-matching``, ``comm-deadlock`` and ``comm-exchange`` surface the
:mod:`repro.analysis.commgraph` verification results through the
ordinary engine machinery — registry, suppressions, baseline, every
``--format``.  All three are ``project_wide`` and share one cached
analysis run (keyed by the content hashes of the analyzed modules), so
adding a rule costs nothing at lint time.

Entry points come from two places:

* **defaults** — when the analyzed set contains the real executor /
  transport / trainer modules, their canonical entries are verified:
  ``_run_rank`` under both schedules, ``Endpoint.allreduce`` under
  ring and tree, and both simulated trainers' ``_train_epoch``.  A
  default entry whose module is present but whose function has been
  renamed away is itself a finding — silent loss of verification
  coverage is the failure mode this pass exists to prevent.
* **markers** — a ``comm-entry`` lint marker comment on (or directly
  above) a ``def`` declares a ``LocalTransport.launch``-style worker
  ``(ep, payload)`` as an entry; the violation fixtures under
  ``tests/analysis/comm_fixtures/`` use this, and so can any
  experimental driver.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from .commgraph import CommFinding, EntrySpec, analyze_entry
from .engine import Diagnostic, LintPass, SourceModule, register_pass
from .summaries import ProgramIndex

__all__ = [
    "CommDeadlockPass",
    "CommExchangePass",
    "CommMatchingPass",
    "analyze_modules",
    "discover_entries",
]

_ENTRY_RE = re.compile(r"#\s*repro-lint:\s*comm-entry\b")

#: Default entries: (label, module-path suffix, function, class, kind,
#: config).  Missing suffix -> entry silently skipped (partial lint
#: targets); present suffix + missing function -> finding.
_DEFAULT_ENTRIES: Tuple[Tuple[str, str, str, Optional[str], str, dict], ...] = (
    ("run-rank-synchronous", "repro/dist/executor.py", "_run_rank", None,
     "rank_task", {"schedule": "synchronous"}),
    ("run-rank-pipelined", "repro/dist/executor.py", "_run_rank", None,
     "rank_task", {"schedule": "pipelined"}),
    ("allreduce-ring", "repro/dist/transport.py", "allreduce", "Endpoint",
     "allreduce", {"algorithm": "ring"}),
    ("allreduce-tree", "repro/dist/transport.py", "allreduce", "Endpoint",
     "allreduce", {"algorithm": "tree"}),
    ("trainer-synchronous", "repro/core/trainer.py", "_train_epoch",
     "DistributedTrainer", "single", {}),
    ("trainer-pipelined", "repro/core/pipeline.py", "_train_epoch",
     "PipelinedTrainer", "single", {}),
)


def discover_entries(
    program: ProgramIndex,
) -> Tuple[List[EntrySpec], List[CommFinding]]:
    """Default + marker-declared entry points over the analyzed set."""
    entries: List[EntrySpec] = []
    findings: List[CommFinding] = []
    paths = {m.path for m in program.modules}

    for label, suffix, fname, cls, kind, config in _DEFAULT_ENTRIES:
        module_path = next((p for p in paths if p.endswith(suffix)), None)
        if module_path is None:
            continue
        if cls is not None:
            info = program.lookup_method(cls, fname)
            if info is not None and not info.module.path.endswith(suffix):
                info = None
        else:
            info = program.find_function(fname, suffix)
        if info is None:
            findings.append(CommFinding(
                rule="comm-matching",
                site=(module_path, 1, 0),
                message=(
                    f"expected communication entry point "
                    f"{cls + '.' if cls else ''}{fname} is missing from "
                    "this module — the cross-rank verification it "
                    "anchored no longer runs"
                ),
                hint="restore the function or update _DEFAULT_ENTRIES "
                     "in repro.analysis.commcheck alongside the rename",
            ))
            continue
        entries.append(EntrySpec(name=label, func=info, kind=kind,
                                 config=dict(config)))

    for module in program.modules:
        for lineno, line in enumerate(module.lines, start=1):
            if not _ENTRY_RE.search(line):
                continue
            # Only genuine comments declare entries — a docstring that
            # *mentions* the marker (this module's own does) must not.
            before = line[:_ENTRY_RE.search(line).start()].strip()
            if before and "def " not in before:
                continue
            anchor = module._anchor_line(lineno)
            info = _function_at(program, module, anchor)
            if info is None:
                findings.append(CommFinding(
                    rule="comm-matching",
                    site=(module.path, lineno, 0),
                    message="comm-entry marker does not anchor to a "
                            "function definition",
                    hint="place the marker on (or directly above) the "
                         "def line of a worker(ep, payload) function",
                ))
                continue
            entries.append(EntrySpec(
                name=f"entry:{info.name}", func=info, kind="worker",
            ))
    return entries, findings


def _function_at(program: ProgramIndex, module: SourceModule,
                 lineno: int):
    for info in program.functions.values():
        if info.module is not module:
            continue
        node = info.node
        decorated_from = min(
            [node.lineno] + [d.lineno for d in node.decorator_list]
        )
        if decorated_from <= lineno <= node.body[0].lineno:
            return info
    return None


# ----------------------------------------------------------------------
# Shared, cached analysis
# ----------------------------------------------------------------------
_CACHE: Dict[Tuple[Tuple[str, str], ...], "AnalysisResult"] = {}


class AnalysisResult:
    def __init__(self) -> None:
        self.findings: List[CommFinding] = []
        self.entry_info: List[Dict[str, object]] = []


def analyze_modules(modules: Sequence[SourceModule]) -> AnalysisResult:
    """Run (or fetch) the full comm analysis for this module set."""
    key = tuple(sorted((m.path, m.content_hash) for m in modules))
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    result = AnalysisResult()
    program = ProgramIndex(modules)
    entries, findings = discover_entries(program)
    result.findings.extend(findings)
    for entry in entries:
        entry_findings, info = analyze_entry(program, entry)
        result.findings.extend(entry_findings)
        result.entry_info.append(info)
    _CACHE.clear()  # one live tree at a time is the realistic shape
    _CACHE[key] = result
    return result


# ----------------------------------------------------------------------
# Passes
# ----------------------------------------------------------------------
class _CommPassBase(LintPass):
    project_wide = True

    def run_project(
        self, modules: Sequence[SourceModule]
    ) -> List[Diagnostic]:
        by_path = {m.path: m for m in modules}
        result = analyze_modules(modules)
        diagnostics: List[Diagnostic] = []
        for finding in result.findings:
            if finding.rule != self.rule:
                continue
            path, line, col = finding.site
            module = by_path.get(path)
            diagnostics.append(Diagnostic(
                path=path, line=line, col=col, rule=self.rule,
                message=finding.message, hint=finding.hint,
                line_text=module.line_text(line) if module else "",
            ))
        return diagnostics


class CommMatchingPass(_CommPassBase):
    rule = "comm-matching"
    title = "every message finds a matching recv with the same tag"
    description = (
        "Composes interprocedural comm summaries per rank (world sizes "
        "2-4) and matches sends against receives over FIFO channels; "
        "reports tag disagreements (naming both sites) and messages "
        "no rank ever receives."
    )


class CommDeadlockPass(_CommPassBase):
    rule = "comm-deadlock"
    title = "no blocking-op cycles or rank-divergent collectives"
    description = (
        "Simulates the composed per-rank sequences under rendezvous-"
        "send semantics: wait-for cycles among blocking ops, blocking "
        "on a finished rank, and collectives whose order, tag or "
        "participation differs across ranks are deadlocks."
    )


class CommExchangePass(_CommPassBase):
    rule = "comm-exchange"
    title = "posted exchange handles are always completed"
    description = (
        "Tracks ExchangeHandle values interprocedurally: a handle "
        "posted but never passed to complete_exchange before its rank "
        "returns (e.g. escaping via a helper's return value) leaks its "
        "deferred receives."
    )


register_pass(CommMatchingPass())
register_pass(CommDeadlockPass())
register_pass(CommExchangePass())
