"""Rank composition and the message-matching graph.

:mod:`repro.analysis.summaries` produces one rank's ordered
communication sequence; this module instantiates an entry point for
every rank of world sizes 2–4, enumerates the shared branch-decision
scenarios, and *matches* the sequences against each other:

* every definite ``recv`` must find a message of the same tag at the
  head of its ``(src, dst)`` FIFO channel (the transport's ordering
  guarantee) — a tag disagreement names both the receive and the send
  site;
* blocking operations (rendezvous sends — the MPI-unsafe-send model
  the ``REPRO_SANITIZE=schedule`` runtime mirror also enforces —
  definite recvs, ticket joins, collectives) must never form a
  wait-for cycle, and no rank may block on a rank that already
  finished;
* every rank must reach the same ordered collective ``(tag,
  algorithm)`` sequence — a collective guarded by a rank-conditional
  branch diverges here;
* every posted :class:`~repro.analysis.summaries.HandleVal` must be
  completed before its rank returns.

Indefinite events (unknown peers — data-dependent exchange partners
the static side cannot resolve) auto-advance and excuse would-be
findings that involve them, so imprecision degrades to silence, never
to a false report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .summaries import (
    BudgetExceeded,
    CommEvent,
    CommInterpreter,
    EndpointVal,
    FuncInfo,
    ObjVal,
    ProgramIndex,
    Sym,
    TransportVal,
    Unknown,
    tags_may_match,
)

__all__ = [
    "CommFinding",
    "EntrySpec",
    "RankSequence",
    "analyze_entry",
    "interpret_rank",
]

#: World sizes every multi-rank entry is instantiated for.
DEFAULT_WORLDS = (2, 3, 4)
_SCENARIO_CAP = 8
_SIM_STEP_CAP = 100_000


@dataclass
class EntrySpec:
    """One analyzable entry point.

    ``kind`` selects the calling convention:

    * ``worker`` — a ``LocalTransport.launch`` worker ``(ep, payload)``
      (the ``comm-entry`` lint-marker form);
    * ``rank_task`` — ``_run_rank(ep, task)`` with a schedule in
      ``config``;
    * ``allreduce`` — ``Endpoint.allreduce`` bound to a symbolic tag,
      ``config["algorithm"]`` picking ring or tree;
    * ``single`` — a metering-plane method (the simulated trainers):
      extracted for the catalogue, not rank-matched.
    """

    name: str
    func: FuncInfo
    kind: str = "worker"
    config: Dict[str, object] = field(default_factory=dict)
    worlds: Sequence[int] = DEFAULT_WORLDS


@dataclass
class CommFinding:
    """One cross-rank verification failure, pre-Diagnostic."""

    rule: str  # comm-matching | comm-deadlock | comm-exchange
    site: Tuple[str, int, int]
    message: str
    hint: str = ""


@dataclass
class RankSequence:
    rank: int
    events: List[CommEvent]
    open_handles: List[object]
    partial: bool = False


# ----------------------------------------------------------------------
# Instantiation
# ----------------------------------------------------------------------
def _entry_args(entry: EntrySpec, rank: int, world: int) -> Dict[str, object]:
    ep = EndpointVal("Endpoint", {
        "rank": rank, "num_parts": world,
        "recv_timeout": Unknown("recv_timeout"),
    })
    if entry.kind == "worker":
        params = [a.arg for a in entry.func.node.args.args]
        args: Dict[str, object] = {}
        if params:
            args[params[0]] = ep
        return args
    if entry.kind == "rank_task":
        task = ObjVal("_RankTask", {
            "rank": rank, "num_parts": world,
            "schedule": entry.config.get("schedule", "synchronous"),
            "allreduce_algorithm": entry.config.get(
                "allreduce_algorithm", "ring"
            ),
            "kernel_backend": "numpy",
            "epochs": int(entry.config.get("epochs", 2)),
        })
        return {"ep": ep, "task": task}
    if entry.kind == "allreduce":
        return {
            "self": ep,
            "array": Unknown("array"),
            "tag": Sym("tag"),
            "algorithm": entry.config.get("algorithm", "ring"),
        }
    if entry.kind == "single":
        obj = ObjVal(entry.func.class_name or "object", {
            "comm": TransportVal("Transport", {"num_parts": world}),
            "num_parts": world,
        })
        return {"self": obj}
    raise ValueError(f"unknown entry kind {entry.kind!r}")


def interpret_rank(
    program: ProgramIndex, entry: EntrySpec, rank: int, world: int,
    decisions: Optional[Dict[str, bool]] = None,
) -> Tuple[RankSequence, Dict[str, bool]]:
    """One rank's sequence under one decision scenario; returns the
    sequence plus the decisions actually consulted."""
    interp = CommInterpreter(program, rank, world, decisions)
    partial = False
    try:
        interp.run(entry.func, _entry_args(entry, rank, world))
    except BudgetExceeded:
        partial = True
    seq = RankSequence(
        rank=rank, events=interp.events,
        open_handles=list(interp.open_handles.values()), partial=partial,
    )
    for handle, site in interp.double_completes:
        seq.events.append(CommEvent(
            kind="double-complete", tag=handle.tag, site=site,
            frame=entry.func.qualname,
        ))
    return seq, interp.used_decisions


def _enumerate_scenarios(
    program: ProgramIndex, entry: EntrySpec, world: int,
) -> List[Tuple[Dict[str, bool], List[RankSequence]]]:
    """All decision scenarios (capped): every rank of one scenario
    shares one decision map, so data-dependent branches never fork
    ranks apart."""
    scenarios: List[Tuple[Dict[str, bool], List[RankSequence]]] = []
    frontier: List[Dict[str, bool]] = [{}]
    explored: Set[frozenset] = set()
    while frontier and len(scenarios) < _SCENARIO_CAP:
        decisions = frontier.pop(0)
        key = frozenset(decisions.items())
        if key in explored:
            continue
        explored.add(key)
        sequences: List[RankSequence] = []
        used_all: Dict[str, bool] = {}
        for rank in range(world):
            seq, used = interpret_rank(program, entry, rank, world,
                                       decisions)
            sequences.append(seq)
            used_all.update(used)
        scenarios.append((dict(used_all), sequences))
        for origin, default in used_all.items():
            if origin not in decisions:
                flipped = dict(decisions)
                flipped[origin] = not default
                frontier.append(flipped)
    return scenarios


# ----------------------------------------------------------------------
# Matching simulation
# ----------------------------------------------------------------------
class _Message:
    __slots__ = ("tag", "site", "src", "dst", "event_key")

    def __init__(self, tag, site, src, dst, event_key):
        self.tag = tag
        self.site = site
        self.src = src
        self.dst = dst
        self.event_key = event_key


def _fmt_tag(tag: object) -> str:
    if isinstance(tag, Sym):
        return f"<{tag.name}>"
    if isinstance(tag, Unknown):
        return "<?>"
    return repr(getattr(tag, "prefix", tag))


def _fmt_site(site: Tuple[str, int, int]) -> str:
    return f"{site[0]}:{site[1]}"


class _Simulator:
    """Round-robin execution of the per-rank sequences against FIFO
    channels, under rendezvous-send semantics."""

    def __init__(self, entry: EntrySpec, world: int,
                 sequences: List[RankSequence]) -> None:
        self.entry = entry
        self.world = world
        self.sequences = sequences
        self.pos = [0] * world
        self.channels: Dict[Tuple[int, int], List[_Message]] = {}
        self.consumed: Set[Tuple[int, int]] = set()  # (rank, event index)
        self.findings: List[CommFinding] = []
        #: ranks whose imprecision (indefinite events) excuses their
        #: unmatched traffic, keyed by direction.
        self.wild_send: Dict[int, bool] = {}
        self.wild_recv: Dict[int, bool] = {}

    # -- helpers -------------------------------------------------------
    def _finished(self, rank: int) -> bool:
        return self.pos[rank] >= len(self.sequences[rank].events)

    def _current(self, rank: int) -> Optional[CommEvent]:
        if self._finished(rank):
            return None
        return self.sequences[rank].events[self.pos[rank]]

    def _valid_peer(self, peer: object, rank: int) -> bool:
        return (isinstance(peer, int) and 0 <= peer < self.world
                and peer != rank)

    def _deposit(self, rank: int, event: CommEvent) -> None:
        key = (rank, self.pos[rank])
        self.channels.setdefault((rank, event.peer), []).append(
            _Message(event.tag, event.site, rank, event.peer, key)
        )

    # -- one step ------------------------------------------------------
    def _try_advance(self, rank: int) -> bool:
        event = self._current(rank)
        if event is None:
            return False
        kind = event.kind

        if kind in ("post", "complete", "meter", "double-complete"):
            self.pos[rank] += 1
            return True

        if kind == "isend":
            if not event.definite or not self._valid_peer(event.peer, rank):
                self.wild_send[rank] = True
            else:
                self._deposit(rank, event)
            self.pos[rank] += 1
            return True

        if kind == "send":
            if not event.definite or not self._valid_peer(event.peer, rank):
                self.wild_send[rank] = True
                self.pos[rank] += 1
                return True
            key = (rank, self.pos[rank])
            queue = self.channels.setdefault((rank, event.peer), [])
            deposited = False
            if not any(m.event_key == key for m in queue) \
                    and key not in self.consumed:
                self._deposit(rank, event)
                deposited = True
            # Rendezvous: the send completes when the peer consumed it.
            if key in self.consumed:
                self.pos[rank] += 1
                return True
            # The initial deposit is itself progress — the peer's recv
            # may already have passed this sweep and will match next
            # round; reporting stuck here would be a false deadlock.
            return deposited

        if kind == "join":
            if event.link is None:
                self.pos[rank] += 1
                return True
            linked = self.sequences[rank].events[event.link]
            if not linked.definite:
                self.pos[rank] += 1
                return True
            if (rank, event.link) in self.consumed:
                self.pos[rank] += 1
                return True
            return False

        if kind == "recv":
            if not event.definite or not self._valid_peer(event.peer, rank):
                self.wild_recv[rank] = True
                self.pos[rank] += 1
                return True
            queue = self.channels.get((event.peer, rank), [])
            if not queue:
                return False
            message = queue[0]
            if not tags_may_match(message.tag, event.tag):
                self.findings.append(CommFinding(
                    rule="comm-matching",
                    site=event.site,
                    message=(
                        f"[world={self.world}] rank {rank} receives tag "
                        f"{_fmt_tag(event.tag)} from rank {event.peer} "
                        f"here, but the matching message (sent at "
                        f"{_fmt_site(message.site)}) carries tag "
                        f"{_fmt_tag(message.tag)}"
                    ),
                    hint="make the sender and receiver agree on one tag "
                         "constant (the transport raises TransportError "
                         "on this at runtime)",
                ))
                # Consume anyway so one mismatch reports once.
            queue.pop(0)
            self.consumed.add(message.event_key)
            self.pos[rank] += 1
            return True

        if kind == "coll":
            return self._advance_collectives()

        self.pos[rank] += 1
        return True

    def _advance_collectives(self) -> bool:
        """A collective is a barrier: advance only when every
        unfinished rank sits at a compatible collective."""
        waiting: List[Tuple[int, CommEvent]] = []
        for rank in range(self.world):
            event = self._current(rank)
            if event is None:
                continue
            if event.kind != "coll":
                return False
            waiting.append((rank, event))
        if not waiting:
            return False
        first = waiting[0][1]
        for rank, event in waiting[1:]:
            if (not tags_may_match(event.tag, first.tag)
                    or event.alg != first.alg):
                self.findings.append(CommFinding(
                    rule="comm-deadlock",
                    site=event.site,
                    message=(
                        f"[world={self.world}] rank {rank} enters a "
                        f"collective (tag {_fmt_tag(event.tag)}, "
                        f"{event.alg}) here while rank {waiting[0][0]} "
                        f"is at a different collective (tag "
                        f"{_fmt_tag(first.tag)}, {first.alg}, "
                        f"{_fmt_site(first.site)}) — divergent "
                        "collective ordering"
                    ),
                    hint="collectives must be reached in the same order "
                         "with the same tag on every rank",
                ))
                for r, _ in waiting:
                    self.pos[r] += 1
                return True
        finished = [r for r in range(self.world) if self._finished(r)]
        if finished:
            rank, event = waiting[0]
            self.findings.append(CommFinding(
                rule="comm-deadlock",
                site=event.site,
                message=(
                    f"[world={self.world}] rank {rank} waits in a "
                    f"collective (tag {_fmt_tag(event.tag)}) that rank"
                    f"{'s' if len(finished) > 1 else ''} "
                    f"{', '.join(map(str, finished))} never enter"
                    f"{'' if len(finished) > 1 else 's'} — "
                    "rank-divergent collective participation"
                ),
                hint="hoist the collective out of the rank-conditional "
                     "branch so every rank participates",
            ))
            for r, _ in waiting:
                self.pos[r] += 1
            return True
        for rank, _ in waiting:
            self.pos[rank] += 1
        return True

    # -- stuck analysis ------------------------------------------------
    def _excuse_blocked(self) -> bool:
        """Fabricate satisfaction for a blocked op whose counterpart is
        hidden behind another rank's imprecision."""
        for rank in range(self.world):
            event = self._current(rank)
            if event is None:
                continue
            if event.kind == "recv" and isinstance(event.peer, int):
                if self.wild_send.get(event.peer):
                    self.pos[rank] += 1
                    return True
            if event.kind == "send" and isinstance(event.peer, int):
                if self.wild_recv.get(event.peer):
                    key = (rank, self.pos[rank])
                    queue = self.channels.get((rank, event.peer), [])
                    self.channels[(rank, event.peer)] = [
                        m for m in queue if m.event_key != key
                    ]
                    self.consumed.add(key)
                    self.pos[rank] += 1
                    return True
            if event.kind == "join" and event.link is not None:
                linked = self.sequences[rank].events[event.link]
                if isinstance(linked.peer, int) \
                        and self.wild_recv.get(linked.peer):
                    self.consumed.add((rank, event.link))
                    self.pos[rank] += 1
                    return True
        return False

    def _report_stuck(self) -> None:
        blocked: Dict[int, Tuple[CommEvent, int]] = {}
        for rank in range(self.world):
            event = self._current(rank)
            if event is None:
                continue
            waits_on: Optional[int] = None
            if event.kind in ("recv",) and isinstance(event.peer, int):
                waits_on = event.peer
            elif event.kind == "send" and isinstance(event.peer, int):
                waits_on = event.peer
            elif event.kind == "join" and event.link is not None:
                linked = self.sequences[rank].events[event.link]
                if isinstance(linked.peer, int):
                    waits_on = linked.peer
            elif event.kind == "coll":
                others = [r for r in range(self.world)
                          if r != rank and not self._finished(r)]
                waits_on = others[0] if others else None
            if waits_on is not None:
                blocked[rank] = (event, waits_on)
        if not blocked:
            return
        # Wait-on-finished first: the simplest diagnosis wins.
        for rank, (event, target) in sorted(blocked.items()):
            if self._finished(target) and target not in blocked:
                verb = {"recv": "receive from", "send": "send to",
                        "join": "complete a send to",
                        "coll": "rendezvous with"}.get(event.kind, "wait on")
                self.findings.append(CommFinding(
                    rule="comm-deadlock",
                    site=event.site,
                    message=(
                        f"[world={self.world}] rank {rank} blocks here to "
                        f"{verb} rank {target}, which has already finished "
                        f"— this {event.kind} (tag {_fmt_tag(event.tag)}) "
                        "can never complete"
                    ),
                    hint="every blocking op needs a matching counterpart "
                         "on the peer rank's sequence",
                ))
                return
        # Otherwise: find a cycle in the wait-for graph.
        cycle = _find_cycle({r: t for r, (_, t) in blocked.items()})
        if cycle:
            parts = []
            for rank in cycle:
                event, target = blocked[rank]
                parts.append(
                    f"rank {rank} {event.kind}"
                    f"(tag {_fmt_tag(event.tag)})->rank {target} at "
                    f"{_fmt_site(event.site)}"
                )
            first_event = blocked[cycle[0]][0]
            self.findings.append(CommFinding(
                rule="comm-deadlock",
                site=first_event.site,
                message=(
                    f"[world={self.world}] blocking-operation cycle: "
                    + "; ".join(parts)
                ),
                hint="break the cycle by making one direction "
                     "non-blocking (isend/post_exchange) or by "
                     "reordering so some rank receives first",
            ))
            return
        event, target = blocked[min(blocked)]
        self.findings.append(CommFinding(
            rule="comm-deadlock",
            site=event.site,
            message=(
                f"[world={self.world}] rank {min(blocked)} blocks here "
                f"({event.kind}, tag {_fmt_tag(event.tag)}) waiting on "
                f"rank {target} and no rank can make progress"
            ),
        ))

    # -- run -----------------------------------------------------------
    def run(self) -> List[CommFinding]:
        steps = 0
        while steps < _SIM_STEP_CAP:
            steps += 1
            if all(self._finished(r) for r in range(self.world)):
                break
            progressed = False
            for rank in range(self.world):
                if self._try_advance(rank):
                    progressed = True
            if not progressed:
                if self._excuse_blocked():
                    continue
                self._report_stuck()
                return self.findings
        # Leftover definite messages were sent but never received.
        for (src, dst), queue in sorted(self.channels.items()):
            for message in queue:
                if message.event_key in self.consumed:
                    continue
                if not isinstance(dst, int) or self.wild_recv.get(dst):
                    continue
                self.findings.append(CommFinding(
                    rule="comm-matching",
                    site=message.site,
                    message=(
                        f"[world={self.world}] message (tag "
                        f"{_fmt_tag(message.tag)}) sent here from rank "
                        f"{src} to rank {dst} is never received — rank "
                        f"{dst}'s sequence has no matching recv"
                    ),
                    hint="add the matching recv on the destination rank "
                         "or drop the send",
                ))
        return self.findings


def _find_cycle(edges: Dict[int, int]) -> Optional[List[int]]:
    for start in sorted(edges):
        seen: List[int] = []
        node = start
        while node in edges and node not in seen:
            seen.append(node)
            node = edges[node]
        if node in seen:
            return seen[seen.index(node):]
    return None


# ----------------------------------------------------------------------
# Per-entry analysis
# ----------------------------------------------------------------------
def _collective_divergence(
    world: int, sequences: List[RankSequence]
) -> List[CommFinding]:
    """Pre-sim check: the ordered collective profile must be identical
    on every rank (same tags, same algorithms, same count)."""
    profiles = [
        [e for e in seq.events if e.kind == "coll"] for seq in sequences
    ]
    base = profiles[0]
    for rank, profile in enumerate(profiles[1:], start=1):
        limit = max(len(base), len(profile))
        for i in range(limit):
            a = base[i] if i < len(base) else None
            b = profile[i] if i < len(profile) else None
            if a is not None and b is not None:
                if tags_may_match(a.tag, b.tag) and a.alg == b.alg:
                    continue
                site, other = b.site, a
            else:
                present = a if a is not None else b
                missing_rank = rank if a is not None else 0
                assert present is not None
                return [CommFinding(
                    rule="comm-deadlock",
                    site=present.site,
                    message=(
                        f"[world={world}] collective #{i + 1} (tag "
                        f"{_fmt_tag(present.tag)}, {present.alg}) here is "
                        f"reached by rank "
                        f"{0 if a is not None else rank} but never by "
                        f"rank {missing_rank} — rank-divergent "
                        "collective participation"
                    ),
                    hint="hoist the collective out of the "
                         "rank-conditional branch so every rank "
                         "participates",
                )]
            return [CommFinding(
                rule="comm-deadlock",
                site=site,
                message=(
                    f"[world={world}] collective #{i + 1} diverges "
                    f"across ranks: rank 0 runs (tag "
                    f"{_fmt_tag(other.tag)}, {other.alg}) at "
                    f"{_fmt_site(other.site)}, rank {rank} runs (tag "
                    f"{_fmt_tag(b.tag)}, {b.alg}) here"
                ),
                hint="collectives must be reached in the same order "
                     "with the same tag and algorithm on every rank",
            )]
    return []


def _handle_leaks(sequences: List[RankSequence]) -> List[CommFinding]:
    findings: List[CommFinding] = []
    reported: Set[Tuple[str, int]] = set()
    for seq in sequences:
        for handle in seq.open_handles:
            key = (handle.site[0], handle.site[1])
            if key in reported:
                continue
            reported.add(key)
            findings.append(CommFinding(
                rule="comm-exchange",
                site=handle.site,
                message=(
                    f"exchange handle (tag {_fmt_tag(handle.tag)}) posted "
                    "here is never completed on any path before the rank "
                    "returns — its deferred receives are dropped and the "
                    "peers' sends are orphaned"
                ),
                hint="pass the handle to complete_exchange on every path "
                     "(including the one that returns it to a caller "
                     "that drops it)",
            ))
        for event in seq.events:
            if event.kind == "double-complete":
                key = (event.site[0], event.site[1])
                if key in reported:
                    continue
                reported.add(key)
                findings.append(CommFinding(
                    rule="comm-exchange",
                    site=event.site,
                    message=(
                        f"exchange handle (tag {_fmt_tag(event.tag)}) is "
                        "completed twice — the second complete re-drains "
                        "receives that were already consumed"
                    ),
                    hint="complete each posted handle exactly once",
                ))
    return findings


def analyze_entry(
    program: ProgramIndex, entry: EntrySpec,
) -> Tuple[List[CommFinding], Dict[str, object]]:
    """Verify one entry point across its world sizes and decision
    scenarios.  Returns deduplicated findings plus an ``info`` dict
    (event counts per world — the proof the analysis saw real traffic,
    which the acceptance tests assert on)."""
    findings: List[CommFinding] = []
    info: Dict[str, object] = {"entry": entry.name, "worlds": {},
                               "partial": False}
    if entry.kind == "single":
        seq, _ = interpret_rank(program, entry, 0, 3)
        info["worlds"][3] = {
            "events": len(seq.events),
            "scenarios": 1,
        }
        info["partial"] = seq.partial
        return findings, info
    seen: Set[Tuple[str, str, int]] = set()
    for world in entry.worlds:
        scenarios = _enumerate_scenarios(program, entry, world)
        event_total = 0
        for _decisions, sequences in scenarios:
            event_total = max(
                event_total, sum(len(s.events) for s in sequences)
            )
            if any(seq.partial for seq in sequences):
                info["partial"] = True
                continue  # a truncated sequence must not report
            scenario_findings = _collective_divergence(world, sequences)
            if not scenario_findings:
                scenario_findings = _Simulator(
                    entry, world, sequences
                ).run()
            scenario_findings.extend(_handle_leaks(sequences))
            for finding in scenario_findings:
                key = (finding.rule, finding.site[0], finding.site[1])
                if key in seen:
                    continue
                seen.add(key)
                findings.append(finding)
        info["worlds"][world] = {
            "events": event_total,
            "scenarios": len(scenarios),
        }
    return findings, info
