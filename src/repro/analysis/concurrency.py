"""Concurrency passes: discarded timed waits, lock bodies, lock order.

``transport.py`` is ~1.6k lines of locks, condvars and sender threads,
and its one shipped concurrency bug (PR 4's discarded
``thread.join(timeout)``) had exactly the shape these passes check for:

``discarded-result``
    ``Event.wait(timeout)`` and ``poll(timeout)`` *return* whether they
    succeeded; ``Thread.join(timeout)`` returns nothing, so a timed
    join proves nothing unless ``is_alive()`` is consulted afterwards.
    A timed blocking call whose outcome is dropped is a hang silently
    reclassified as success.

``blocking-in-lock``
    A potentially-blocking call inside a ``with <lock>:`` body stalls
    every thread contending for that lock for the full block duration.
    Where that is the *point* (serialising two threads on one pipe with
    a bounded backstop poll), waive the whole block with
    ``# repro-lint: ignore[blocking-in-lock]`` on the ``with`` line and
    say why in the comment.

``lock-order``
    Statically extracts the lock-acquisition nesting graph (``with A:
    with B:`` ⇒ edge A→B, per function, across all linted files) and
    reports cycles — the AB/BA shape that deadlocks the moment two
    threads interleave.  Lock identity is the normalised source text of
    the context expression with subscripts wildcarded, so two elements
    of one lock table (``locks[i]`` / ``locks[j]``) count as the same
    lock *class*: nesting a class inside itself is an inversion waiting
    for the right pair of indices.  The runtime mirror of this pass is
    :mod:`repro.analysis.sanitizer`, which checks observed per-thread
    acquisition order on live instances.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Set, Tuple

from .engine import Diagnostic, LintPass, SourceModule, register_pass

__all__ = [
    "DiscardedResultPass",
    "BlockingInLockPass",
    "LockOrderPass",
    "extract_lock_edges",
]

_LOCKISH_RE = re.compile(r"lock", re.IGNORECASE)
_SUBSCRIPT_RE = re.compile(r"\[[^\]]*\]")


def _lock_key(text: str) -> str:
    """Normalised lock identity: whitespace stripped, subscripts
    wildcarded (two elements of one lock table are one lock class)."""
    return _SUBSCRIPT_RE.sub("[*]", re.sub(r"\s+", "", text))


class DiscardedResultPass(LintPass):
    rule = "discarded-result"
    title = "timed blocking calls prove their outcome"
    description = (
        "Event.wait(timeout)/poll(timeout) results must be consumed, and "
        "a bare Thread.join(timeout) needs an is_alive() check"
    )

    _HINT_WAIT = (
        "consume the boolean (e.g. 'if not x.wait(t): raise') — a timed "
        "wait that may have timed out is not a wait"
    )
    _HINT_JOIN = (
        "check is_alive() after a timed join (or raise through a "
        "completion handle) — join(timeout) returns None either way"
    )

    def run(self, module: SourceModule) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        self._visit(module, module.tree, out, enclosing_text="")
        return out

    def _visit(self, module, node, out, enclosing_text):
        for child in ast.iter_child_nodes(node):
            text = enclosing_text
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                text = module.segment(child)
            if isinstance(child, ast.Expr) and isinstance(child.value, ast.Call):
                call = child.value
                func = call.func
                timed = bool(call.args or call.keywords)
                if isinstance(func, ast.Attribute) and timed:
                    if func.attr in ("wait", "poll"):
                        out.append(self.diag(
                            module, child,
                            f"result of timed .{func.attr}() discarded",
                            self._HINT_WAIT,
                        ))
                    elif func.attr == "join" and "is_alive" not in text:
                        out.append(self.diag(
                            module, child,
                            "timed .join() with no is_alive() check in the "
                            "enclosing function — a hang is silently "
                            "reclassified as completion",
                            self._HINT_JOIN,
                        ))
            self._visit(module, child, out, text)


class BlockingInLockPass(LintPass):
    rule = "blocking-in-lock"
    title = "no blocking calls while holding a shared lock"
    description = (
        "recv/join/acquire/get/wait inside a 'with <lock>:' body stall "
        "every contender; waive deliberate designs on the with line"
    )

    _BLOCKING = (
        "recv", "recv_bytes", "get", "join", "acquire", "wait", "poll",
        "send", "send_bytes",
    )
    _HINT = (
        "move the blocking call outside the lock body, or waive the "
        "block with '# repro-lint: ignore[blocking-in-lock]' on the "
        "'with' line plus the reason the stall is bounded"
    )

    def run(self, module: SourceModule) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.With):
                continue
            lockish = [
                item for item in node.items
                if _LOCKISH_RE.search(module.segment(item.context_expr))
            ]
            if not lockish:
                continue
            # Block-scoped waiver: an ignore on the `with` line covers
            # the whole body (one justification for one design).
            if module.is_suppressed(node.lineno, self.rule):
                continue
            for body_stmt in node.body:
                for sub in ast.walk(body_stmt):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in self._BLOCKING
                    ):
                        receiver = module.segment(sub.func.value)
                        out.append(self.diag(
                            module, sub,
                            f"potentially blocking {receiver}."
                            f"{sub.func.attr}() while holding "
                            f"{module.segment(lockish[0].context_expr)}",
                            self._HINT,
                        ))
        return out


def extract_lock_edges(
    module: SourceModule,
) -> List[Tuple[str, str, ast.With]]:
    """(outer, inner, inner-with-node) for every nested lock pair.

    Nesting is tracked per function body, one level of ``with`` at a
    time; edges are emitted for *every* held outer lock, so ``with a:
    with b: with c:`` yields a→b, a→c and b→c.
    """
    edges: List[Tuple[str, str, ast.With]] = []

    def visit(node, held: List[str]):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visit(child, [])  # fresh stack per function
                continue
            if isinstance(child, ast.With):
                acquired = [
                    _lock_key(module.segment(item.context_expr))
                    for item in child.items
                    if _LOCKISH_RE.search(module.segment(item.context_expr))
                ]
                for inner in acquired:
                    for outer in held:
                        edges.append((outer, inner, child))
                # Multiple lockish items in one `with` acquire in order.
                for i, inner in enumerate(acquired):
                    for outer in acquired[:i]:
                        edges.append((outer, inner, child))
                visit(child, held + acquired)
                continue
            visit(child, held)

    visit(module.tree, [])
    return edges


class LockOrderPass(LintPass):
    rule = "lock-order"
    title = "the static lock-acquisition graph stays acyclic"
    description = (
        "nested 'with lock:' statements define an order, project-wide; "
        "a cycle (AB/BA) deadlocks the first time two threads interleave"
    )
    project_wide = True  # the graph spans transport.py AND executor.py

    _HINT = (
        "impose one global acquisition order (acquire the cycle's locks "
        "in a fixed sequence everywhere) or collapse to a single lock; "
        "run the shm suites under REPRO_SANITIZE=locks to catch the "
        "inversion at runtime"
    )

    def run_project(self, modules) -> List[Diagnostic]:
        graph: Dict[str, Set[str]] = {}
        sites: Dict[Tuple[str, str], Tuple[SourceModule, ast.With]] = {}
        for module in modules:
            for outer, inner, node in extract_lock_edges(module):
                graph.setdefault(outer, set()).add(inner)
                sites.setdefault((outer, inner), (module, node))

        def reaches(src: str, dst: str, seen: Set[str]) -> bool:
            if src == dst:
                return True
            seen.add(src)
            return any(
                nxt not in seen and reaches(nxt, dst, seen)
                for nxt in graph.get(src, ())
            )

        out: List[Diagnostic] = []
        reported: Set[Tuple[str, str]] = set()
        for (outer, inner), (module, node) in sorted(
            sites.items(), key=lambda kv: (kv[1][0].path, kv[1][1].lineno)
        ):
            if (inner, outer) in reported:
                continue
            if outer == inner:
                out.append(self.diag(
                    module, node,
                    f"lock class {outer!r} nested inside itself — an "
                    "inversion for the right pair of instances",
                    self._HINT,
                ))
                reported.add((outer, inner))
            elif reaches(inner, outer, set()):
                other = sites[(inner, outer)]
                out.append(self.diag(
                    module, node,
                    f"lock-order cycle: {outer!r} → {inner!r} here, but "
                    f"{inner!r} → … → {outer!r} (see "
                    f"{other[0].path}:{other[1].lineno})",
                    self._HINT,
                ))
                reported.add((outer, inner))
        return out


register_pass(DiscardedResultPass())
register_pass(BlockingInLockPass())
register_pass(LockOrderPass())
