"""Intraprocedural CFG + forward dataflow solver over Python ``ast``.

PR 8's passes are pattern matchers: they can say "this call looks
wrong" but not "this resource never reaches ``close()`` on the path
where the recv raises".  This module adds the missing half — a small
control-flow graph builder over function bodies and a generic forward
worklist solver — so flow-sensitive passes (:mod:`.lifecycle`,
:mod:`.typestate`) can reason about *paths*, including the exceptional
ones the elastic-training rewrite will mint by the dozen.

Design notes (the approximations are deliberate and documented):

* **One node per statement.**  Compound statements (``if`` / ``while``
  / ``for`` / ``with`` / ``try``) contribute a *header* node holding
  the statement object — transfer functions must only interpret the
  header part (the test, the iterator, the context items), never walk
  into the body, which has its own nodes.
* **Exception edges are conservative.**  Any statement that contains a
  call, attribute access, subscript, binary op or comparison gets an
  ``"exception"`` edge to the innermost handler/finally (or the exit).
  The edge carries the *pre-effect* state: an assignment that raises
  never bound its target.
* **``finally`` is a single shared subgraph.**  Both the normal and
  the exceptional path flow through it; its tail re-raises (an
  ``"exception"`` edge to the outer targets) and, when a ``return`` /
  ``break`` / ``continue`` escaped into it, also jumps on to that
  escape's real target.  This merges states across entry reasons —
  a standard over-approximation that adds spurious paths but never
  hides the finally body's effects (the pattern that matters:
  ``try: ... finally: x.close()`` is *clean*).
* **``with`` is modelled as try/finally**: a synthetic ``with-exit``
  node intercepts every exceptional / escaping edge out of the body,
  so a pass can apply ``__exit__`` effects (release the lock, close
  the context) on *all* outgoing paths.
* **Dead code is skipped.**  Statements after a ``return`` / ``raise``
  / ``break`` are unreachable and get no nodes, which is what makes
  "every node reachable from entry" an invariant rather than a hope.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

__all__ = [
    "CFG",
    "CFGError",
    "CFGNode",
    "SolverDivergence",
    "build_cfg",
    "dotted_name",
    "escaping_loads",
    "function_cfgs",
    "header_roots",
    "solve_forward",
]

#: Edge kinds. Passes generally only distinguish "exception" from the
#: rest; "true"/"false" exist so branch-sensitive passes can be added
#: without rebuilding the graph format.
EDGE_KINDS = ("normal", "true", "false", "exception")


class CFGError(ValueError):
    """The graph violates a structural invariant (builder bug)."""


class SolverDivergence(RuntimeError):
    """The worklist solver exceeded its step budget (non-monotone
    transfer or an infinite-height lattice)."""


@dataclass
class CFGNode:
    """One CFG node: a statement (or a synthetic marker) plus out-edges.

    Kinds: ``entry`` / ``exit`` (synthetic, one each), ``stmt`` (a
    statement header — ``stmt`` holds the ast node), ``with-exit``
    (``__exit__`` of the ``With`` in ``stmt``), ``finally`` (entry
    marker of a finally subgraph, ``stmt`` holds the ``Try``),
    ``except`` (``stmt`` holds the ``ast.ExceptHandler``) and ``join``
    (an empty merge point, e.g. a loop exit).
    """

    uid: int
    kind: str
    stmt: Optional[ast.AST] = None
    succs: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def lineno(self) -> int:
        return getattr(self.stmt, "lineno", 0)


@dataclass
class CFG:
    """A function's control-flow graph (single entry, single exit)."""

    name: str
    lineno: int
    entry: int
    exit: int
    nodes: Dict[int, CFGNode]

    def node(self, uid: int) -> CFGNode:
        return self.nodes[uid]

    def preds(self) -> Dict[int, List[Tuple[int, str]]]:
        """uid -> list of (predecessor uid, edge kind)."""
        incoming: Dict[int, List[Tuple[int, str]]] = {u: [] for u in self.nodes}
        for node in self.nodes.values():
            for succ, kind in node.succs:
                incoming[succ].append((node.uid, kind))
        return incoming

    def reachable(self) -> set:
        seen = {self.entry}
        stack = [self.entry]
        while stack:
            for succ, _kind in self.nodes[stack.pop()].succs:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    def validate(self) -> None:
        """Raise :class:`CFGError` on any structural violation."""
        entries = [n for n in self.nodes.values() if n.kind == "entry"]
        if len(entries) != 1 or entries[0].uid != self.entry:
            raise CFGError(f"{self.name}: expected exactly one entry node")
        if self.nodes[self.exit].succs:
            raise CFGError(f"{self.name}: exit node has successors")
        for node in self.nodes.values():
            for succ, kind in node.succs:
                if succ not in self.nodes:
                    raise CFGError(f"{self.name}: edge to unknown node {succ}")
                if kind not in EDGE_KINDS:
                    raise CFGError(f"{self.name}: unknown edge kind {kind!r}")
            if node.kind != "exit" and not node.succs:
                raise CFGError(
                    f"{self.name}: dangling node {node.uid} ({node.kind})"
                )
        incoming = self.preds()  # edges verified above, so this is total
        if incoming[self.entry]:
            raise CFGError(f"{self.name}: entry node has predecessors")
        unreachable = set(self.nodes) - self.reachable()
        if unreachable:
            raise CFGError(
                f"{self.name}: unreachable nodes {sorted(unreachable)}"
            )


# ----------------------------------------------------------------------
# Builder
# ----------------------------------------------------------------------
#: Statement parts that can plausibly raise.  NameError-on-load and
#: MemoryError-anywhere are deliberately out of the model: treating
#: *every* statement as raising would flag every unprotected region.
_RAISING_EXPRS = (
    ast.Call, ast.Attribute, ast.Subscript, ast.BinOp, ast.Compare,
    ast.Await, ast.Yield, ast.YieldFrom,
)


def _can_raise(node: ast.AST) -> bool:
    if isinstance(node, (ast.Raise, ast.Assert, ast.AugAssign, ast.Delete)):
        return True
    return any(isinstance(n, _RAISING_EXPRS) for n in ast.walk(node))


@dataclass(frozen=True)
class _Escape:
    """Landing node of an escaping jump (return/break/continue), plus a
    notification hook so an enclosing finally/with learns it must
    forward the jump from its tail once built."""

    uid: int
    notify: Callable[[], None] = lambda: None


@dataclass(frozen=True)
class _Ctx:
    exc_targets: Tuple[int, ...]
    return_tgt: _Escape
    break_tgt: Optional[_Escape] = None
    continue_tgt: Optional[_Escape] = None


_Frontier = List[Tuple[int, str]]  # dangling (source uid, edge kind)


class _Builder:
    def __init__(self) -> None:
        self.nodes: Dict[int, CFGNode] = {}
        self._next_uid = 0

    def _new(self, kind: str, stmt: Optional[ast.AST] = None) -> CFGNode:
        node = CFGNode(self._next_uid, kind, stmt)
        self.nodes[self._next_uid] = node
        self._next_uid += 1
        return node

    def _connect(self, frontier: _Frontier, target: int) -> None:
        for uid, kind in frontier:
            self.nodes[uid].succs.append((target, kind))

    def _exc_edges(self, node: CFGNode, ctx: _Ctx) -> None:
        for target in ctx.exc_targets:
            node.succs.append((target, "exception"))

    # ------------------------------------------------------------------
    def build(self, func: ast.AST) -> CFG:
        entry = self._new("entry")
        exit_node = self._new("exit")
        ctx = _Ctx(exc_targets=(exit_node.uid,),
                   return_tgt=_Escape(exit_node.uid))
        tail = self._stmts(func.body, [(entry.uid, "normal")], ctx)
        self._connect(tail, exit_node.uid)
        for node in self.nodes.values():  # drop duplicate edges
            node.succs = list(dict.fromkeys(node.succs))
        return CFG(name=getattr(func, "name", "<module>"),
                   lineno=getattr(func, "lineno", 0),
                   entry=entry.uid, exit=exit_node.uid, nodes=self.nodes)

    def _stmts(self, stmts: Sequence[ast.stmt], frontier: _Frontier,
               ctx: _Ctx) -> _Frontier:
        for stmt in stmts:
            if not frontier:
                break  # dead code after return/raise/break — no nodes
            frontier = self._stmt(stmt, frontier, ctx)
        return frontier

    def _stmt(self, stmt: ast.stmt, frontier: _Frontier,
              ctx: _Ctx) -> _Frontier:
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier, ctx)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, frontier, ctx)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, frontier, ctx)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier, ctx)
        if isinstance(stmt, ast.Return):
            node = self._new("stmt", stmt)
            self._connect(frontier, node.uid)
            if stmt.value is not None and _can_raise(stmt.value):
                self._exc_edges(node, ctx)
            node.succs.append((ctx.return_tgt.uid, "normal"))
            ctx.return_tgt.notify()
            return []
        if isinstance(stmt, ast.Raise):
            node = self._new("stmt", stmt)
            self._connect(frontier, node.uid)
            self._exc_edges(node, ctx)
            return []
        if isinstance(stmt, ast.Break):
            node = self._new("stmt", stmt)
            self._connect(frontier, node.uid)
            node.succs.append((ctx.break_tgt.uid, "normal"))
            ctx.break_tgt.notify()
            return []
        if isinstance(stmt, ast.Continue):
            node = self._new("stmt", stmt)
            self._connect(frontier, node.uid)
            node.succs.append((ctx.continue_tgt.uid, "normal"))
            ctx.continue_tgt.notify()
            return []
        # Simple statement (incl. nested def/class, which are opaque).
        node = self._new("stmt", stmt)
        self._connect(frontier, node.uid)
        if _can_raise(stmt):
            self._exc_edges(node, ctx)
        return [(node.uid, "normal")]

    def _if(self, stmt: ast.If, frontier: _Frontier, ctx: _Ctx) -> _Frontier:
        head = self._new("stmt", stmt)
        self._connect(frontier, head.uid)
        if _can_raise(stmt.test):
            self._exc_edges(head, ctx)
        body_tail = self._stmts(stmt.body, [(head.uid, "true")], ctx)
        if stmt.orelse:
            else_tail = self._stmts(stmt.orelse, [(head.uid, "false")], ctx)
        else:
            else_tail = [(head.uid, "false")]
        return body_tail + else_tail

    def _loop(self, stmt, frontier: _Frontier, ctx: _Ctx) -> _Frontier:
        head = self._new("stmt", stmt)
        self._connect(frontier, head.uid)
        raising_part = stmt.test if isinstance(stmt, ast.While) else stmt.iter
        if _can_raise(raising_part):
            self._exc_edges(head, ctx)
        loop_exit = self._new("join")
        body_ctx = replace(ctx, break_tgt=_Escape(loop_exit.uid),
                           continue_tgt=_Escape(head.uid))
        body_tail = self._stmts(stmt.body, [(head.uid, "true")], body_ctx)
        self._connect(body_tail, head.uid)  # back edge
        if stmt.orelse:
            else_tail = self._stmts(stmt.orelse, [(head.uid, "false")], ctx)
            self._connect(else_tail, loop_exit.uid)
        else:
            self._connect([(head.uid, "false")], loop_exit.uid)
        if not any(loop_exit.uid == succ
                   for node in self.nodes.values()
                   for succ, _kind in node.succs):
            # No normal loop exit and no break: the join is unreachable
            # (e.g. ``while c: ... else: return``) — drop it and treat
            # whatever follows the loop as dead code.
            del self.nodes[loop_exit.uid]
            return []
        return [(loop_exit.uid, "normal")]

    def _with(self, stmt, frontier: _Frontier, ctx: _Ctx) -> _Frontier:
        head = self._new("stmt", stmt)  # items eval + __enter__ + binding
        self._connect(frontier, head.uid)
        self._exc_edges(head, ctx)  # __enter__ itself may raise
        w_exit = self._new("with-exit", stmt)
        # Pending exception re-raises after __exit__ runs.
        for target in ctx.exc_targets:
            w_exit.succs.append((target, "exception"))
        pending: Dict[str, bool] = {}
        body_ctx = _Ctx(
            exc_targets=(w_exit.uid,),
            return_tgt=self._detour(ctx.return_tgt, w_exit, "return", pending),
            break_tgt=self._detour(ctx.break_tgt, w_exit, "break", pending),
            continue_tgt=self._detour(ctx.continue_tgt, w_exit, "continue",
                                      pending),
        )
        body_tail = self._stmts(stmt.body, [(head.uid, "normal")], body_ctx)
        self._connect(body_tail, w_exit.uid)
        self._resolve_detours([(w_exit.uid, "normal")], ctx, pending)
        return [(w_exit.uid, "normal")]

    @staticmethod
    def _is_catch_all_type(node: Optional[ast.expr]) -> bool:
        if node is None:
            return True
        if isinstance(node, ast.Name) and node.id == "BaseException":
            return True
        if isinstance(node, ast.Tuple):
            return any(_Builder._is_catch_all_type(el) for el in node.elts)
        return False

    def _try(self, stmt: ast.Try, frontier: _Frontier, ctx: _Ctx) -> _Frontier:
        has_finally = bool(stmt.finalbody)
        head = self._new("join")  # try header: one place to hang the
        self._connect(frontier, head.uid)  # "body may raise" edges
        pending: Dict[str, bool] = {}
        f_entry: Optional[CFGNode] = None
        f_tail: _Frontier = []
        if has_finally:
            f_entry = self._new("finally", stmt)
            # The finally body runs under the *outer* context.
            f_tail = self._stmts(stmt.finalbody, [(f_entry.uid, "normal")], ctx)
            # Entered with a pending exception -> re-raise after it runs.
            for uid, _kind in f_tail:
                for target in ctx.exc_targets:
                    self.nodes[uid].succs.append((target, "exception"))

        inner_exc = (f_entry.uid,) if has_finally else ctx.exc_targets
        inner_ctx = _Ctx(
            exc_targets=inner_exc,
            return_tgt=(self._detour(ctx.return_tgt, f_entry, "return",
                                     pending) if has_finally
                        else ctx.return_tgt),
            break_tgt=(self._detour(ctx.break_tgt, f_entry, "break", pending)
                       if has_finally else ctx.break_tgt),
            continue_tgt=(self._detour(ctx.continue_tgt, f_entry, "continue",
                                       pending) if has_finally
                          else ctx.continue_tgt),
        )

        handler_nodes = [self._new("except", h) for h in stmt.handlers]
        handler_uids = tuple(n.uid for n in handler_nodes)
        # A raise in the body may match a handler or (no exception-type
        # modelling) escape them all: edge to every handler *and* to the
        # finally/outer targets.  Exception: a bare ``except:`` or
        # ``except BaseException:`` catches everything, so nothing
        # escapes the handler list.
        catch_all = any(self._is_catch_all_type(h.type)
                        for h in stmt.handlers)
        body_exc = handler_uids if catch_all else handler_uids + inner_exc
        body_ctx = replace(inner_ctx, exc_targets=body_exc)
        # Conservative "the body may raise even if we can't see how" —
        # keeps every handler reachable (e.g. `try: pass except: ...`).
        # Only the handlers: finally/outer are reachable via normal
        # flow or real raise sites, and a phantom header->exit edge
        # would fabricate paths that skip the whole body.
        for target in handler_uids:
            head.succs.append((target, "exception"))

        tail = self._stmts(stmt.body, [(head.uid, "normal")], body_ctx)
        if stmt.orelse:
            tail = self._stmts(stmt.orelse, tail, inner_ctx)
        for h_node in handler_nodes:
            tail += self._stmts(h_node.stmt.body, [(h_node.uid, "normal")],
                                inner_ctx)
        if has_finally:
            self._connect(tail, f_entry.uid)
            self._resolve_detours(f_tail, ctx, pending)
            return list(f_tail)
        return tail

    # -- escape detours through finally / with-exit --------------------
    def _detour(self, esc: Optional[_Escape], via: CFGNode, key: str,
                pending: Dict[str, bool]) -> Optional[_Escape]:
        """Route an escaping jump through ``via`` (a finally entry or a
        with-exit); record that ``via``'s tail must forward it."""
        if esc is None:
            return None
        pending.setdefault(key, False)

        def notify() -> None:
            pending[key] = True

        return _Escape(via.uid, notify)

    def _resolve_detours(self, tail: _Frontier, ctx: _Ctx,
                         pending: Dict[str, bool]) -> None:
        targets = {"return": ctx.return_tgt, "break": ctx.break_tgt,
                   "continue": ctx.continue_tgt}
        for key, fired in pending.items():
            esc = targets[key]
            if fired and esc is not None:
                for uid, _kind in tail:
                    self.nodes[uid].succs.append((esc.uid, "normal"))
                esc.notify()


def build_cfg(func: ast.AST) -> CFG:
    """CFG of one ``ast.FunctionDef`` / ``ast.AsyncFunctionDef``."""
    return _Builder().build(func)


def function_cfgs(tree: ast.AST) -> List[CFG]:
    """One CFG per function definition anywhere in ``tree`` (nested
    functions get their own graph; their bodies are opaque single
    statements in the enclosing one)."""
    return [
        build_cfg(node)
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


# ----------------------------------------------------------------------
# Forward worklist solver
# ----------------------------------------------------------------------
def solve_forward(
    cfg: CFG,
    init: Any,
    transfer: Callable[[CFGNode, Any], Tuple[Any, Any]],
    join: Callable[[Any, Any], Any],
    max_steps: Optional[int] = None,
) -> Dict[int, Any]:
    """Fixpoint of a forward dataflow problem; returns node in-states.

    ``transfer(node, in_state) -> (normal_out, exception_out)`` — the
    second state flows along ``"exception"`` edges (pre-effect
    semantics live in the pass's transfer, not here).  ``join(a, b)``
    merges states at confluence points and must be monotone; states
    are compared with ``==`` for the change test.  A step budget
    (generous for any finite lattice) guards against non-termination
    and raises :class:`SolverDivergence` when exhausted.
    """
    limit = max_steps if max_steps is not None else 5000 + 200 * len(cfg.nodes)
    in_states: Dict[int, Any] = {cfg.entry: init}
    work = deque([cfg.entry])
    steps = 0
    while work:
        steps += 1
        if steps > limit:
            raise SolverDivergence(
                f"{cfg.name}: no fixpoint after {limit} worklist steps"
            )
        uid = work.popleft()
        node = cfg.nodes[uid]
        normal_out, exc_out = transfer(node, in_states[uid])
        for succ, kind in node.succs:
            incoming = exc_out if kind == "exception" else normal_out
            if succ in in_states:
                merged = join(in_states[succ], incoming)
            else:
                merged = incoming
            if succ not in in_states or merged != in_states[succ]:
                in_states[succ] = merged
                if succ not in work:
                    work.append(succ)
    return in_states


# ----------------------------------------------------------------------
# Shared AST helpers for the flow passes
# ----------------------------------------------------------------------
def header_roots(node: CFGNode) -> List[ast.AST]:
    """Expressions evaluated *by this node*.  For compound statements
    only the header part (the test, the iterator, the context items) —
    bodies have their own nodes; a ``with-exit`` node evaluates nothing
    itself (``__exit__`` effects are the pass's job)."""
    stmt = node.stmt
    if stmt is None or node.kind in ("with-exit", "finally", "except"):
        return []
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Try):
        return []
    return [stmt]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def escaping_loads(root: ast.AST, tracked: Iterable[str]) -> set:
    """Names from ``tracked`` that *escape* in ``root``: loaded anywhere
    except as the receiver of an attribute access / subscript
    (``x.close()``, ``x.buf``, ``x[i]`` keep ``x`` local; ``f(x)``,
    ``return x``, ``y = x``, ``[x]`` hand the object away, so the
    analysis must stop tracking it)."""
    names = set(tracked)
    out: set = set()

    def visit(node: ast.AST, receiver: bool = False) -> None:
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load) and node.id in names \
                    and not receiver:
                out.add(node.id)
            return
        if isinstance(node, (ast.Attribute, ast.Subscript)):
            visit(node.value, receiver=True)
            if isinstance(node, ast.Subscript):
                visit(node.slice, False)
            return
        for child in ast.iter_child_nodes(node):
            visit(child, False)

    visit(root)
    return out
