"""The invariant lint engine: AST passes, diagnostics, baseline.

The repo's load-bearing invariants — the byte ledger meters exactly
what ships, scalar widths flow through
:func:`~repro.tensor.dtype.scalar_nbytes` instead of hard-coded
``4``/``8`` constants, split-SpMM kernels go through the
:mod:`repro.tensor.kernels` registry, timed waits are never silently
discarded — used to be enforced only by the tests that broke *after*
a violation shipped.  This module enforces them *before*: each
invariant is a :class:`LintPass` that walks a file's AST and emits
:class:`Diagnostic` records with a file, line, rule id and a fix hint.

The machinery mirrors the kernel-backend registry idiom
(:mod:`repro.tensor.kernels`): passes are tiny named singletons in a
module-level registry (:func:`register_pass` / :func:`pass_names` /
:func:`get_passes`), so a new invariant is one class + one
registration, and the CLI / pytest self-check / CI pick it up without
further wiring.

Three mechanisms keep the engine honest on a real tree:

* **layer markers** — a file declares the privileged layer it
  implements with a ``# repro-lint: layer=<name>`` comment (the
  endpoint layer is allowed raw pipe calls, the kernel layer raw CSR
  matmuls).  Passes consult :attr:`SourceModule.layers` instead of
  hard-coding paths, so moving a file never silently widens a rule.
* **inline suppressions** — ``# repro-lint: ignore[rule-id]`` on the
  offending line (or on a ``with`` statement, for block-scoped rules)
  waives one finding, with the justification sitting right next to it
  in the diff.
* **a committed baseline** — :func:`load_baseline` /
  :func:`diff_against_baseline` compare findings by a line-content key
  (stable under unrelated edits), so legacy findings can be frozen
  without blocking CI while every *new* finding fails it.  The repo's
  policy is a clean tree: the committed baseline is empty and the
  pytest self-check keeps it that way.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Diagnostic",
    "FlowPass",
    "LintPass",
    "SourceModule",
    "baseline_keys",
    "collect_modules",
    "diff_against_baseline",
    "get_passes",
    "load_baseline",
    "pass_names",
    "register_pass",
    "run_passes",
    "save_baseline",
]

#: Default lint targets, relative to the repo root.
DEFAULT_TARGETS = ("src", "benchmarks")

_MARKER_RE = re.compile(r"#\s*repro-lint:\s*(?P<body>[^\n]*)")
_IGNORE_RE = re.compile(r"ignore(?:\[(?P<rules>[\w\-, ]*)\])?")
_LAYER_RE = re.compile(r"layer=(?P<layer>[\w\-]+)")

#: Sentinel meaning "every rule" in a suppression entry.
ALL_RULES = "*"

#: Parse/CFG caches, keyed by (repo-relative path, content hash): one
#: lint invocation runs many pass families over the same files, and
#: the pytest self-checks lint the tree repeatedly — identical content
#: is parsed and CFG-built exactly once per process.
_MODULE_CACHE: Dict[Tuple[str, str], "SourceModule"] = {}
_CFG_CACHE: Dict[Tuple[str, str], list] = {}


# ----------------------------------------------------------------------
# Diagnostics
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Diagnostic:
    """One finding: where, which invariant, what to do about it."""

    path: str  # repo-relative posix path
    line: int  # 1-based
    col: int  # 0-based
    rule: str  # pass rule id, e.g. "dtype-width"
    message: str
    hint: str = ""  # how to fix (or how to suppress with a reason)
    #: The offending source line, stripped — the baseline key content,
    #: stable under edits elsewhere in the file.
    line_text: str = ""

    @property
    def key(self) -> str:
        """Baseline identity: file + rule + line *content* (not line
        number, which drifts under unrelated edits)."""
        return f"{self.path}::{self.rule}::{self.line_text}"

    def format(self) -> str:
        loc = f"{self.path}:{self.line}:{self.col + 1}"
        out = f"{loc}: [{self.rule}] {self.message}"
        if self.hint:
            out += f"\n    hint: {self.hint}"
        return out


# ----------------------------------------------------------------------
# Source model
# ----------------------------------------------------------------------
class SourceModule:
    """One parsed file plus its lint metadata (layers, suppressions)."""

    def __init__(self, path: str, text: str) -> None:
        self.path = path
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=path)
        #: Content identity: parse and CFG caches key on this, so an
        #: edited file is re-analyzed and an untouched one never is.
        self.content_hash = hashlib.sha256(text.encode()).hexdigest()
        self._cfgs = None
        self.layers: Set[str] = set()
        #: line number -> set of waived rule ids (or {ALL_RULES}).
        self.suppressions: Dict[int, Set[str]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            m = _MARKER_RE.search(line)
            if not m:
                continue
            body = m.group("body")
            lm = _LAYER_RE.search(body)
            if lm:
                self.layers.add(lm.group("layer"))
            im = _IGNORE_RE.search(body)
            if im:
                rules = im.group("rules")
                if rules:
                    waived = {r.strip() for r in rules.split(",") if r.strip()}
                else:
                    waived = {ALL_RULES}
                self.suppressions.setdefault(
                    self._anchor_line(lineno), set()
                ).update(waived)

    def _anchor_line(self, lineno: int) -> int:
        """The code line a marker applies to: its own line, or — when
        the marker sits on a comment-only line (possibly the first of a
        comment block) — the next non-comment, non-blank line below."""
        if not self.lines[lineno - 1].lstrip().startswith("#"):
            return lineno
        for nxt in range(lineno + 1, len(self.lines) + 1):
            stripped = self.lines[nxt - 1].strip()
            if stripped and not stripped.startswith("#"):
                return nxt
        return lineno

    def function_cfgs(self):
        """The module's per-function CFGs, built once per content hash
        (flow passes used to rebuild them per pass family)."""
        if self._cfgs is None:
            cached = _CFG_CACHE.get((self.path, self.content_hash))
            if cached is None:
                from .dataflow import function_cfgs

                cached = list(function_cfgs(self.tree))
                _CFG_CACHE[(self.path, self.content_hash)] = cached
            self._cfgs = cached
        return self._cfgs

    # ------------------------------------------------------------------
    @classmethod
    def from_file(cls, file_path: Path, root: Path) -> "SourceModule":
        rel = file_path.resolve().relative_to(root.resolve()).as_posix()
        text = file_path.read_text()
        key = (rel, hashlib.sha256(text.encode()).hexdigest())
        cached = _MODULE_CACHE.get(key)
        if cached is None:
            cached = cls(rel, text)
            _MODULE_CACHE[key] = cached
        return cached

    @classmethod
    def from_source(cls, text: str, path: str = "<snippet>") -> "SourceModule":
        """Parse a source string — the fixture-test entry point."""
        return cls(path, text)

    # ------------------------------------------------------------------
    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def segment(self, node: ast.AST) -> str:
        """Source text of ``node`` (empty when unavailable)."""
        return ast.get_source_segment(self.text, node) or ""

    def is_suppressed(self, lineno: int, rule: str) -> bool:
        waived = self.suppressions.get(lineno)
        return bool(waived) and (rule in waived or ALL_RULES in waived)

    def has_layer(self, layer: str) -> bool:
        return layer in self.layers


# ----------------------------------------------------------------------
# Pass interface and registry (the kernel-backend idiom)
# ----------------------------------------------------------------------
class LintPass:
    """One named invariant check over a :class:`SourceModule`.

    Subclasses set :attr:`rule` (the kebab-case id diagnostics and
    suppressions use) and implement :meth:`run`.  The shared
    :meth:`diag` helper stamps the path/line/col/line-text so every
    pass reports identically.

    A pass whose invariant spans files (the lock-order graph) sets
    :attr:`project_wide` and implements :meth:`run_project` instead —
    it sees every module at once and is called exactly once per run.
    """

    rule: str = "base"
    title: str = ""
    description: str = ""
    project_wide: bool = False

    def run(self, module: SourceModule) -> List[Diagnostic]:
        raise NotImplementedError

    def run_project(
        self, modules: Sequence[SourceModule]
    ) -> List[Diagnostic]:
        raise NotImplementedError

    def diag(self, module: SourceModule, node: ast.AST, message: str,
             hint: str = "") -> Diagnostic:
        lineno = getattr(node, "lineno", 1)
        return Diagnostic(
            path=module.path,
            line=lineno,
            col=getattr(node, "col_offset", 0),
            rule=self.rule,
            message=message,
            hint=hint,
            line_text=module.line_text(lineno),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(rule={self.rule!r})"


class FlowPass(LintPass):
    """A flow-sensitive pass: one CFG per function instead of raw AST.

    The engine builds a :class:`~repro.analysis.dataflow.CFG` for every
    function in the module and hands each to :meth:`run_cfg`; passes
    express their invariant as a transfer function over
    :func:`~repro.analysis.dataflow.solve_forward` instead of a
    pattern match.  Registration, suppressions and baselining are
    identical to plain passes.
    """

    def run(self, module: SourceModule) -> List[Diagnostic]:
        findings: List[Diagnostic] = []
        for cfg in module.function_cfgs():
            findings.extend(self.run_cfg(module, cfg))
        return findings

    def run_cfg(self, module: SourceModule, cfg) -> List[Diagnostic]:
        raise NotImplementedError


_REGISTRY: Dict[str, LintPass] = {}


def register_pass(lint_pass: LintPass) -> LintPass:
    """Add a pass to the registry (later rule ids shadow earlier)."""
    _REGISTRY[lint_pass.rule] = lint_pass
    return lint_pass


def pass_names() -> Tuple[str, ...]:
    """Registered rule ids, in registration order."""
    _ensure_builtin_passes()
    return tuple(_REGISTRY)


def get_passes(names: Optional[Iterable[str]] = None) -> List[LintPass]:
    """Resolve a selection of passes (all registered when omitted)."""
    _ensure_builtin_passes()
    if names is None:
        return list(_REGISTRY.values())
    selected = []
    for name in names:
        if name not in _REGISTRY:
            raise KeyError(
                f"unknown lint pass {name!r}; registered: "
                + ", ".join(_REGISTRY)
            )
        selected.append(_REGISTRY[name])
    return selected


def _ensure_builtin_passes() -> None:
    """Import the built-in pass modules (they self-register on import,
    like the kernel backends do)."""
    from . import (  # noqa: F401
        commcheck,
        concurrency,
        lifecycle,
        passes,
        typestate,
    )


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------
def collect_modules(
    root: Path, targets: Sequence[str] = DEFAULT_TARGETS
) -> List[SourceModule]:
    """Parse every ``*.py`` under ``root``'s target directories."""
    root = Path(root)
    modules: List[SourceModule] = []
    for target in targets:
        base = root / target
        if not base.exists():
            continue
        for file_path in sorted(base.rglob("*.py")):
            modules.append(SourceModule.from_file(file_path, root))
    return modules


def run_passes(
    modules: Iterable[SourceModule],
    passes: Optional[Sequence[LintPass]] = None,
    timings: Optional[List[Tuple[str, float]]] = None,
) -> List[Diagnostic]:
    """Run ``passes`` over ``modules``; suppressed findings are dropped
    centrally so every pass gets the waiver semantics for free.  When
    ``timings`` is a list, per-pass wall seconds are appended to it
    (the ``--profile`` plumbing)."""
    if passes is None:
        passes = get_passes()
    modules = list(modules)
    by_path = {m.path: m for m in modules}
    findings: List[Diagnostic] = []

    def keep(diagnostic: Diagnostic) -> bool:
        owner = by_path.get(diagnostic.path)
        return owner is None or not owner.is_suppressed(
            diagnostic.line, diagnostic.rule
        )

    for lint_pass in passes:
        started = time.perf_counter()
        if lint_pass.project_wide:
            findings.extend(
                d for d in lint_pass.run_project(modules) if keep(d)
            )
        else:
            for module in modules:
                findings.extend(
                    d for d in lint_pass.run(module) if keep(d)
                )
        if timings is not None:
            timings.append(
                (lint_pass.rule, time.perf_counter() - started)
            )
    findings.sort(key=lambda d: (d.path, d.line, d.col, d.rule))
    return findings


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
#: v2 stores occurrence-indexed keys (``<content key>#<n>``) as a flat
#: list: two findings whose stripped line text is identical within one
#: file no longer collide on a single counted entry, so waiving one of
#: them never silently waives the other.  v1 (``{key: count}``) files
#: are still accepted and migrated on load.
BASELINE_VERSION = 2
DEFAULT_BASELINE_NAME = "lint_baseline.json"


@dataclass
class BaselineDiff:
    """Findings split against a committed baseline."""

    new: List[Diagnostic] = field(default_factory=list)
    known: List[Diagnostic] = field(default_factory=list)
    #: Baseline keys no longer matched by any finding — stale entries
    #: (``--strict`` fails on them so the baseline can only shrink).
    stale: List[str] = field(default_factory=list)


def baseline_keys(findings: Sequence[Diagnostic]) -> List[str]:
    """Occurrence-indexed baseline keys, aligned with ``findings``.

    The n-th finding sharing one content key (same file, rule and
    stripped line text) gets ``<key>#<n>`` (1-based, in report order —
    which :func:`run_passes` keeps sorted and therefore stable).
    """
    seen: Dict[str, int] = {}
    keys: List[str] = []
    for diagnostic in findings:
        n = seen.get(diagnostic.key, 0) + 1
        seen[diagnostic.key] = n
        keys.append(f"{diagnostic.key}#{n}")
    return keys


def load_baseline(path: Path) -> Set[str]:
    """Occurrence-indexed baseline keys (empty if no file).

    Accepts the current v2 list format and migrates v1 counted entries
    (``{key: count}`` becomes ``key#1 .. key#count``) transparently.
    """
    path = Path(path)
    if not path.exists():
        return set()
    payload = json.loads(path.read_text())
    version = payload.get("version")
    entries = payload.get("entries", [])
    if version == 1:
        return {
            f"{key}#{i}"
            for key, count in entries.items()
            for i in range(1, int(count) + 1)
        }
    if version != BASELINE_VERSION:
        raise ValueError(
            f"unsupported lint baseline version {version!r} "
            f"in {path} (expected {BASELINE_VERSION})"
        )
    return {str(k) for k in entries}


def save_baseline(path: Path, findings: Sequence[Diagnostic]) -> List[str]:
    """Freeze ``findings`` as the new baseline; returns the entries."""
    entries = sorted(baseline_keys(findings))
    payload = {"version": BASELINE_VERSION, "entries": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return entries


def diff_against_baseline(
    findings: Sequence[Diagnostic], baseline: Set[str]
) -> BaselineDiff:
    """Split findings into new-vs-known; surplus occurrences of a known
    key (the same line duplicated again) index past the baselined ones
    and count as new."""
    diff = BaselineDiff()
    matched: Set[str] = set()
    for diagnostic, indexed in zip(findings, baseline_keys(findings)):
        if indexed in baseline:
            matched.add(indexed)
            diff.known.append(diagnostic)
        else:
            diff.new.append(diagnostic)
    diff.stale = sorted(set(baseline) - matched)
    return diff
