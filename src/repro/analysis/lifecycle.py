"""Resource-lifecycle and exception-safety flow passes.

The transport layer's correctness contract is a lifecycle contract:
every shared-memory segment is closed by everyone and unlinked exactly
once *by its creator*, every pipe end is closed, every acquired lock is
released — on every path, including the ones that only exist because a
``recv`` raised.  PR 7 encoded the creator-owns-unlink asymmetry in
prose and in ``finally`` blocks; these passes encode it as a dataflow
problem over the function CFG so the elastic-recovery rewrite cannot
quietly regress it.

:class:`LifecyclePass` (rule ``lifecycle``) tracks local variables
bound to resource constructors (:data:`RESOURCES` — plain data, extend
by adding rows) and requires each to reach *all* of its release duties
(``close``/``unlink``/``release``) on every CFG path, unless the value
escapes first (returned, stored, passed on — ownership moved, some
other scope releases it).  Acquisitions happen only on the normal edge
out of the binding statement (a constructor that raised bound
nothing); release effects apply on both (a ``close`` that raised still
counts as attempted).  The creator/attach asymmetry: an attach-mode
constructor (``_ShmRing.attach``, ``SharedMemory(name=...)`` without
``create=True``) must *never* ``unlink`` — worker-side unlink destroys
a segment the creator still owns, and is reported even when chained
(``SharedMemory(name=n).unlink()``).

To keep the exceptional-path side usable, a leak that *only* occurs
via an exception edge is reported just when the function releases the
same resource on its normal path — the classic "close at the end, no
finally" bug.  A resource whose cleanup is ownership transfer (append
to a list the caller's ``finally`` walks) never trips the exceptional
case, because there is no release call to skip.

:class:`ExceptionSafetyPass` (rule ``exception-safety``) is the
escape-aware companion: between a bare ``lock.acquire()`` and its
``release()``, any attribute/subscript store is shared-state mutation;
if a raise edge can reach the function exit while the lock is held and
mutated, the invariants the lock guards can be observed half-applied
(and the lock is lost).  ``with lock:`` is immune by construction —
the CFG's ``with-exit`` node releases on every outgoing path.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from .dataflow import (
    CFG,
    CFGNode,
    dotted_name,
    escaping_loads,
    header_roots,
    solve_forward,
)
from .engine import Diagnostic, FlowPass, SourceModule, register_pass

__all__ = [
    "ExceptionSafetyPass",
    "LifecyclePass",
    "RESOURCES",
    "ResourceSpec",
]


@dataclass(frozen=True)
class ResourceSpec:
    """One resource family: how it is created and what it owes.

    ``constructors`` use the pattern grammar of the typestate tables:
    an exact callee last segment (``"Pipe"``), a class-name suffix
    (``"*Endpoint"``) or a dotted suffix (``"_ShmRing.create"``).
    ``duties`` are the methods that must all be called before the
    function exits; ``attach_constructors`` create the non-owning
    (worker-side) flavour with ``attach_duties``, for which the
    methods in ``forbidden`` are themselves findings (creator-owns-
    unlink).  ``pair`` marks constructors returning a 2-tuple of
    resources (``Pipe()``)."""

    name: str
    constructors: Tuple[str, ...] = ()
    duties: FrozenSet[str] = frozenset()
    attach_constructors: Tuple[str, ...] = ()
    attach_duties: FrozenSet[str] = frozenset()
    forbidden: Mapping[str, str] = field(default_factory=dict)
    pair: bool = False


def _match(callee: str, patterns: Tuple[str, ...]) -> bool:
    last = callee.rsplit(".", 1)[-1]
    for pattern in patterns:
        if "." in pattern:
            if callee == pattern or callee.endswith("." + pattern):
                return True
        elif pattern.startswith("*"):
            if last.endswith(pattern[1:]):
                return True
        elif last == pattern:
            return True
    return False


_WORKER_UNLINK_MSG = (
    "worker-side unlink: this handle was attached, not created — "
    "unlinking destroys a segment its creator still owns "
    "(creator-owns-unlink, see PR 7's lifecycle contract)"
)

#: The resource table — extend by adding rows, not checker code.
RESOURCES: Tuple[ResourceSpec, ...] = (
    ResourceSpec(
        name="shm-segment",
        # SharedMemory(create=True, ...) is the creator; SharedMemory
        # (name=..., [track=False]) merely attaches (split below by
        # the create= kwarg, not by pattern).
        constructors=("SharedMemory",),
        duties=frozenset({"close", "unlink"}),
        attach_constructors=("SharedMemory",),
        attach_duties=frozenset({"close"}),
        forbidden={"unlink": _WORKER_UNLINK_MSG},
    ),
    ResourceSpec(
        name="shm-ring",
        constructors=("_ShmRing.create",),
        duties=frozenset({"close", "unlink"}),
        attach_constructors=("_ShmRing.attach",),
        attach_duties=frozenset({"close"}),
        forbidden={"unlink": _WORKER_UNLINK_MSG},
    ),
    ResourceSpec(
        name="pipe-conn",
        constructors=("Pipe",),
        duties=frozenset({"close"}),
        pair=True,
    ),
    ResourceSpec(
        name="endpoint",
        constructors=("*Endpoint",),
        duties=frozenset({"close"}),
    ),
    ResourceSpec(
        name="held-lock",
        # Created by the `.acquire()` *event*, not a constructor —
        # see LifecyclePass._lock_acquires.
        duties=frozenset({"release"}),
    ),
)

_BY_NAME = {spec.name: spec for spec in RESOURCES}

#: Lock-wrapper layers legitimately split acquire/release across
#: methods; tracking them would flag the wrapper itself.
_LOCK_WRAPPER_FUNCS = frozenset(
    {"acquire", "release", "__enter__", "__exit__"}
)


def _classify_constructor(call: ast.Call) -> Optional[Tuple[ResourceSpec, str]]:
    """(spec, mode) for a resource-creating call, else None.  Mode is
    ``"create"`` (full duties) or ``"attach"`` (attach duties plus the
    forbidden-method findings)."""
    callee = dotted_name(call.func)
    if callee is None:
        return None
    for spec in RESOURCES:
        creates = _match(callee, spec.constructors)
        attaches = _match(callee, spec.attach_constructors)
        if not creates and not attaches:
            continue
        if spec.name == "shm-segment":
            # Same callee both ways: the create= kwarg decides.
            explicit_create = any(
                kw.arg == "create"
                and not (isinstance(kw.value, ast.Constant)
                         and kw.value.value is False)
                for kw in call.keywords
            )
            return spec, "create" if explicit_create else "attach"
        if creates and spec.constructors != spec.attach_constructors:
            return spec, "create"
        return spec, "attach"
    return None


#: One tracked instance: (spec name, remaining duties, site line,
#: flags).  Flags: "attached" (worker-side handle), "exceptional"
#: (this state travelled an exception edge while still owing duties).
_Instance = Tuple[str, FrozenSet[str], int, FrozenSet[str]]
#: var -> set of instances (one per reaching acquisition/path combo).
_State = Dict[str, FrozenSet[_Instance]]


def _join(a: _State, b: _State) -> _State:
    out = dict(a)
    for var, instances in b.items():
        out[var] = out.get(var, frozenset()) | instances
    return out


def _site(line: int) -> SimpleNamespace:
    """A diag() anchor for findings reported away from their line."""
    return SimpleNamespace(lineno=line, col_offset=0)


class LifecyclePass(FlowPass):
    rule = "lifecycle"
    title = "resources must reach close/unlink/release on every path"
    description = (
        "flow-sensitive: SharedMemory/Pipe/ring/endpoint/lock values "
        "must be released (or escape to a new owner) on all CFG "
        "paths; attached handles must never unlink (creator-owns-"
        "unlink)"
    )

    def run_cfg(self, module: SourceModule, cfg: CFG) -> List[Diagnostic]:
        if cfg.name in _LOCK_WRAPPER_FUNCS:
            return []
        findings: Dict[Tuple[int, str], Diagnostic] = {}
        #: Acquisition sites that saw a release on some path — the
        #: gate for reporting exceptional-only leaks (see module doc).
        released_sites: Set[int] = set()

        def transfer(node: CFGNode, state: _State):
            stmt = node.stmt
            if stmt is None or node.kind in ("finally", "except"):
                return state, state
            out = {var: set(instances) for var, instances in state.items()}
            if node.kind == "with-exit":
                # __exit__ releases whatever the with items acquired.
                for var, _call in self._with_bindings(stmt):
                    out.pop(var, None)
                frozen = {v: frozenset(i) for v, i in out.items()}
                return frozen, frozen
            roots = header_roots(node)
            calls = [n for root in roots for n in ast.walk(root)
                     if isinstance(n, ast.Call)]
            # 1. Releases, forbidden methods, chained worker-unlink.
            for call in calls:
                self._chained_unlink(module, call, findings)
                receiver, method = self._method_on_name(call)
                if receiver is None or receiver not in out:
                    continue
                updated = set()
                for spec_name, duties, site, flags in out[receiver]:
                    spec = _BY_NAME[spec_name]
                    if "attached" in flags and method in spec.forbidden:
                        key = (call.lineno, f"{receiver}.{method}")
                        if key not in findings:
                            findings[key] = self.diag(
                                module, call, spec.forbidden[method],
                                hint="only the creating process may "
                                "unlink; attached handles close() only",
                            )
                    if method in duties:
                        duties = duties - {method}
                        released_sites.add(site)
                    updated.add((spec_name, duties, site, flags))
                out[receiver] = updated
            # 2. Escapes transfer ownership — stop tracking.
            for root in roots:
                for var in escaping_loads(root, tuple(out)):
                    out.pop(var, None)
            # Drop fully-discharged instances to keep states small —
            # except attached handles with forbidden methods, which
            # must stay visible so a post-close unlink() still reports.
            for var in list(out):
                out[var] = {
                    inst for inst in out[var]
                    if inst[1] or ("attached" in inst[3]
                                   and _BY_NAME[inst[0]].forbidden)
                }
                if not out[var]:
                    del out[var]
            exc_state = {
                var: frozenset(
                    (s, d, site, flags | {"exceptional"})
                    for s, d, site, flags in instances
                )
                for var, instances in out.items()
            }
            # 3. Acquisitions bind on the normal edge only.
            for var, instance in self._acquisitions(node, calls):
                out[var] = {instance}
            normal_state = {v: frozenset(i) for v, i in out.items()}
            return normal_state, exc_state

        in_states = solve_forward(cfg, {}, transfer, _join)
        exit_state: _State = in_states.get(cfg.exit, {})
        for var, instances in sorted(exit_state.items()):
            reported: Set[int] = set()
            for spec_name, duties, site, flags in sorted(
                instances, key=lambda i: i[2]
            ):
                if not duties or site in reported:
                    continue
                exceptional = "exceptional" in flags
                if exceptional and site not in released_sites:
                    # Ownership moves some other way (escape/transfer);
                    # there is no release call for a raise to skip.
                    continue
                reported.add(site)
                spec = _BY_NAME[spec_name]
                missing = "/".join(f"{d}()" for d in sorted(duties))
                path = ("an exceptional exit skips" if exceptional
                        else "some path misses")
                findings[(site, var)] = self.diag(
                    module, _site(site),
                    f"{spec.name} {var!r} may never reach {missing}: "
                    f"{path} it",
                    hint="release in a finally block (or a with "
                    "statement), or hand the value to an owner that "
                    "does; waive with a justified "
                    "# repro-lint: ignore[lifecycle]",
                )
        return sorted(findings.values(), key=lambda d: (d.line, d.col))

    # ------------------------------------------------------------------
    @staticmethod
    def _method_on_name(call: ast.Call) -> Tuple[Optional[str], str]:
        func = call.func
        if isinstance(func, ast.Attribute) and isinstance(func.value,
                                                          ast.Name):
            return func.value.id, func.attr
        return None, ""

    def _chained_unlink(self, module: SourceModule, call: ast.Call,
                        findings: Dict) -> None:
        """``SharedMemory(name=n).unlink()`` — attach + destroy in one
        expression, no variable to track."""
        func = call.func
        if not (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Call)):
            return
        classified = _classify_constructor(func.value)
        if classified is None:
            return
        spec, mode = classified
        if mode == "attach" and func.attr in spec.forbidden:
            key = (call.lineno, f"<chained>.{func.attr}")
            if key not in findings:
                findings[key] = self.diag(
                    module, call, spec.forbidden[func.attr],
                    hint="only the creating process may unlink; "
                    "attached handles close() only",
                )

    def _with_bindings(self, stmt) -> List[Tuple[str, ast.Call]]:
        out = []
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if isinstance(item.context_expr, ast.Call) \
                        and isinstance(item.optional_vars, ast.Name) \
                        and _classify_constructor(item.context_expr):
                    out.append((item.optional_vars.id, item.context_expr))
        return out

    def _acquisitions(self, node: CFGNode,
                      calls: List[ast.Call]) -> List[Tuple[str, _Instance]]:
        stmt = node.stmt
        acquired: List[Tuple[str, _Instance]] = []

        def instance(spec: ResourceSpec, mode: str,
                     line: int) -> _Instance:
            duties = spec.duties if mode == "create" else spec.attach_duties
            flags = frozenset({"attached"}) if mode == "attach" \
                else frozenset()
            return (spec.name, duties, line, flags)

        # var = Constructor(...)   /   a, b = Pipe(...)
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call) \
                and len(stmt.targets) == 1:
            classified = _classify_constructor(stmt.value)
            target = stmt.targets[0]
            if classified is not None:
                spec, mode = classified
                if spec.pair and isinstance(target, ast.Tuple):
                    for el in target.elts:
                        if isinstance(el, ast.Name):
                            acquired.append(
                                (el.id, instance(spec, mode, stmt.lineno))
                            )
                elif isinstance(target, ast.Name):
                    acquired.append(
                        (target.id, instance(spec, mode, stmt.lineno))
                    )
        # x.acquire() — the lock-hold "constructor".
        for call in calls:
            func = call.func
            if isinstance(func, ast.Attribute) and func.attr == "acquire" \
                    and isinstance(func.value, ast.Name):
                spec = _BY_NAME["held-lock"]
                acquired.append(
                    (func.value.id,
                     (spec.name, spec.duties, call.lineno, frozenset()))
                )
        return acquired


# ----------------------------------------------------------------------
# Exception safety: mutations a raise edge can strand
# ----------------------------------------------------------------------
#: var -> set of (acquire line, mutated?, travelled-exception-edge?).
_LockState = Dict[str, FrozenSet[Tuple[int, bool, bool]]]


def _lock_join(a: _LockState, b: _LockState) -> _LockState:
    out = dict(a)
    for var, holds in b.items():
        out[var] = out.get(var, frozenset()) | holds
    return out


def _mutates_shared_state(roots: List[ast.AST]) -> bool:
    """Attribute/subscript stores (``self.x = ...``, ``d[k] = ...``)
    are mutations of state that outlives the function."""
    for root in roots:
        for node in ast.walk(root):
            if isinstance(node, (ast.Attribute, ast.Subscript)) \
                    and isinstance(node.ctx, (ast.Store, ast.Del)):
                return True
            if isinstance(node, ast.AugAssign) and isinstance(
                node.target, (ast.Attribute, ast.Subscript)
            ):
                return True
    return False


class ExceptionSafetyPass(FlowPass):
    rule = "exception-safety"
    title = "no shared-state mutation a raise edge can strand mid-flight"
    description = (
        "flow-sensitive: between a bare lock.acquire() and its "
        "release(), an exception path that skips the release leaves "
        "the guarded state half-applied; use try/finally or `with`"
    )

    def run_cfg(self, module: SourceModule, cfg: CFG) -> List[Diagnostic]:
        if cfg.name in _LOCK_WRAPPER_FUNCS:
            return []

        def transfer(node: CFGNode, state: _LockState):
            stmt = node.stmt
            if stmt is None or node.kind in ("finally", "except",
                                             "with-exit"):
                return state, state
            roots = header_roots(node)
            calls = [n for root in roots for n in ast.walk(root)
                     if isinstance(n, ast.Call)]
            out = {var: set(holds) for var, holds in state.items()}
            acquires: List[Tuple[str, int]] = []
            for call in calls:
                func = call.func
                if not (isinstance(func, ast.Attribute)
                        and isinstance(func.value, ast.Name)):
                    continue
                if func.attr == "release":
                    out.pop(func.value.id, None)
                elif func.attr == "acquire":
                    acquires.append((func.value.id, call.lineno))
            if out and _mutates_shared_state(roots):
                out = {
                    var: {(line, True, exc) for line, _m, exc in holds}
                    for var, holds in out.items()
                }
            exc_state = {
                var: frozenset((line, mutated, True)
                               for line, mutated, _e in holds)
                for var, holds in out.items()
            }
            for var, line in acquires:
                out[var] = {(line, False, False)}
            normal_state = {v: frozenset(h) for v, h in out.items()}
            return normal_state, exc_state

        in_states = solve_forward(cfg, {}, transfer, _lock_join)
        findings: Dict[int, Diagnostic] = {}
        for var, holds in sorted(in_states.get(cfg.exit, {}).items()):
            for line, mutated, via_exception in sorted(holds):
                if mutated and via_exception and line not in findings:
                    findings[line] = self.diag(
                        module, _site(line),
                        f"state mutated while holding {var!r} can be "
                        "stranded: an exception path skips "
                        f"{var}.release(), leaving the guarded "
                        "invariants half-applied",
                        hint="wrap the critical section in try/finally "
                        "or use `with` so the release (and any "
                        "invariant repair) runs on the raise path too",
                    )
        return sorted(findings.values(), key=lambda d: (d.line, d.col))


register_pass(LifecyclePass())
register_pass(ExceptionSafetyPass())
