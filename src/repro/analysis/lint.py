"""``repro lint`` — run the invariant passes over the tree.

Usage (via the top-level CLI)::

    repro lint                      # lint src/ + benchmarks/, text report
    repro lint --format json        # machine-readable findings
    repro lint --format github      # ::error annotations for Actions
    repro lint --strict             # also fail on stale baseline entries
    repro lint --update-baseline    # freeze current findings
    repro lint --list-passes        # rule catalogue
    repro lint --select dtype-width,lock-order src/repro/dist
    repro lint --paths src,benchmarks  # same as positional targets

Exit codes: 0 clean (or all findings baselined), 1 new findings (or,
under ``--strict``, stale baseline entries), 2 usage/parse errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .engine import (
    DEFAULT_BASELINE_NAME,
    DEFAULT_TARGETS,
    Diagnostic,
    SourceModule,
    collect_modules,
    diff_against_baseline,
    get_passes,
    load_baseline,
    run_passes,
    save_baseline,
)

__all__ = ["build_parser", "main", "run_lint"]


def run_lint(
    root: Path,
    targets: Sequence[str] = DEFAULT_TARGETS,
    select: Optional[Sequence[str]] = None,
) -> List[Diagnostic]:
    """Collect + run: the programmatic entry point (tests use this)."""
    modules = collect_modules(Path(root), targets)
    return run_passes(modules, get_passes(select))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based invariant checks for this repository.",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        default=None,
        help="directories/files to lint, relative to --root "
        f"(default: {' '.join(DEFAULT_TARGETS)})",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root (default: current directory)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github", "sarif"),
        default="text",
        help="report format (default: text); `github` emits Actions "
        "::error annotations that render inline on PRs, `sarif` emits "
        "a SARIF 2.1.0 log for code-scanning upload",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print per-pass wall time to stderr (machine formats on "
        "stdout stay parseable)",
    )
    parser.add_argument(
        "--paths",
        default=None,
        help="comma-separated directories/files to lint (merged with "
        "any positional targets; handy where positionals are awkward, "
        "e.g. workflow matrices)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding as new",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="freeze the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail when the baseline has stale entries "
        "(keeps the baseline shrink-only)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-passes",
        action="store_true",
        help="print the registered pass catalogue and exit",
    )
    return parser


def _collect(root: Path, targets: Sequence[str]) -> List[SourceModule]:
    """Like :func:`collect_modules` but targets may also be files."""
    modules: List[SourceModule] = []
    for target in targets:
        path = root / target
        if path.is_file():
            modules.append(SourceModule.from_file(path, root))
        else:
            modules.extend(collect_modules(root, [target]))
    return modules


def _escape_data(text: str) -> str:
    """GitHub Actions workflow-command escaping for the message part."""
    return text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def _escape_property(text: str) -> str:
    """Escaping for the ``key=value`` property part (also , and :)."""
    return _escape_data(text).replace(":", "%3A").replace(",", "%2C")


def _github_annotation(diagnostic: Diagnostic) -> str:
    """One ``::error`` workflow command — GitHub renders it inline on
    the PR diff at the offending line."""
    message = diagnostic.message
    if diagnostic.hint:
        message += f"\nhint: {diagnostic.hint}"
    return (
        f"::error file={_escape_property(diagnostic.path)},"
        f"line={diagnostic.line},col={diagnostic.col},"
        f"title={_escape_property('repro lint [' + diagnostic.rule + ']')}"
        f"::{_escape_data(message)}"
    )


def _sarif_payload(diff, passes) -> dict:
    """A SARIF 2.1.0 log: rule metadata straight from the pass
    registry, one result per *new* finding (baselined findings are
    suppressed upstream, matching every other format)."""
    rules = [
        {
            "id": p.rule,
            "name": p.rule.replace("-", " ").title().replace(" ", ""),
            "shortDescription": {"text": p.title or p.rule},
            "fullDescription": {"text": p.description or p.title or p.rule},
            "defaultConfiguration": {"level": "error"},
        }
        for p in passes
    ]
    rule_index = {p.rule: i for i, p in enumerate(passes)}
    results = []
    for d in diff.new:
        message = d.message + (f"\nhint: {d.hint}" if d.hint else "")
        results.append({
            "ruleId": d.rule,
            "ruleIndex": rule_index.get(d.rule, -1),
            "level": "error",
            "message": {"text": message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": d.path},
                    "region": {
                        "startLine": d.line,
                        "startColumn": d.col + 1,
                    },
                },
            }],
        })
    return {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri":
                        "https://example.invalid/repro-lint",
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_passes:
        for lint_pass in get_passes():
            scope = "project" if lint_pass.project_wide else "module"
            print(f"{lint_pass.rule:<18} [{scope}] {lint_pass.title}")
            if lint_pass.description:
                print(f"{'':<18}   {lint_pass.description}")
        return 0

    root = Path(args.root).resolve()
    targets = list(args.targets or ())
    if args.paths:
        targets += [p.strip() for p in args.paths.split(",") if p.strip()]
    if not targets:
        targets = list(DEFAULT_TARGETS)
    select = None
    if args.select:
        select = [s.strip() for s in args.select.split(",") if s.strip()]

    try:
        modules = _collect(root, targets)
        timings: List = []
        findings = run_passes(modules, get_passes(select),
                              timings=timings if args.profile else None)
    except (SyntaxError, KeyError, OSError) as exc:
        print(f"repro lint: error: {exc}", file=sys.stderr)
        return 2
    if args.profile:
        total = sum(seconds for _, seconds in timings)
        for rule, seconds in sorted(timings, key=lambda t: -t[1]):
            print(f"profile: {rule:<18} {seconds * 1000.0:9.2f} ms",
                  file=sys.stderr)
        print(f"profile: {'total':<18} {total * 1000.0:9.2f} ms",
              file=sys.stderr)

    baseline_path = (
        Path(args.baseline) if args.baseline
        else root / DEFAULT_BASELINE_NAME
    )

    if args.update_baseline:
        entries = save_baseline(baseline_path, findings)
        print(
            f"baseline updated: {len(entries)} unique finding(s) "
            f"({len(findings)} total) -> {baseline_path}"
        )
        return 0

    baseline = set() if args.no_baseline else load_baseline(baseline_path)
    diff = diff_against_baseline(findings, baseline)

    if args.format == "sarif":
        print(json.dumps(_sarif_payload(diff, get_passes(select)),
                         indent=2))
    elif args.format == "github":
        for diagnostic in diff.new:
            print(_github_annotation(diagnostic))
        summary = (
            f"{len(modules)} file(s) checked, "
            f"{len(diff.new)} new finding(s)"
        )
        if diff.stale:
            summary += f", {len(diff.stale)} stale baseline entrie(s)"
        print(("FAIL: " if diff.new else "OK: ") + summary)
    elif args.format == "json":
        payload = {
            "root": str(root),
            "passes": [p.rule for p in get_passes(select)],
            "modules": len(modules),
            "new": [d.__dict__ for d in diff.new],
            "known": [d.__dict__ for d in diff.known],
            "stale_baseline_keys": diff.stale,
        }
        print(json.dumps(payload, indent=2))
    else:
        for diagnostic in diff.new:
            print(diagnostic.format())
        if diff.known:
            print(f"({len(diff.known)} known finding(s) in baseline)")
        if diff.stale:
            print(
                f"{len(diff.stale)} stale baseline entrie(s) — fixed "
                "findings still waived; run --update-baseline to shrink:"
            )
            for key in diff.stale:
                print(f"  {key}")
        summary = (
            f"{len(modules)} file(s) checked, "
            f"{len(diff.new)} new finding(s)"
        )
        print(("FAIL: " if diff.new else "OK: ") + summary)

    if diff.new:
        return 1
    if args.strict and diff.stale:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
