"""Built-in invariant passes: dtype widths, metering, kernels, determinism.

Each pass encodes one repo law that was historically enforced only by
the test that failed after it broke:

``dtype-width``
    Scalar wire/storage widths flow through
    :func:`~repro.tensor.dtype.scalar_nbytes` / ``np.dtype(...).itemsize``
    — never a hard-coded ``4``/``8`` and never a bare
    ``np.float64``/``"float64"`` default.  The ``recv_timeout * 2`` and
    ``bytes_per_scalar = 4`` bugs of PRs 3/7 were both silent-constant
    bugs of exactly this shape.

``metering``
    Payload traffic flows through the :class:`~repro.dist.transport.ByteMeter`
    machinery: raw channel primitives (``conn.send`` / ``pipe.recv`` /
    ``SharedMemory``) are the endpoint layer's privilege
    (``# repro-lint: layer=endpoint``) — anywhere else they would move
    bytes the ledger never sees.

``kernel-purity``
    Split-operator SpMM goes through the :mod:`repro.tensor.kernels`
    registry: direct scipy matmuls on a
    :class:`~repro.tensor.sparse.SplitOperator`'s block attributes are
    the kernel layer's privilege (``# repro-lint: layer=kernels``).

``determinism``
    Seeded/metered regions stay reproducible and honestly timed: no
    legacy global-state ``np.random.*`` calls, no unseeded
    ``np.random.default_rng()``, and no wall-clock ``time.time()``
    (monotonic clocks only — wall clocks jump under NTP and DST).
"""

from __future__ import annotations

import ast
from typing import List

from .engine import Diagnostic, LintPass, SourceModule, register_pass

__all__ = [
    "DtypeWidthPass",
    "MeteringPass",
    "KernelPurityPass",
    "DeterminismPass",
]

#: Integer literals that smell like a scalar wire width.
_WIDTH_LITERALS = (4, 8)
#: Names whose assignment/keyword must never take a literal width.
_WIDTH_NAME_FRAGMENTS = ("bytes_per_scalar", "nbytes", "itemsize")
#: Operand text fragments that mark a multiplication as width-arithmetic.
_SIZEISH_FRAGMENTS = (
    "ndim", "size", "count", "len(", "fields", "scalars", "n_rows", "dim",
)
#: Float dtype literals that must route through resolve_dtype.
_FLOAT_DTYPE_ATTRS = ("float32", "float64")
_FLOAT_DTYPE_STRINGS = ("float32", "float64")


def _attr_chain(node: ast.AST) -> str:
    """Dotted text of a Name/Attribute chain ('' for anything else)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _is_float_dtype_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Attribute) and node.attr in _FLOAT_DTYPE_ATTRS:
        return _attr_chain(node).startswith(("np.", "numpy."))
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, str)
        and node.value in _FLOAT_DTYPE_STRINGS
    )


def _is_width_literal(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Constant)
        and type(node.value) is int
        and node.value in _WIDTH_LITERALS
    )


class DtypeWidthPass(LintPass):
    rule = "dtype-width"
    title = "scalar widths derive from the dtype policy"
    description = (
        "hard-coded 4/8 byte constants and bare float32/float64 literals "
        "must route through scalar_nbytes()/resolve_dtype()"
    )

    _HINT_WIDTH = (
        "derive the width from the dtype policy: scalar_nbytes(dtype) for "
        "wire scalars, np.dtype(np.int64).itemsize for framing words"
    )
    _HINT_DTYPE = (
        "take dtype from resolve_dtype()/the configured run instead of a "
        "literal (define sanctioned constants once and suppress with a "
        "reason)"
    )

    def run(self, module: SourceModule) -> List[Diagnostic]:
        if module.has_layer("dtype-policy"):
            return []  # the policy module is where the widths live
        out: List[Diagnostic] = []
        for node in ast.walk(module.tree):
            out.extend(self._check_width_names(module, node))
            out.extend(self._check_width_arith(module, node))
            out.extend(self._check_dtype_literals(module, node))
        return out

    # -- literal 4/8 bound to a width-ish name --------------------------
    def _check_width_names(self, module, node):
        targets: List[str] = []
        value = None
        if isinstance(node, ast.Assign):
            targets = [_attr_chain(t) for t in node.targets]
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [_attr_chain(node.target)]
            value = node.value
        elif isinstance(node, ast.keyword) and node.arg:
            targets = [node.arg]
            value = node.value
        if value is None or not _is_width_literal(value):
            return []
        for target in targets:
            name = target.rsplit(".", 1)[-1].lower()
            if any(frag in name for frag in _WIDTH_NAME_FRAGMENTS):
                return [self.diag(
                    module, value,
                    f"literal byte width {value.value} bound to "
                    f"{target!r} — widths must derive from the dtype",
                    self._HINT_WIDTH,
                )]
        return []

    # -- 4/8 multiplying a size-ish operand -----------------------------
    def _check_width_arith(self, module, node):
        if not (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult)):
            return []
        for literal, other in ((node.left, node.right),
                               (node.right, node.left)):
            if not _is_width_literal(literal):
                continue
            other_text = module.segment(other).lower()
            if any(frag in other_text for frag in _SIZEISH_FRAGMENTS):
                return [self.diag(
                    module, literal,
                    f"width-arithmetic with a literal {literal.value} "
                    f"(× {other_text.strip() or '<expr>'})",
                    self._HINT_WIDTH,
                )]
        return []

    # -- bare float dtype literals in defaults/dtype bindings -----------
    def _check_dtype_literals(self, module, node):
        out = []
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_float_dtype_literal(default):
                    out.append(self.diag(
                        module, default,
                        "float dtype literal as a parameter default",
                        self._HINT_DTYPE,
                    ))
        elif isinstance(node, ast.Assign):
            if _is_float_dtype_literal(node.value) and any(
                "dtype" in _attr_chain(t).lower() for t in node.targets
            ):
                out.append(self.diag(
                    module, node.value,
                    "float dtype literal assigned to a dtype binding",
                    self._HINT_DTYPE,
                ))
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            # Covers dataclass field defaults like `dtype: str = "float64"`.
            if _is_float_dtype_literal(node.value):
                out.append(self.diag(
                    module, node.value,
                    "float dtype literal as an annotated default",
                    self._HINT_DTYPE,
                ))
        return out


class MeteringPass(LintPass):
    rule = "metering"
    title = "payload traffic flows through the byte meter"
    description = (
        "raw channel primitives (pipe/conn send/recv, SharedMemory) are "
        "the endpoint layer's privilege; anywhere else they bypass the "
        "ledger"
    )

    _CHANNEL_METHODS = ("send", "recv", "send_bytes", "recv_bytes", "poll")
    _CHANNEL_RECEIVERS = ("conn", "pipe", "sock", "channel")
    _RAW_CONSTRUCTORS = ("Pipe", "SharedMemory")
    _HINT = (
        "route payloads through Endpoint/Transport (which meter via "
        "ByteMeter); raw channels belong to files marked "
        "'# repro-lint: layer=endpoint'"
    )

    def run(self, module: SourceModule) -> List[Diagnostic]:
        if module.has_layer("endpoint"):
            return []
        out: List[Diagnostic] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                receiver = _attr_chain(func.value).lower()
                receiver = receiver or module.segment(func.value).lower()
                if func.attr in self._CHANNEL_METHODS and any(
                    frag in receiver for frag in self._CHANNEL_RECEIVERS
                ):
                    out.append(self.diag(
                        module, node,
                        f"raw channel call {receiver}.{func.attr}() outside "
                        "the endpoint layer bypasses the byte meter",
                        self._HINT,
                    ))
                    continue
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else ""
            )
            if name in self._RAW_CONSTRUCTORS:
                out.append(self.diag(
                    module, node,
                    f"raw transport primitive {name}() constructed outside "
                    "the endpoint layer",
                    self._HINT,
                ))
        return out


class KernelPurityPass(LintPass):
    rule = "kernel-purity"
    title = "split-SpMM goes through the kernel registry"
    description = (
        "direct scipy matmuls on SplitOperator block attributes are the "
        "kernel layer's privilege; everything else dispatches via "
        "op.matmul()/op.rmatmul()"
    )

    #: Attribute names that identify a split-operator block.
    _BLOCK_ATTRS = (
        "fused_csr", "fused_csr_t", "inner_t", "boundary_t", "boundary_csr",
    )
    _HINT = (
        "dispatch through the registered backend (op.matmul / op.rmatmul "
        "or kernels.get_backend().split_spmm_*); raw block matmuls belong "
        "to files marked '# repro-lint: layer=kernels'"
    )

    def _is_block_attr(self, node: ast.AST) -> bool:
        return isinstance(node, ast.Attribute) and node.attr in self._BLOCK_ATTRS

    def run(self, module: SourceModule) -> List[Diagnostic]:
        if module.has_layer("kernels"):
            return []
        out: List[Diagnostic] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
                for side in (node.left, node.right):
                    if self._is_block_attr(side):
                        out.append(self.diag(
                            module, node,
                            f"direct matmul on split block "
                            f"'.{side.attr}' outside the kernel layer",
                            self._HINT,
                        ))
                        break
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "dot"
                and self._is_block_attr(node.func.value)
            ):
                out.append(self.diag(
                    module, node,
                    f"direct .dot() on split block "
                    f"'.{node.func.value.attr}' outside the kernel layer",
                    self._HINT,
                ))
        return out


class DeterminismPass(LintPass):
    rule = "determinism"
    title = "seeded regions stay seeded; clocks stay monotonic"
    description = (
        "no legacy global-state np.random.* calls, no stdlib "
        "random.* module-global calls, no unseeded default_rng(), "
        "no wall-clock time.time() in library code"
    )

    _LEGACY_RANDOM = (
        "rand", "randn", "randint", "random", "seed", "choice", "shuffle",
        "permutation", "normal", "uniform",
    )
    #: Stdlib ``random`` module-level functions share one hidden Mersenne
    #: state across every caller in the process — same reproducibility
    #: hazard as the numpy legacy API.  ``random.Random(seed)`` instances
    #: are fine (the chain then starts with the instance, not ``random``).
    _STDLIB_RANDOM = (
        "random", "seed", "randint", "randrange", "choice", "choices",
        "shuffle", "sample", "uniform", "gauss", "betavariate",
        "expovariate", "getrandbits", "random_bytes", "normalvariate",
    )
    _WALL_CLOCKS = ("time.time", "datetime.now", "datetime.datetime.now")
    _HINT_RNG = (
        "thread an explicit np.random.Generator (default_rng(seed)) "
        "through the call path"
    )
    _HINT_CLOCK = (
        "use time.perf_counter()/time.monotonic() — wall clocks jump "
        "under NTP/DST and break measured-seconds accounting"
    )

    def run(self, module: SourceModule) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if chain in ("np.random.default_rng", "numpy.random.default_rng"):
                if not node.args and not node.keywords:
                    out.append(self.diag(
                        module, node,
                        "unseeded np.random.default_rng() draws "
                        "irreproducible state",
                        self._HINT_RNG,
                    ))
            elif chain.startswith(("np.random.", "numpy.random.")):
                if chain.rsplit(".", 1)[-1] in self._LEGACY_RANDOM:
                    out.append(self.diag(
                        module, node,
                        f"global-state RNG call {chain}() — hidden, "
                        "process-wide, unseedable per run",
                        self._HINT_RNG,
                    ))
            elif chain.startswith("random.") and chain.count(".") == 1 \
                    and chain.rsplit(".", 1)[-1] in self._STDLIB_RANDOM:
                out.append(self.diag(
                    module, node,
                    f"stdlib module-global RNG call {chain}() — one "
                    "hidden Mersenne state shared process-wide",
                    "use a local random.Random(seed) instance (or the "
                    "numpy Generator already threaded through)",
                ))
            elif chain in self._WALL_CLOCKS:
                out.append(self.diag(
                    module, node,
                    f"wall-clock read {chain}() in library code",
                    self._HINT_CLOCK,
                ))
        return out


register_pass(DtypeWidthPass())
register_pass(MeteringPass())
register_pass(KernelPurityPass())
register_pass(DeterminismPass())
