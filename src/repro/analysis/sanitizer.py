"""Runtime lock-order sanitizer: the dynamic mirror of ``lock-order``.

The static :class:`~repro.analysis.concurrency.LockOrderPass` proves the
*source* never nests ``with A: with B:`` against ``with B: with A:``.
This module checks the *observed* order on live lock instances, which
catches what static analysis cannot: inversions routed through
callbacks, inversions between locks the linter could not name, and
inversions that only two particular threads interleave into.

Design: :func:`make_lock` is the factory the transport/executor layers
call wherever they used to call ``threading.Lock()``.  When sanitising
is off (the default — ``REPRO_SANITIZE`` unset or without ``locks``),
it returns a plain ``threading.Lock`` and costs nothing.  When on, it
returns a :class:`SanitizedLock` that

* keeps a thread-local stack of currently-held sanitized locks, and
* maintains one process-global order graph: first time lock *A* is
  held while *B* is acquired, the edge A→B is recorded; a later
  acquisition of *A* while *B* is held is an observed inversion and
  raises :class:`LockOrderError` at the acquisition site — i.e. the
  deadlock is reported deterministically on the first run that
  *could* have deadlocked, instead of hanging one run in a thousand.

Order is tracked per lock *name* (the label passed to
:func:`make_lock`), so two instances created at the same site — one
per ring, say — form one order class, matching the static pass's
subscript-wildcarding.  The graph is intentionally never pruned on
release: lock order is a program-wide law, not a per-window one.

Enable with ``REPRO_SANITIZE=locks`` (comma-separated list).  Tests
use :func:`reset` to clear the global graph between cases and
:func:`install_sanitizer`/:func:`locks_enabled` to force the mode
without touching the environment.

The ``schedule`` token enables the third sanitizer in this module: the
runtime mirror of the static ``comm-deadlock`` / ``comm-exchange``
passes.  :func:`begin_schedule_exploration` gives ``LocalTransport`` a
:class:`ScheduleExplorer` whose channels use *rendezvous* semantics —
a send does not complete until its receive happens, exactly the
MPI-strict model the static simulator composes — plus a deterministic,
seed-driven jitter at every blocking point so different
``REPRO_SCHEDULE_SEED`` values explore different interleavings.  A
confirmed cross-rank wait cycle (or a rank blocking on a peer that
already returned) raises :class:`DeadlockError` with a replayable
schedule trace instead of hanging; a rank that returns with a posted
exchange handle it never completed raises :class:`ScheduleError`.

The ``protocol`` token enables the second sanitizer in this module:
the runtime mirror of the static ``typestate`` pass.
:func:`wrap_protocol` wraps a live transport/endpoint/handle in a
:class:`TypestateProxy` that advances the *same* state tables
(:data:`repro.analysis.typestate.PROTOCOLS`) on every protocol-event
method call and raises :class:`ProtocolError` at the first illegal
transition — ``send`` on a closed endpoint, a handle completed twice,
``launch`` re-entered while one is in flight.  Unlike the static pass
(which sees whole call statements), the proxy advances ``e`` on entry
and the paired ``e_done`` on return, so *re-entrant* violations that
only a second thread can produce are caught too.  Proxies forward
everything else untouched, report the wrapped object's ``__class__``
(``isinstance`` keeps working), and unwrap proxied arguments before
forwarding, so transports cannot observe the difference.
"""

from __future__ import annotations

import collections
import os
import threading
import time
import zlib
from queue import Empty
from typing import Dict, List, Optional, Set, Tuple

__all__ = [
    "DeadlockError",
    "LockOrderError",
    "ProtocolError",
    "SanitizedLock",
    "ScheduleError",
    "ScheduleExplorer",
    "TypestateProxy",
    "begin_schedule_exploration",
    "end_schedule_exploration",
    "install_protocol_sanitizer",
    "install_sanitizer",
    "install_schedule_sanitizer",
    "locks_enabled",
    "make_lock",
    "protocol_enabled",
    "reset",
    "reset_graph",
    "schedule_checkpoint",
    "schedule_enabled",
    "schedule_note_complete",
    "schedule_note_post",
    "schedule_seed",
    "schedule_wait_scope",
    "wrap_protocol",
]

ENV_VAR = "REPRO_SANITIZE"

#: Forced mode: None → consult the environment, True/False → override.
_forced: Optional[bool] = None
_forced_protocol: Optional[bool] = None

#: Global observed-order graph over lock *names*: name -> names that
#: have been acquired while it was held.
_order: Dict[str, Set[str]] = {}
#: First site (holder-name, acquired-name) was observed at, for the
#: error message: (thread name, holder stack snapshot).
_witness: Dict[Tuple[str, str], str] = {}
_graph_lock = threading.Lock()

_tls = threading.local()


class LockOrderError(RuntimeError):
    """An observed lock-acquisition order inversion (potential deadlock)."""


def locks_enabled() -> bool:
    """True when lock sanitising is active for new :func:`make_lock` calls."""
    if _forced is not None:
        return _forced
    tokens = os.environ.get(ENV_VAR, "")
    return "locks" in {t.strip() for t in tokens.split(",")}


def install_sanitizer(enabled: bool = True) -> None:
    """Force sanitising on/off regardless of ``REPRO_SANITIZE``.

    Affects locks created *after* the call; existing plain locks stay
    plain.  Pass ``None``-like reset via :func:`reset` to go back to
    environment-controlled mode.
    """
    global _forced
    _forced = enabled


def reset_graph() -> None:
    """Clear the observed-order graph only.

    Rank workers call this at start-of-rank: lock order is a law *per
    process*, and a forked worker must not inherit edges the parent
    process observed among its own (distinct) lock instances.
    """
    with _graph_lock:
        _order.clear()
        _witness.clear()


def protocol_enabled() -> bool:
    """True when typestate proxying is active for :func:`wrap_protocol`."""
    if _forced_protocol is not None:
        return _forced_protocol
    tokens = os.environ.get(ENV_VAR, "")
    return "protocol" in {t.strip() for t in tokens.split(",")}


def install_protocol_sanitizer(enabled: bool = True) -> None:
    """Force protocol sanitising on/off regardless of ``REPRO_SANITIZE``.

    Affects :func:`wrap_protocol` calls made *after* this; objects
    already wrapped keep their proxies.
    """
    global _forced_protocol
    _forced_protocol = enabled


def reset() -> None:
    """Clear the global order graph and forced modes (test isolation)."""
    global _forced, _forced_protocol
    global _forced_schedule, _forced_seed, _schedule_explorer
    _forced = None
    _forced_protocol = None
    _forced_schedule = None
    _forced_seed = None
    if _schedule_explorer is not None:
        _schedule_explorer.shutdown()
        _schedule_explorer = None
    reset_graph()


def _held_stack() -> List[str]:
    stack = getattr(_tls, "held", None)
    if stack is None:
        stack = _tls.held = []
    return stack


def _check_and_record(name: str) -> None:
    """Record edges holder→``name``; raise on an inverted edge."""
    held = _held_stack()
    if not held:
        return
    # repro-lint: ignore[blocking-in-lock] — dict lookups only; the
    # graph lock guards pure in-memory bookkeeping, never I/O.
    with _graph_lock:
        for holder in held:
            if holder == name:
                raise LockOrderError(
                    f"lock {name!r} acquired while already held by this "
                    f"thread's stack {held!r} — self-nesting (non-reentrant "
                    "Lock would deadlock here)"
                )
            # An established name→holder edge means some thread acquired
            # `holder` while holding `name`; we are doing the reverse.
            if holder in _order.get(name, ()):
                first = _witness.get((name, holder), "?")
                raise LockOrderError(
                    f"lock-order inversion: acquiring {name!r} while "
                    f"holding {holder!r}, but the order {name!r} → "
                    f"{holder!r} was previously observed ({first}); "
                    "this interleaving can deadlock"
                )
        for holder in held:
            if name not in _order.setdefault(holder, set()):
                _order[holder].add(name)
                _witness[(holder, name)] = (
                    f"first seen on thread {threading.current_thread().name!r}"
                    f" with held stack {held!r}"
                )


class SanitizedLock:
    """A ``threading.Lock`` wrapper that reports acquisition order.

    Context-manager and ``acquire``/``release`` compatible with the
    plain lock it replaces; the order check runs *before* blocking on
    the underlying lock, so a true inversion raises instead of
    deadlocking.
    """

    __slots__ = ("_name", "_lock")

    def __init__(self, name: str) -> None:
        self._name = name
        self._lock = threading.Lock()

    @property
    def name(self) -> str:
        return self._name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        _check_and_record(self._name)
        got = self._lock.acquire(blocking, timeout)
        if got:
            _held_stack().append(self._name)
        return got

    def release(self) -> None:
        held = _held_stack()
        # Remove the most recent matching hold (releases may be
        # out-of-order in principle; LIFO is the overwhelming case).
        for i in range(len(held) - 1, -1, -1):
            if held[i] == self._name:
                del held[i]
                break
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "locked" if self._lock.locked() else "unlocked"
        return f"SanitizedLock({self._name!r}, {state})"


def make_lock(name: str):
    """A lock for production code: plain ``threading.Lock`` normally,
    :class:`SanitizedLock` under ``REPRO_SANITIZE=locks``.

    ``name`` labels the lock's order *class* — instances sharing a
    name share ordering constraints (use one name per creation site).
    """
    if locks_enabled():
        return SanitizedLock(name)
    return threading.Lock()


# ----------------------------------------------------------------------
# Protocol (typestate) sanitizer
# ----------------------------------------------------------------------
class ProtocolError(RuntimeError):
    """An observed illegal typestate transition on a live object."""


def _unwrap(value):
    return object.__getattribute__(value, "_ts_obj") \
        if isinstance(value, TypestateProxy) else value


class TypestateProxy:
    """Forwarding wrapper that advances a typestate table per call.

    Protocol-event methods (the protocol's alphabet) are intercepted:
    the event fires on *entry* (raising :class:`ProtocolError` while
    still in the old state if the table has no transition), and the
    paired ``<event>_done`` — when the table declares one — fires on
    return, which is what lets a *re-entrant* ``launch`` raise while a
    sequential one stays legal.  Declared argument events
    (``complete_exchange(handle)`` → the handle's ``complete``) fire on
    proxied arguments, and protocol-typed return values (an exchange
    handle from ``post_exchange``) come back pre-wrapped so the whole
    object graph stays under the sanitizer.  Everything else forwards
    untouched; ``__class__`` reports the wrapped type so ``isinstance``
    checks in the transport layer keep passing.
    """

    __slots__ = ("_ts_obj", "_ts_protocol", "_ts_state", "_ts_lock")

    def __init__(self, obj, protocol) -> None:
        object.__setattr__(self, "_ts_obj", obj)
        object.__setattr__(self, "_ts_protocol", protocol)
        object.__setattr__(self, "_ts_state", protocol.start)
        object.__setattr__(self, "_ts_lock", threading.Lock())

    # -- state machine --------------------------------------------------
    def _ts_advance(self, event: str) -> None:
        protocol = object.__getattribute__(self, "_ts_protocol")
        lock = object.__getattribute__(self, "_ts_lock")
        with lock:
            state = object.__getattribute__(self, "_ts_state")
            nxt, message = protocol.advance(state, event, auto_done=False)
            if nxt is None:
                obj = object.__getattribute__(self, "_ts_obj")
                raise ProtocolError(
                    f"{protocol.name} protocol violation on "
                    f"{type(obj).__name__}: {message} "
                    f"(state {state!r}, event {event!r})"
                )
            object.__setattr__(self, "_ts_state", nxt)

    def _ts_call(self, method: str, bound, args, kwargs):
        protocol = object.__getattribute__(self, "_ts_protocol")
        fire = method in protocol.alphabet
        if fire:
            self._ts_advance(method)
        # Declared argument events: the *argument* is the protocol
        # object (an exchange handle handed back for completion).
        if args and isinstance(args[0], TypestateProxy):
            arg = args[0]
            arg_protocol = object.__getattribute__(arg, "_ts_protocol")
            arg_event = arg_protocol.arg_events.get(method)
            if arg_event is not None:
                arg._ts_advance(arg_event)
        try:
            result = bound(*[_unwrap(a) for a in args],
                           **{k: _unwrap(v) for k, v in kwargs.items()})
        finally:
            if fire:
                done = method + "_done"
                if any(e == done for _s, e in protocol.transitions):
                    self._ts_advance(done)
        # ``.method`` constructor patterns: this call *produced* a
        # protocol object (post_exchange -> an exchange handle).
        if result is not None:
            for table in _protocol_tables():
                if "." + method in table.constructors:
                    return wrap_protocol(result, table)
        return wrap_protocol(result)

    # -- transparent forwarding ----------------------------------------
    def __getattr__(self, name: str):
        obj = object.__getattribute__(self, "_ts_obj")
        value = getattr(obj, name)
        if callable(value) and not name.startswith("__"):
            protocol = object.__getattribute__(self, "_ts_protocol")
            if name in protocol.alphabet or any(
                name in p.arg_events for p in _protocol_tables()
            ):
                def guarded(*args, **kwargs):
                    return TypestateProxy._ts_call(
                        self, name, value, args, kwargs
                    )
                return guarded
        return value

    def __setattr__(self, name: str, value) -> None:
        setattr(object.__getattribute__(self, "_ts_obj"), name, value)

    @property
    def __class__(self):  # noqa: F811 - deliberate isinstance lie
        return type(object.__getattribute__(self, "_ts_obj"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        obj = object.__getattribute__(self, "_ts_obj")
        state = object.__getattribute__(self, "_ts_state")
        return f"TypestateProxy({obj!r}, state={state!r})"


def _protocol_tables():
    from .typestate import PROTOCOLS

    return PROTOCOLS


def wrap_protocol(obj, protocol=None):
    """``obj`` wrapped in a :class:`TypestateProxy` when the protocol
    sanitizer is on and a table governs its class; ``obj`` unchanged
    otherwise (including when it is already wrapped).  This is the
    identity function in production: transports call it at the worker
    boundary unconditionally and pay nothing unless
    ``REPRO_SANITIZE=protocol`` is set.
    """
    if not protocol_enabled() or isinstance(obj, TypestateProxy):
        return obj
    if protocol is None:
        from .typestate import protocol_for_class

        protocol = protocol_for_class(type(obj).__name__)
    if protocol is None:
        return obj
    return TypestateProxy(obj, protocol)


# ----------------------------------------------------------------------
# Schedule-exploration sanitizer
# ----------------------------------------------------------------------
class ScheduleError(RuntimeError):
    """A cross-rank communication invariant violated at runtime."""


class DeadlockError(ScheduleError):
    """A confirmed cross-rank wait that can never be satisfied."""


SEED_ENV_VAR = "REPRO_SCHEDULE_SEED"

_forced_schedule: Optional[bool] = None
_forced_seed: Optional[int] = None
_schedule_explorer: Optional["ScheduleExplorer"] = None

#: Poll interval of blocked channel operations and the quiet window a
#: suspected deadlock must survive before it is *confirmed* (every
#: active rank blocked and nothing moved for this long).
_POLL_SECONDS = 0.05
_CONFIRM_SECONDS = 0.25
_TRACE_CAP = 512


def schedule_enabled() -> bool:
    """True when ``LocalTransport.launch`` should explore schedules."""
    if _forced_schedule is not None:
        return _forced_schedule
    tokens = os.environ.get(ENV_VAR, "")
    return "schedule" in {t.strip() for t in tokens.split(",")}


def schedule_seed() -> int:
    """The interleaving seed (``REPRO_SCHEDULE_SEED``, default 0)."""
    if _forced_seed is not None:
        return _forced_seed
    try:
        return int(os.environ.get(SEED_ENV_VAR, "0"))
    except ValueError:
        return 0


def install_schedule_sanitizer(enabled: bool = True,
                               seed: Optional[int] = None) -> None:
    """Force schedule exploration on/off regardless of the environment.

    Affects launches started *after* the call; ``seed`` (when given)
    overrides ``REPRO_SCHEDULE_SEED`` the same way.
    """
    global _forced_schedule, _forced_seed
    _forced_schedule = enabled
    if seed is not None:
        _forced_seed = seed


def begin_schedule_exploration(
    num_ranks: int,
) -> Optional["ScheduleExplorer"]:
    """The explorer for one launch, or ``None`` when the mode is off."""
    global _schedule_explorer
    if not schedule_enabled():
        return None
    explorer = ScheduleExplorer(num_ranks, schedule_seed())
    _schedule_explorer = explorer
    return explorer


def end_schedule_exploration(
    explorer: Optional["ScheduleExplorer"],
) -> None:
    """Tear an explorer down; releases any still-blocked channel ops."""
    global _schedule_explorer
    if explorer is None:
        return
    explorer.shutdown()
    if _schedule_explorer is explorer:
        _schedule_explorer = None


def schedule_note_post(rank: int, handle) -> None:
    """Record a posted exchange handle (leak check at rank return)."""
    explorer = _schedule_explorer
    if explorer is not None:
        explorer.note_post(rank, handle)


def schedule_note_complete(rank: int, handle) -> None:
    """Mark a posted exchange handle as completed."""
    explorer = _schedule_explorer
    if explorer is not None:
        explorer.note_complete(rank, handle)


def schedule_checkpoint(label: str) -> None:
    """A jitter point in rank code: under exploration, sleeps a
    deterministic seed-dependent amount and records the trace entry;
    free when the mode is off."""
    explorer = _schedule_explorer
    if explorer is not None:
        explorer.checkpoint(label)


class _NullScope:
    __slots__ = ()

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SCOPE = _NullScope()


def schedule_wait_scope(kind: str, src: int, dst: int):
    """Context manager marking the calling thread as blocked in a
    cross-rank wait (``kind`` in ``send``/``recv``/``join``) so the
    deadlock detector can see waits that happen outside the explorer's
    own channels (a blocking send joining its ticket)."""
    explorer = _schedule_explorer
    if explorer is None:
        return _NULL_SCOPE
    return _WaitScope(explorer, kind, src, dst)


class _WaitScope:
    __slots__ = ("_explorer", "_kind", "_src", "_dst")

    def __init__(self, explorer: "ScheduleExplorer", kind: str,
                 src: int, dst: int) -> None:
        self._explorer = explorer
        self._kind = kind
        self._src = src
        self._dst = dst

    def __enter__(self) -> "_WaitScope":
        with self._explorer._cond:
            self._explorer._enter_wait_locked(self._kind, self._src,
                                              self._dst)
        return self

    def __exit__(self, *exc) -> bool:
        with self._explorer._cond:
            self._explorer._exit_wait_locked()
        return False


class ScheduleExplorer:
    """Deterministic interleaving explorer for one ``launch``.

    Owns the channels between ranks (:meth:`make_channel` is a drop-in
    for the plain ``queue.Queue`` wires), a seed-driven jitter at every
    blocking point, the rank lifecycle (started / completed /
    finished), the posted-handle registry, and the global wait-for
    bookkeeping the deadlock detector runs on.

    Rendezvous semantics: a channel ``put`` deposits its message
    immediately (the receiver can take it) but does not *return* until
    the receiver consumed it — the MPI-strict model under which the
    static ``comm-deadlock`` pass verified the code.  A program clean
    under this explorer is clean under both buffered and unbuffered
    transports.
    """

    def __init__(self, num_ranks: int, seed: int) -> None:
        self.num_ranks = num_ranks
        self.seed = seed
        self._cond = threading.Condition()
        self._trace: "collections.deque[str]" = collections.deque(
            maxlen=_TRACE_CAP
        )
        self._trace_seq = 0
        self._progress_at = time.monotonic()
        # Thread idents are REUSED once a thread dies, so the
        # ident->rank map only ever describes live threads (entries are
        # dropped in rank_finished); rank lifecycle is tracked by rank
        # number in _started/_finished.
        self._rank_of: Dict[int, int] = {}  # live thread ident -> rank
        self._started: Set[int] = set()
        self._finished: Set[int] = set()
        self._main_waits: Dict[int, int] = {}  # rank -> blocked depth
        self._wait_info: Dict[int, Tuple[str, int, int]] = {}
        self._posted: Dict[int, Dict[int, str]] = {}
        self._dead: Optional[str] = None
        self._jitter_counts: Dict[Tuple, int] = {}

    # -- wiring --------------------------------------------------------
    def make_channel(self, src: int, dst: int) -> "_ScheduleChannel":
        return _ScheduleChannel(self, src, dst)

    # -- rank lifecycle ------------------------------------------------
    def rank_started(self, rank: int) -> None:
        with self._cond:
            self._rank_of[threading.get_ident()] = rank
            self._started.add(rank)
            self._note_locked(f"rank {rank} started")
            self._bump_locked()

    def rank_completed(self, rank: int) -> None:
        """The worker returned normally: check for leaked handles."""
        with self._cond:
            leaked = self._posted.get(rank) or {}
            if leaked:
                tags = sorted(leaked.values())
                raise ScheduleError(
                    f"rank {rank} returned with {len(leaked)} posted "
                    f"exchange handle(s) never completed (tags {tags}) "
                    "— their deferred receives leaked\n"
                    + self._format_trace_locked()
                )

    def rank_finished(self, rank: int) -> None:
        """The worker thread is done (normally or not)."""
        with self._cond:
            self._finished.add(rank)
            # This thread's ident is about to be reusable by any new
            # thread (e.g. a later rank's sender) — forget it now so
            # the reused ident is not mistaken for this rank.
            self._rank_of.pop(threading.get_ident(), None)
            self._note_locked(f"rank {rank} finished")
            self._bump_locked()

    # -- exchange-handle registry --------------------------------------
    def note_post(self, rank: int, handle) -> None:
        with self._cond:
            tag = getattr(handle, "tag", "?")
            self._posted.setdefault(rank, {})[id(handle)] = str(tag)
            self._note_locked(f"rank {rank} posted exchange tag {tag!r}")

    def note_complete(self, rank: int, handle) -> None:
        with self._cond:
            self._posted.get(rank, {}).pop(id(handle), None)
            tag = getattr(handle, "tag", "?")
            self._note_locked(
                f"rank {rank} completed exchange tag {tag!r}"
            )

    # -- jitter + checkpoints ------------------------------------------
    def jitter(self, *key) -> None:
        """Deterministic seed-dependent pause: crc32 of the seed, the
        site key, and a per-key visit counter — no global RNG state, so
        the interleaving replays exactly from the seed alone."""
        with self._cond:
            count = self._jitter_counts.get(key, 0) + 1
            self._jitter_counts[key] = count
        digest = zlib.crc32(f"{self.seed}:{key}:{count}".encode())
        pause = (digest % 8) * 0.0004
        if pause:
            time.sleep(pause)

    def checkpoint(self, label: str) -> None:
        self.jitter("checkpoint", label)
        with self._cond:
            self._note_locked(f"checkpoint {label}")
            self._bump_locked()

    def shutdown(self) -> None:
        with self._cond:
            if self._dead is None:
                self._dead = (
                    "schedule exploration ended (launch torn down)"
                )
            self._cond.notify_all()

    # -- trace ---------------------------------------------------------
    def format_trace(self) -> str:
        with self._cond:
            return self._format_trace_locked()

    def _format_trace_locked(self) -> str:
        lines = [
            f"schedule trace (seed {self.seed}, most recent last):"
        ]
        lines.extend(f"  {entry}" for entry in self._trace)
        lines.append(
            f"  replay: {ENV_VAR}=schedule {SEED_ENV_VAR}={self.seed}"
        )
        return "\n".join(lines)

    def _note_locked(self, text: str) -> None:
        self._trace_seq += 1
        self._trace.append(f"{self._trace_seq:05d} {text}")

    def _bump_locked(self) -> None:
        self._progress_at = time.monotonic()
        self._cond.notify_all()

    # -- wait bookkeeping ----------------------------------------------
    def _enter_wait_locked(self, kind: str, src: int, dst: int) -> None:
        ident = threading.get_ident()
        self._wait_info[ident] = (kind, src, dst)
        rank = self._rank_of.get(ident)
        if rank is not None:
            self._main_waits[rank] = self._main_waits.get(rank, 0) + 1
        # Joining a wait is itself a state change: the confirm window
        # measures quiescence of the whole wait-for graph, so it must
        # restart here — otherwise a rank that blocks an instant before
        # its peer's deposit lands is a false confirmed deadlock.
        self._progress_at = time.monotonic()

    def _exit_wait_locked(self) -> None:
        ident = threading.get_ident()
        self._wait_info.pop(ident, None)
        rank = self._rank_of.get(ident)
        if rank is not None:
            self._main_waits[rank] = self._main_waits.get(rank, 1) - 1
        self._progress_at = time.monotonic()

    def _confirm_deadlock_locked(self) -> Optional[str]:
        """Called by a blocked channel op after a quiet poll: confirm
        only when every rank has started, every unfinished rank's own
        thread is inside a blocking wait, and nothing has progressed
        for the whole confirm window — then describe the wait-for
        state and wake every blocked thread so none of them hangs."""
        if self._dead is not None:
            return self._dead
        if time.monotonic() - self._progress_at < _CONFIRM_SECONDS:
            return None
        if len(self._started) < self.num_ranks:
            return None
        active = [r for r in range(self.num_ranks)
                  if r not in self._finished]
        if not active:
            return None
        if any(self._main_waits.get(rank, 0) == 0 for rank in active):
            return None
        waits: List[str] = []
        for ident, (kind, src, dst) in sorted(self._wait_info.items()):
            if kind == "recv":
                text = f"rank {dst} blocked receiving from rank {src}"
                if src in self._finished:
                    text += " (which already returned)"
            elif kind == "send":
                text = (
                    f"rank {src} blocked sending to rank {dst} "
                    "(message deposited, never received)"
                )
            else:
                text = (
                    f"rank {src} blocked completing a send to rank {dst}"
                )
            waits.append(text)
        reason = (
            "confirmed deadlock under rendezvous semantics: "
            + "; ".join(waits)
            + (f"; finished ranks: {sorted(self._finished)}"
               if self._finished else "")
            + "\n" + self._format_trace_locked()
        )
        self._dead = reason
        self._cond.notify_all()
        return reason


class _ScheduleChannel:
    """Rendezvous drop-in for one directional ``queue.Queue`` wire.

    ``get`` keeps the plain queue's contract — ``queue.Empty`` after
    ``timeout`` — so the transport's timeout-to-``TransportError``
    path is untouched; both ends raise :class:`DeadlockError` instead
    the moment the explorer confirms a global deadlock.
    """

    __slots__ = ("_explorer", "src", "dst", "_items")

    def __init__(self, explorer: ScheduleExplorer, src: int,
                 dst: int) -> None:
        self._explorer = explorer
        self.src = src
        self.dst = dst
        self._items: List[List[object]] = []

    def put(self, item, block: bool = True,
            timeout: Optional[float] = None) -> None:
        explorer = self._explorer
        explorer.jitter("put", self.src, self.dst)
        entry: List[object] = [item, False]
        with explorer._cond:
            explorer._note_locked(
                f"put {self.src}->{self.dst} deposited"
            )
            self._items.append(entry)
            explorer._bump_locked()
            explorer._enter_wait_locked("send", self.src, self.dst)
            try:
                while not entry[1]:
                    if explorer._dead is not None:
                        raise DeadlockError(explorer._dead)
                    if not explorer._cond.wait(_POLL_SECONDS):
                        reason = explorer._confirm_deadlock_locked()
                        if reason is not None:
                            raise DeadlockError(reason)
            finally:
                explorer._exit_wait_locked()

    def get(self, block: bool = True,
            timeout: Optional[float] = None):
        explorer = self._explorer
        explorer.jitter("get", self.src, self.dst)
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        with explorer._cond:
            explorer._enter_wait_locked("recv", self.src, self.dst)
            try:
                while True:
                    if self._items:
                        entry = self._items.pop(0)
                        entry[1] = True
                        explorer._note_locked(
                            f"get {self.src}->{self.dst} consumed"
                        )
                        explorer._bump_locked()
                        return entry[0]
                    if explorer._dead is not None:
                        raise DeadlockError(explorer._dead)
                    window = _POLL_SECONDS
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise Empty
                        window = min(window, remaining)
                    if not explorer._cond.wait(window):
                        reason = explorer._confirm_deadlock_locked()
                        if reason is not None:
                            raise DeadlockError(reason)
            finally:
                explorer._exit_wait_locked()

    def qsize(self) -> int:
        with self._explorer._cond:
            return len(self._items)

    def empty(self) -> bool:
        return self.qsize() == 0
