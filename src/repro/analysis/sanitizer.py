"""Runtime lock-order sanitizer: the dynamic mirror of ``lock-order``.

The static :class:`~repro.analysis.concurrency.LockOrderPass` proves the
*source* never nests ``with A: with B:`` against ``with B: with A:``.
This module checks the *observed* order on live lock instances, which
catches what static analysis cannot: inversions routed through
callbacks, inversions between locks the linter could not name, and
inversions that only two particular threads interleave into.

Design: :func:`make_lock` is the factory the transport/executor layers
call wherever they used to call ``threading.Lock()``.  When sanitising
is off (the default — ``REPRO_SANITIZE`` unset or without ``locks``),
it returns a plain ``threading.Lock`` and costs nothing.  When on, it
returns a :class:`SanitizedLock` that

* keeps a thread-local stack of currently-held sanitized locks, and
* maintains one process-global order graph: first time lock *A* is
  held while *B* is acquired, the edge A→B is recorded; a later
  acquisition of *A* while *B* is held is an observed inversion and
  raises :class:`LockOrderError` at the acquisition site — i.e. the
  deadlock is reported deterministically on the first run that
  *could* have deadlocked, instead of hanging one run in a thousand.

Order is tracked per lock *name* (the label passed to
:func:`make_lock`), so two instances created at the same site — one
per ring, say — form one order class, matching the static pass's
subscript-wildcarding.  The graph is intentionally never pruned on
release: lock order is a program-wide law, not a per-window one.

Enable with ``REPRO_SANITIZE=locks`` (comma-separated list).  Tests
use :func:`reset` to clear the global graph between cases and
:func:`install_sanitizer`/:func:`locks_enabled` to force the mode
without touching the environment.

The ``protocol`` token enables the second sanitizer in this module:
the runtime mirror of the static ``typestate`` pass.
:func:`wrap_protocol` wraps a live transport/endpoint/handle in a
:class:`TypestateProxy` that advances the *same* state tables
(:data:`repro.analysis.typestate.PROTOCOLS`) on every protocol-event
method call and raises :class:`ProtocolError` at the first illegal
transition — ``send`` on a closed endpoint, a handle completed twice,
``launch`` re-entered while one is in flight.  Unlike the static pass
(which sees whole call statements), the proxy advances ``e`` on entry
and the paired ``e_done`` on return, so *re-entrant* violations that
only a second thread can produce are caught too.  Proxies forward
everything else untouched, report the wrapped object's ``__class__``
(``isinstance`` keeps working), and unwrap proxied arguments before
forwarding, so transports cannot observe the difference.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, List, Optional, Set, Tuple

__all__ = [
    "LockOrderError",
    "ProtocolError",
    "SanitizedLock",
    "TypestateProxy",
    "install_protocol_sanitizer",
    "install_sanitizer",
    "locks_enabled",
    "make_lock",
    "protocol_enabled",
    "reset",
    "reset_graph",
    "wrap_protocol",
]

ENV_VAR = "REPRO_SANITIZE"

#: Forced mode: None → consult the environment, True/False → override.
_forced: Optional[bool] = None
_forced_protocol: Optional[bool] = None

#: Global observed-order graph over lock *names*: name -> names that
#: have been acquired while it was held.
_order: Dict[str, Set[str]] = {}
#: First site (holder-name, acquired-name) was observed at, for the
#: error message: (thread name, holder stack snapshot).
_witness: Dict[Tuple[str, str], str] = {}
_graph_lock = threading.Lock()

_tls = threading.local()


class LockOrderError(RuntimeError):
    """An observed lock-acquisition order inversion (potential deadlock)."""


def locks_enabled() -> bool:
    """True when lock sanitising is active for new :func:`make_lock` calls."""
    if _forced is not None:
        return _forced
    tokens = os.environ.get(ENV_VAR, "")
    return "locks" in {t.strip() for t in tokens.split(",")}


def install_sanitizer(enabled: bool = True) -> None:
    """Force sanitising on/off regardless of ``REPRO_SANITIZE``.

    Affects locks created *after* the call; existing plain locks stay
    plain.  Pass ``None``-like reset via :func:`reset` to go back to
    environment-controlled mode.
    """
    global _forced
    _forced = enabled


def reset_graph() -> None:
    """Clear the observed-order graph only.

    Rank workers call this at start-of-rank: lock order is a law *per
    process*, and a forked worker must not inherit edges the parent
    process observed among its own (distinct) lock instances.
    """
    with _graph_lock:
        _order.clear()
        _witness.clear()


def protocol_enabled() -> bool:
    """True when typestate proxying is active for :func:`wrap_protocol`."""
    if _forced_protocol is not None:
        return _forced_protocol
    tokens = os.environ.get(ENV_VAR, "")
    return "protocol" in {t.strip() for t in tokens.split(",")}


def install_protocol_sanitizer(enabled: bool = True) -> None:
    """Force protocol sanitising on/off regardless of ``REPRO_SANITIZE``.

    Affects :func:`wrap_protocol` calls made *after* this; objects
    already wrapped keep their proxies.
    """
    global _forced_protocol
    _forced_protocol = enabled


def reset() -> None:
    """Clear the global order graph and forced modes (test isolation)."""
    global _forced, _forced_protocol
    _forced = None
    _forced_protocol = None
    reset_graph()


def _held_stack() -> List[str]:
    stack = getattr(_tls, "held", None)
    if stack is None:
        stack = _tls.held = []
    return stack


def _check_and_record(name: str) -> None:
    """Record edges holder→``name``; raise on an inverted edge."""
    held = _held_stack()
    if not held:
        return
    # repro-lint: ignore[blocking-in-lock] — dict lookups only; the
    # graph lock guards pure in-memory bookkeeping, never I/O.
    with _graph_lock:
        for holder in held:
            if holder == name:
                raise LockOrderError(
                    f"lock {name!r} acquired while already held by this "
                    f"thread's stack {held!r} — self-nesting (non-reentrant "
                    "Lock would deadlock here)"
                )
            # An established name→holder edge means some thread acquired
            # `holder` while holding `name`; we are doing the reverse.
            if holder in _order.get(name, ()):
                first = _witness.get((name, holder), "?")
                raise LockOrderError(
                    f"lock-order inversion: acquiring {name!r} while "
                    f"holding {holder!r}, but the order {name!r} → "
                    f"{holder!r} was previously observed ({first}); "
                    "this interleaving can deadlock"
                )
        for holder in held:
            if name not in _order.setdefault(holder, set()):
                _order[holder].add(name)
                _witness[(holder, name)] = (
                    f"first seen on thread {threading.current_thread().name!r}"
                    f" with held stack {held!r}"
                )


class SanitizedLock:
    """A ``threading.Lock`` wrapper that reports acquisition order.

    Context-manager and ``acquire``/``release`` compatible with the
    plain lock it replaces; the order check runs *before* blocking on
    the underlying lock, so a true inversion raises instead of
    deadlocking.
    """

    __slots__ = ("_name", "_lock")

    def __init__(self, name: str) -> None:
        self._name = name
        self._lock = threading.Lock()

    @property
    def name(self) -> str:
        return self._name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        _check_and_record(self._name)
        got = self._lock.acquire(blocking, timeout)
        if got:
            _held_stack().append(self._name)
        return got

    def release(self) -> None:
        held = _held_stack()
        # Remove the most recent matching hold (releases may be
        # out-of-order in principle; LIFO is the overwhelming case).
        for i in range(len(held) - 1, -1, -1):
            if held[i] == self._name:
                del held[i]
                break
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "locked" if self._lock.locked() else "unlocked"
        return f"SanitizedLock({self._name!r}, {state})"


def make_lock(name: str):
    """A lock for production code: plain ``threading.Lock`` normally,
    :class:`SanitizedLock` under ``REPRO_SANITIZE=locks``.

    ``name`` labels the lock's order *class* — instances sharing a
    name share ordering constraints (use one name per creation site).
    """
    if locks_enabled():
        return SanitizedLock(name)
    return threading.Lock()


# ----------------------------------------------------------------------
# Protocol (typestate) sanitizer
# ----------------------------------------------------------------------
class ProtocolError(RuntimeError):
    """An observed illegal typestate transition on a live object."""


def _unwrap(value):
    return object.__getattribute__(value, "_ts_obj") \
        if isinstance(value, TypestateProxy) else value


class TypestateProxy:
    """Forwarding wrapper that advances a typestate table per call.

    Protocol-event methods (the protocol's alphabet) are intercepted:
    the event fires on *entry* (raising :class:`ProtocolError` while
    still in the old state if the table has no transition), and the
    paired ``<event>_done`` — when the table declares one — fires on
    return, which is what lets a *re-entrant* ``launch`` raise while a
    sequential one stays legal.  Declared argument events
    (``complete_exchange(handle)`` → the handle's ``complete``) fire on
    proxied arguments, and protocol-typed return values (an exchange
    handle from ``post_exchange``) come back pre-wrapped so the whole
    object graph stays under the sanitizer.  Everything else forwards
    untouched; ``__class__`` reports the wrapped type so ``isinstance``
    checks in the transport layer keep passing.
    """

    __slots__ = ("_ts_obj", "_ts_protocol", "_ts_state", "_ts_lock")

    def __init__(self, obj, protocol) -> None:
        object.__setattr__(self, "_ts_obj", obj)
        object.__setattr__(self, "_ts_protocol", protocol)
        object.__setattr__(self, "_ts_state", protocol.start)
        object.__setattr__(self, "_ts_lock", threading.Lock())

    # -- state machine --------------------------------------------------
    def _ts_advance(self, event: str) -> None:
        protocol = object.__getattribute__(self, "_ts_protocol")
        lock = object.__getattribute__(self, "_ts_lock")
        with lock:
            state = object.__getattribute__(self, "_ts_state")
            nxt, message = protocol.advance(state, event, auto_done=False)
            if nxt is None:
                obj = object.__getattribute__(self, "_ts_obj")
                raise ProtocolError(
                    f"{protocol.name} protocol violation on "
                    f"{type(obj).__name__}: {message} "
                    f"(state {state!r}, event {event!r})"
                )
            object.__setattr__(self, "_ts_state", nxt)

    def _ts_call(self, method: str, bound, args, kwargs):
        protocol = object.__getattribute__(self, "_ts_protocol")
        fire = method in protocol.alphabet
        if fire:
            self._ts_advance(method)
        # Declared argument events: the *argument* is the protocol
        # object (an exchange handle handed back for completion).
        if args and isinstance(args[0], TypestateProxy):
            arg = args[0]
            arg_protocol = object.__getattribute__(arg, "_ts_protocol")
            arg_event = arg_protocol.arg_events.get(method)
            if arg_event is not None:
                arg._ts_advance(arg_event)
        try:
            result = bound(*[_unwrap(a) for a in args],
                           **{k: _unwrap(v) for k, v in kwargs.items()})
        finally:
            if fire:
                done = method + "_done"
                if any(e == done for _s, e in protocol.transitions):
                    self._ts_advance(done)
        # ``.method`` constructor patterns: this call *produced* a
        # protocol object (post_exchange -> an exchange handle).
        if result is not None:
            for table in _protocol_tables():
                if "." + method in table.constructors:
                    return wrap_protocol(result, table)
        return wrap_protocol(result)

    # -- transparent forwarding ----------------------------------------
    def __getattr__(self, name: str):
        obj = object.__getattribute__(self, "_ts_obj")
        value = getattr(obj, name)
        if callable(value) and not name.startswith("__"):
            protocol = object.__getattribute__(self, "_ts_protocol")
            if name in protocol.alphabet or any(
                name in p.arg_events for p in _protocol_tables()
            ):
                def guarded(*args, **kwargs):
                    return TypestateProxy._ts_call(
                        self, name, value, args, kwargs
                    )
                return guarded
        return value

    def __setattr__(self, name: str, value) -> None:
        setattr(object.__getattribute__(self, "_ts_obj"), name, value)

    @property
    def __class__(self):  # noqa: F811 - deliberate isinstance lie
        return type(object.__getattribute__(self, "_ts_obj"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        obj = object.__getattribute__(self, "_ts_obj")
        state = object.__getattribute__(self, "_ts_state")
        return f"TypestateProxy({obj!r}, state={state!r})"


def _protocol_tables():
    from .typestate import PROTOCOLS

    return PROTOCOLS


def wrap_protocol(obj, protocol=None):
    """``obj`` wrapped in a :class:`TypestateProxy` when the protocol
    sanitizer is on and a table governs its class; ``obj`` unchanged
    otherwise (including when it is already wrapped).  This is the
    identity function in production: transports call it at the worker
    boundary unconditionally and pay nothing unless
    ``REPRO_SANITIZE=protocol`` is set.
    """
    if not protocol_enabled() or isinstance(obj, TypestateProxy):
        return obj
    if protocol is None:
        from .typestate import protocol_for_class

        protocol = protocol_for_class(type(obj).__name__)
    if protocol is None:
        return obj
    return TypestateProxy(obj, protocol)
