"""Runtime lock-order sanitizer: the dynamic mirror of ``lock-order``.

The static :class:`~repro.analysis.concurrency.LockOrderPass` proves the
*source* never nests ``with A: with B:`` against ``with B: with A:``.
This module checks the *observed* order on live lock instances, which
catches what static analysis cannot: inversions routed through
callbacks, inversions between locks the linter could not name, and
inversions that only two particular threads interleave into.

Design: :func:`make_lock` is the factory the transport/executor layers
call wherever they used to call ``threading.Lock()``.  When sanitising
is off (the default — ``REPRO_SANITIZE`` unset or without ``locks``),
it returns a plain ``threading.Lock`` and costs nothing.  When on, it
returns a :class:`SanitizedLock` that

* keeps a thread-local stack of currently-held sanitized locks, and
* maintains one process-global order graph: first time lock *A* is
  held while *B* is acquired, the edge A→B is recorded; a later
  acquisition of *A* while *B* is held is an observed inversion and
  raises :class:`LockOrderError` at the acquisition site — i.e. the
  deadlock is reported deterministically on the first run that
  *could* have deadlocked, instead of hanging one run in a thousand.

Order is tracked per lock *name* (the label passed to
:func:`make_lock`), so two instances created at the same site — one
per ring, say — form one order class, matching the static pass's
subscript-wildcarding.  The graph is intentionally never pruned on
release: lock order is a program-wide law, not a per-window one.

Enable with ``REPRO_SANITIZE=locks`` (comma-separated list; only the
``locks`` token is currently defined).  Tests use :func:`reset` to
clear the global graph between cases and
:func:`install_sanitizer`/:func:`locks_enabled` to force the mode
without touching the environment.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, List, Optional, Set, Tuple

__all__ = [
    "LockOrderError",
    "SanitizedLock",
    "install_sanitizer",
    "locks_enabled",
    "make_lock",
    "reset",
    "reset_graph",
]

ENV_VAR = "REPRO_SANITIZE"

#: Forced mode: None → consult the environment, True/False → override.
_forced: Optional[bool] = None

#: Global observed-order graph over lock *names*: name -> names that
#: have been acquired while it was held.
_order: Dict[str, Set[str]] = {}
#: First site (holder-name, acquired-name) was observed at, for the
#: error message: (thread name, holder stack snapshot).
_witness: Dict[Tuple[str, str], str] = {}
_graph_lock = threading.Lock()

_tls = threading.local()


class LockOrderError(RuntimeError):
    """An observed lock-acquisition order inversion (potential deadlock)."""


def locks_enabled() -> bool:
    """True when lock sanitising is active for new :func:`make_lock` calls."""
    if _forced is not None:
        return _forced
    tokens = os.environ.get(ENV_VAR, "")
    return "locks" in {t.strip() for t in tokens.split(",")}


def install_sanitizer(enabled: bool = True) -> None:
    """Force sanitising on/off regardless of ``REPRO_SANITIZE``.

    Affects locks created *after* the call; existing plain locks stay
    plain.  Pass ``None``-like reset via :func:`reset` to go back to
    environment-controlled mode.
    """
    global _forced
    _forced = enabled


def reset_graph() -> None:
    """Clear the observed-order graph only.

    Rank workers call this at start-of-rank: lock order is a law *per
    process*, and a forked worker must not inherit edges the parent
    process observed among its own (distinct) lock instances.
    """
    with _graph_lock:
        _order.clear()
        _witness.clear()


def reset() -> None:
    """Clear the global order graph and forced mode (test isolation)."""
    global _forced
    _forced = None
    reset_graph()


def _held_stack() -> List[str]:
    stack = getattr(_tls, "held", None)
    if stack is None:
        stack = _tls.held = []
    return stack


def _check_and_record(name: str) -> None:
    """Record edges holder→``name``; raise on an inverted edge."""
    held = _held_stack()
    if not held:
        return
    # repro-lint: ignore[blocking-in-lock] — dict lookups only; the
    # graph lock guards pure in-memory bookkeeping, never I/O.
    with _graph_lock:
        for holder in held:
            if holder == name:
                raise LockOrderError(
                    f"lock {name!r} acquired while already held by this "
                    f"thread's stack {held!r} — self-nesting (non-reentrant "
                    "Lock would deadlock here)"
                )
            # An established name→holder edge means some thread acquired
            # `holder` while holding `name`; we are doing the reverse.
            if holder in _order.get(name, ()):
                first = _witness.get((name, holder), "?")
                raise LockOrderError(
                    f"lock-order inversion: acquiring {name!r} while "
                    f"holding {holder!r}, but the order {name!r} → "
                    f"{holder!r} was previously observed ({first}); "
                    "this interleaving can deadlock"
                )
        for holder in held:
            if name not in _order.setdefault(holder, set()):
                _order[holder].add(name)
                _witness[(holder, name)] = (
                    f"first seen on thread {threading.current_thread().name!r}"
                    f" with held stack {held!r}"
                )


class SanitizedLock:
    """A ``threading.Lock`` wrapper that reports acquisition order.

    Context-manager and ``acquire``/``release`` compatible with the
    plain lock it replaces; the order check runs *before* blocking on
    the underlying lock, so a true inversion raises instead of
    deadlocking.
    """

    __slots__ = ("_name", "_lock")

    def __init__(self, name: str) -> None:
        self._name = name
        self._lock = threading.Lock()

    @property
    def name(self) -> str:
        return self._name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        _check_and_record(self._name)
        got = self._lock.acquire(blocking, timeout)
        if got:
            _held_stack().append(self._name)
        return got

    def release(self) -> None:
        held = _held_stack()
        # Remove the most recent matching hold (releases may be
        # out-of-order in principle; LIFO is the overwhelming case).
        for i in range(len(held) - 1, -1, -1):
            if held[i] == self._name:
                del held[i]
                break
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "locked" if self._lock.locked() else "unlocked"
        return f"SanitizedLock({self._name!r}, {state})"


def make_lock(name: str):
    """A lock for production code: plain ``threading.Lock`` normally,
    :class:`SanitizedLock` under ``REPRO_SANITIZE=locks``.

    ``name`` labels the lock's order *class* — instances sharing a
    name share ordering constraints (use one name per creation site).
    """
    if locks_enabled():
        return SanitizedLock(name)
    return threading.Lock()
