"""Interprocedural communication-effect summaries.

The intraprocedural passes (PR 8/9) see one function at a time; the
bugs that kill a distributed run — mismatched tags, rank-asymmetric
collectives, circular blocking sends, an :class:`ExchangeHandle`
posted in one helper and dropped in another — are cross-function and
cross-rank.  This module supplies the interprocedural half:

* :class:`ProgramIndex` — a call graph over the linted tree with a
  *may-communicate* fixpoint: a function may-comm when its body calls
  a transport primitive (``send``/``recv``/``exchange``/…) or any
  resolvable callee that does.  Cycles (mutual recursion) converge
  because the fixpoint is monotone over a finite lattice.
* :func:`direct_comm_ops` — the *summary* of one function: its
  syntactic, in-order communication events with the peer and tag
  expressions kept symbolic (``(rank + 1) % m``, ``f"chunk{i}"`` →
  prefix ``chunk``), exactly as written.
* :class:`CommInterpreter` — composes summaries through calls: an
  abstract interpreter that runs an entry point for one concrete
  ``(rank, world)`` pair, inlining may-comm callees (with recursion
  widening and an operation budget so it terminates on any input),
  treating everything else as opaque.  The output is the ordered
  per-rank event sequence :mod:`repro.analysis.commgraph` matches
  across ranks.

Data-dependent control flow is handled by *shared decisions*: an
``if`` whose test is unknown but whose branches communicate forks the
analysis, and the chosen branch is keyed by the unknown value's
origin site — so every rank (and every use of the same value) takes
the same branch within one scenario, and the driver enumerates the
scenarios.  Unknown-trip loops run their body once (a representative
iteration); comprehensions over unknown iterables produce an
:class:`ApproxList` whose single sample stands for every element.
These are deliberate precision limits, documented in the README; the
``REPRO_SANITIZE=schedule`` runtime explorer covers the interleavings
the static side abstracts away.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .engine import SourceModule

__all__ = [
    "ApproxList",
    "BudgetExceeded",
    "CommEvent",
    "CommInterpreter",
    "DirectOp",
    "EndpointVal",
    "FuncInfo",
    "HandleVal",
    "ObjVal",
    "ProgramIndex",
    "Sym",
    "TagPrefix",
    "TicketVal",
    "TransportVal",
    "Unknown",
    "direct_comm_ops",
    "tags_may_match",
]

#: Endpoint/transport method names with built-in communication
#: semantics (the primitive table the interpreter never inlines).
COMM_PRIMITIVES = {
    "send", "isend", "recv", "exchange", "post_exchange",
    "complete_exchange", "allreduce", "broadcast",
    "_isend_raw", "_send_raw",
}

_LOOP_UNROLL_CAP = 64
_CALL_DEPTH_CAP = 24
_DEFAULT_OP_BUDGET = 200_000


# ----------------------------------------------------------------------
# Value domain
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Unknown:
    """A value the analysis cannot resolve.

    ``origin`` is the stable site string of the expression that first
    produced it; derived unknowns inherit the origin of their primary
    operand, so decisions keyed by origin stay consistent across every
    use of (and every rank's copy of) the same unknown.
    """

    origin: str = "?"


@dataclass(frozen=True)
class Sym:
    """A named symbolic scalar (an entry-point parameter like ``tag``)."""

    name: str


@dataclass(frozen=True)
class TagPrefix:
    """An f-string tag whose leading literal part is known."""

    prefix: str


class ApproxList:
    """A sequence built by iterating something unknown: one sample
    element stands for all of them (subscripting with any index yields
    the sample; iterating visits each sample once)."""

    __slots__ = ("samples",)

    def __init__(self, samples: List[object]) -> None:
        self.samples = samples


class ObjVal:
    """An instance of a project class, attributes tracked by name.

    Reference semantics: assignment aliases, attribute stores are
    visible through every alias — what ``self``-threading needs.
    """

    def __init__(self, class_name: str, attrs: Optional[dict] = None) -> None:
        self.class_name = class_name
        self.attrs: Dict[str, object] = dict(attrs or {})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ObjVal({self.class_name})"


class EndpointVal(ObjVal):
    """One rank's transport endpoint: the comm-primitive receiver."""


class TransportVal(ObjVal):
    """The simulated metering transport (trainer plane): its
    ``send``/``broadcast``/``allreduce`` are ledger entries, not
    messages, and trivially match."""


class TicketVal:
    """Result of a non-blocking send: joins link back to the event."""

    __slots__ = ("event_index",)

    def __init__(self, event_index: int) -> None:
        self.event_index = event_index


class HandleVal:
    """An in-flight exchange handle (posted sends + deferred recvs)."""

    __slots__ = ("handle_id", "tag", "expect", "site", "completed")

    def __init__(self, handle_id: int, tag: object, expect: object,
                 site: Tuple[str, int, int]) -> None:
        self.handle_id = handle_id
        self.tag = tag
        self.expect = expect
        self.site = site
        self.completed = False


def tags_may_match(a: object, b: object) -> bool:
    """Whether two tag values can name the same message.

    Concrete strings compare exactly; an f-string prefix matches any
    string it prefixes (and any other prefix sharing a prefix);
    symbols match themselves; anything unknown matches everything —
    mismatch findings only fire on *definite* disagreement.
    """
    if isinstance(a, Unknown) or isinstance(b, Unknown):
        return True
    if isinstance(a, Sym) or isinstance(b, Sym):
        return a == b or not (isinstance(a, Sym) and isinstance(b, Sym))
    if isinstance(a, TagPrefix) and isinstance(b, TagPrefix):
        return a.prefix.startswith(b.prefix) or b.prefix.startswith(a.prefix)
    if isinstance(a, TagPrefix):
        return isinstance(b, str) and b.startswith(a.prefix)
    if isinstance(b, TagPrefix):
        return isinstance(a, str) and a.startswith(b.prefix)
    return a == b


# ----------------------------------------------------------------------
# Events
# ----------------------------------------------------------------------
@dataclass
class CommEvent:
    """One step of a rank's communication sequence.

    ``peer`` is a concrete rank when the analysis resolved it and
    :class:`Unknown` otherwise (``definite`` mirrors that); the
    unparsed ``peer_expr``/``tag_expr`` keep the symbolic form for
    reports.  ``kind`` is one of ``send`` (blocking under the
    rendezvous model), ``isend``, ``recv``, ``coll``, ``post``,
    ``complete``, ``join``, ``meter``.
    """

    kind: str
    peer: object = None
    tag: object = None
    blocking: bool = False
    site: Tuple[str, int, int] = ("?", 0, 0)
    frame: str = "?"
    peer_expr: str = ""
    tag_expr: str = ""
    alg: Optional[str] = None
    handle_id: Optional[int] = None
    link: Optional[int] = None  # join -> index of the linked isend

    @property
    def definite(self) -> bool:
        return not isinstance(self.peer, Unknown)


@dataclass(frozen=True)
class DirectOp:
    """One syntactic comm call inside a single function body — the
    per-function summary entry, peers and tags as written."""

    op: str
    peer_expr: str
    tag_expr: str
    site: Tuple[str, int, int]


# ----------------------------------------------------------------------
# Program index + may-comm fixpoint
# ----------------------------------------------------------------------
@dataclass
class FuncInfo:
    """One function in the analyzed tree."""

    name: str
    qualname: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    module: SourceModule
    class_name: Optional[str] = None
    is_generator: bool = False
    direct_ops: List[DirectOp] = field(default_factory=list)
    callees: Set[str] = field(default_factory=set)  # qualnames
    may_comm: bool = False


@dataclass
class ClassInfo:
    name: str
    node: ast.ClassDef
    module: SourceModule
    methods: Dict[str, FuncInfo] = field(default_factory=dict)
    bases: List[str] = field(default_factory=list)


def _site(module: SourceModule, node: ast.AST) -> Tuple[str, int, int]:
    return (module.path, getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0))


def _contains_yield(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if isinstance(child, (ast.Yield, ast.YieldFrom)):
            return True
    return False


def direct_comm_ops(module: SourceModule, func: ast.AST) -> List[DirectOp]:
    """The uninterpreted summary of one function: its comm calls in
    source order, peer/tag expressions unparsed verbatim."""
    ops: List[DirectOp] = []
    for node in ast.walk(func):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in COMM_PRIMITIVES):
            continue
        name = node.func.attr
        peer_expr = ""
        tag_expr = ""
        args = node.args
        if name in ("send", "isend", "_isend_raw", "_send_raw"):
            if args:
                peer_expr = ast.unparse(args[0])
            if len(args) > 2:
                tag_expr = ast.unparse(args[2])
        elif name == "recv":
            if args:
                peer_expr = ast.unparse(args[0])
            if len(args) > 1:
                tag_expr = ast.unparse(args[1])
        elif name in ("exchange", "post_exchange"):
            if len(args) > 2:
                tag_expr = ast.unparse(args[2])
        elif name in ("allreduce", "broadcast"):
            if len(args) > 1:
                tag_expr = ast.unparse(args[1])
        for kw in node.keywords:
            if kw.arg == "tag":
                tag_expr = ast.unparse(kw.value)
        ops.append(DirectOp(op=name, peer_expr=peer_expr, tag_expr=tag_expr,
                            site=_site(module, node)))
    ops.sort(key=lambda o: (o.site[1], o.site[2]))
    return ops


class ProgramIndex:
    """Functions, classes and the may-communicate fixpoint over the
    call graph of a set of :class:`SourceModule` s."""

    def __init__(self, modules: Sequence[SourceModule]) -> None:
        self.modules = list(modules)
        self.functions: Dict[str, FuncInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: per-module name -> qualname maps for resolution
        self._module_scope: Dict[str, Dict[str, str]] = {}
        self._global_names: Dict[str, List[str]] = {}
        for module in self.modules:
            self._index_module(module)
        self._resolve_callees()
        self._fixpoint_may_comm()

    # -- construction --------------------------------------------------
    def _index_module(self, module: SourceModule) -> None:
        scope = self._module_scope.setdefault(module.path, {})

        def add_func(node, class_name=None):
            qual = f"{module.path}::" + (
                f"{class_name}.{node.name}" if class_name else node.name
            )
            info = FuncInfo(
                name=node.name, qualname=qual, node=node, module=module,
                class_name=class_name,
                is_generator=_contains_yield(node),
                direct_ops=direct_comm_ops(module, node),
            )
            self.functions[qual] = info
            if class_name is None:
                scope[node.name] = qual
                self._global_names.setdefault(node.name, []).append(qual)
            return info

        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                add_func(node)
            elif isinstance(node, ast.ClassDef):
                cls = ClassInfo(
                    name=node.name, node=node, module=module,
                    bases=[b.id for b in node.bases
                           if isinstance(b, ast.Name)],
                )
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        cls.methods[item.name] = add_func(item, node.name)
                self.classes.setdefault(node.name, cls)
                scope[node.name] = f"class::{node.name}"
                self._global_names.setdefault(node.name, []).append(
                    f"class::{node.name}"
                )

    def _resolve_callees(self) -> None:
        methods_by_name: Dict[str, List[str]] = {}
        for qual, finfo in self.functions.items():
            if finfo.class_name is not None:
                methods_by_name.setdefault(finfo.name, []).append(qual)
        for info in self.functions.values():
            for node in ast.walk(info.node):
                if isinstance(node, ast.Name):
                    # A bare function reference may flow into an
                    # indirect call (`fn = helper; fn()`): a may-edge
                    # keeps the comm fixpoint sound for callbacks.
                    target = self.resolve_name(info.module, node.id)
                    if target is None:
                        continue
                    if target in self.functions:
                        info.callees.add(target)
                    elif target.startswith("class::"):
                        # Instantiation: the object's methods become
                        # reachable (``loop = _RankLoop(...)``).
                        cls = self.classes.get(target[len("class::"):])
                        if cls is not None:
                            for method in cls.methods.values():
                                info.callees.add(method.qualname)
                    continue
                if not isinstance(node, ast.Attribute):
                    continue
                if (isinstance(node.value, ast.Name)
                        and node.value.id == "self"
                        and info.class_name):
                    # self.method resolves precisely through the MRO.
                    method = self.lookup_method(info.class_name, node.attr)
                    if method is not None:
                        info.callees.add(method.qualname)
                    continue
                # Unknown receiver: may-edges to every same-named
                # method (``loop.synchronous_epoch`` / ``epoch_fn()``).
                for qual in methods_by_name.get(node.attr, ()):
                    info.callees.add(qual)

    def _fixpoint_may_comm(self) -> None:
        for info in self.functions.values():
            info.may_comm = bool(info.direct_ops)
        changed = True
        while changed:
            changed = False
            for info in self.functions.values():
                if info.may_comm:
                    continue
                if any(
                    callee in self.functions
                    and self.functions[callee].may_comm
                    for callee in info.callees
                ):
                    info.may_comm = True
                    changed = True

    # -- queries -------------------------------------------------------
    def resolve_name(self, module: SourceModule, name: str) -> Optional[str]:
        """A name to a function/class qualname: same module first, then
        a globally unique match (imports are not modeled)."""
        scope = self._module_scope.get(module.path, {})
        if name in scope:
            return scope[name]
        candidates = self._global_names.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def lookup_method(self, class_name: str, method: str,
                      _seen: Optional[Set[str]] = None) -> Optional[FuncInfo]:
        """Method resolution by class name, walking base names."""
        _seen = _seen or set()
        if class_name in _seen:
            return None
        _seen.add(class_name)
        cls = self.classes.get(class_name)
        if cls is None:
            return None
        if method in cls.methods:
            return cls.methods[method]
        for base in cls.bases:
            found = self.lookup_method(base, method, _seen)
            if found is not None:
                return found
        return None

    def lookup_function(self, qualname: str) -> Optional[FuncInfo]:
        return self.functions.get(qualname)

    def find_function(self, name: str,
                      module_suffix: str = "") -> Optional[FuncInfo]:
        """A top-level function by bare name, optionally restricted to
        modules whose path ends with ``module_suffix``."""
        for qual, info in self.functions.items():
            if info.name != name or info.class_name is not None:
                continue
            if module_suffix and not info.module.path.endswith(module_suffix):
                continue
            return info
        return None

    def branch_may_comm(self, module: SourceModule,
                        nodes: Sequence[ast.stmt]) -> bool:
        """Syntactic may-comm over a statement list: a primitive call,
        or a resolvable call into a may-comm function."""
        for stmt in nodes:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                if (isinstance(node.func, ast.Attribute)
                        and node.func.attr in COMM_PRIMITIVES):
                    return True
                if isinstance(node.func, ast.Name):
                    qual = self.resolve_name(module, node.func.id)
                    if (qual in self.functions
                            and self.functions[qual].may_comm):
                        return True
                    if qual and qual.startswith("class::"):
                        ctor = self.lookup_method(
                            qual.split("::", 1)[1], "__init__"
                        )
                        if ctor is not None and ctor.may_comm:
                            return True
        return False


# ----------------------------------------------------------------------
# Abstract interpreter
# ----------------------------------------------------------------------
class BudgetExceeded(Exception):
    """The per-rank operation budget ran out: the sequence is partial
    and the caller must not report findings from it."""


class _ReturnSig(Exception):
    def __init__(self, value: object) -> None:
        self.value = value


class _BreakSig(Exception):
    pass


class _ContinueSig(Exception):
    pass


class CommInterpreter:
    """Run one entry point for one concrete ``(rank, world)`` pair.

    ``decisions`` maps unknown-value origins to the branch taken at
    comm-relevant unknown conditions; origins consulted but absent are
    defaulted to ``True`` and recorded in :attr:`used_decisions` so a
    driver can enumerate scenarios.  The produced :attr:`events` list
    is this rank's ordered communication sequence; :attr:`open_handles`
    holds exchange handles still posted when the entry returned.
    """

    def __init__(self, program: ProgramIndex, rank: int, world: int,
                 decisions: Optional[Dict[str, bool]] = None,
                 op_budget: int = _DEFAULT_OP_BUDGET) -> None:
        self.program = program
        self.rank = rank
        self.world = world
        self.decisions = dict(decisions or {})
        self.used_decisions: Dict[str, bool] = {}
        self.events: List[CommEvent] = []
        self.open_handles: Dict[int, HandleVal] = {}
        self._handle_seq = 0
        self._ops_left = op_budget
        self._stack: List[str] = []
        self.double_completes: List[Tuple[HandleVal,
                                          Tuple[str, int, int]]] = []

    # -- public --------------------------------------------------------
    def run(self, func: FuncInfo, args: Dict[str, object]) -> object:
        """Interpret ``func`` with ``args`` bound by parameter name;
        unbound parameters become :class:`Unknown`."""
        return self._call_function(func, args)

    # -- frames --------------------------------------------------------
    def _call_function(self, info: FuncInfo,
                       bound: Dict[str, object]) -> object:
        if info.is_generator:
            return Unknown(f"gen:{info.qualname}")
        if info.qualname in self._stack or len(self._stack) >= _CALL_DEPTH_CAP:
            # Recursion / depth widening: the callee's effects become
            # opaque — termination beats completeness here.
            return Unknown(f"widened:{info.qualname}")
        self._stack.append(info.qualname)
        env: Dict[str, object] = {}
        fn = info.node
        params = [a.arg for a in fn.args.posonlyargs + fn.args.args]
        for name in params:
            env[name] = bound.get(name, Unknown(f"param:{name}"))
        for a in fn.args.kwonlyargs:
            env[a.arg] = bound.get(a.arg, Unknown(f"param:{a.arg}"))
        if fn.args.vararg:
            env[fn.args.vararg.arg] = Unknown("param:*args")
        if fn.args.kwarg:
            env[fn.args.kwarg.arg] = Unknown("param:**kwargs")
        # Defaults for parameters the caller did not supply.
        defaults = fn.args.defaults
        if defaults:
            for name, default in zip(params[-len(defaults):], defaults):
                if name not in bound:
                    env[name] = self._eval(default, env, info)
        for a, d in zip(fn.args.kwonlyargs, fn.args.kw_defaults):
            if d is not None and a.arg not in bound:
                env[a.arg] = self._eval(d, env, info)
        try:
            self._exec_block(fn.body, env, info)
            result: object = None
        except _ReturnSig as sig:
            result = sig.value
        finally:
            self._stack.pop()
        return result

    # -- statements ----------------------------------------------------
    def _tick(self, node: ast.AST) -> None:
        self._ops_left -= 1
        if self._ops_left <= 0:
            raise BudgetExceeded(
                f"op budget exhausted at line {getattr(node, 'lineno', 0)}"
            )

    def _exec_block(self, stmts: Sequence[ast.stmt], env: dict,
                    info: FuncInfo) -> None:
        for stmt in stmts:
            self._exec(stmt, env, info)

    def _exec(self, stmt: ast.stmt, env: dict, info: FuncInfo) -> None:
        self._tick(stmt)
        name = type(stmt).__name__
        method = getattr(self, f"_exec_{name}", None)
        if method is not None:
            method(stmt, env, info)
            return
        # Unmodeled statements (Global, Import, class defs inside
        # functions, ...) are skipped.

    def _exec_Expr(self, stmt, env, info):
        self._eval(stmt.value, env, info)

    def _exec_Return(self, stmt, env, info):
        value = self._eval(stmt.value, env, info) if stmt.value else None
        raise _ReturnSig(value)

    def _exec_Pass(self, stmt, env, info):
        return None

    def _exec_Break(self, stmt, env, info):
        raise _BreakSig()

    def _exec_Continue(self, stmt, env, info):
        raise _ContinueSig()

    def _exec_Raise(self, stmt, env, info):
        # A raise on the interpreted path ends the entry like a return
        # (the happy-path model: exception edges are out of scope).
        if stmt.exc is not None:
            self._eval(stmt.exc, env, info)
        raise _ReturnSig(Unknown("raise"))

    def _exec_Assert(self, stmt, env, info):
        self._eval(stmt.test, env, info)

    def _exec_Delete(self, stmt, env, info):
        return None

    def _exec_Assign(self, stmt, env, info):
        value = self._eval(stmt.value, env, info)
        for target in stmt.targets:
            self._assign(target, value, env, info)

    def _exec_AnnAssign(self, stmt, env, info):
        if stmt.value is not None:
            self._assign(stmt.target,
                         self._eval(stmt.value, env, info), env, info)

    def _exec_AugAssign(self, stmt, env, info):
        value = self._eval(stmt.value, env, info)
        current = self._eval(stmt.target, env, info)
        combined: object = Unknown(self._origin(stmt))
        if _is_concrete(current) and _is_concrete(value):
            combined = _apply_binop(stmt.op, current, value, combined)
        self._assign(stmt.target, combined, env, info)

    def _exec_If(self, stmt, env, info):
        test = self._eval(stmt.test, env, info)
        if not isinstance(test, Unknown):
            branch = stmt.body if _truthy(test) else stmt.orelse
            self._exec_block(branch, env, info)
            return
        body_comm = self.program.branch_may_comm(info.module, stmt.body)
        else_comm = self.program.branch_may_comm(info.module, stmt.orelse)
        if body_comm or else_comm:
            key = test.origin
            choice = self.decisions.get(key, True)
            self.used_decisions[key] = choice
            self._exec_block(stmt.body if choice else stmt.orelse, env, info)
            return
        # No communication either way: prefer the branch that falls
        # through (a guard like `if bad: raise/return` is skipped), and
        # havoc whatever either branch assigns.
        body_escapes = _block_escapes(stmt.body)
        else_escapes = _block_escapes(stmt.orelse)
        if body_escapes and not else_escapes:
            self._exec_block(stmt.orelse, env, info)
        elif else_escapes and not body_escapes:
            self._exec_block(stmt.body, env, info)
        else:
            self._havoc_targets(stmt.body + stmt.orelse, env, info)

    def _exec_For(self, stmt, env, info):
        iterable = self._eval(stmt.iter, env, info)
        items = _iteration_items(iterable, self._origin(stmt))
        broke = False
        for item in items:
            self._assign(stmt.target, item, env, info)
            try:
                self._exec_block(stmt.body, env, info)
            except _BreakSig:
                broke = True
                break
            except _ContinueSig:
                continue
        if not broke:
            self._exec_block(stmt.orelse, env, info)

    def _exec_While(self, stmt, env, info):
        iterations = 0
        while iterations < _LOOP_UNROLL_CAP:
            iterations += 1
            test = self._eval(stmt.test, env, info)
            if isinstance(test, Unknown):
                # One representative pass through an unknown-bound
                # loop, then exit.
                try:
                    self._exec_block(stmt.body, env, info)
                except (_BreakSig, _ContinueSig):
                    pass
                return
            if not _truthy(test):
                self._exec_block(stmt.orelse, env, info)
                return
            try:
                self._exec_block(stmt.body, env, info)
            except _BreakSig:
                return
            except _ContinueSig:
                continue
        # Cap reached: stop iterating (widened).

    def _exec_With(self, stmt, env, info):
        for item in stmt.items:
            ctx = self._eval(item.context_expr, env, info)
            if item.optional_vars is not None:
                self._assign(item.optional_vars, ctx, env, info)
        self._exec_block(stmt.body, env, info)

    def _exec_Try(self, stmt, env, info):
        # Happy path: body + else + finally; handlers are not entered.
        try:
            self._exec_block(stmt.body, env, info)
            self._exec_block(stmt.orelse, env, info)
        finally:
            self._exec_block(stmt.finalbody, env, info)

    _exec_TryStar = _exec_Try

    def _exec_FunctionDef(self, stmt, env, info):
        env[stmt.name] = Unknown(f"nested:{stmt.name}")

    _exec_AsyncFunctionDef = _exec_FunctionDef

    # -- assignment targets --------------------------------------------
    def _assign(self, target: ast.expr, value: object, env: dict,
                info: FuncInfo) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            elts = target.elts
            if (isinstance(value, (tuple, list))
                    and len(value) == len(elts)
                    and not any(isinstance(e, ast.Starred) for e in elts)):
                for elt, item in zip(elts, value):
                    self._assign(elt, item, env, info)
            else:
                unk = Unknown(self._origin(target))
                for elt in elts:
                    inner = elt.value if isinstance(elt, ast.Starred) else elt
                    self._assign(inner, unk, env, info)
        elif isinstance(target, ast.Attribute):
            obj = self._eval(target.value, env, info)
            if isinstance(obj, ObjVal):
                obj.attrs[target.attr] = value
        elif isinstance(target, ast.Subscript):
            container = self._eval(target.value, env, info)
            key = self._eval(target.slice, env, info)
            if isinstance(container, dict) and _is_concrete(key):
                try:
                    container[key] = value
                except TypeError:
                    pass
            elif (isinstance(container, list) and isinstance(key, int)
                  and -len(container) <= key < len(container)):
                container[key] = value
            # Unknown container/key: the store is invisible (the
            # container keeps its prior approximation).

    def _havoc_targets(self, stmts: Sequence[ast.stmt], env: dict,
                       info: FuncInfo) -> None:
        """Both branches of a skipped conditional: whatever they assign
        becomes unknown (name, attribute or concrete-key entry)."""
        for stmt in stmts:
            for node in ast.walk(stmt):
                targets: List[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = [node.target]
                for target in targets:
                    self._assign(target, Unknown(self._origin(target)),
                                 env, info)

    # -- expressions ---------------------------------------------------
    def _origin(self, node: ast.AST) -> str:
        return (f"{self._stack[-1] if self._stack else '?'}"
                f":{getattr(node, 'lineno', 0)}"
                f":{getattr(node, 'col_offset', 0)}")

    def _eval(self, node: Optional[ast.expr], env: dict,
              info: FuncInfo) -> object:
        if node is None:
            return None
        self._tick(node)
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is None:
            return Unknown(self._origin(node))
        return method(node, env, info)

    def _eval_Constant(self, node, env, info):
        return node.value

    def _eval_Name(self, node, env, info):
        if node.id in env:
            return env[node.id]
        if node.id in ("True", "False", "None"):  # pragma: no cover
            return {"True": True, "False": False, "None": None}[node.id]
        qual = self.program.resolve_name(info.module, node.id)
        if qual is not None:
            return ("ref", qual)
        return Unknown(f"name:{node.id}")

    def _eval_Tuple(self, node, env, info):
        return tuple(self._eval(e, env, info) for e in node.elts)

    def _eval_List(self, node, env, info):
        return [self._eval(e, env, info) for e in node.elts]

    def _eval_Set(self, node, env, info):
        out = set()
        for e in node.elts:
            v = self._eval(e, env, info)
            try:
                out.add(v)
            except TypeError:
                return Unknown(self._origin(node))
        return out

    def _eval_Dict(self, node, env, info):
        out: dict = {}
        for k, v in zip(node.keys, node.values):
            if k is None:  # **spread
                self._eval(v, env, info)
                return Unknown(self._origin(node))
            key = self._eval(k, env, info)
            value = self._eval(v, env, info)
            if not _is_concrete(key):
                return Unknown(self._origin(node))
            out[key] = value
        return out

    def _eval_JoinedStr(self, node, env, info):
        parts: List[str] = []
        for piece in node.values:
            if isinstance(piece, ast.Constant):
                parts.append(str(piece.value))
                continue
            value = self._eval(
                piece.value if isinstance(piece, ast.FormattedValue)
                else piece, env, info,
            )
            if _is_concrete(value) and not isinstance(value, (list, dict)):
                parts.append(str(value))
            else:
                prefix = "".join(parts)
                return TagPrefix(prefix) if prefix else Unknown(
                    self._origin(node)
                )
        return "".join(parts)

    def _eval_BinOp(self, node, env, info):
        left = self._eval(node.left, env, info)
        right = self._eval(node.right, env, info)
        fallback = left if isinstance(left, Unknown) else (
            right if isinstance(right, Unknown)
            else Unknown(self._origin(node))
        )
        if _is_concrete(left) and _is_concrete(right):
            return _apply_binop(node.op, left, right,
                                Unknown(self._origin(node)))
        if isinstance(fallback, Unknown):
            return fallback
        return Unknown(self._origin(node))

    def _eval_UnaryOp(self, node, env, info):
        value = self._eval(node.operand, env, info)
        if _is_concrete(value):
            try:
                if isinstance(node.op, ast.Not):
                    return not value
                if isinstance(node.op, ast.USub):
                    return -value
                if isinstance(node.op, ast.UAdd):
                    return +value
                if isinstance(node.op, ast.Invert):
                    return ~value
            except TypeError:
                pass
        return value if isinstance(value, Unknown) else Unknown(
            self._origin(node)
        )

    def _eval_BoolOp(self, node, env, info):
        is_or = isinstance(node.op, ast.Or)
        pending: Optional[Unknown] = None
        for sub in node.values:
            value = self._eval(sub, env, info)
            if isinstance(value, Unknown):
                pending = pending or value
                continue
            if is_or and _truthy(value):
                return value
            if not is_or and not _truthy(value):
                return value
        if pending is not None:
            return pending
        return not is_or

    def _eval_Compare(self, node, env, info):
        left = self._eval(node.left, env, info)
        result: object = True
        for op, comp in zip(node.ops, node.comparators):
            right = self._eval(comp, env, info)
            if not (_is_concrete(left) and _is_concrete(right)):
                unk = left if isinstance(left, Unknown) else (
                    right if isinstance(right, Unknown)
                    else Unknown(self._origin(node))
                )
                return unk if isinstance(unk, Unknown) else Unknown(
                    self._origin(node)
                )
            step = _apply_compare(op, left, right)
            if isinstance(step, Unknown):
                return Unknown(self._origin(node))
            if not step:
                return False
            left = right
        return result

    def _eval_IfExp(self, node, env, info):
        test = self._eval(node.test, env, info)
        if not isinstance(test, Unknown):
            return self._eval(
                node.body if _truthy(test) else node.orelse, env, info
            )
        self._eval(node.body, env, info)
        self._eval(node.orelse, env, info)
        return Unknown(test.origin)

    def _eval_Attribute(self, node, env, info):
        obj = self._eval(node.value, env, info)
        return self._attribute_of(obj, node, info)

    def _attribute_of(self, obj, node, info):
        if isinstance(obj, ObjVal):
            if node.attr in obj.attrs:
                return obj.attrs[node.attr]
            method = self.program.lookup_method(obj.class_name, node.attr)
            if method is not None:
                return ("bound", method.qualname, obj)
            return Unknown(f"attr:{obj.class_name}.{node.attr}")
        if isinstance(obj, tuple) and len(obj) == 3 and obj[0] == "bound":
            return Unknown(self._origin(node))
        if isinstance(obj, Unknown):
            return Unknown(obj.origin)
        return Unknown(self._origin(node))

    def _eval_Subscript(self, node, env, info):
        container = self._eval(node.value, env, info)
        key = self._eval(node.slice, env, info)
        if isinstance(container, ApproxList):
            if len(container.samples) == 1:
                return container.samples[0]
            return Unknown(self._origin(node))
        if _is_concrete(key) and isinstance(container, (list, tuple, dict,
                                                        str)):
            try:
                return container[key]
            except (KeyError, IndexError, TypeError):
                return Unknown(self._origin(node))
        if isinstance(container, Unknown):
            return Unknown(container.origin)
        return Unknown(self._origin(node))

    def _eval_Slice(self, node, env, info):
        lower = self._eval(node.lower, env, info)
        upper = self._eval(node.upper, env, info)
        step = self._eval(node.step, env, info)
        if all(v is None or isinstance(v, int)
               for v in (lower, upper, step)):
            return slice(lower, upper, step)
        return Unknown(self._origin(node))

    def _eval_Starred(self, node, env, info):
        return self._eval(node.value, env, info)

    def _eval_Lambda(self, node, env, info):
        return Unknown(self._origin(node))

    def _eval_Await(self, node, env, info):
        return self._eval(node.value, env, info)

    def _eval_NamedExpr(self, node, env, info):
        value = self._eval(node.value, env, info)
        self._assign(node.target, value, env, info)
        return value

    # comprehensions ---------------------------------------------------
    def _comp_items(self, node, env, info) -> Tuple[List[dict], bool]:
        """Environments for each comprehension iteration; the bool
        marks approximation (an unknown iterable somewhere)."""
        envs: List[dict] = [dict(env)]
        approx = False
        for gen in node.generators:
            next_envs: List[dict] = []
            for scope in envs:
                iterable = self._eval(gen.iter, scope, info)
                items = _iteration_items(iterable, self._origin(node))
                if not isinstance(iterable, (list, tuple, dict, range, set,
                                             ApproxList)):
                    approx = True
                if isinstance(iterable, ApproxList):
                    approx = True
                for item in items[:_LOOP_UNROLL_CAP]:
                    child = dict(scope)
                    self._assign(gen.target, item, child, info)
                    keep = True
                    for cond in gen.ifs:
                        test = self._eval(cond, child, info)
                        if isinstance(test, Unknown):
                            approx = True
                        elif not _truthy(test):
                            keep = False
                            break
                    if keep:
                        next_envs.append(child)
            envs = next_envs
        return envs, approx

    def _eval_ListComp(self, node, env, info):
        envs, approx = self._comp_items(node, env, info)
        values = [self._eval(node.elt, scope, info) for scope in envs]
        if approx:
            return ApproxList(values or [Unknown(self._origin(node))])
        return values

    def _eval_SetComp(self, node, env, info):
        envs, approx = self._comp_items(node, env, info)
        values = [self._eval(node.elt, scope, info) for scope in envs]
        if approx or not all(_is_concrete(v) for v in values):
            return ApproxList(values or [Unknown(self._origin(node))])
        return set(values)

    def _eval_GeneratorExp(self, node, env, info):
        return self._eval_ListComp(node, env, info)

    def _eval_DictComp(self, node, env, info):
        envs, approx = self._comp_items(node, env, info)
        out: dict = {}
        for scope in envs:
            key = self._eval(node.key, scope, info)
            value = self._eval(node.value, scope, info)
            if not _is_concrete(key):
                approx = True
                continue
            out[key] = value
        if approx:
            return Unknown(self._origin(node))
        return out

    # calls ------------------------------------------------------------
    def _eval_Call(self, node, env, info):
        # Evaluate an attribute callee's receiver exactly ONCE — a
        # side-effecting receiver (``ep.complete_exchange(h).items()``)
        # must not emit its events twice.
        receiver: object = _NOT_PRIMITIVE
        if isinstance(node.func, ast.Attribute):
            receiver = self._eval(node.func.value, env, info)
            func = self._attribute_of(receiver, node.func, info)
        else:
            func = self._eval(node.func, env, info)
        args = [self._eval(a, env, info) for a in node.args
                if not isinstance(a, ast.Starred)]
        has_star = any(isinstance(a, ast.Starred) for a in node.args)
        for a in node.args:
            if isinstance(a, ast.Starred):
                self._eval(a.value, env, info)
        kwargs: Dict[str, object] = {}
        for kw in node.keywords:
            value = self._eval(kw.value, env, info)
            if kw.arg is not None:
                kwargs[kw.arg] = value

        # Endpoint / transport primitives.
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if isinstance(receiver, (EndpointVal, TransportVal)):
                prim = self._primitive(receiver, attr, node, args, kwargs,
                                       env, info)
                if prim is not _NOT_PRIMITIVE:
                    return prim
            if isinstance(receiver, TicketVal) and attr == "join":
                self._emit(node, info, kind="join", blocking=True,
                           link=receiver.event_index)
                return True
            if isinstance(receiver, HandleVal):
                return Unknown(self._origin(node))
            if isinstance(receiver, (dict, list, tuple, set, str)):
                return self._container_method(receiver, attr, args, node)
            if (isinstance(receiver, tuple) and len(receiver) == 3
                    and receiver[0] == "bound"):
                pass  # fall through: calling an attribute of a bound ref

        if (isinstance(func, tuple) and len(func) == 3
                and func[0] == "bound"):
            target = self.program.lookup_function(func[1])
            if target is not None:
                return self._maybe_inline(target, [func[2]] + args, kwargs,
                                          has_star, node)
        if isinstance(func, tuple) and len(func) == 2 and func[0] == "ref":
            qual = func[1]
            if qual.startswith("class::"):
                return self._instantiate(qual.split("::", 1)[1], args,
                                         kwargs, node)
            target = self.program.lookup_function(qual)
            if target is not None:
                return self._maybe_inline(target, args, kwargs, has_star,
                                          node)
        if isinstance(node.func, ast.Name):
            builtin = self._builtin(node.func.id, args, kwargs, node)
            if builtin is not _NOT_PRIMITIVE:
                return builtin
        return Unknown(self._origin(node))

    def _maybe_inline(self, target: FuncInfo, args: List[object],
                      kwargs: Dict[str, object], has_star: bool,
                      node: ast.Call) -> object:
        if not target.may_comm:
            return Unknown(self._origin(node))
        if has_star:
            return Unknown(self._origin(node))
        fn = target.node
        params = [a.arg for a in fn.args.posonlyargs + fn.args.args]
        bound: Dict[str, object] = {}
        for name, value in zip(params, args):
            bound[name] = value
        for name, value in kwargs.items():
            bound[name] = value
        return self._call_function(target, bound)

    def _instantiate(self, class_name: str, args: List[object],
                     kwargs: Dict[str, object], node: ast.Call) -> object:
        obj = ObjVal(class_name)
        ctor = self.program.lookup_method(class_name, "__init__")
        if ctor is not None:
            fn = ctor.node
            params = [a.arg for a in fn.args.posonlyargs + fn.args.args]
            bound: Dict[str, object] = {}
            if params:
                bound[params[0]] = obj
            for name, value in zip(params[1:], args):
                bound[name] = value
            for name, value in kwargs.items():
                bound[name] = value
            self._call_function(ctor, bound)
        return obj

    # primitive semantics ----------------------------------------------
    def _emit(self, node: ast.AST, info: FuncInfo, **fields) -> int:
        site = _site(info.module, node)
        event = CommEvent(site=site, frame=info.qualname, **fields)
        self.events.append(event)
        return len(self.events) - 1

    def _primitive(self, receiver, attr, node, args, kwargs, env, info):
        get = kwargs.get
        if isinstance(receiver, TransportVal):
            if attr in ("send", "broadcast", "allreduce"):
                tag = args[-1] if args else get("tag", Unknown("tag"))
                self._emit(node, info, kind="meter", tag=tag,
                           tag_expr=_arg_expr(node, "tag", -1))
                return Unknown(self._origin(node))
            return _NOT_PRIMITIVE
        if attr == "_join_send":
            if args and isinstance(args[0], TicketVal):
                self._emit(node, info, kind="join", blocking=True,
                           link=args[0].event_index)
            return None
        if attr not in COMM_PRIMITIVES:
            return _NOT_PRIMITIVE
        if attr in ("send", "_send_raw"):
            peer = args[0] if args else get("dst", Unknown("dst"))
            tag = args[2] if len(args) > 2 else get("tag", Unknown("tag"))
            self._emit(node, info, kind="send", peer=peer, tag=tag,
                       blocking=True,
                       peer_expr=_arg_expr(node, "dst", 0),
                       tag_expr=_arg_expr(node, "tag", 2))
            return Unknown(self._origin(node)) if attr == "send" else None
        if attr in ("isend", "_isend_raw"):
            peer = args[0] if args else get("dst", Unknown("dst"))
            tag = args[2] if len(args) > 2 else get("tag", Unknown("tag"))
            index = self._emit(node, info, kind="isend", peer=peer, tag=tag,
                               peer_expr=_arg_expr(node, "dst", 0),
                               tag_expr=_arg_expr(node, "tag", 2))
            return TicketVal(index)
        if attr == "recv":
            peer = args[0] if args else get("src", Unknown("src"))
            tag = args[1] if len(args) > 1 else get("tag", Unknown("tag"))
            self._emit(node, info, kind="recv", peer=peer, tag=tag,
                       blocking=True,
                       peer_expr=_arg_expr(node, "src", 0),
                       tag_expr=_arg_expr(node, "tag", 1))
            return Unknown(self._origin(node))
        if attr == "allreduce":
            tag = args[1] if len(args) > 1 else get("tag", Unknown("tag"))
            alg = kwargs.get("algorithm",
                             args[2] if len(args) > 2 else "ring")
            self._emit(node, info, kind="coll", tag=tag,
                       alg=alg if isinstance(alg, str) else None,
                       blocking=True, tag_expr=_arg_expr(node, "tag", 1))
            return Unknown(self._origin(node))
        if attr == "broadcast":
            tag = args[-1] if args else get("tag", Unknown("tag"))
            self._emit(node, info, kind="coll", tag=tag, alg="broadcast",
                       blocking=True, tag_expr=_arg_expr(node, "tag", -1))
            return Unknown(self._origin(node))
        if attr in ("exchange", "post_exchange"):
            outgoing = args[0] if args else get("outgoing",
                                                Unknown("outgoing"))
            expect = args[1] if len(args) > 1 else get("expect",
                                                       Unknown("expect"))
            tag = args[2] if len(args) > 2 else get("tag", Unknown("tag"))
            tag_expr = _arg_expr(node, "tag", 2)
            self._emit_exchange_sends(node, info, outgoing, tag, tag_expr)
            handle = self._new_handle(node, info, tag, expect)
            self._emit(node, info, kind="post", tag=tag,
                       handle_id=handle.handle_id, tag_expr=tag_expr)
            if attr == "post_exchange":
                return handle
            return self._complete_handle(node, info, handle)
        if attr == "complete_exchange":
            handle = args[0] if args else get("handle", Unknown("handle"))
            if isinstance(handle, HandleVal):
                return self._complete_handle(node, info, handle)
            # Unknown handle: weakly complete everything still open so
            # an imprecise index never fabricates a leak.
            for open_handle in list(self.open_handles.values()):
                self._complete_handle(node, info, open_handle)
            return Unknown(self._origin(node))
        return _NOT_PRIMITIVE

    def _emit_exchange_sends(self, node, info, outgoing, tag,
                             tag_expr) -> None:
        if isinstance(outgoing, dict):
            for dst in outgoing:
                self._emit(node, info, kind="isend", peer=dst, tag=tag,
                           tag_expr=tag_expr)
        else:
            self._emit(node, info, kind="isend",
                       peer=Unknown(self._origin(node)), tag=tag,
                       tag_expr=tag_expr)

    def _new_handle(self, node, info, tag, expect) -> HandleVal:
        self._handle_seq += 1
        handle = HandleVal(self._handle_seq, tag, expect,
                           _site(info.module, node))
        self.open_handles[handle.handle_id] = handle
        return handle

    def _complete_handle(self, node, info, handle: HandleVal) -> object:
        if handle.completed:
            self.double_completes.append((handle, _site(info.module, node)))
            return Unknown(self._origin(node))
        handle.completed = True
        self.open_handles.pop(handle.handle_id, None)
        expect = handle.expect
        received: object
        if isinstance(expect, (list, tuple)) and all(
            isinstance(p, int) for p in expect
        ):
            for src in expect:
                self._emit(node, info, kind="recv", peer=src,
                           tag=handle.tag, blocking=True)
            received = {src: Unknown(self._origin(node)) for src in expect}
        else:
            self._emit(node, info, kind="recv",
                       peer=Unknown(self._origin(node)), tag=handle.tag,
                       blocking=True)
            received = Unknown(self._origin(node))
        self._emit(node, info, kind="complete", tag=handle.tag,
                   handle_id=handle.handle_id)
        return received

    def _container_method(self, receiver, attr, args, node):
        try:
            if isinstance(receiver, dict):
                if attr == "items":
                    return list(receiver.items())
                if attr == "keys":
                    return list(receiver.keys())
                if attr == "values":
                    return list(receiver.values())
                if attr == "get" and args:
                    return receiver.get(args[0] if _is_concrete(args[0])
                                        else None,
                                        args[1] if len(args) > 1 else None)
            if isinstance(receiver, list):
                if attr == "append" and args:
                    receiver.append(args[0])
                    return None
                if attr == "extend" and args:
                    if isinstance(args[0], (list, tuple)):
                        receiver.extend(args[0])
                    return None
                if attr == "copy":
                    return list(receiver)
            if isinstance(receiver, str):
                if attr == "format":
                    return TagPrefix(receiver.split("{", 1)[0]) \
                        if "{" in receiver else receiver
                if attr in ("upper", "lower", "strip"):
                    return getattr(receiver, attr)()
        except (TypeError, AttributeError):
            pass
        return Unknown(self._origin(node))

    def _builtin(self, name, args, kwargs, node):
        unknown = Unknown(self._origin(node))
        try:
            if name == "range":
                if all(isinstance(a, int) for a in args) and args:
                    return range(*args)
                return unknown
            if name == "len":
                if isinstance(args[0], (list, tuple, dict, set, str, range)):
                    return len(args[0])
                return unknown
            if name == "list":
                if not args:
                    return []
                if isinstance(args[0], (list, tuple, range, set, dict)):
                    return list(args[0])
                if isinstance(args[0], ApproxList):
                    return args[0]
                return unknown
            if name == "tuple":
                if args and isinstance(args[0], (list, tuple, range)):
                    return tuple(args[0])
                return unknown
            if name == "dict":
                return dict(args[0]) if args and isinstance(args[0], dict) \
                    else ({} if not args else unknown)
            if name == "set":
                return set(args[0]) if args and isinstance(
                    args[0], (list, tuple, range)
                ) else (set() if not args else unknown)
            if name == "sorted":
                if isinstance(args[0], (list, tuple, range)) and all(
                    _is_concrete(v) for v in args[0]
                ) and not kwargs:
                    return sorted(args[0])
                return unknown
            if name == "enumerate":
                if isinstance(args[0], (list, tuple, range)):
                    return [(i, v) for i, v in enumerate(args[0])]
                if isinstance(args[0], ApproxList):
                    return ApproxList(
                        [(unknown, s) for s in args[0].samples]
                    )
                return unknown
            if name in ("all", "any"):
                seq = args[0]
                if isinstance(seq, ApproxList):
                    seq = seq.samples
                if isinstance(seq, (list, tuple)):
                    if any(isinstance(v, Unknown) for v in seq):
                        first = next(v for v in seq
                                     if isinstance(v, Unknown))
                        return Unknown(first.origin)
                    return all(map(_truthy, seq)) if name == "all" \
                        else any(map(_truthy, seq))
                return unknown
            if name in ("min", "max", "sum", "abs", "int", "float", "str",
                        "bool", "round"):
                flat = args[0] if len(args) == 1 and isinstance(
                    args[0], (list, tuple)
                ) else args
                if all(_is_concrete(v) for v in flat) and not kwargs:
                    import builtins

                    return getattr(builtins, name)(*args)
                return unknown
            if name == "zip":
                if all(isinstance(a, (list, tuple, range)) for a in args):
                    return [tuple(group) for group in zip(*args)]
                return unknown
            if name == "print":
                return None
            if name == "isinstance":
                return unknown
        except (TypeError, ValueError, KeyError, IndexError, StopIteration):
            return unknown
        return _NOT_PRIMITIVE


_NOT_PRIMITIVE = object()


# ----------------------------------------------------------------------
# Small helpers
# ----------------------------------------------------------------------
def _is_concrete(value: object) -> bool:
    if isinstance(value, (Unknown, Sym, TagPrefix, ApproxList, ObjVal,
                          TicketVal, HandleVal)):
        return False
    if isinstance(value, tuple) and value and value[0] in ("ref", "bound"):
        return False
    if isinstance(value, (list, tuple, set)):
        return all(_is_concrete(v) for v in value)
    if isinstance(value, dict):
        return all(_is_concrete(k) for k in value)
    return True


def _truthy(value: object) -> bool:
    try:
        return bool(value)
    except (TypeError, ValueError):  # pragma: no cover - exotic values
        return True


def _apply_binop(op: ast.operator, left, right, fallback):
    import operator as _op

    table = {
        ast.Add: _op.add, ast.Sub: _op.sub, ast.Mult: _op.mul,
        ast.Div: _op.truediv, ast.FloorDiv: _op.floordiv, ast.Mod: _op.mod,
        ast.Pow: _op.pow, ast.BitOr: _op.or_, ast.BitAnd: _op.and_,
        ast.BitXor: _op.xor, ast.LShift: _op.lshift, ast.RShift: _op.rshift,
    }
    fn = table.get(type(op))
    if fn is None:
        return fallback
    try:
        return fn(left, right)
    except (TypeError, ValueError, ZeroDivisionError, OverflowError):
        return fallback


def _apply_compare(op: ast.cmpop, left, right):
    import operator as _op

    table = {
        ast.Eq: _op.eq, ast.NotEq: _op.ne, ast.Lt: _op.lt, ast.LtE: _op.le,
        ast.Gt: _op.gt, ast.GtE: _op.ge,
    }
    if isinstance(op, (ast.Is, ast.IsNot)):
        if left is None or right is None or isinstance(
            left, (bool, int, str)
        ) or isinstance(right, (bool, int, str)):
            same = left is right or (left == right and left is not None)
            return same if isinstance(op, ast.Is) else not same
        return Unknown("is")
    if isinstance(op, (ast.In, ast.NotIn)):
        try:
            hit = left in right
        except TypeError:
            return Unknown("in")
        return hit if isinstance(op, ast.In) else not hit
    fn = table.get(type(op))
    if fn is None:
        return Unknown("cmp")
    try:
        return fn(left, right)
    except TypeError:
        return Unknown("cmp")


def _iteration_items(iterable: object, origin: str) -> List[object]:
    if isinstance(iterable, (list, tuple)):
        return list(iterable)[:_LOOP_UNROLL_CAP]
    if isinstance(iterable, range):
        return list(iterable)[:_LOOP_UNROLL_CAP]
    if isinstance(iterable, dict):
        return list(iterable.keys())[:_LOOP_UNROLL_CAP]
    if isinstance(iterable, set):
        return sorted(iterable, key=repr)[:_LOOP_UNROLL_CAP]
    if isinstance(iterable, ApproxList):
        return list(iterable.samples)[:_LOOP_UNROLL_CAP]
    # Unknown iterable: one representative iteration.
    return [Unknown(origin)]


def _block_escapes(stmts: Sequence[ast.stmt]) -> bool:
    return any(
        isinstance(s, (ast.Return, ast.Raise, ast.Break, ast.Continue))
        for s in stmts
    )


def _arg_expr(node: ast.Call, kw_name: str, position: int) -> str:
    for kw in node.keywords:
        if kw.arg == kw_name:
            return ast.unparse(kw.value)
    args = [a for a in node.args if not isinstance(a, ast.Starred)]
    if position == -1 and args:
        return ast.unparse(args[-1])
    if 0 <= position < len(args):
        return ast.unparse(args[position])
    return ""
