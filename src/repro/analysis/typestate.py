"""Typestate verification for the transport protocol objects.

The transport layer's objects have *protocols*, not just APIs: an
:class:`~repro.dist.transport.Endpoint` is driven
``launch -> exchange* -> close`` and must never move bytes after
``close``; an :class:`~repro.dist.transport.ExchangeHandle` is redeemed
exactly once; a :class:`~repro.dist.transport.Transport` must not have
``launch`` re-entered while a launch is in flight.  This module
declares those protocols **as data** (:data:`PROTOCOLS`) — a start
state plus a ``(state, event) -> state`` table — so the elastic-
recovery rewrite can extend them (add a ``recovering`` state, a
``relaunch`` event) without touching the checker machinery, and so the
same tables drive both:

* the static :class:`TypestatePass` below — a forward dataflow over
  the function CFG tracking the state *set* of every local variable
  bound to a protocol object, reporting the first event that has no
  legal transition from some reachable state (``send`` after
  ``close``, a handle completed twice, ...), and
* the runtime ``REPRO_SANITIZE=protocol`` proxies in
  :mod:`repro.analysis.sanitizer`, which advance the same tables on
  live objects and raise ``ProtocolError`` on the first illegal
  transition.

Synchronous-call convention: a method event ``e`` whose completion
matters separately (``launch``) declares a paired ``e_done``
transition.  The runtime advances ``e`` on entry and ``e_done`` on
return; the static pass — which only sees whole call statements —
applies ``e`` and then auto-applies ``e_done`` when one is declared,
so a *sequential* re-launch is legal in source while a *re-entrant*
one still trips the runtime proxy.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from .dataflow import (
    CFG,
    CFGNode,
    dotted_name,
    escaping_loads,
    header_roots,
    solve_forward,
)
from .engine import Diagnostic, FlowPass, SourceModule, register_pass

__all__ = [
    "PROTOCOLS",
    "Protocol",
    "TypestatePass",
    "protocol_for_class",
]


@dataclass(frozen=True)
class Protocol:
    """One object protocol: a state machine over method-call events.

    ``constructors`` name the call sites that create an instance in
    ``start`` — class-name patterns (a trailing ``*`` matches a name
    suffix, so ``"*Endpoint"`` covers every endpoint class) and/or
    producer methods written ``".method"`` (``".post_exchange"`` —
    the *result* of the call is the protocol object).  ``arg_events``
    map a method name to an event applied to that call's first
    argument (``complete_exchange(handle)`` advances the *handle*).
    Events appearing in no transition from the current state are
    illegal; ``errors`` supplies the human message for the pairs worth
    explaining.
    """

    name: str
    start: str
    constructors: Tuple[str, ...]
    transitions: Mapping[Tuple[str, str], str]
    errors: Mapping[Tuple[str, str], str] = field(default_factory=dict)
    arg_events: Mapping[str, str] = field(default_factory=dict)

    @property
    def alphabet(self) -> FrozenSet[str]:
        return frozenset(e for _s, e in self.transitions) | frozenset(
            e for _s, e in self.errors
        )

    def advance(self, state: str, event: str,
                auto_done: bool = True) -> Tuple[Optional[str], str]:
        """``(new_state, "")`` on a legal event, ``(None, message)`` on
        an illegal one.  With ``auto_done`` (the static pass, which
        sees whole call statements), a declared ``<event>_done``
        completion is applied immediately; the runtime proxies pass
        ``auto_done=False`` and fire ``<event>_done`` on return."""
        if event not in self.alphabet:
            return state, ""  # not a protocol event — no state change
        nxt = self.transitions.get((state, event))
        if nxt is None:
            message = self.errors.get(
                (state, event),
                f"{event}() is illegal in state {state!r}",
            )
            return None, message
        if auto_done:
            done = self.transitions.get((nxt, event + "_done"))
            if done is not None:
                return done, ""
        return nxt, ""

    def matches_constructor(self, callee: str) -> bool:
        """Does a dotted callee name create an instance of this type?"""
        last = callee.rsplit(".", 1)[-1]
        for pattern in self.constructors:
            if pattern.startswith("."):
                if callee.endswith(pattern) or callee == pattern[1:]:
                    return True
            elif pattern.startswith("*"):
                if last.endswith(pattern[1:]):
                    return True
            elif last == pattern:
                return True
        return False


_DATA_OPS = ("send", "isend", "recv", "exchange", "post_exchange",
             "complete_exchange", "allreduce")

#: The transport-layer protocol tables.  Declared as plain data so the
#: recovery rewrite extends them by adding rows, not code.
ENDPOINT_PROTOCOL = Protocol(
    name="endpoint",
    start="open",
    constructors=("*Endpoint",),
    transitions={
        **{("open", op): "open" for op in _DATA_OPS},
        ("open", "close"): "closed",
    },
    errors={
        **{("closed", op): f"{op}() on a closed endpoint"
           for op in _DATA_OPS},
        ("closed", "close"): "endpoint closed twice",
    },
)

TRANSPORT_PROTOCOL = Protocol(
    name="transport",
    start="idle",
    constructors=("*Transport", "*Communicator"),
    transitions={
        ("idle", "launch"): "launching",
        ("launching", "launch_done"): "idle",
    },
    errors={
        ("launching", "launch"): (
            "double-launch: launch() re-entered while a launch is "
            "already in flight on this transport"
        ),
    },
)

EXCHANGE_HANDLE_PROTOCOL = Protocol(
    name="exchange-handle",
    start="posted",
    constructors=(".post_exchange",),
    transitions={("posted", "complete"): "completed"},
    errors={
        ("completed", "complete"): "exchange handle completed twice",
    },
    arg_events={"complete_exchange": "complete"},
)

#: ``_SendTicket`` has no illegal transition *today* (join and
#: ``is_alive`` are re-entrant by design); the table exists so the
#: recovery rewrite can make states like ``abandoned`` illegal to join
#: by adding rows rather than a new checker.
SEND_TICKET_PROTOCOL = Protocol(
    name="send-ticket",
    start="pending",
    constructors=("_SendTicket", ".isend"),
    transitions={
        ("pending", "join"): "pending",
        ("pending", "is_alive"): "pending",
    },
)

PROTOCOLS: Tuple[Protocol, ...] = (
    ENDPOINT_PROTOCOL,
    TRANSPORT_PROTOCOL,
    EXCHANGE_HANDLE_PROTOCOL,
    SEND_TICKET_PROTOCOL,
)


def protocol_for_class(class_name: str) -> Optional[Protocol]:
    """The protocol (if any) governing instances of ``class_name`` —
    the runtime sanitizer's lookup when wrapping a live object."""
    for protocol in PROTOCOLS:
        if protocol.matches_constructor(class_name):
            return protocol
    return None


def _constructed_protocol(call: ast.Call) -> Optional[Protocol]:
    callee = dotted_name(call.func)
    if callee is None:
        return None
    for protocol in PROTOCOLS:
        if protocol.matches_constructor(callee):
            return protocol
    return None


# ----------------------------------------------------------------------
# The static pass
# ----------------------------------------------------------------------
#: Dataflow state: var -> (protocol name, frozenset of possible states).
#: The state *set* makes the join a plain union: after ``if c:
#: ep.close()`` the endpoint is {open, closed}, and a later send is
#: reported as illegal on the closed branch.
_State = Dict[str, Tuple[str, FrozenSet[str]]]

_BY_NAME = {p.name: p for p in PROTOCOLS}


def _join(a: _State, b: _State) -> _State:
    out = dict(a)
    for var, (proto, states) in b.items():
        if var in out and out[var][0] == proto:
            out[var] = (proto, out[var][1] | states)
        else:
            out[var] = (proto, states)
    return out


class TypestatePass(FlowPass):
    rule = "typestate"
    title = "protocol objects must follow their declared state machines"
    description = (
        "flow-sensitive: endpoints/transports/handles tracked through "
        "the CFG against the PROTOCOLS tables (send-after-close, "
        "double-complete, ...); REPRO_SANITIZE=protocol is the "
        "runtime mirror"
    )

    def run_cfg(self, module: SourceModule, cfg: CFG) -> List[Diagnostic]:
        findings: Dict[Tuple[int, str], Diagnostic] = {}

        def transfer(node: CFGNode, state: _State):
            if node.stmt is None or node.kind in ("finally", "except"):
                return state, state
            stmt = node.stmt
            roots = header_roots(node)
            out = dict(state)
            protocol_args: set = set()
            # 1. Apply protocol events (method calls on tracked vars).
            for call in [n for root in roots for n in ast.walk(root)
                         if isinstance(n, ast.Call)]:
                for var, event, is_arg in self._events_of(call, out):
                    if is_arg:
                        protocol_args.add(var)
                    proto_name, states = out[var]
                    protocol = _BY_NAME[proto_name]
                    survivors = set()
                    for st in states:
                        nxt, message = protocol.advance(st, event)
                        if nxt is None:
                            key = (call.lineno, f"{var}.{event}")
                            if key not in findings:
                                findings[key] = self.diag(
                                    module, call,
                                    f"{protocol.name} protocol: {message} "
                                    f"(variable {var!r})",
                                    hint="re-order the calls to follow "
                                    "the protocol table in "
                                    "repro.analysis.typestate, or waive "
                                    "with a justified "
                                    "# repro-lint: ignore[typestate]",
                                )
                            # Stop tracking to avoid cascading reports.
                        else:
                            survivors.add(nxt)
                    if survivors:
                        out[var] = (proto_name, frozenset(survivors))
                    else:
                        out.pop(var, None)
            # 2. Escapes end tracking (the object now has other owners).
            # An argument that just fired a declared arg-event stays
            # tracked — handing a handle to complete_exchange is the
            # protocol, not an escape.
            for root in roots:
                for var in escaping_loads(root, tuple(out)):
                    if var not in protocol_args:
                        out.pop(var, None)
            exc_out = dict(out)
            if node.kind == "with-exit":
                return out, exc_out  # __exit__ binds nothing new
            # 3. New bindings (acquisitions happen on the normal edge
            # only: a constructor that raised bound nothing).
            target = self._bound_call(stmt)
            if target is not None:
                var, call = target
                protocol = _constructed_protocol(call)
                if protocol is not None:
                    out[var] = (protocol.name, frozenset({protocol.start}))
                else:
                    out.pop(var, None)  # rebound to something untracked
            else:
                for var in self._rebound_names(stmt):
                    out.pop(var, None)
            return out, exc_out

        solve_forward(cfg, {}, transfer, _join)
        return sorted(findings.values(), key=lambda d: (d.line, d.col))

    # ------------------------------------------------------------------
    @staticmethod
    def _events_of(
        call: ast.Call, state: _State
    ) -> List[Tuple[str, str, bool]]:
        """(tracked var, event, via-argument?) triples this call fires:
        a method call on a tracked receiver, and/or a declared
        arg-event on a tracked first argument."""
        events: List[Tuple[str, str, bool]] = []
        func = call.func
        if isinstance(func, ast.Attribute):
            method = func.attr
            receiver = func.value
            if isinstance(receiver, ast.Name) and receiver.id in state:
                events.append((receiver.id, method, False))
            if call.args and isinstance(call.args[0], ast.Name):
                arg = call.args[0].id
                if arg in state:
                    protocol = _BY_NAME[state[arg][0]]
                    event = protocol.arg_events.get(method)
                    if event is not None:
                        events.append((arg, event, True))
        return events

    @staticmethod
    def _bound_call(stmt: ast.stmt) -> Optional[Tuple[str, ast.Call]]:
        """``var = SomeCall(...)`` — the tracking entry point (also
        ``with SomeCall(...) as var:``)."""
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name) \
                and isinstance(stmt.value, ast.Call):
            return stmt.targets[0].id, stmt.value
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if isinstance(item.context_expr, ast.Call) \
                        and isinstance(item.optional_vars, ast.Name):
                    return item.optional_vars.id, item.context_expr
        return None

    @staticmethod
    def _rebound_names(stmt: ast.stmt) -> List[str]:
        """Names this statement rebinds to something untracked."""
        if isinstance(stmt, ast.Assign):
            return [t.id for t in stmt.targets if isinstance(t, ast.Name)]
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return [n.id for n in ast.walk(stmt.target)
                    if isinstance(n, ast.Name)]
        return []


register_pass(TypestatePass())
