"""Sampling-based GCN training baselines (Tables 4, 5, 11, 12)."""

from .base import BaselineHistory, MiniBatchTrainer
from .full import FullGraphTrainer
from .neighbor import NeighborSamplingTrainer
from .fastgcn import FastGCNTrainer
from .ladies import LadiesTrainer
from .clustergcn import ClusterGCNTrainer
from .graphsaint import GraphSaintTrainer, SAMPLERS
from .vrgcn import VRGCNTrainer

__all__ = [
    "BaselineHistory",
    "MiniBatchTrainer",
    "FullGraphTrainer",
    "NeighborSamplingTrainer",
    "FastGCNTrainer",
    "LadiesTrainer",
    "ClusterGCNTrainer",
    "GraphSaintTrainer",
    "SAMPLERS",
    "VRGCNTrainer",
]
