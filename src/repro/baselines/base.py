"""Shared plumbing for the sampling-based training baselines.

Every baseline (GraphSAGE neighbour sampling, FastGCN, LADIES,
ClusterGCN, GraphSAINT, VR-GCN) trains the same kind of model on the
same graph but builds its per-step computation from a different sample.
This module centralises:

* minibatch iteration over the training set,
* full-graph evaluation (the common protocol — all methods are scored
  on unsampled inference),
* bookkeeping of loss, wall time, *sampled-structure statistics*
  (FLOPs executed, edges touched while sampling) that feed the
  epoch-time model used by Tables 5/11/12.

Timing note: all methods run on the same numpy substrate here, so their
*relative* wall-clock is meaningful; the harness additionally reports a
modelled GPU epoch time computed from the recorded FLOPs and sampling
ops (see :mod:`repro.bench.timemodel`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

import numpy as np

from ..graph.graph import Graph
from ..graph.propagation import mean_aggregation, sym_norm
from ..nn import functional as F
from ..nn.metrics import accuracy, f1_micro_multilabel
from ..nn.optim import Adam, Optimizer
from ..tensor import Tensor, no_grad

__all__ = ["BaselineHistory", "MiniBatchTrainer"]


@dataclass
class BaselineHistory:
    """Per-epoch records common to every baseline."""

    loss: List[float] = field(default_factory=list)
    val_metric: List[float] = field(default_factory=list)
    test_metric: List[float] = field(default_factory=list)
    eval_epochs: List[int] = field(default_factory=list)
    wall_seconds: List[float] = field(default_factory=list)
    sampling_seconds: List[float] = field(default_factory=list)
    compute_flops: List[float] = field(default_factory=list)
    sampler_edges: List[float] = field(default_factory=list)

    @property
    def best_val(self) -> float:
        return max(self.val_metric) if self.val_metric else float("nan")

    def test_at_best_val(self) -> float:
        if not self.val_metric:
            return float("nan")
        return self.test_metric[int(np.argmax(self.val_metric))]


class MiniBatchTrainer:
    """Base class: batching, evaluation, history, epoch loop."""

    name = "abstract"

    def __init__(
        self,
        graph: Graph,
        model,
        lr: float = 0.01,
        batch_size: int = 512,
        seed: int = 0,
        optimizer: Optional[Optimizer] = None,
        aggregation: str = "mean",
    ) -> None:
        self.graph = graph
        self.model = model
        self.batch_size = batch_size
        self.rng = np.random.default_rng(seed)
        self.dropout_rng = np.random.default_rng(seed + 1)
        self.optimizer = optimizer or Adam(model.parameters(), lr=lr)
        if aggregation == "mean":
            self.eval_prop = mean_aggregation(graph.adj)
        else:
            self.eval_prop = sym_norm(graph.adj)
        self.train_nodes = np.flatnonzero(graph.train_mask)
        self.history = BaselineHistory()
        # Per-epoch accumulators, reset by train_epoch.
        self._flops = 0.0
        self._sampler_edges = 0.0
        self._sampling_seconds = 0.0

    # ------------------------------------------------------------------
    def _batches(self) -> Iterator[np.ndarray]:
        order = self.rng.permutation(self.train_nodes)
        for start in range(0, len(order), self.batch_size):
            yield order[start:start + self.batch_size]

    def _loss(self, logits: Tensor, labels: np.ndarray) -> Tensor:
        if self.graph.multilabel:
            return F.bce_with_logits(logits, labels)
        return F.cross_entropy(logits, labels)

    def _metric(self, logits: np.ndarray, labels: np.ndarray) -> float:
        if self.graph.multilabel:
            return f1_micro_multilabel(logits, labels)
        return accuracy(logits, labels)

    # ------------------------------------------------------------------
    def train_step(self, batch: np.ndarray) -> float:  # pragma: no cover
        raise NotImplementedError

    def train_epoch(self) -> float:
        self.model.train()
        self._flops = 0.0
        self._sampler_edges = 0.0
        self._sampling_seconds = 0.0
        t0 = time.perf_counter()
        losses = []
        for batch in self._batches():
            losses.append(self.train_step(batch))
        wall = time.perf_counter() - t0
        mean_loss = float(np.mean(losses)) if losses else float("nan")
        self.history.loss.append(mean_loss)
        self.history.wall_seconds.append(wall)
        self.history.sampling_seconds.append(self._sampling_seconds)
        self.history.compute_flops.append(self._flops)
        self.history.sampler_edges.append(self._sampler_edges)
        return mean_loss

    # ------------------------------------------------------------------
    def evaluate(self) -> Dict[str, float]:
        self.model.eval()
        g = self.graph
        with no_grad():
            logits = self.model.full_forward(
                self.eval_prop, Tensor(g.features), self.dropout_rng
            ).numpy()
        self.model.train()
        return {
            "train": self._metric(logits[g.train_mask], g.labels[g.train_mask]),
            "val": self._metric(logits[g.val_mask], g.labels[g.val_mask]),
            "test": self._metric(logits[g.test_mask], g.labels[g.test_mask]),
        }

    def train(self, epochs: int, eval_every: int = 0) -> BaselineHistory:
        for epoch in range(epochs):
            self.train_epoch()
            if eval_every and (
                epoch % eval_every == eval_every - 1 or epoch == epochs - 1
            ):
                scores = self.evaluate()
                self.history.val_metric.append(scores["val"])
                self.history.test_metric.append(scores["test"])
                self.history.eval_epochs.append(epoch)
        return self.history

    # ------------------------------------------------------------------
    # helpers for subclasses
    # ------------------------------------------------------------------
    def _record_sampling(self, seconds: float, edges: float) -> None:
        self._sampling_seconds += seconds
        self._sampler_edges += edges

    def _record_flops(self, flops: float) -> None:
        self._flops += flops
