"""ClusterGCN (Chiang et al., 2019): subgraph minibatching by clusters.

The graph is pre-clustered (METIS in the original; our metis-like
partitioner here) into many small clusters; each step unions a few
random clusters, builds the induced subgraph, and runs a *full* forward
on it.  Cross-cluster edges outside the union are dropped — the source
of ClusterGCN's estimation bias — and the cluster prework is the
"sampling overhead" the paper's Appendix D measures (proportional to
the whole edge set, unlike BNS's boundary-only work).
"""

from __future__ import annotations

import time

import numpy as np

from ..graph.propagation import row_normalise
from ..partition.metis_like import MetisLikeConfig, metis_like_partition
from ..tensor import SparseOp, Tensor, relu
from .base import MiniBatchTrainer

__all__ = ["ClusterGCNTrainer"]


class ClusterGCNTrainer(MiniBatchTrainer):
    """Cluster-minibatched SAGE training."""

    name = "clustergcn"

    def __init__(
        self,
        graph,
        model,
        num_clusters: int = 32,
        clusters_per_batch: int = 4,
        **kwargs,
    ) -> None:
        super().__init__(graph, model, **kwargs)
        if clusters_per_batch < 1 or num_clusters < clusters_per_batch:
            raise ValueError("need 1 <= clusters_per_batch <= num_clusters")
        self.num_clusters = num_clusters
        self.clusters_per_batch = clusters_per_batch
        t0 = time.perf_counter()
        part = metis_like_partition(
            graph.adj, num_clusters, MetisLikeConfig(objective="cut", seed=kwargs.get("seed", 0))
        )
        self._clusters = [part.inner_nodes(c) for c in range(num_clusters)]
        # One-off clustering cost, amortised over epochs by the caller;
        # recorded so the overhead table can include it.
        self.clustering_seconds = time.perf_counter() - t0
        self.clustering_edges = float(graph.adj.nnz)

    # ------------------------------------------------------------------
    def _batches(self):
        """Each 'batch' is a random union of clusters; one epoch visits
        every cluster once."""
        order = self.rng.permutation(self.num_clusters)
        for start in range(0, self.num_clusters, self.clusters_per_batch):
            chosen = order[start:start + self.clusters_per_batch]
            yield np.sort(np.concatenate([self._clusters[c] for c in chosen]))

    def train_step(self, nodes: np.ndarray) -> float:
        t0 = time.perf_counter()
        sub_adj = self.graph.adj[nodes][:, nodes].tocsr()
        prop = row_normalise(sub_adj)
        self._record_sampling(time.perf_counter() - t0, float(sub_adj.nnz))

        train_local = np.flatnonzero(self.graph.train_mask[nodes])
        if train_local.size == 0:
            return float("nan")

        dims = self.model.dims
        h = Tensor(self.graph.features[nodes])
        for layer_idx, layer in enumerate(self.model.layers):
            h = self.model.dropout(h, self.dropout_rng)
            out = layer(SparseOp(prop), h, h)
            if layer_idx < self.model.num_layers - 1:
                out = relu(out)
            d_in, d_out = dims[layer_idx], dims[layer_idx + 1]
            self._record_flops(
                3.0 * (2.0 * prop.nnz * d_in + 4.0 * len(nodes) * d_in * d_out)
            )
            h = out

        from ..tensor import gather_rows

        logits = gather_rows(h, train_local)
        loss = self._loss(logits, self.graph.labels[nodes[train_local]])
        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.step()
        return loss.item()
