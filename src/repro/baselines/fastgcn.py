"""FastGCN (Chen et al., 2018a): layer-wise importance sampling.

Each layer's node set is drawn i.i.d. from a *global* importance
distribution q(u) ∝ ||P[:, u]||² (column norms of the propagation
matrix), independent of the layer above — cheap, but the disconnect
between consecutive layers produces sparse blocks and the highest
estimator variance of the compared methods (Table 2), which is why its
accuracy trails in Table 4.

Follows the original work in using GCN-style (sym-norm) propagation;
kept-column entries are rescaled by 1/(s·q(u)) for unbiasedness.
"""

from __future__ import annotations

import time
from typing import List

import numpy as np
import scipy.sparse as sp

from ..graph.propagation import sym_norm
from ..tensor import SparseOp, Tensor, relu
from .base import MiniBatchTrainer

__all__ = ["FastGCNTrainer"]


class FastGCNTrainer(MiniBatchTrainer):
    """Layer-sampled GCN training with global importance weights."""

    name = "fastgcn"

    def __init__(self, graph, model, layer_size: int = 256, **kwargs) -> None:
        kwargs.setdefault("aggregation", "sym")
        super().__init__(graph, model, **kwargs)
        if layer_size < 1:
            raise ValueError("layer_size must be >= 1")
        self.layer_size = layer_size
        self._p = sym_norm(graph.adj).csr
        col_norms = np.asarray(self._p.multiply(self._p).sum(axis=0)).ravel()
        total = col_norms.sum()
        if total <= 0:
            raise ValueError("propagation matrix has no mass")
        self._q = col_norms / total

    def train_step(self, batch: np.ndarray) -> float:
        t0 = time.perf_counter()
        num_layers = self.model.num_layers
        n = self.graph.num_nodes
        sets: List[np.ndarray] = [batch]  # S_L at index 0, building downwards
        for _ in range(num_layers):
            s = min(self.layer_size, n)
            sampled = self.rng.choice(n, size=s, replace=False, p=self._q)
            sets.append(np.unique(sampled))
        # edges touched: one pass over the rows of each sampled block.
        edges = float(
            sum(self._p[dst].nnz for dst in sets[:-1])
        )
        self._record_sampling(time.perf_counter() - t0, edges)

        # Forward input-to-output: layer ℓ maps S_{ℓ-1} -> S_ℓ,
        # i.e. block index num_layers-1-layer_idx in `sets`.
        dims = self.model.dims
        h = Tensor(self.graph.features[sets[-1]])
        for layer_idx, layer in enumerate(self.model.layers):
            dst = sets[num_layers - 1 - layer_idx]
            src = sets[num_layers - layer_idx]
            # Unbiased column-sampled operator: Ẑ = Σ_u P[:,u]·h_u/(s·q_u).
            block = self._p[dst][:, src].tocsr() @ sp.diags(
                1.0 / (len(src) * np.maximum(self._q[src], 1e-12))
            )
            h = self.model.dropout(h, self.dropout_rng)
            out = layer(SparseOp(block), h, None)
            if layer_idx < num_layers - 1:
                out = relu(out)
            d_in, d_out = dims[layer_idx], dims[layer_idx + 1]
            self._record_flops(
                3.0 * (2.0 * block.nnz * d_in + 2.0 * len(dst) * d_in * d_out)
            )
            h = out

        loss = self._loss(h, self.graph.labels[batch])
        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.step()
        return loss.item()
