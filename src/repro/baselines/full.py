"""Single-device full-graph training — the reference the distributed
trainer must match exactly at p = 1 (and the "ideal" accuracy anchor
for every comparison table)."""

from __future__ import annotations

import time
from typing import Dict, List, Optional

import numpy as np

from ..graph.graph import Graph
from ..graph.propagation import mean_aggregation, sym_norm
from ..nn import functional as F
from ..nn.metrics import accuracy, f1_micro_multilabel
from ..nn.module import resolve_model_dtype
from ..nn.optim import Adam, Optimizer
from ..tensor import Tensor, no_grad

__all__ = ["FullGraphTrainer"]


class FullGraphTrainer:
    """Plain full-graph gradient descent on one device."""

    def __init__(
        self,
        graph: Graph,
        model,
        lr: float = 0.01,
        seed: int = 0,
        optimizer: Optional[Optimizer] = None,
        aggregation: str = "mean",
        dtype=None,
    ) -> None:
        self.dtype = resolve_model_dtype(model, dtype, optimizer)
        self.graph = graph
        self.model = model
        if aggregation == "mean":
            self.prop = mean_aggregation(graph.adj, dtype=self.dtype)
        elif aggregation == "sym":
            self.prop = sym_norm(graph.adj, dtype=self.dtype)
        else:
            raise ValueError(f"unknown aggregation {aggregation!r}")
        self.optimizer = optimizer or Adam(model.parameters(), lr=lr)
        self.dropout_rng = np.random.default_rng(seed)
        self.loss_history: List[float] = []
        self.wall_seconds: List[float] = []

    def _metric(self, logits: np.ndarray, labels: np.ndarray) -> float:
        if self.graph.multilabel:
            return f1_micro_multilabel(logits, labels)
        return accuracy(logits, labels)

    def train_epoch(self) -> float:
        self.model.train()
        g = self.graph
        t0 = time.perf_counter()
        out = self.model.full_forward(
            self.prop, Tensor(g.features, dtype=self.dtype), self.dropout_rng
        )
        logits = F.masked_rows(out, g.train_mask)
        if g.multilabel:
            loss = F.bce_with_logits(logits, g.labels[g.train_mask])
        else:
            loss = F.cross_entropy(logits, g.labels[g.train_mask])
        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.step()
        self.wall_seconds.append(time.perf_counter() - t0)
        self.loss_history.append(loss.item())
        return loss.item()

    def evaluate(self) -> Dict[str, float]:
        self.model.eval()
        g = self.graph
        with no_grad():
            logits = self.model.full_forward(
                self.prop, Tensor(g.features, dtype=self.dtype), self.dropout_rng
            ).numpy()
        self.model.train()
        return {
            "train": self._metric(logits[g.train_mask], g.labels[g.train_mask]),
            "val": self._metric(logits[g.val_mask], g.labels[g.val_mask]),
            "test": self._metric(logits[g.test_mask], g.labels[g.test_mask]),
        }

    def train(self, epochs: int) -> List[float]:
        for _ in range(epochs):
            self.train_epoch()
        return self.loss_history
