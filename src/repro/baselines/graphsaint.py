"""GraphSAINT (Zeng et al., 2020): sampled-subgraph training.

Three samplers from the paper are implemented — node, edge and random
walk — all producing a node set whose induced subgraph is trained on
with a full forward pass.  Sampling probabilities follow the original:

* node sampler — p(v) ∝ deg(v),
* edge sampler — p(e) ∝ 1/deg(u) + 1/deg(v), endpoints collected,
* random-walk sampler — `roots` walkers of length `walk_length`.

The induced mean aggregator is renormalised over surviving neighbours
(the same self-normalised estimator BNS uses), and the loss is averaged
over the subgraph's training nodes.  The full importance-normalisation
coefficients of the original are approximated by this renormalisation —
adequate for the accuracy/time *shape* reproduced here and documented
in DESIGN.md.

The per-step sampler cost (edges touched) feeds Table 12, where
GraphSAINT's own measurements attribute 20-24% of training time to
sampling.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from ..graph.propagation import row_normalise
from ..tensor import SparseOp, Tensor, gather_rows, relu
from .base import MiniBatchTrainer

__all__ = ["GraphSaintTrainer", "SAMPLERS"]


def _node_sampler(trainer: "GraphSaintTrainer") -> tuple:
    """Sample ``budget`` nodes with probability ∝ degree."""
    n = trainer.graph.num_nodes
    probs = trainer._deg / trainer._deg.sum()
    nodes = trainer.rng.choice(n, size=min(trainer.budget, n), replace=False, p=probs)
    return np.unique(nodes), float(trainer._deg[nodes].sum())


def _edge_sampler(trainer: "GraphSaintTrainer") -> tuple:
    """Sample edges with p(e) ∝ 1/deg(u)+1/deg(v); keep endpoints."""
    coo = trainer.graph.adj.tocoo()
    inv_deg = 1.0 / np.maximum(trainer._deg, 1)
    w = inv_deg[coo.row] + inv_deg[coo.col]
    w = w / w.sum()
    m = min(trainer.budget // 2, coo.nnz)
    picked = trainer.rng.choice(coo.nnz, size=m, replace=False, p=w)
    nodes = np.unique(np.concatenate([coo.row[picked], coo.col[picked]]))
    return nodes, float(coo.nnz)


def _rw_sampler(trainer: "GraphSaintTrainer") -> tuple:
    """`roots` random walks of length `walk_length`."""
    g = trainer.graph
    indptr, indices = g.adj.indptr, g.adj.indices
    roots = trainer.rng.choice(
        g.num_nodes, size=max(trainer.budget // (trainer.walk_length + 1), 1), replace=False
    )
    visited = [roots]
    current = roots
    steps = 0.0
    for _ in range(trainer.walk_length):
        nxt = current.copy()
        for i, v in enumerate(current):
            deg = indptr[v + 1] - indptr[v]
            if deg > 0:
                nxt[i] = indices[indptr[v] + trainer.rng.integers(deg)]
        steps += len(current)
        visited.append(nxt)
        current = nxt
    nodes = np.unique(np.concatenate(visited))
    return nodes, steps


SAMPLERS: dict = {
    "node": _node_sampler,
    "edge": _edge_sampler,
    "rw": _rw_sampler,
}


class GraphSaintTrainer(MiniBatchTrainer):
    """Subgraph-sampled SAGE training with pluggable samplers."""

    name = "graphsaint"

    def __init__(
        self,
        graph,
        model,
        sampler: str = "node",
        budget: int = 1000,
        walk_length: int = 4,
        **kwargs,
    ) -> None:
        super().__init__(graph, model, **kwargs)
        if sampler not in SAMPLERS:
            raise ValueError(f"unknown sampler {sampler!r}; known: {sorted(SAMPLERS)}")
        self.sampler_name = sampler
        self.budget = budget
        self.walk_length = walk_length
        self._deg = graph.degrees().astype(np.float64)
        self._sampler: Callable = SAMPLERS[sampler]

    # ------------------------------------------------------------------
    def _batches(self):
        """One epoch = enough subgraphs to cover the train set once."""
        steps = max(1, int(np.ceil(len(self.train_nodes) / self.budget)))
        for _ in range(steps):
            yield None  # the sampler draws the subgraph in train_step

    def train_step(self, _unused) -> float:
        t0 = time.perf_counter()
        nodes, edges_touched = self._sampler(self)
        sub_adj = self.graph.adj[nodes][:, nodes].tocsr()
        prop = row_normalise(sub_adj)
        self._record_sampling(time.perf_counter() - t0, edges_touched + sub_adj.nnz)

        train_local = np.flatnonzero(self.graph.train_mask[nodes])
        if train_local.size == 0:
            return float("nan")

        dims = self.model.dims
        h = Tensor(self.graph.features[nodes])
        for layer_idx, layer in enumerate(self.model.layers):
            h = self.model.dropout(h, self.dropout_rng)
            out = layer(SparseOp(prop), h, h)
            if layer_idx < self.model.num_layers - 1:
                out = relu(out)
            d_in, d_out = dims[layer_idx], dims[layer_idx + 1]
            self._record_flops(
                3.0 * (2.0 * prop.nnz * d_in + 4.0 * len(nodes) * d_in * d_out)
            )
            h = out

        logits = gather_rows(h, train_local)
        loss = self._loss(logits, self.graph.labels[nodes[train_local]])
        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.step()
        return loss.item()
