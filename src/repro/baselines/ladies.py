"""LADIES (Zou et al., 2019): layer-dependent importance sampling.

Like FastGCN, one node set is drawn per layer — but the importance
distribution is *conditioned on the layer above*:
q(u) ∝ ||P[S_ℓ, u]||², so sampled nodes are guaranteed to be within the
receptive field of the layer they feed.  The destination set is kept in
the source set (self-connections), and the sub-operator is row-
renormalised, following the paper's laplacian renormalisation trick.

Variance sits between FastGCN's and BNS-GCN's (Table 2: O(|N_i|γ²/s)
versus O(|V|γ²/s) and O(|B_i|γ²/s)).
"""

from __future__ import annotations

import time
from typing import List

import numpy as np
from ..graph.propagation import row_normalise, sym_norm
from ..tensor import SparseOp, Tensor, relu
from .base import MiniBatchTrainer

__all__ = ["LadiesTrainer"]


class LadiesTrainer(MiniBatchTrainer):
    """Layer-dependent importance-sampled GCN training."""

    name = "ladies"

    def __init__(self, graph, model, layer_size: int = 256, **kwargs) -> None:
        kwargs.setdefault("aggregation", "sym")
        super().__init__(graph, model, **kwargs)
        if layer_size < 1:
            raise ValueError("layer_size must be >= 1")
        self.layer_size = layer_size
        self._p = sym_norm(graph.adj).csr
        self._p_sq = self._p.multiply(self._p).tocsr()

    def train_step(self, batch: np.ndarray) -> float:
        t0 = time.perf_counter()
        num_layers = self.model.num_layers
        n = self.graph.num_nodes
        sets: List[np.ndarray] = [batch]
        edges = 0.0
        for _ in range(num_layers):
            dst = sets[-1]
            rows = self._p_sq[dst]
            edges += rows.nnz
            col_mass = np.asarray(rows.sum(axis=0)).ravel()
            total = col_mass.sum()
            if total <= 0:
                sets.append(dst)
                continue
            q = col_mass / total
            support = np.flatnonzero(q > 0)
            s = min(self.layer_size, len(support))
            sampled = self.rng.choice(
                support, size=s, replace=False, p=q[support] / q[support].sum()
            )
            # Keep the destination nodes in the source set (self loops).
            sets.append(np.unique(np.concatenate([sampled, dst])))
        self._record_sampling(time.perf_counter() - t0, edges)

        dims = self.model.dims
        h = Tensor(self.graph.features[sets[-1]])
        for layer_idx, layer in enumerate(self.model.layers):
            dst = sets[num_layers - 1 - layer_idx]
            src = sets[num_layers - layer_idx]
            # Row-renormalised sub-operator (LADIES' laplacian trick):
            # keeps each node's aggregation a convex combination.
            block = row_normalise(self._p[dst][:, src].tocsr())
            h = self.model.dropout(h, self.dropout_rng)
            out = layer(SparseOp(block), h, None)
            if layer_idx < num_layers - 1:
                out = relu(out)
            d_in, d_out = dims[layer_idx], dims[layer_idx + 1]
            self._record_flops(
                3.0 * (2.0 * block.nnz * d_in + 2.0 * len(dst) * d_in * d_out)
            )
            h = out

        loss = self._loss(h, self.graph.labels[batch])
        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.step()
        return loss.item()
