"""GraphSAGE neighbour sampling (Hamilton et al., 2017).

Per minibatch, the computation graph is built output-to-input: the
batch's layer-L destination set pulls ``fanout`` sampled neighbours per
node per layer, producing nested node sets B_L ⊆ B_{L-1} ⊆ ... ⊆ B_0
and bipartite mean-aggregation blocks between consecutive sets.  The
sample mean over the chosen neighbours estimates the full-neighbourhood
mean (the same self-normalised estimator BNS uses on its subgraph).

This is the "NeighborSampling" row of Tables 4/5/11 and the classic
victim of *neighbour explosion*: |B_0| grows ~fanout^L, which the
recorded FLOPs make visible.
"""

from __future__ import annotations

import time
from typing import List, Tuple

import numpy as np
import scipy.sparse as sp

from ..tensor import SparseOp, Tensor, gather_rows, relu
from .base import MiniBatchTrainer

__all__ = ["NeighborSamplingTrainer"]


class NeighborSamplingTrainer(MiniBatchTrainer):
    """Minibatch SAGE training with per-layer neighbour fan-out."""

    name = "neighbor-sampling"

    def __init__(self, graph, model, fanout: int = 10, **kwargs) -> None:
        super().__init__(graph, model, **kwargs)
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        self.fanout = fanout
        self._adj = graph.adj

    # ------------------------------------------------------------------
    def _sample_block(
        self, dst: np.ndarray
    ) -> Tuple[np.ndarray, sp.csr_matrix, np.ndarray, float]:
        """Sample ``fanout`` neighbours for each dst node.

        Returns ``(src_nodes, prop_block, self_positions, edges_touched)``
        where ``prop_block`` is (|dst|, |src|) with rows summing to 1
        over the sampled neighbours, and ``self_positions`` locates each
        dst node inside ``src_nodes`` (for the SAGE self-concat).
        """
        indptr, indices = self._adj.indptr, self._adj.indices
        rows: List[int] = []
        cols: List[np.ndarray] = []
        sampled_per_row: List[np.ndarray] = []
        edges_touched = 0.0
        for r, v in enumerate(dst):
            neigh = indices[indptr[v]:indptr[v + 1]]
            edges_touched += len(neigh)
            if len(neigh) == 0:
                sampled_per_row.append(np.empty(0, dtype=np.int64))
                continue
            if len(neigh) > self.fanout:
                pick = self.rng.choice(neigh, size=self.fanout, replace=False)
            else:
                pick = neigh
            sampled_per_row.append(pick)
        # Source set: dst nodes (for self features) + every sampled node.
        all_sampled = (
            np.concatenate(sampled_per_row) if sampled_per_row else np.empty(0, int)
        )
        src_nodes, inverse = np.unique(
            np.concatenate([dst, all_sampled]), return_inverse=True
        )
        self_positions = inverse[: len(dst)]
        # Build the (|dst|, |src|) block.
        data, r_idx, c_idx = [], [], []
        offset = len(dst)
        for r, pick in enumerate(sampled_per_row):
            if len(pick) == 0:
                continue
            w = 1.0 / len(pick)
            for _ in pick:
                r_idx.append(r)
            c_idx.extend(inverse[offset:offset + len(pick)])
            data.extend([w] * len(pick))
            offset += len(pick)
        block = sp.coo_matrix(
            (data, (r_idx, c_idx)), shape=(len(dst), len(src_nodes))
        ).tocsr()
        return src_nodes, block, self_positions, edges_touched

    # ------------------------------------------------------------------
    def train_step(self, batch: np.ndarray) -> float:
        t0 = time.perf_counter()
        num_layers = self.model.num_layers
        # Output-to-input set construction.
        dst_sets: List[np.ndarray] = [batch]
        blocks: List[sp.csr_matrix] = []
        self_pos: List[np.ndarray] = []
        edges = 0.0
        for _ in range(num_layers):
            src, block, pos, touched = self._sample_block(dst_sets[-1])
            dst_sets.append(src)
            blocks.append(block)
            self_pos.append(pos)
            edges += touched
        self._record_sampling(time.perf_counter() - t0, edges)

        # Forward input-to-output: layer ℓ consumes set L-ℓ.
        h = Tensor(self.graph.features[dst_sets[-1]])
        dims = self.model.dims
        for layer_idx, layer in enumerate(self.model.layers):
            level = num_layers - 1 - layer_idx  # block index for this layer
            block = blocks[level]
            h = self.model.dropout(h, self.dropout_rng)
            h_self = gather_rows(h, self_pos[level])
            out = layer(SparseOp(block), h, h_self)
            if layer_idx < num_layers - 1:
                out = relu(out)
            d_in, d_out = dims[layer_idx], dims[layer_idx + 1]
            self._record_flops(
                3.0 * (2.0 * block.nnz * d_in + 4.0 * block.shape[0] * d_in * d_out)
            )
            h = out

        loss = self._loss(h, self.graph.labels[batch])
        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.step()
        return loss.item()
