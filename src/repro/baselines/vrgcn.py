"""VR-GCN-style training with historical embeddings (Chen et al., 2018b).

VR-GCN reduces neighbour-sampling variance by keeping a *history*
H̄^(ℓ) of every node's layer-ℓ embedding and estimating

    z_v ≈ P[v, :] · H̄ + Σ_{u ∈ sample(v)} P[v, u] · (h_u − h̄_u) · deg/s

— the full-graph aggregation of the (stale) history plus a sampled
correction for the drift of the current minibatch's neighbours.  The
price is O(n · d · L) extra memory for the histories, the "heavy memory
requirements" the paper cites in Section 2 (and the reason VR-GCN OOMs
on ogbn-products in Table 4).

This implementation keeps the histories in plain arrays, samples
``fanout`` correction neighbours per node, and refreshes history rows
of every node the batch computed.
"""

from __future__ import annotations

import time
from typing import List

import numpy as np
from ..graph.propagation import mean_aggregation
from ..tensor import Tensor, gather_rows, relu
from .base import MiniBatchTrainer

__all__ = ["VRGCNTrainer"]


class VRGCNTrainer(MiniBatchTrainer):
    """Historical-embedding SAGE training."""

    name = "vrgcn"

    def __init__(self, graph, model, fanout: int = 2, **kwargs) -> None:
        super().__init__(graph, model, **kwargs)
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        self.fanout = fanout
        self._p = mean_aggregation(graph.adj).csr
        # Histories: layer ℓ's INPUT embeddings (ℓ = 0 is raw features).
        dims = self.model.dims
        n = graph.num_nodes
        self._history: List[np.ndarray] = [graph.features.astype(np.float64)]
        for d in dims[1:-1]:
            self._history.append(np.zeros((n, d)))

    @property
    def history_bytes(self) -> int:
        """The memory overhead that makes VR-GCN OOM on large graphs."""
        return sum(h.nbytes for h in self._history)

    # ------------------------------------------------------------------
    def train_step(self, batch: np.ndarray) -> float:
        t0 = time.perf_counter()
        indptr, indices = self.graph.adj.indptr, self.graph.adj.indices
        # Nested destination sets (like neighbour sampling but tiny fanout).
        sets: List[np.ndarray] = [batch]
        samples: List[np.ndarray] = []  # flat sampled neighbour ids per level
        sample_rows: List[np.ndarray] = []
        edges = 0.0
        for _ in range(self.model.num_layers):
            dst = sets[-1]
            picks, rows = [], []
            for r, v in enumerate(dst):
                neigh = indices[indptr[v]:indptr[v + 1]]
                edges += len(neigh)
                if len(neigh) == 0:
                    continue
                k = min(self.fanout, len(neigh))
                for u in self.rng.choice(neigh, size=k, replace=False):
                    picks.append(u)
                    rows.append(r)
            picks = np.asarray(picks, dtype=np.int64)
            rows = np.asarray(rows, dtype=np.int64)
            samples.append(picks)
            sample_rows.append(rows)
            sets.append(np.unique(np.concatenate([dst, picks])))
        self._record_sampling(time.perf_counter() - t0, edges)

        dims = self.model.dims
        num_layers = self.model.num_layers
        # h holds CURRENT embeddings for the working set of each level.
        h = Tensor(self.graph.features[sets[-1]])
        new_histories: List[tuple] = []
        for layer_idx, layer in enumerate(self.model.layers):
            level = num_layers - 1 - layer_idx
            dst = sets[level]
            src = sets[level + 1]
            picks, rows = samples[level], sample_rows[level]

            h = self.model.dropout(h, self.dropout_rng)
            hist = self._history[layer_idx]

            # Base term: full aggregation of the stale history (constant).
            base = self._p[dst] @ hist  # (|dst|, d_in) numpy

            # Correction: sampled neighbours' drift, importance-scaled.
            src_pos = {int(u): i for i, u in enumerate(src)}
            pick_pos = np.array([src_pos[int(u)] for u in picks], dtype=np.int64)
            drift_curr = gather_rows(h, pick_pos)
            drift_hist = hist[picks]
            p_weights = np.array(
                [self._p[dst[r], u] for r, u in zip(rows, picks)], dtype=np.float64
            ).reshape(-1, 1)
            deg = np.maximum(
                np.diff(indptr)[dst][rows].astype(np.float64), 1.0
            ).reshape(-1, 1)
            counts = np.bincount(rows, minlength=len(dst)).astype(np.float64)
            per_row_scale = (deg.ravel() / np.maximum(counts[rows], 1.0)).reshape(-1, 1)
            corr_msgs = (drift_curr - Tensor(drift_hist)) * Tensor(
                p_weights * per_row_scale
            )
            from ..tensor import scatter_rows

            correction = scatter_rows(corr_msgs, rows, len(dst))
            z = correction + Tensor(base)

            # SAGE update on (z, h_self).
            dst_pos = np.array([src_pos[int(v)] for v in dst], dtype=np.int64)
            h_self = gather_rows(h, dst_pos)
            from ..tensor import concat_cols

            out = concat_cols([z, h_self]) @ layer.weight
            if layer.bias is not None:
                out = out + layer.bias
            if layer_idx < num_layers - 1:
                out = relu(out)
            d_in, d_out = dims[layer_idx], dims[layer_idx + 1]
            self._record_flops(
                3.0
                * (
                    2.0 * self._p[dst].nnz * d_in
                    + 4.0 * len(dst) * d_in * d_out
                )
            )
            # Refresh histories for the next layer's input (detached).
            if layer_idx + 1 < num_layers:
                new_histories.append((layer_idx + 1, dst, out.numpy().copy()))
            h = out

        for layer_idx, nodes, values in new_histories:
            self._history[layer_idx][nodes] = values

        loss = self._loss(h, self.graph.labels[batch])
        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.step()
        return loss.item()
