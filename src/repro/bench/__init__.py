"""Benchmark harness: configs, runners, table formatting, time model."""

from .harness import (
    BENCH_CONFIGS,
    BENCH_DTYPE,
    BenchConfig,
    RunSummary,
    bench_transport,
    get_graph,
    get_partition,
    make_model,
    make_trainer,
    memory_for,
    run_config,
    run_config_cached,
    save_result,
    RESULTS_DIR,
)
from .tables import banner, format_series, format_table
from .timemodel import (
    SECONDS_PER_SAMPLER_EDGE,
    baseline_epoch_seconds,
    sampler_overhead_fraction,
)

__all__ = [
    "BENCH_CONFIGS",
    "BENCH_DTYPE",
    "BenchConfig",
    "RunSummary",
    "bench_transport",
    "get_graph",
    "get_partition",
    "make_model",
    "make_trainer",
    "memory_for",
    "run_config",
    "run_config_cached",
    "save_result",
    "RESULTS_DIR",
    "banner",
    "format_series",
    "format_table",
    "SECONDS_PER_SAMPLER_EDGE",
    "baseline_epoch_seconds",
    "sampler_overhead_fraction",
]
