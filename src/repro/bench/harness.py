"""Experiment harness shared by the benchmark suite.

Centralises:

* per-dataset *bench configurations* — scaled-down versions of the
  paper's model/optimiser settings (Section 4 "Models"), one per
  dataset, so every table/figure bench uses identical hyper-parameters;
* caching of generated graphs and (expensive) partitions across
  benchmarks in one pytest session;
* runner helpers that train one configuration and return the summary
  quantities the tables need (score, modelled epoch time, traffic,
  memory);
* result persistence: every bench writes its formatted table both to
  stdout and to ``benchmarks/results/<name>.txt``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.sampler import (
    BoundaryNodeSampler,
    BoundarySampler,
    FullBoundarySampler,
    make_sampler,
)
from ..core.trainer import DistributedTrainer, TrainHistory
from ..dist.comm import SimulatedCommunicator
from ..dist.cost_model import (
    PAPER_DTYPE,
    ClusterSpec,
    MemoryModel,
    RTX2080TI_CLUSTER,
)
from ..dist.systems import build_workload
from ..graph.datasets import load_dataset
from ..graph.graph import Graph
from ..nn.models import GraphSAGEModel, layer_dims
from ..partition import partition_graph
from ..partition.types import PartitionResult

__all__ = [
    "BenchConfig",
    "BENCH_CONFIGS",
    "BENCH_DTYPE",
    "bench_transport",
    "get_graph",
    "get_partition",
    "make_model",
    "make_trainer",
    "run_config",
    "RunSummary",
    "save_result",
    "RESULTS_DIR",
]

RESULTS_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))), "benchmarks", "results")

#: The *pricing* axis of the bench suite: the paper's testbeds train
#: in fp32, so harness trainers meter wire traffic at 4-byte scalars
#: (via an explicitly-configured metering-only transport, see
#: :func:`bench_transport`) to stay comparable with the analytic system
#: models (``cost_model.PAPER_DTYPE``) and the paper's tables.  The
#: *numerics* stay at the library default (fp64) so seeded accuracy
#: trajectories are unchanged; a metering-only transport is exactly the
#: place where modelling a different wire width than the compute dtype
#: is legitimate (nothing ships — the data-moving transports enforce
#: metered == shipped).  Tied to the analytic models' pricing dtype so
#: the two axes cannot drift apart.
BENCH_DTYPE = np.dtype(PAPER_DTYPE)


def bench_transport(num_parts: int) -> SimulatedCommunicator:
    """Metering-only communicator priced at the paper's fp32 axis."""
    return SimulatedCommunicator(num_parts, dtype=BENCH_DTYPE)


@dataclass(frozen=True)
class BenchConfig:
    """Scaled-down analogue of the paper's per-dataset training setup.

    The paper's settings (layers/hidden/lr/dropout) are kept; node
    counts, hidden widths and epoch counts shrink ~proportionally so
    the full suite runs on a laptop in minutes.
    """

    dataset: str
    scale: float
    num_layers: int
    hidden: int
    dropout: float
    lr: float
    epochs: int
    eval_every: int
    partition_grid: Tuple[int, ...]
    min_parts: int  # paper's "minimal partitions for full-graph training"


BENCH_CONFIGS: Dict[str, BenchConfig] = {
    # paper: 4 layers x 256 hidden, lr 0.01, 3000 epochs, dropout 0.5
    "reddit-sim": BenchConfig(
        dataset="reddit-sim", scale=0.25, num_layers=4, hidden=64,
        dropout=0.5, lr=0.01, epochs=400, eval_every=40,
        partition_grid=(2, 4, 8), min_parts=2,
    ),
    # paper: 3 layers x 128 hidden, lr 0.003, 500 epochs, dropout 0.3.
    # lr raised to 0.01 here: at 1/30 scale the loss landscape is far
    # smaller, and the paper's lr leaves every run undertrained within
    # a laptop epoch budget.
    "products-sim": BenchConfig(
        dataset="products-sim", scale=0.2, num_layers=3, hidden=64,
        dropout=0.3, lr=0.01, epochs=400, eval_every=25,
        partition_grid=(5, 8, 10), min_parts=5,
    ),
    # paper: 4 layers x 512 hidden, lr 0.001, 3000 epochs, dropout 0.1
    # (lr raised for the same scale reason as products-sim).
    "yelp-sim": BenchConfig(
        dataset="yelp-sim", scale=0.25, num_layers=4, hidden=64,
        dropout=0.1, lr=0.01, epochs=300, eval_every=30,
        partition_grid=(3, 6, 10), min_parts=3,
    ),
    # paper: 3 layers x 128 hidden, lr 0.01, 100 epochs, dropout 0.5
    "papers-sim": BenchConfig(
        dataset="papers-sim", scale=0.5, num_layers=3, hidden=32,
        dropout=0.5, lr=0.01, epochs=40, eval_every=20,
        partition_grid=(192,), min_parts=192,
    ),
}


@lru_cache(maxsize=None)
def get_graph(name: str, seed: int = 0) -> Graph:
    """Dataset at its bench scale (cached per session)."""
    cfg = BENCH_CONFIGS[name]
    return load_dataset(name, scale=cfg.scale, seed=seed)


@lru_cache(maxsize=None)
def get_partition(
    name: str, num_parts: int, method: str = "metis", seed: int = 0
) -> PartitionResult:
    """Partition of the bench graph (cached; metis-like is the slow bit)."""
    return partition_graph(get_graph(name, seed), num_parts, method=method, seed=seed)


def make_model(graph: Graph, cfg: BenchConfig, seed: int = 7) -> GraphSAGEModel:
    """Model with the bench config's architecture for ``graph``."""
    return GraphSAGEModel(
        in_dim=graph.feature_dim,
        hidden_dim=cfg.hidden,
        out_dim=graph.num_classes,
        num_layers=cfg.num_layers,
        dropout=cfg.dropout,
        rng=np.random.default_rng(seed),
    )


def make_trainer(
    name: str,
    num_parts: int,
    sampler: Optional[BoundarySampler] = None,
    method: str = "metis",
    seed: int = 0,
    model_seed: int = 7,
    cluster: Optional[ClusterSpec] = RTX2080TI_CLUSTER,
) -> DistributedTrainer:
    """DistributedTrainer wired from a bench config (cluster-modelled)."""
    cfg = BENCH_CONFIGS[name]
    graph = get_graph(name, seed)
    part = get_partition(name, num_parts, method, seed)
    model = make_model(graph, cfg, model_seed)
    return DistributedTrainer(
        graph, part, model, sampler or FullBoundarySampler(),
        lr=cfg.lr, seed=seed, cluster=cluster,
        transport=bench_transport(part.num_parts),
    )


@dataclass
class RunSummary:
    """What one training run contributes to the tables."""

    dataset: str
    num_parts: int
    p: float
    test_score: float
    best_val: float
    epoch_seconds: float  # modelled
    compute_seconds: float
    comm_seconds: float
    reduce_seconds: float
    comm_megabytes: float  # metered, per epoch (steady state)
    sampling_seconds: float
    history: TrainHistory = field(repr=False, default=None)


def run_config(
    name: str,
    num_parts: int,
    p: float,
    method: str = "metis",
    seed: int = 0,
    epochs: Optional[int] = None,
    sampler: Optional[BoundarySampler] = None,
) -> RunSummary:
    """Train one (dataset, partitions, sampling rate) cell."""
    cfg = BENCH_CONFIGS[name]
    if sampler is None:
        sampler = FullBoundarySampler() if p >= 1.0 else BoundaryNodeSampler(p)
    trainer = make_trainer(name, num_parts, sampler, method, seed)
    history = trainer.train(epochs or cfg.epochs, eval_every=cfg.eval_every)
    modeled = history.modeled
    avg = lambda xs: float(np.mean(xs)) if xs else float("nan")
    return RunSummary(
        dataset=name,
        num_parts=num_parts,
        p=p,
        test_score=history.test_at_best_val(),
        best_val=history.best_val,
        epoch_seconds=avg([b.total for b in modeled]),
        compute_seconds=avg([b.compute for b in modeled]),
        comm_seconds=avg([b.communication for b in modeled]),
        reduce_seconds=avg([b.reduce for b in modeled]),
        comm_megabytes=avg(history.comm_bytes) / 1e6,
        sampling_seconds=avg(history.sampling_seconds),
        history=history,
    )


def memory_for(
    name: str,
    num_parts: int,
    p: float,
    method: str = "metis",
    seed: int = 0,
) -> np.ndarray:
    """Modelled per-partition training memory (bytes) at sampling rate p."""
    cfg = BENCH_CONFIGS[name]
    graph = get_graph(name, seed)
    part = get_partition(name, num_parts, method, seed)
    model = make_model(graph, cfg)
    dims = layer_dims(graph.feature_dim, cfg.hidden, graph.num_classes, cfg.num_layers)
    workload = build_workload(graph, part, dims, model.num_parameters())
    mm = MemoryModel()
    boundary = workload.boundary_sizes * p
    return mm.per_partition_bytes(
        workload.inner_sizes, boundary, dims, model.num_parameters()
    )


_RUN_CACHE: Dict[tuple, RunSummary] = {}


def run_config_cached(
    name: str,
    num_parts: int,
    p: float,
    method: str = "metis",
    seed: int = 0,
    epochs: Optional[int] = None,
    sampler_name: str = "bns",
) -> RunSummary:
    """Memoised :func:`run_config` — several benchmarks share cells
    (e.g. Table 4's p-grid, Fig. 7's curves and Table 13's sweep), and
    retraining identical configurations would dominate the suite.

    ``sampler_name`` picks the boundary sampler through the shared
    :func:`~repro.core.sampler.make_sampler` spec (``"bns"`` keeps the
    historical default dispatch, ``"importance"`` runs the
    degree-proportional sampler at the same expected traffic).
    """
    key = (name, num_parts, p, method, seed, epochs, sampler_name)
    if key not in _RUN_CACHE:
        _RUN_CACHE[key] = run_config(
            name, num_parts, p, method, seed, epochs,
            sampler=make_sampler(sampler_name, p),
        )
    return _RUN_CACHE[key]


def save_result(name: str, text: str) -> str:
    """Write a bench's formatted output under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print(text)
    return path
