"""Plain-text table/series formatting for the benchmark harness.

Every benchmark prints its result in the same row/column layout as the
paper's table or figure so that paper-vs-measured comparison is a
side-by-side read (recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["format_table", "format_series", "banner"]


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned ASCII table."""
    str_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    xs: Sequence,
    series: dict,
    title: Optional[str] = None,
) -> str:
    """Render named y-series against a shared x-axis (figure data)."""
    headers = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i] for name in series])
    return format_table(headers, rows, title=title)


def banner(text: str) -> str:
    """Section header used by the example scripts' stdout reports."""
    bar = "=" * max(len(text), 8)
    return f"\n{bar}\n{text}\n{bar}"
