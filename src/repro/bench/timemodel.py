"""Modelled epoch time for single-device baselines (Tables 5/11/12).

Distributed runs get their epoch time from the cluster cost model
(:mod:`repro.dist.cost_model`); single-device baselines need the same
treatment so the comparison is apples-to-apples.  Their epoch time is

    compute FLOPs / effective device throughput
    + sampler ops · SECONDS_PER_SAMPLER_EDGE

where "sampler ops" counts the edges a sampler touches while drawing
its minibatch structure.  ``SECONDS_PER_SAMPLER_EDGE`` is calibrated so
GraphSAINT's node sampler costs ≈23% of its training time, matching the
overhead the GraphSAINT authors report and the paper quotes in
Appendix D.  The same constant applied to BNS's boundary-only sampling
yields the 0–7% overhead of Table 12 without further tuning.
"""

from __future__ import annotations

from typing import Optional

from ..dist.cost_model import (
    ClusterSpec,
    RTX2080TI_CLUSTER,
    SECONDS_PER_SAMPLER_EDGE,
)

__all__ = ["SECONDS_PER_SAMPLER_EDGE", "baseline_epoch_seconds", "sampler_overhead_fraction"]


def baseline_epoch_seconds(
    compute_flops: float,
    sampler_edges: float,
    cluster: Optional[ClusterSpec] = None,
) -> float:
    """Epoch seconds for one single-device baseline epoch."""
    cluster = cluster or RTX2080TI_CLUSTER
    compute = compute_flops / cluster.device.effective_flops
    sampling = sampler_edges * SECONDS_PER_SAMPLER_EDGE
    return compute + sampling


def sampler_overhead_fraction(
    compute_flops: float,
    sampler_edges: float,
    cluster: Optional[ClusterSpec] = None,
) -> float:
    """Sampling time / total epoch time (the Table 12 percentage)."""
    cluster = cluster or RTX2080TI_CLUSTER
    total = baseline_epoch_seconds(compute_flops, sampler_edges, cluster)
    if total == 0:
        return 0.0
    return sampler_edges * SECONDS_PER_SAMPLER_EDGE / total
