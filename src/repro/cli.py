"""Command-line driver mirroring the paper artifact's ``main.py``.

The BNS-GCN artifact exposes a ``main.py`` whose options choose the
dataset, number of partitions, sampling rate, partitioner, model and
training hyper-parameters.  This module provides the same workflow:

    python -m repro --dataset reddit-sim --n-partitions 4 \\
        --sampling-rate 0.1 --n-epochs 200 --n-hidden 64 --n-layers 2

It prints per-eval progress and a final summary with the metered
communication and the modelled epoch breakdown.

``dist-train`` runs the same training with ranks actually executing
behind a data-moving transport (one worker process per partition by
default), exchanging boundary features/gradients for real:

    python -m repro dist-train --dataset reddit-sim --n-partitions 4 \\
        --sampling-rate 0.1 --n-epochs 20 --transport multiprocess

``lint`` runs the repo's invariant static-analysis passes (dtype-width
discipline, metering discipline, kernel purity, concurrency hygiene,
lock-order, determinism) over ``src/`` and ``benchmarks/``:

    python -m repro lint --strict
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np

from .bench.tables import format_table
from .core.sampler import MODES, SAMPLER_NAMES, BoundarySampler, make_sampler
from .core.trainer import DistributedTrainer
from .core.gat_trainer import DistributedGATTrainer
from .core.pipeline import PipelinedTrainer
from .dist.cost_model import RTX2080TI_CLUSTER
from .graph.datasets import DATASET_SPECS, load_dataset
from .nn.checkpoint import load_checkpoint, save_checkpoint
from .nn.models import GATModel, GCNModel, GraphSAGEModel
from .nn.schedulers import CosineAnnealingLR, StepLR
from .partition import partition_graph
from .tensor import get_backend, set_backend
from .tensor.kernels import backend_names as kernel_backend_names

__all__ = [
    "build_parser",
    "build_dist_parser",
    "build_sampler",
    "main",
    "dist_train_main",
]


def _common_options() -> argparse.ArgumentParser:
    """Options shared by the simulated and dist-train drivers."""
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--dataset", default="reddit-sim", choices=sorted(DATASET_SPECS),
        help="which synthetic dataset analogue to train on",
    )
    common.add_argument("--scale", type=float, default=0.25,
                        help="dataset size multiplier (1.0 = full analogue)")
    common.add_argument("--n-partitions", type=int, default=4)
    common.add_argument(
        "--partition-method", default="metis",
        choices=("metis", "random", "spectral"),
    )
    common.add_argument(
        "--sampling-rate", type=float, default=0.1,
        help="boundary node sampling rate p (1.0 = vanilla)",
    )
    common.add_argument(
        "--sampler", default="bns", choices=SAMPLER_NAMES,
        help="boundary sampling strategy: bns (uniform), importance "
             "(degree-proportional keep probabilities, same expected "
             "traffic as bns at equal p, lower variance on skewed "
             "boundaries), bes/dropedge (Table 9 ablations), full",
    )
    common.add_argument(
        "--mode", default="renorm", choices=MODES,
        help="estimator mode: renorm (surviving-degree renormalisation, "
             "the training default) or scale (unbiased 1/p — per-node "
             "1/pi for --sampler importance — column rescale)",
    )
    common.add_argument(
        "--p-min", type=float, default=None,
        help="importance sampling clip floor for the keep probabilities "
             "(default p/4; only used by --sampler importance)",
    )
    common.add_argument(
        "--dtype", default=None, choices=("float32", "float64"),
        help="numeric precision of tensors, operators and wire payloads; "
             "the byte ledger meters the chosen scalar width (8 B fp64, "
             "4 B fp32).  Defaults to the library default (REPRO_DTYPE "
             "env var, else float64)",
    )
    common.add_argument(
        "--kernel-backend", default=None, choices=kernel_backend_names(),
        help="split-SpMM kernel implementation: numpy (fused one-pass, "
             "the default), split (two-pass reference) or numba (jitted "
             "fused traversal; needs the optional numba package).  "
             "Defaults to the library default (REPRO_KERNEL_BACKEND env "
             "var, else numpy); dist-train workers resolve the same "
             "backend rank-side",
    )
    common.add_argument("--n-hidden", type=int, default=64)
    common.add_argument("--n-layers", type=int, default=2)
    common.add_argument("--dropout", type=float, default=0.5)
    common.add_argument("--lr", type=float, default=0.01)
    common.add_argument("--seed", type=int, default=0)
    common.add_argument("--quiet", action="store_true")
    return common


def build_parser() -> argparse.ArgumentParser:
    """Argument parser mirroring the artifact's main.py options."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Partition-parallel GCN training with boundary node sampling",
        epilog="subcommands: 'repro dist-train' runs the same training "
               "with real multiprocess ranks behind a data-moving "
               "transport (see 'repro dist-train --help'); 'repro lint' "
               "runs the invariant static-analysis passes (see "
               "'repro lint --help')",
        parents=[_common_options()],
    )
    parser.add_argument(
        "--partition-objective", default="volume", choices=("volume", "cut"),
        help="METIS-like objective (the paper uses communication volume)",
    )
    parser.add_argument(
        "--model", default="sage", choices=("sage", "gcn", "gat")
    )
    parser.add_argument("--n-epochs", type=int, default=200)
    parser.add_argument("--eval-every", type=int, default=25)
    parser.add_argument(
        "--pipelined", action="store_true",
        help="use the PipeGCN-style pipelined trainer (stale boundary "
             "features; communication overlaps compute)",
    )
    parser.add_argument(
        "--patience", type=int, default=0,
        help="early-stop after this many evaluations without val improvement",
    )
    parser.add_argument(
        "--lr-schedule", default="none", choices=("none", "step", "cosine"),
        help="optional learning-rate schedule over --n-epochs",
    )
    parser.add_argument(
        "--save-checkpoint", metavar="PATH", default=None,
        help="write model+optimizer state here after training",
    )
    parser.add_argument(
        "--resume", metavar="PATH", default=None,
        help="load model+optimizer state from a checkpoint before training",
    )
    return parser


def build_dist_parser() -> argparse.ArgumentParser:
    """Argument parser for the ``dist-train`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro dist-train",
        description="Partition-parallel BNS training with real "
                    "multiprocess (or threaded) ranks",
        parents=[_common_options()],
    )
    parser.add_argument("--model", default="sage", choices=("sage", "gcn"))
    parser.add_argument("--n-epochs", type=int, default=20)
    parser.add_argument(
        "--transport", default="multiprocess",
        choices=("multiprocess", "shm", "local"),
        help="how ranks execute: worker processes over pipes "
             "(multiprocess), worker processes over zero-copy "
             "shared-memory rings with pipes for control only (shm), "
             "or threads over queues (local)",
    )
    parser.add_argument(
        "--schedule", default="synchronous",
        choices=("synchronous", "pipelined"),
        help="rank execution schedule: synchronous blocks on every "
             "layer's boundary exchange; pipelined overlaps it with "
             "compute via staleness-1 features (PipeGCN-style) — same "
             "bytes, measured lower blocked-in-recv time",
    )
    parser.add_argument(
        "--allreduce", default="ring", choices=("ring", "tree"),
        help="gradient AllReduce algorithm (metering is the ring model "
             "either way)",
    )
    parser.add_argument(
        "--timeout", type=float, default=600.0,
        help="launch deadline in seconds; a hung rank fails fast",
    )
    return parser


def build_sampler(args: argparse.Namespace) -> BoundarySampler:
    """The one sampler construction point shared by ``train``,
    ``dist-train`` and the bench drivers: --sampler/--sampling-rate/
    --mode/--p-min resolved through
    :func:`~repro.core.sampler.make_sampler` (bns and importance
    collapse to the zero-overhead full sampler at p >= 1)."""
    return make_sampler(
        args.sampler, args.sampling_rate, mode=args.mode, p_min=args.p_min
    )


def dist_train_main(argv: Sequence[str]) -> int:
    """Run the ``dist-train`` subcommand; returns a process exit code."""
    from .dist.executor import ProcessRankExecutor

    parser = build_dist_parser()
    args = parser.parse_args(argv)
    if args.n_epochs < 1:
        parser.error(f"--n-epochs must be >= 1, got {args.n_epochs}")
    if args.kernel_backend:
        # Fail fast on an unavailable backend, and make the choice the
        # process default so every code path (including evaluation)
        # runs the same kernels the workers will resolve rank-side.
        set_backend(args.kernel_backend)
    graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    if not args.quiet:
        print(f"loaded {graph}")
    partition = partition_graph(
        graph, args.n_partitions, method=args.partition_method, seed=args.seed
    )

    rng = np.random.default_rng(args.seed + 7)
    model_cls = GraphSAGEModel if args.model == "sage" else GCNModel
    model = model_cls(
        graph.feature_dim, args.n_hidden, graph.num_classes,
        args.n_layers, args.dropout, rng, dtype=args.dtype,
    )
    sampler = build_sampler(args)
    executor = ProcessRankExecutor(
        graph, partition, model, sampler,
        transport=args.transport, lr=args.lr, seed=args.seed,
        aggregation="sym" if args.model == "gcn" else "mean",
        schedule=args.schedule,
        allreduce_algorithm=args.allreduce, timeout=args.timeout,
        dtype=args.dtype, kernel_backend=args.kernel_backend,
    )
    if not args.quiet:
        print(
            f"launching {args.n_partitions} ranks on the "
            f"{executor.transport.name} transport "
            f"({args.schedule} schedule)"
        )
    result = executor.train(args.n_epochs)
    scores = executor.evaluate()

    history = result.history
    # Measured compute/communication split: skip the warm-up epoch so
    # the pipelined figure reflects the steady state.
    steady = 1 if args.n_epochs > 1 else 0
    rows = [
        ["transport", executor.transport.name],
        ["schedule", args.schedule],
        ["kernel backend", executor.kernel_backend.name],
        ["dtype", f"{executor.dtype} ({executor.transport.bytes_per_scalar} B/scalar)"],
        ["test score", f"{scores['test']:.4f}"],
        ["val score", f"{scores['val']:.4f}"],
        ["final loss", f"{history.loss[-1]:.4f}"],
        ["comm / epoch", f"{np.mean(history.comm_bytes) / 1e6:.2f} MB"],
        ["wall / epoch", f"{np.mean(history.wall_seconds) * 1e3:.1f} ms"],
        ["blocked in recv", f"{result.blocked_fraction(steady) * 100:.1f}% "
                            "of rank-seconds"],
    ]
    for tag, nbytes in sorted(result.by_tag[-1].items()):
        rows.append([f"  bytes [{tag}]", f"{nbytes / 1e6:.3f} MB"])
    print(format_table(["metric", "value"], rows, title="\ndist-train summary"))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Train one configuration from CLI args; returns a process exit code."""
    arg_list = list(sys.argv[1:]) if argv is None else list(argv)
    if arg_list and arg_list[0] == "dist-train":
        return dist_train_main(arg_list[1:])
    if arg_list and arg_list[0] == "lint":
        from .analysis.lint import main as lint_main

        return lint_main(arg_list[1:])
    args = build_parser().parse_args(arg_list)
    if args.kernel_backend:
        # One process-wide switch covers every trainer (including the
        # GAT path, which drives its split operators through the same
        # registry) and fails fast when the backend is unavailable.
        set_backend(args.kernel_backend)

    graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    if not args.quiet:
        print(f"loaded {graph}")

    partition = partition_graph(
        graph, args.n_partitions, method=args.partition_method,
        seed=args.seed, objective=args.partition_objective,
    )
    if not args.quiet:
        sizes = partition.part_sizes()
        print(
            f"partitioned with {partition.method}: sizes "
            f"[{sizes.min()}..{sizes.max()}]"
        )

    rng = np.random.default_rng(args.seed + 7)
    p = args.sampling_rate
    if args.model == "gat":
        if args.pipelined:
            print("error: --pipelined is not supported with --model gat",
                  file=sys.stderr)
            return 2
        model = GATModel(
            graph.feature_dim, args.n_hidden, graph.num_classes,
            args.n_layers, args.dropout, rng, num_heads=2, dtype=args.dtype,
        )
        trainer = DistributedGATTrainer(
            graph, partition, model, p=p, lr=args.lr, seed=args.seed,
            cluster=RTX2080TI_CLUSTER, dtype=args.dtype,
        )
    else:
        model_cls = GraphSAGEModel if args.model == "sage" else GCNModel
        model = model_cls(
            graph.feature_dim, args.n_hidden, graph.num_classes,
            args.n_layers, args.dropout, rng, dtype=args.dtype,
        )
        sampler = build_sampler(args)
        trainer_cls = PipelinedTrainer if args.pipelined else DistributedTrainer
        trainer = trainer_cls(
            graph, partition, model, sampler, lr=args.lr, seed=args.seed,
            cluster=RTX2080TI_CLUSTER,
            aggregation="sym" if args.model == "gcn" else "mean",
            dtype=args.dtype, kernel_backend=args.kernel_backend,
        )

    if args.resume:
        epoch = load_checkpoint(args.resume, model, trainer.optimizer)
        if not args.quiet:
            print(f"resumed from {args.resume} (epoch {epoch})")

    if args.model == "gat":
        history = trainer.train(args.n_epochs, eval_every=args.eval_every)
    else:
        scheduler = None
        if args.lr_schedule == "step":
            scheduler = StepLR(
                trainer.optimizer, step_size=max(args.n_epochs // 3, 1), gamma=0.3
            )
        elif args.lr_schedule == "cosine":
            scheduler = CosineAnnealingLR(trainer.optimizer, t_max=args.n_epochs)
        history = trainer.train(
            args.n_epochs, eval_every=args.eval_every,
            verbose=not args.quiet, patience=args.patience,
            scheduler=scheduler,
        )

    if args.save_checkpoint:
        path = save_checkpoint(
            args.save_checkpoint, model, trainer.optimizer,
            epoch=len(history.loss),
        )
        if not args.quiet:
            print(f"checkpoint written to {path}")

    scores = trainer.evaluate()
    backend = getattr(trainer, "kernel_backend", None)
    rows = [
        ["kernel backend", backend.name if backend is not None else get_backend().name],
        ["dtype", f"{trainer.dtype} ({trainer.comm.bytes_per_scalar} B/scalar)"],
        ["test score", f"{scores['test']:.4f}"],
        ["val score", f"{scores['val']:.4f}"],
        ["best val / its test", f"{history.best_val:.4f} / {history.test_at_best_val():.4f}"],
        ["final loss", f"{history.loss[-1]:.4f}"],
        ["comm / epoch", f"{np.mean(history.comm_bytes) / 1e6:.2f} MB"],
        ["wall / epoch", f"{np.mean(history.wall_seconds) * 1e3:.1f} ms (this process)"],
    ]
    if history.modeled:
        bd = history.modeled[-1]
        rows.append(["modelled epoch", f"{bd.total * 1e3:.2f} ms "
                     f"(comp {bd.compute * 1e3:.2f} / comm {bd.communication * 1e3:.2f} "
                     f"/ reduce {bd.reduce * 1e3:.2f})"])
    print(format_table(["metric", "value"], rows, title="\nsummary"))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
