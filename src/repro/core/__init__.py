"""The paper's contribution: BNS-GCN sampling + partition-parallel trainers."""

from .sampler import (
    BoundaryEdgeSampler,
    BoundaryNodeSampler,
    BoundarySampler,
    DropEdgeSampler,
    EpochPlan,
    FullBoundarySampler,
)
from .bns import PartitionRuntime, RankData
from .trainer import DistributedTrainer, TrainHistory
from .gat_trainer import DistributedGATTrainer
from .pipeline import PipelinedTrainer
from .autotune import PerPartitionSampler, balanced_rates, max_rate_for_memory
from . import variance

__all__ = [
    "BoundaryEdgeSampler",
    "BoundaryNodeSampler",
    "BoundarySampler",
    "DropEdgeSampler",
    "EpochPlan",
    "FullBoundarySampler",
    "PartitionRuntime",
    "RankData",
    "DistributedTrainer",
    "DistributedGATTrainer",
    "PipelinedTrainer",
    "TrainHistory",
    "PerPartitionSampler",
    "balanced_rates",
    "max_rate_for_memory",
    "variance",
]
