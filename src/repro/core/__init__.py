"""The paper's contribution: BNS-GCN sampling + partition-parallel trainers."""

from .sampler import (
    BoundaryEdgeSampler,
    BoundaryNodeSampler,
    BoundarySampler,
    DropEdgeSampler,
    EpochPlan,
    FullBoundarySampler,
    ImportanceBoundarySampler,
    degree_keep_probs,
    explicit_stacked_operator,
    make_sampler,
    plan_sampling_ops,
)
from .bns import PartitionRuntime, RankData
from .trainer import BNSTrainer, DistributedTrainer, TrainHistory
from .gat_trainer import DistributedGATTrainer
from .pipeline import PipelinedTrainer
from .autotune import PerPartitionSampler, balanced_rates, max_rate_for_memory
from . import variance

__all__ = [
    "BoundaryEdgeSampler",
    "BoundaryNodeSampler",
    "BoundarySampler",
    "DropEdgeSampler",
    "EpochPlan",
    "FullBoundarySampler",
    "ImportanceBoundarySampler",
    "degree_keep_probs",
    "explicit_stacked_operator",
    "make_sampler",
    "plan_sampling_ops",
    "PartitionRuntime",
    "RankData",
    "BNSTrainer",
    "DistributedTrainer",
    "DistributedGATTrainer",
    "PipelinedTrainer",
    "TrainHistory",
    "PerPartitionSampler",
    "balanced_rates",
    "max_rate_for_memory",
    "variance",
]
