"""Choosing the boundary sampling rate — Appendix E, operationalised.

The paper's Appendix E recommends p = 0.1 empirically but leaves the
choice to the user.  Two deployment questions have analytic answers
under the Eq. 3/4 cost models, and this module provides both:

* :func:`max_rate_for_memory` — the largest uniform p whose modelled
  per-partition training memory (Eq. 4 + caches) fits a device budget.
  This is how one decides whether a graph *can* be trained on a given
  cluster at all, and at what fidelity.

* :func:`balanced_rates` — *per-partition* rates p_i that equalise the
  modelled memory across ranks (the Fig. 8 imbalance, solved directly
  instead of relying on uniform sampling's statistical balancing).
  Each straggler partition samples more aggressively; under-utilised
  partitions keep more boundary nodes (up to ``p_max``), so the
  cluster-wide memory spread shrinks without lowering the average
  sampling fidelity.

Both solve Eq. 4 in closed form — memory is affine in the boundary
count, and the boundary count scales linearly with p.

:class:`PerPartitionSampler` executes a per-partition rate vector as a
drop-in :class:`~repro.core.sampler.BoundarySampler`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..dist.cost_model import MemoryModel
from ..dist.systems import Workload
from .sampler import BoundaryNodeSampler, EpochPlan

__all__ = ["max_rate_for_memory", "balanced_rates", "PerPartitionSampler"]


def _memory_at(
    workload: Workload, rates: np.ndarray, memory_model: MemoryModel
) -> np.ndarray:
    """Modelled per-partition bytes when partition i samples at rates[i]."""
    return memory_model.per_partition_bytes(
        workload.inner_sizes,
        workload.boundary_sizes * rates,
        workload.layer_dims,
        workload.model_params,
    )


def max_rate_for_memory(
    workload: Workload,
    budget_bytes: float,
    memory_model: Optional[MemoryModel] = None,
) -> float:
    """Largest uniform p in [0, 1] with every partition under budget.

    Returns -1.0 if even p = 0 (no boundary nodes kept) exceeds the
    budget — the partition count is too low for this device.
    """
    if budget_bytes <= 0:
        raise ValueError(f"budget must be positive, got {budget_bytes}")
    mm = memory_model or MemoryModel()
    m = workload.num_parts
    floor = _memory_at(workload, np.zeros(m), mm)
    if floor.max() > budget_bytes:
        return -1.0
    full = _memory_at(workload, np.ones(m), mm)
    if full.max() <= budget_bytes:
        return 1.0
    # Memory is affine in p per partition: mem_i(p) = floor_i + slope_i*p.
    slope = full - floor
    with np.errstate(divide="ignore", invalid="ignore"):
        per_part = np.where(
            slope > 0, (budget_bytes - floor) / np.maximum(slope, 1e-300), 1.0
        )
    return float(np.clip(per_part.min(), 0.0, 1.0))


def balanced_rates(
    workload: Workload,
    p_target: float,
    p_max: float = 1.0,
    memory_model: Optional[MemoryModel] = None,
) -> np.ndarray:
    """Per-partition rates that equalise modelled memory at the level
    the *straggler* partition would need under uniform ``p_target``.

    The straggler (largest memory at uniform p_target) keeps its rate;
    every other partition raises its rate until it either reaches the
    straggler's memory level or hits ``p_max``.  The result never
    samples more aggressively than ``p_target`` anywhere, so estimator
    variance can only improve over the uniform setting.
    """
    if not 0.0 <= p_target <= 1.0:
        raise ValueError(f"p_target must be in [0, 1], got {p_target}")
    if not p_target <= p_max <= 1.0:
        raise ValueError("need p_target <= p_max <= 1")
    mm = memory_model or MemoryModel()
    m = workload.num_parts
    uniform = np.full(m, p_target)
    mem = _memory_at(workload, uniform, mm)
    level = mem.max()
    floor = _memory_at(workload, np.zeros(m), mm)
    slope = _memory_at(workload, np.ones(m), mm) - floor
    with np.errstate(divide="ignore", invalid="ignore"):
        rates = np.where(
            slope > 0,
            (level - floor) / np.maximum(slope, 1e-300),
            p_max,
        )
    return np.clip(rates, p_target, p_max)


class PerPartitionSampler(BoundaryNodeSampler):
    """BNS with a distinct sampling rate per partition.

    Used with the output of :func:`balanced_rates`; everything else
    (renorm/scale estimator modes, plan construction) is inherited.
    """

    name = "bns-per-partition"

    def __init__(self, rates: Sequence[float], mode: str = "renorm") -> None:
        rates = np.asarray(rates, dtype=np.float64)
        if rates.ndim != 1 or rates.size == 0:
            raise ValueError("rates must be a non-empty 1-D sequence")
        if (rates < 0).any() or (rates > 1).any():
            raise ValueError("every rate must lie in [0, 1]")
        # Initialise the parent with the mean rate (used only for repr
        # and any uniform-rate fallbacks); per-plan rates override it.
        super().__init__(float(rates.mean()), mode=mode)
        self.rates = rates

    def plan(self, rank_data, rng) -> EpochPlan:
        if rank_data.rank >= self.rates.size:
            raise IndexError(
                f"sampler has {self.rates.size} rates but saw rank {rank_data.rank}"
            )
        self.p = float(self.rates[rank_data.rank])
        return super().plan(rank_data, rng)
