"""Per-partition runtime structures for partition-parallel training.

:class:`PartitionRuntime` turns (graph, partition) into what each rank
of Algorithm 1 holds locally:

* its inner node list ``V_i`` and boundary node list ``B_i`` (sorted by
  owning rank so communication batches are contiguous),
* the local propagation blocks ``P_in = P[V_i, V_i]`` and
  ``P_bd = P[V_i, B_i]``,
* for every boundary node: which rank owns it and its row index inside
  that owner's feature matrix (the "Broadcast U_i / record S_{i,j}"
  bookkeeping of Algorithm 1 lines 6-7, done once since the boundary
  *universe* is static — only the sampled subset changes per epoch),
* local label/mask slices for the loss (line 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np
import scipy.sparse as sp

from ..graph.graph import Graph
from ..graph.propagation import mean_aggregation, safe_inverse, sym_norm
from ..partition.types import PartitionResult
from ..tensor import SplitOperator, resolve_backend, resolve_dtype

__all__ = ["RankData", "PartitionRuntime"]


@dataclass
class RankData:
    """Everything rank *i* stores between epochs.

    Two views of the local aggregation structure are kept:

    * ``p_in`` / ``p_bd`` — the *pre-normalised* propagation blocks
      (full-degree mean or symmetric norm).  Used by the 1/p-scaling
      estimator analysed in Appendix A.
    * ``a_in`` / ``a_bd`` — the *raw* adjacency blocks.  Used by the
      subgraph-renormalising estimator (Algorithm 1 line 5 builds the
      node-induced subgraph, whose mean aggregator divides by the
      surviving degree), which is what the official implementation
      does and what keeps accuracy at small p.
    """

    rank: int
    inner: np.ndarray  # global ids of V_i (sorted)
    boundary: np.ndarray  # global ids of B_i (sorted by owner, then id)
    bd_owner: np.ndarray  # owning rank of each boundary node
    bd_local_index: np.ndarray  # row of the node inside its owner's inner list
    p_in: sp.csr_matrix  # (n_in, n_in)
    p_bd: sp.csr_matrix  # (n_in, n_bd), columns in `boundary` order
    a_in: sp.csr_matrix  # raw adjacency block (n_in, n_in)
    a_bd: sp.csr_matrix  # raw adjacency block (n_in, n_bd)
    labels: np.ndarray  # labels of inner nodes
    train_local: np.ndarray  # local indices of training inner nodes
    val_local: np.ndarray
    test_local: np.ndarray
    # Lazily-built, per-rank structures shared by every epoch plan
    # (CSC views, transposes, degree vectors, degenerate operators).
    _cache: Dict[str, object] = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def n_inner(self) -> int:
        return len(self.inner)

    @property
    def n_boundary(self) -> int:
        return len(self.boundary)

    # -- precomputed epoch-plan structures ------------------------------
    #
    # Samplers draw a fresh boundary subset every epoch; everything that
    # does NOT depend on the draw is built once here and reused:
    # column-sliceable CSC views of the boundary blocks, the inner
    # degree vector (renorm-mode row scales become one SpMV on the kept
    # block plus this vector), shared inner transposes for the SpMM
    # backward, and the p ∈ {0, 1} degenerate operators.

    def _cached(self, key: str, build):
        if key not in self._cache:
            self._cache[key] = build()
        return self._cache[key]

    @property
    def a_bd_csc(self) -> sp.csc_matrix:
        """Raw boundary block in CSC — column selection is O(kept nnz)."""
        return self._cached("a_bd_csc", self.a_bd.tocsc)

    @property
    def p_bd_csc(self) -> sp.csc_matrix:
        """Pre-normalised boundary block in CSC."""
        return self._cached("p_bd_csc", self.p_bd.tocsc)

    @property
    def inner_deg(self) -> np.ndarray:
        """Row sums of ``a_in`` — each inner node's surviving-neighbour
        count before any boundary column is added back."""
        return self._cached(
            "inner_deg", lambda: np.asarray(self.a_in.sum(axis=1)).ravel()
        )

    @property
    def a_in_t(self) -> sp.csr_matrix:
        return self._cached("a_in_t", lambda: self.a_in.T.tocsr())

    @property
    def p_in_t(self) -> sp.csr_matrix:
        return self._cached("p_in_t", lambda: self.p_in.T.tocsr())

    def inner_edges(self, mode: str):
        """(row, col) per stored edge of the inner block, in CSR data
        order — lets DropEdge rebuild a sampled inner block without a
        per-epoch COO conversion."""
        key = f"inner_edges_{mode}"

        def build():
            csr = self.a_in if mode == "renorm" else self.p_in
            rows = np.repeat(
                np.arange(csr.shape[0], dtype=np.int64), np.diff(csr.indptr)
            )
            return rows, csr.indices.astype(np.int64)

        return self._cached(key, build)

    def boundary_degree(self, mode: str) -> np.ndarray:
        """Per-boundary-column operator mass of the mode's block.

        The importance distribution of
        :class:`~repro.core.sampler.ImportanceBoundarySampler`:
        ``deg(v) = ‖block[:, v]‖²`` — FastGCN's ``q ∝ ‖P[:,u]‖²``
        importance measure applied rank-locally.  On the raw adjacency
        block (renorm mode, unit entries) this is exactly the boundary
        node's surviving degree into the partition; on the
        pre-normalised block (scale mode) it is the degree-weighted
        operator mass the Appendix A variance bound sums.
        """
        from .sampler import column_sq_mass  # local: avoid cycle

        key = f"bd_degree_{mode}"
        csc = self.a_bd_csc if mode == "renorm" else self.p_bd_csc
        return self._cached(key, lambda: column_sq_mass(csc))

    def boundary_keep_probs(
        self, p: float, p_min: float, mode: str
    ) -> np.ndarray:
        """Degree-proportional keep probabilities π (cached per config).

        ``π_v ∝ boundary_degree(v)`` water-filled into ``[p_min, 1]``
        so that ``Σπ = p·|B_i|`` — the expected kept count (and thus
        the expected traffic) matches uniform BNS at rate ``p``.
        Derived entirely from rank-local state, so a shipped sampler
        spec stays an index-free (p, p_min, mode) triple.
        """
        from .sampler import degree_keep_probs  # local: avoid cycle

        key = f"bd_pi_{mode}_{float(p)!r}_{float(p_min)!r}"
        return self._cached(
            key,
            lambda: degree_keep_probs(self.boundary_degree(mode), p, p_min),
        )

    def bd_edge_cols(self, mode: str) -> np.ndarray:
        """Boundary-column id of every stored edge of the CSC block —
        lets edge samplers draw without a COO conversion per epoch."""
        key = f"bd_edge_cols_{mode}"

        def build():
            csc = self.a_bd_csc if mode == "renorm" else self.p_bd_csc
            return np.repeat(
                np.arange(csc.shape[1], dtype=np.int64), np.diff(csc.indptr)
            )

        return self._cached(key, build)

    def empty_operator(self, mode: str) -> SplitOperator:
        """The kept-nothing operator (p = 0 or an empty draw), cached.

        renorm: ``row_normalise(a_in)`` in lazy row-scale form;
        scale: ``p_in`` unchanged.
        """
        if mode == "renorm":
            return self._cached(
                "empty_renorm",
                lambda: SplitOperator(
                    self.a_in,
                    row_scale=safe_inverse(self.inner_deg),
                    inner_t=self.a_in_t,
                ),
            )
        return self._cached(
            "empty_scale",
            lambda: SplitOperator(self.p_in, inner_t=self.p_in_t),
        )

    def full_operator(self) -> SplitOperator:
        """The keep-everything operator ``[P_in | P_bd]`` (p = 1), cached."""
        return self._cached(
            "full",
            lambda: SplitOperator(
                self.p_in,
                self.p_bd_csc if self.n_boundary else None,
                np.arange(self.n_boundary, dtype=np.int64),
                inner_t=self.p_in_t,
            ),
        )

    def warm_plan_cache(self) -> None:
        """Eagerly build the shared structures (done at runtime setup so
        the first epoch's plan cost matches the steady state)."""
        self.a_bd_csc, self.p_bd_csc, self.inner_deg
        self.a_in_t, self.p_in_t
        # boundary_degree / boundary_keep_probs stay lazy: they cost
        # O(nnz) / a water-filling only the importance sampler reads,
        # and each is cached on first use (per rank, per config).
        for mode in ("renorm", "scale"):
            self.bd_edge_cols(mode)
            self.inner_edges(mode)

    def boundary_groups(self, kept_positions: np.ndarray):
        """Group kept boundary positions by owning rank.

        Yields ``(owner_rank, positions, owner_row_indices)`` with
        positions contiguous because ``boundary`` is owner-sorted.
        """
        if kept_positions.size == 0:
            return
        owners = self.bd_owner[kept_positions]
        # kept_positions ascend, and boundary is owner-sorted, so owners
        # are non-decreasing; find group boundaries.
        change = np.flatnonzero(np.diff(owners)) + 1
        starts = np.concatenate(([0], change))
        ends = np.concatenate((change, [len(owners)]))
        for s, e in zip(starts, ends):
            pos = kept_positions[s:e]
            yield int(owners[s]), pos, self.bd_local_index[pos]


class PartitionRuntime:
    """Builds and owns the per-rank data of a partitioned training job.

    ``dtype`` governs every propagation/adjacency block the ranks hold
    (and therefore every epoch plan's operator): float32 halves the
    operator memory and roughly doubles SpMM throughput.  The default
    is the library default (float64 unless changed).

    ``kernel_backend`` names the split-SpMM kernel implementation
    (:mod:`repro.tensor.kernels`) every epoch plan built on this
    runtime should run under; ``None`` resolves to the process default
    (``REPRO_KERNEL_BACKEND`` env, else the fused ``numpy`` kernels).
    The runtime only *holds* the resolved backend — the trainers scope
    it around their epoch bodies, and the distributed executor ships
    its name so workers resolve the same backend rank-side.
    """

    def __init__(
        self,
        graph: Graph,
        partition: PartitionResult,
        aggregation: str = "mean",
        dtype=None,
        kernel_backend=None,
    ) -> None:
        self.dtype = resolve_dtype(dtype)
        self.kernel_backend = resolve_backend(kernel_backend)
        if aggregation == "mean":
            prop = mean_aggregation(graph.adj, dtype=self.dtype)
        elif aggregation == "sym":
            prop = sym_norm(graph.adj, dtype=self.dtype)
        else:
            raise ValueError(f"unknown aggregation {aggregation!r}")
        self.graph = graph
        self.partition = partition
        self.aggregation = aggregation
        self.full_prop = prop
        self.num_parts = partition.num_parts

        p_global = prop.csr
        assignment = partition.assignment

        # Global -> local row index within the owner's inner list.
        local_index = np.zeros(graph.num_nodes, dtype=np.int64)
        inner_lists: List[np.ndarray] = []
        for i in range(self.num_parts):
            inner = partition.inner_nodes(i)  # sorted
            inner_lists.append(inner)
            local_index[inner] = np.arange(len(inner))

        self.ranks: List[RankData] = []
        for i in range(self.num_parts):
            inner = inner_lists[i]
            boundary = partition.boundary_nodes(graph.adj, i)
            owners = assignment[boundary]
            order = np.lexsort((boundary, owners))  # sort by owner, then id
            boundary = boundary[order]
            owners = owners[order]

            cols = np.concatenate([inner, boundary]).astype(np.int64)
            n_in = len(inner)
            local_block = p_global[inner][:, cols].tocsr()
            p_in = local_block[:, :n_in].tocsr()
            p_bd = local_block[:, n_in:].tocsr()
            # Raw adjacency blocks adopt the runtime dtype too, so the
            # renorm-mode operators (built from a_in/a_bd) match the
            # pre-normalised ones.
            adj_block = graph.adj[inner][:, cols].astype(self.dtype).tocsr()
            a_in = adj_block[:, :n_in].tocsr()
            a_bd = adj_block[:, n_in:].tocsr()

            self.ranks.append(
                RankData(
                    rank=i,
                    inner=inner,
                    boundary=boundary,
                    bd_owner=owners,
                    bd_local_index=local_index[boundary],
                    p_in=p_in,
                    p_bd=p_bd,
                    a_in=a_in,
                    a_bd=a_bd,
                    labels=graph.labels[inner],
                    train_local=np.flatnonzero(graph.train_mask[inner]),
                    val_local=np.flatnonzero(graph.val_mask[inner]),
                    test_local=np.flatnonzero(graph.test_mask[inner]),
                )
            )

        for r in self.ranks:
            r.warm_plan_cache()

        self.total_train = int(graph.train_mask.sum())

    # ------------------------------------------------------------------
    def total_boundary(self) -> int:
        """Σ_i |B_i| — Eq. 3's communication volume in node counts."""
        return sum(r.n_boundary for r in self.ranks)

    def validate(self) -> None:
        """Invariants: inner sets cover the graph; local blocks tile P."""
        covered = np.concatenate([r.inner for r in self.ranks])
        if len(np.unique(covered)) != self.graph.num_nodes:
            raise AssertionError("inner sets do not partition the node set")
        for r in self.ranks:
            if r.p_in.shape != (r.n_inner, r.n_inner):
                raise AssertionError("P_in block has wrong shape")
            if r.p_bd.shape != (r.n_inner, r.n_boundary):
                raise AssertionError("P_bd block has wrong shape")
            own = self.partition.assignment[r.boundary]
            if (own == r.rank).any():
                raise AssertionError("boundary node owned by its own rank")
