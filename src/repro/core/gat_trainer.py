"""Partition-parallel GAT training with boundary node sampling (Table 10).

GAT aggregates with learned attention over explicit edges, so BNS takes
an even simpler form than for SAGE: dropping a boundary node just
removes its incident cross-partition edges, and the per-destination
softmax renormalises over the survivors (a convex combination needs no
1/p correction).  Communication is identical to the SAGE case — the
features/gradients of kept boundary nodes — which is why the paper's
Table 10 speedups mirror the SAGE ones at a lower ratio (GAT is more
compute-heavy, diluting the communication share).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..dist.transport import resolve_transport
from ..dist.cost_model import (
    SECONDS_PER_SAMPLER_EDGE,
    ClusterSpec,
    epoch_time,
)
from ..graph.graph import Graph
from ..nn import functional as F
from ..nn.metrics import accuracy, f1_micro_multilabel
from ..nn.models import GATModel
from ..nn.module import resolve_model_dtype
from ..nn.optim import Adam, Optimizer
from ..partition.types import PartitionResult
from ..tensor import Tensor, concat_rows, gather_rows, no_grad, relu
from .bns import PartitionRuntime
from .trainer import TrainHistory

__all__ = ["DistributedGATTrainer"]


@dataclass
class _RankEdges:
    """Static edge lists of one rank in local coordinates.

    Sources index the concatenated ``[inner ; boundary]`` space;
    destinations index inner nodes.  Self-loops are included (standard
    GAT practice: every node attends to itself).
    """

    src_inner: np.ndarray  # src < n_in
    dst_inner: np.ndarray
    src_bd_pos: np.ndarray  # boundary position (0..n_bd)
    dst_bd: np.ndarray


class DistributedGATTrainer:
    """Algorithm 1 with a GAT model instead of GraphSAGE."""

    def __init__(
        self,
        graph: Graph,
        partition: PartitionResult,
        model: GATModel,
        p: float = 1.0,
        lr: float = 0.01,
        seed: int = 0,
        cluster: Optional[ClusterSpec] = None,
        optimizer: Optional[Optimizer] = None,
        transport=None,
        dtype=None,
    ) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"sampling rate p must be in [0, 1], got {p}")
        self.dtype = resolve_model_dtype(model, dtype, optimizer)
        self.graph = graph
        self.model = model
        self.p = p
        self.runtime = PartitionRuntime(
            graph, partition, aggregation="mean", dtype=self.dtype
        )
        self.comm = resolve_transport(
            transport, partition.num_parts, dtype=self.dtype
        )
        self.cluster = cluster
        self.optimizer = optimizer or Adam(model.parameters(), lr=lr)
        root = np.random.default_rng(seed)
        self.sample_rngs = [
            np.random.default_rng(s)
            for s in root.integers(0, 2**63 - 1, partition.num_parts)
        ]
        self.dropout_rng = np.random.default_rng(root.integers(0, 2**63 - 1))
        self.history = TrainHistory()
        self._features = [
            np.asarray(graph.features[r.inner], dtype=self.dtype)
            for r in self.runtime.ranks
        ]
        self._edges: List[_RankEdges] = [
            self._build_edges(r) for r in self.runtime.ranks
        ]

    @staticmethod
    def _build_edges(rank_data) -> _RankEdges:
        in_coo = rank_data.a_in.tocoo()
        bd_coo = rank_data.a_bd.tocoo()
        n_in = rank_data.n_inner
        self_loop = np.arange(n_in, dtype=np.int64)
        return _RankEdges(
            src_inner=np.concatenate([in_coo.col.astype(np.int64), self_loop]),
            dst_inner=np.concatenate([in_coo.row.astype(np.int64), self_loop]),
            src_bd_pos=bd_coo.col.astype(np.int64),
            dst_bd=bd_coo.row.astype(np.int64),
        )

    # ------------------------------------------------------------------
    def _metric(self, logits: np.ndarray, labels: np.ndarray) -> float:
        if self.graph.multilabel:
            return f1_micro_multilabel(logits, labels)
        return accuracy(logits, labels)

    def train_epoch(self) -> float:
        self.model.train()
        self.comm.reset()
        ranks = self.runtime.ranks
        m = self.runtime.num_parts
        dims = self.model.dims

        # BNS draw per rank.
        t0 = time.perf_counter()
        kept_sets: List[np.ndarray] = []
        edge_sets: List[tuple] = []
        for i, r in enumerate(ranks):
            if self.p >= 1.0:
                kept = np.arange(r.n_boundary, dtype=np.int64)
            elif self.p <= 0.0:
                kept = np.empty(0, dtype=np.int64)
            else:
                kept = np.flatnonzero(self.sample_rngs[i].random(r.n_boundary) < self.p)
            kept_sets.append(kept)
            e = self._edges[i]
            # Keep boundary edges whose source survived; remap source
            # columns into the compacted [inner ; kept] space.
            pos_map = np.full(r.n_boundary, -1, dtype=np.int64)
            pos_map[kept] = np.arange(len(kept))
            alive = pos_map[e.src_bd_pos] >= 0
            src = np.concatenate(
                [e.src_inner, r.n_inner + pos_map[e.src_bd_pos[alive]]]
            )
            dst = np.concatenate([e.dst_inner, e.dst_bd[alive]])
            edge_sets.append((src, dst))
            self.comm.broadcast(i, len(kept), "sample_sync")
        sampling_seconds = time.perf_counter() - t0
        # Device-scale sampling cost for the modelled breakdown: p=1
        # needs no per-epoch work; otherwise ops ∝ boundary nodes drawn
        # plus boundary edges filtered/remapped.
        if self.p >= 1.0:
            modeled_sampling = 0.0
        else:
            ops = sum(
                r.n_boundary + len(self._edges[i].src_bd_pos)
                for i, r in enumerate(ranks)
            )
            modeled_sampling = ops * SECONDS_PER_SAMPLER_EDGE

        h_ranks = [Tensor(x) for x in self._features]
        flops = np.zeros(m)
        for layer_idx, layer in enumerate(self.model.layers):
            d_in = dims[layer_idx]
            new_h = []
            for i, r in enumerate(ranks):
                parts = [h_ranks[i]]
                for owner, _pos, owner_rows in r.boundary_groups(kept_sets[i]):
                    parts.append(gather_rows(h_ranks[owner], owner_rows))
                    self.comm.send(owner, i, len(owner_rows) * d_in, "forward")
                    self.comm.send(i, owner, len(owner_rows) * d_in, "backward")
                h_all = concat_rows(parts) if len(parts) > 1 else parts[0]
                h_all = self.model.dropout(h_all, self.dropout_rng)
                src, dst = edge_sets[i]
                out = layer(h_all, src, dst, r.n_inner)
                if layer_idx < len(self.model.layers) - 1:
                    out = relu(out)
                new_h.append(out)
                flops[i] += 3.0 * layer.flops(r.n_inner, h_all.shape[0], len(src))
            h_ranks = new_h

        total = None
        for i, r in enumerate(ranks):
            if r.train_local.size == 0:
                continue
            logits = gather_rows(h_ranks[i], r.train_local)
            labels = r.labels[r.train_local]
            if self.graph.multilabel:
                part_loss = F.bce_with_logits(logits, labels, reduction="sum")
            else:
                part_loss = F.cross_entropy(logits, labels, reduction="sum")
            total = part_loss if total is None else total + part_loss
        if total is None:
            raise RuntimeError("no training nodes in any partition")
        denom = self.runtime.total_train * (
            self.graph.labels.shape[1] if self.graph.multilabel else 1
        )
        loss = total * (1.0 / denom)
        self.optimizer.zero_grad()
        loss.backward()
        p2p_bytes = self.comm.pairwise.copy()
        self.comm.allreduce(self.model.num_parameters(), "reduce")
        self.optimizer.step()

        self.history.loss.append(loss.item())
        self.history.comm_bytes.append(self.comm.total_bytes())
        self.history.sampling_seconds.append(sampling_seconds)
        if self.cluster is not None:
            self.history.modeled.append(
                epoch_time(
                    per_rank_flops=flops,
                    pairwise_comm_bytes=p2p_bytes,
                    model_bytes=self.model.num_parameters() * self.comm.bytes_per_scalar,
                    cluster=self.cluster,
                    sampling_seconds=modeled_sampling,
                )
            )
        return loss.item()

    # ------------------------------------------------------------------
    def evaluate(self) -> dict:
        self.model.eval()
        g = self.graph
        src, dst = g.edge_list()
        # Self loops for evaluation too.
        loop = np.arange(g.num_nodes, dtype=np.int64)
        src = np.concatenate([src, loop])
        dst = np.concatenate([dst, loop])
        with no_grad():
            logits = self.model.full_forward(
                src, dst, Tensor(g.features, dtype=self.dtype), self.dropout_rng
            ).numpy()
        self.model.train()
        return {
            "train": self._metric(logits[g.train_mask], g.labels[g.train_mask]),
            "val": self._metric(logits[g.val_mask], g.labels[g.val_mask]),
            "test": self._metric(logits[g.test_mask], g.labels[g.test_mask]),
        }

    def train(self, epochs: int, eval_every: int = 0) -> TrainHistory:
        for epoch in range(epochs):
            t0 = time.perf_counter()
            self.train_epoch()
            self.history.wall_seconds.append(time.perf_counter() - t0)
            if eval_every and (
                epoch % eval_every == eval_every - 1 or epoch == epochs - 1
            ):
                scores = self.evaluate()
                self.history.val_metric.append(scores["val"])
                self.history.test_metric.append(scores["test"])
                self.history.eval_epochs.append(epoch)
        return self.history
