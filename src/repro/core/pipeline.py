"""PipeGCN-style pipelined partition-parallel training, composable
with boundary node sampling.

The paper positions BNS-GCN as orthogonal to *how* boundary features
are exchanged: "our BNS-GCN can ... be easily plugged into any
partition-parallel training methods" (Section 3.2).  PipeGCN (Wan et
al., ICLR 2022), the companion work the paper cites, hides the
boundary exchange behind local computation by consuming *stale*
boundary features — the values each owner produced in the previous
epoch — so communication and computation overlap and the epoch is
paced by ``max(compute, communication)`` instead of their sum.

:class:`PipelinedTrainer` implements that execution model on the same
:class:`~repro.core.bns.PartitionRuntime` substrate as the synchronous
:class:`~repro.core.trainer.DistributedTrainer`, and accepts any
:class:`~repro.core.sampler.BoundarySampler`, so BNS + pipelining
compose exactly as the paper suggests:

* epoch ``t`` samples a fresh boundary subset ``U_i`` (Algorithm 1
  lines 4-7, unchanged);
* the features gathered for ``U_i`` are the owners' layer inputs from
  epoch ``t-1`` (staleness 1); epoch 0 performs a fresh warm-up
  exchange, like PipeGCN's first iteration;
* the same bytes travel either way — staleness changes *when* traffic
  moves, not how much — so Eq. 3 metering is identical and the
  modelled epoch time simply flips ``overlap_communication``.

Stale gradients are applied through a *ghost-loss* construction: each
epoch harvests the tape's gradients with respect to the gathered stale
feature blocks, and the next epoch adds ``⟨stop_grad(g_stale),
h_current⟩`` terms to the loss, so one ``backward()`` delivers last
epoch's remote-neighbour gradients to their owners through the owners'
*current* forward paths (the chain rule makes the injected upstream
gradient exactly ``g_stale``).  This mirrors PipeGCN's
stale-feature/stale-gradient pair up to the epoch-old activation path
and keeps convergence close to synchronous even on boundary-heavy
graphs — dropping remote gradients outright (the naive alternative)
loses tens of accuracy points on the dense Reddit analogue.
"""

from __future__ import annotations

import time
from typing import List, Optional

import numpy as np

from ..dist.cost_model import (
    SECONDS_PER_SAMPLER_EDGE,
    ClusterSpec,
    epoch_time,
    layer_flops,
)
from ..graph.graph import Graph
from ..nn import functional as F
from ..nn.optim import Optimizer
from ..partition.types import PartitionResult
from ..tensor import Tensor, concat_rows, gather_rows, relu
from .sampler import BoundarySampler, plan_sampling_ops
from .trainer import DistributedTrainer

__all__ = ["PipelinedTrainer"]


class PipelinedTrainer(DistributedTrainer):
    """Partition-parallel trainer with staleness-1 boundary features.

    Drop-in replacement for :class:`DistributedTrainer`; the
    constructor signature is identical.  ``history.modeled`` records
    epoch breakdowns with ``overlap_communication=True`` so the
    benchmark harness shows the pipelining speedup next to the
    synchronous baseline.
    """

    def __init__(
        self,
        graph: Graph,
        partition: PartitionResult,
        model,
        sampler: Optional[BoundarySampler] = None,
        lr: float = 0.01,
        seed: int = 0,
        cluster: Optional[ClusterSpec] = None,
        optimizer: Optional[Optimizer] = None,
        aggregation: str = "mean",
        transport=None,
        dtype=None,
        kernel_backend=None,
    ) -> None:
        super().__init__(
            graph, partition, model, sampler, lr, seed, cluster, optimizer,
            aggregation, transport, dtype, kernel_backend,
        )
        # _stale[layer][rank]: that rank's input features to `layer` as
        # of the previous epoch (None until the warm-up epoch fills it).
        self._stale: List[Optional[List[np.ndarray]]] = [
            None for _ in self.model.layers
        ]
        # Stale-gradient records harvested from the previous epoch:
        # (layer, owner, owner_rows, grad) — delivered to the owner via
        # ghost-loss terms in the next epoch.
        self._stale_grads: List[tuple] = []
        self.epochs_run = 0

    # ------------------------------------------------------------------
    @property
    def is_warm(self) -> bool:
        """Whether every layer has a populated stale-feature cache."""
        return all(cache is not None for cache in self._stale)

    def reset_pipeline(self) -> None:
        """Drop the stale caches; the next epoch re-warms synchronously."""
        self._stale = [None for _ in self.model.layers]
        self._stale_grads = []

    # ------------------------------------------------------------------
    def _train_epoch(self) -> float:
        """One pipelined iteration (runs under the trainer's kernel
        backend via :meth:`DistributedTrainer.train_epoch`).

        Identical to Algorithm 1 except that the layer-ℓ boundary
        gather for epoch ``t`` reads the owners' layer-ℓ inputs of
        epoch ``t-1`` (constants on the tape).  The traffic is metered
        exactly as the synchronous trainer meters it — the bytes are
        the same, they just travel during the previous epoch's compute.
        """
        self.model.train()
        self.comm.reset()
        m = self.num_parts
        ranks = self.runtime.ranks
        dims = self.model.dims

        plans = [
            self.sampler.plan(r, self.sample_rngs[i]) for i, r in enumerate(ranks)
        ]
        sampling_seconds = sum(pl.sampling_seconds for pl in plans)
        sampling_ops = sum(
            plan_sampling_ops(r, pl)
            for r, pl in zip(ranks, plans)
            if pl.sampling_seconds > 0.0
        )
        modeled_sampling = sampling_ops * SECONDS_PER_SAMPLER_EDGE
        for i, pl in enumerate(plans):
            self.comm.broadcast(i, len(pl.kept_positions), "sample_sync")

        h_ranks = [Tensor(x) for x in self._features]
        flops = np.zeros(m)
        # Gathered stale blocks of THIS epoch; their .grad after
        # backward becomes next epoch's stale-gradient records.
        gathered: List[tuple] = []
        # Ghost-loss terms delivering LAST epoch's boundary gradients.
        ghost = None
        stale_grads = self._stale_grads
        for layer_idx, layer in enumerate(self.model.layers):
            d_in = dims[layer_idx]
            d_out = dims[layer_idx + 1]
            # Snapshot this epoch's layer inputs; they become the stale
            # values served to neighbours next epoch.
            current = [h.numpy() for h in h_ranks]
            stale = self._stale[layer_idx]
            source = current if stale is None else stale
            # Deliver last epoch's remote-neighbour gradients to their
            # owners through the owners' current layer inputs:
            # d/dh <stop_grad(g), h[rows]> injects exactly g.
            for rec_layer, owner, rows, grad in stale_grads:
                if rec_layer != layer_idx:
                    continue
                term = (Tensor(grad) * gather_rows(h_ranks[owner], rows)).sum()
                ghost = term if ghost is None else ghost + term
            new_h = []
            for i, r in enumerate(ranks):
                pl = plans[i]
                parts = [h_ranks[i]]
                for owner, _pos, owner_rows in r.boundary_groups(pl.kept_positions):
                    block = Tensor(source[owner][owner_rows], requires_grad=True)
                    gathered.append((layer_idx, owner, owner_rows, block))
                    parts.append(block)
                    self.comm.send(owner, i, len(owner_rows) * d_in, "forward")
                    self.comm.send(i, owner, len(owner_rows) * d_in, "backward")
                h_all = concat_rows(parts) if len(parts) > 1 else parts[0]
                h_all = self.model.dropout(h_all, self.dropout_rng)
                h_self = h_all[0:r.n_inner]
                out = layer(pl.prop, h_all, h_self)
                if layer_idx < len(self.model.layers) - 1:
                    out = relu(out)
                new_h.append(out)
                flops[i] += layer_flops(pl.prop.nnz, r.n_inner, d_in, d_out)
            self._stale[layer_idx] = current
            h_ranks = new_h

        total = None
        for i, r in enumerate(ranks):
            if r.train_local.size == 0:
                continue
            logits = gather_rows(h_ranks[i], r.train_local)
            labels = r.labels[r.train_local]
            if self.graph.multilabel:
                part_loss = F.bce_with_logits(logits, labels, reduction="sum")
            else:
                part_loss = F.cross_entropy(logits, labels, reduction="sum")
            total = part_loss if total is None else total + part_loss
        if total is None:
            raise RuntimeError("no training nodes in any partition")
        denom = self.runtime.total_train * (
            self.graph.labels.shape[1] if self.graph.multilabel else 1
        )
        loss = total * (1.0 / denom)
        objective = loss if ghost is None else loss + ghost
        self.optimizer.zero_grad()
        objective.backward()

        # Harvest this epoch's boundary gradients for the next epoch.
        self._stale_grads = [
            (layer_idx, owner, rows, block.grad.copy())
            for layer_idx, owner, rows, block in gathered
            if block.grad is not None
        ]

        p2p_bytes = self.comm.pairwise.copy()
        self.comm.allreduce(self.model.num_parameters(), "reduce")
        self.optimizer.step()
        self.epochs_run += 1

        self.history.loss.append(loss.item())
        self.history.comm_bytes.append(self.comm.total_bytes())
        self.history.sampling_seconds.append(sampling_seconds)
        if self.cluster is not None:
            breakdown = epoch_time(
                per_rank_flops=flops,
                pairwise_comm_bytes=p2p_bytes,
                model_bytes=self.model.num_parameters() * self.comm.bytes_per_scalar,
                cluster=self.cluster,
                sampling_seconds=modeled_sampling,
            )
            breakdown.overlap_communication = True
            self.history.modeled.append(breakdown)
        return loss.item()
