"""Boundary sampling strategies (Section 3.2 and the Table 9 ablation).

All samplers operate on one partition's :class:`~repro.core.bns.RankData`
and return an :class:`EpochPlan` per epoch: the effective local
propagation operator ``[P̃_in | P̃_bd]`` plus the positions of the
boundary nodes that must actually be communicated.

Two estimator modes are provided for each sampler:

* ``"renorm"`` (default) — Algorithm 1 line 5 builds the node-induced
  subgraph of ``V_i ∪ U_i``; a mean aggregator on that subgraph divides
  by the *surviving* neighbour count.  This is the self-normalised
  estimator the official implementation realises through DGL, and the
  one that keeps accuracy flat down to p = 0.01.
* ``"scale"`` — keep the full-degree (or sym-norm) operator and rescale
  the kept boundary columns by 1/p (the paper's "replace H with H/p"
  description and the estimator analysed in Appendix A).  Unbiased but
  higher variance; exposed for the variance study and for sum-style
  aggregators where renormalisation is not meaningful.

Implemented strategies:

* :class:`BoundaryNodeSampler` — **BNS** (Algorithm 1, lines 4-5):
  keep each boundary *node* independently with probability p.
* :class:`BoundaryEdgeSampler` — **BES** (Table 9): keep each boundary
  *edge* with probability q.  A boundary node must still be
  communicated when *any* incident edge survives — the reason edge
  sampling saves much less traffic than node sampling.
* :class:`DropEdgeSampler` — DropEdge (Rong et al.) applied to
  partition-parallel training: drops edges uniformly over the *whole*
  local block (inner + boundary).
* :class:`FullBoundarySampler` — no sampling (vanilla partition
  parallelism, p = 1), cached so its per-epoch overhead is zero.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..graph.propagation import row_normalise
from ..tensor import SparseOp

__all__ = [
    "EpochPlan",
    "BoundarySampler",
    "BoundaryNodeSampler",
    "BoundaryEdgeSampler",
    "DropEdgeSampler",
    "FullBoundarySampler",
]

MODES = ("renorm", "scale")


@dataclass
class EpochPlan:
    """One partition's sampling decision for one epoch.

    Attributes
    ----------
    prop:
        Effective (n_in, n_in + n_kept) operator ``[P̃_in | P̃_bd]``.
    kept_positions:
        Indices into the partition's boundary list of the nodes whose
        features must be received this epoch, ascending (matching the
        operator's boundary column order).
    sampling_seconds:
        Wall-clock cost of drawing the plan (Table 12's overhead).
    """

    prop: SparseOp
    kept_positions: np.ndarray
    sampling_seconds: float


def _finish(prop_matrix: sp.spmatrix, kept: np.ndarray, t0: float) -> EpochPlan:
    return EpochPlan(
        prop=SparseOp(prop_matrix),
        kept_positions=np.asarray(kept, dtype=np.int64),
        sampling_seconds=time.perf_counter() - t0,
    )


def _check_mode(mode: str) -> str:
    if mode not in MODES:
        raise ValueError(f"unknown estimator mode {mode!r}; known: {MODES}")
    return mode


class BoundarySampler:
    """Interface: produce an :class:`EpochPlan` per partition per epoch."""

    name = "abstract"

    def plan(self, rank_data, rng: np.random.Generator) -> EpochPlan:  # pragma: no cover
        raise NotImplementedError


class FullBoundarySampler(BoundarySampler):
    """No sampling — vanilla partition parallelism (BNS with p = 1).

    Plans are computed once per rank and reused, so the per-epoch
    sampling overhead is zero, matching Table 12's p = 1 row.
    """

    name = "full"

    def __init__(self) -> None:
        self._cache: dict = {}

    def plan(self, rank_data, rng) -> EpochPlan:
        key = rank_data.rank
        if key not in self._cache:
            t0 = time.perf_counter()
            kept = np.arange(rank_data.p_bd.shape[1], dtype=np.int64)
            if rank_data.p_bd.shape[1]:
                prop = sp.hstack([rank_data.p_in, rank_data.p_bd], format="csr")
            else:
                prop = rank_data.p_in
            self._cache[key] = _finish(prop, kept, t0)
        cached = self._cache[key]
        return EpochPlan(cached.prop, cached.kept_positions, 0.0)


class BoundaryNodeSampler(BoundarySampler):
    """BNS: keep each boundary node independently with probability p.

    ``p = 0`` drops every boundary node (fully isolated training, the
    pathological case of Section 4.3).
    """

    name = "bns"

    def __init__(self, p: float, mode: str = "renorm") -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"sampling rate p must be in [0, 1], got {p}")
        self.p = p
        self.mode = _check_mode(mode)

    def plan(self, rank_data, rng) -> EpochPlan:
        t0 = time.perf_counter()
        n_bd = rank_data.p_bd.shape[1]
        if self.p == 0.0 or n_bd == 0:
            kept = np.empty(0, dtype=np.int64)
            if self.mode == "renorm":
                return _finish(row_normalise(rank_data.a_in), kept, t0)
            return _finish(rank_data.p_in, kept, t0)
        keep = rng.random(n_bd) < self.p
        kept = np.flatnonzero(keep)
        if self.mode == "renorm":
            if kept.size == 0:
                return _finish(row_normalise(rank_data.a_in), kept, t0)
            sub = rank_data.a_bd.tocsc()[:, kept].tocsr()
            stacked = sp.hstack([rank_data.a_in, sub], format="csr")
            return _finish(row_normalise(stacked), kept, t0)
        # scale mode: fixed operator, kept columns rescaled by 1/p.
        if kept.size == 0:
            return _finish(rank_data.p_in, kept, t0)
        sub = rank_data.p_bd.tocsc()[:, kept] * (1.0 / self.p)
        stacked = sp.hstack([rank_data.p_in, sub.tocsr()], format="csr")
        return _finish(stacked, kept, t0)


class BoundaryEdgeSampler(BoundarySampler):
    """BES: keep each boundary *edge* independently with probability q.

    Only columns that lose *all* incident edges stop being
    communicated, so traffic shrinks far slower than q (Table 9).
    """

    name = "bes"

    def __init__(self, q: float, mode: str = "renorm") -> None:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"edge keep rate q must be in [0, 1], got {q}")
        self.q = q
        self.mode = _check_mode(mode)

    def plan(self, rank_data, rng) -> EpochPlan:
        t0 = time.perf_counter()
        bd = rank_data.a_bd if self.mode == "renorm" else rank_data.p_bd
        inner = rank_data.a_in if self.mode == "renorm" else rank_data.p_in
        n_bd = bd.shape[1]
        if n_bd == 0 or self.q == 0.0:
            kept = np.empty(0, dtype=np.int64)
            prop = row_normalise(inner) if self.mode == "renorm" else inner
            return _finish(prop, kept, t0)
        coo = bd.tocoo()
        keep_edge = rng.random(coo.nnz) < self.q
        data = coo.data[keep_edge]
        if self.mode == "scale" and self.q > 0:
            data = data / self.q
        sub = sp.coo_matrix(
            (data, (coo.row[keep_edge], coo.col[keep_edge])), shape=bd.shape
        ).tocsc()
        kept = np.flatnonzero(np.diff(sub.indptr) > 0)
        sub = sub[:, kept].tocsr()
        stacked = sp.hstack([inner, sub], format="csr") if kept.size else inner
        if self.mode == "renorm":
            stacked = row_normalise(stacked)
        return _finish(stacked, kept, t0)


class DropEdgeSampler(BoundarySampler):
    """DropEdge: drop edges uniformly over the whole local block.

    Inner edges are dropped too (DropEdge's global semantics), which
    perturbs computation without reducing communication much.
    """

    name = "dropedge"

    def __init__(self, q: float, mode: str = "renorm") -> None:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"edge keep rate q must be in [0, 1], got {q}")
        self.q = q
        self.mode = _check_mode(mode)

    def plan(self, rank_data, rng) -> EpochPlan:
        t0 = time.perf_counter()
        bd = rank_data.a_bd if self.mode == "renorm" else rank_data.p_bd
        inner = rank_data.a_in if self.mode == "renorm" else rank_data.p_in
        scale = (1.0 / self.q) if (self.mode == "scale" and self.q > 0) else 1.0

        def sample_block(block: sp.spmatrix) -> sp.csc_matrix:
            coo = block.tocoo()
            keep = rng.random(coo.nnz) < self.q
            return sp.coo_matrix(
                (coo.data[keep] * scale, (coo.row[keep], coo.col[keep])),
                shape=block.shape,
            ).tocsc()

        inner_eff = sample_block(inner).tocsr()
        sub = sample_block(bd)
        kept = np.flatnonzero(np.diff(sub.indptr) > 0)
        sub = sub[:, kept].tocsr()
        stacked = (
            sp.hstack([inner_eff, sub], format="csr") if kept.size else inner_eff
        )
        if self.mode == "renorm":
            stacked = row_normalise(stacked)
        return _finish(stacked, kept, t0)
