"""Boundary sampling strategies (Section 3.2 and the Table 9 ablation).

All samplers operate on one partition's :class:`~repro.core.bns.RankData`
and return an :class:`EpochPlan` per epoch: the effective local
propagation operator ``[P̃_in | P̃_bd]`` plus the positions of the
boundary nodes that must actually be communicated.

Zero-rebuild epoch planning
---------------------------
The operator is emitted as a :class:`~repro.tensor.sparse.SplitOperator`
— the *split-operator fast path*.  Sampling changes only which boundary
columns participate and how rows are rescaled, so nothing forces a
rebuild of the stacked matrix every epoch:

* the inner block (``a_in`` / ``p_in``) is immutable and shared by
  every plan, together with its transpose for the SpMM backward;
* the boundary block is column-selected from a CSC view precomputed at
  :class:`~repro.core.bns.RankData` build time — O(kept nnz), not
  O(nnz);
* renorm-mode row scales come from ``inner_deg + A_bd[:, kept] · 1``
  (one SpMV on the kept block) instead of a full ``row_normalise``
  rebuild;
* the p ∈ {0, 1} degenerate plans are cached on the rank and reused at
  zero per-epoch cost.

A plan is therefore an index set plus scale vectors — something a rank
could *ship* to a peer process — rather than a matrix that must be
reconstructed.  :func:`explicit_stacked_operator` keeps the legacy
hstack + ``row_normalise`` construction as the reference that the
equivalence tests and the perf microbenchmark compare against.

Estimator modes
---------------
Two estimator modes are provided for each sampler:

* ``"renorm"`` (default) — Algorithm 1 line 5 builds the node-induced
  subgraph of ``V_i ∪ U_i``; a mean aggregator on that subgraph divides
  by the *surviving* neighbour count.  This is the self-normalised
  estimator the official implementation realises through DGL, and the
  one that keeps accuracy flat down to p = 0.01.
* ``"scale"`` — keep the full-degree (or sym-norm) operator and rescale
  the kept boundary columns by 1/p (the paper's "replace H with H/p"
  description and the estimator analysed in Appendix A).  Unbiased but
  higher variance; exposed for the variance study and for sum-style
  aggregators where renormalisation is not meaningful.

Implemented strategies:

* :class:`BoundaryNodeSampler` — **BNS** (Algorithm 1, lines 4-5):
  keep each boundary *node* independently with probability p.
* :class:`ImportanceBoundarySampler` — importance-weighted BNS: keep
  boundary node v with probability ``π_v ∝ deg(v)`` (its per-column
  operator mass — FastGCN's ``q ∝ ‖P[:,u]‖²`` importance distribution
  applied rank-locally), water-filled into ``[p_min, 1]`` so the
  *expected* kept count matches uniform BNS at rate p.  Scale mode
  applies Horvitz–Thompson ``1/π_v`` column weights; renorm mode uses
  the same surviving-degree renormalisation as BNS.
* :class:`BoundaryEdgeSampler` — **BES** (Table 9): keep each boundary
  *edge* with probability q.  A boundary node must still be
  communicated when *any* incident edge survives — the reason edge
  sampling saves much less traffic than node sampling.
* :class:`DropEdgeSampler` — DropEdge (Rong et al.) applied to
  partition-parallel training: drops edges uniformly over the *whole*
  local block (inner + boundary).
* :class:`FullBoundarySampler` — no sampling (vanilla partition
  parallelism, p = 1); serves the rank's cached full operator, so its
  per-epoch overhead is zero.

:func:`make_sampler` is the one shared construction point for sampler
specs named on a command line or a bench configuration.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np
import scipy.sparse as sp

from ..graph.propagation import row_normalise, safe_inverse
from ..tensor import SparseOp, SplitOperator

__all__ = [
    "EpochPlan",
    "BoundarySampler",
    "BoundaryNodeSampler",
    "BoundaryEdgeSampler",
    "DropEdgeSampler",
    "FullBoundarySampler",
    "ImportanceBoundarySampler",
    "column_sq_mass",
    "default_p_min",
    "degree_keep_probs",
    "explicit_stacked_operator",
    "make_sampler",
    "plan_sampling_ops",
]

MODES = ("renorm", "scale")

#: Names :func:`make_sampler` understands (the CLI --sampler choices).
SAMPLER_NAMES = ("bns", "importance", "bes", "dropedge", "full")


@dataclass
class EpochPlan:
    """One partition's sampling decision for one epoch.

    Attributes
    ----------
    prop:
        Effective (n_in, n_in + n_kept) operator ``[P̃_in | P̃_bd]`` —
        a :class:`SplitOperator` from the built-in samplers (custom
        samplers may still supply a plain :class:`SparseOp`).
    kept_positions:
        Indices into the partition's boundary list of the nodes whose
        features must be received this epoch, ascending (matching the
        operator's boundary column order).
    sampling_seconds:
        Wall-clock cost of drawing the plan (Table 12's overhead);
        0.0 for plans served from the rank-level cache.
    sampling_ops:
        Elements the sampler actually touched drawing this plan
        (Bernoulli draws + edges processed) — Appendix D's
        device-scale accounting, set by the built-in samplers.
    """

    prop: Union[SplitOperator, SparseOp]
    kept_positions: np.ndarray
    sampling_seconds: float
    sampling_ops: Optional[int] = None


def plan_sampling_ops(rank_data, plan: EpochPlan) -> int:
    """Elements the sampler touched drawing ``plan``.

    Built-in samplers record the exact count on the plan; for custom
    samplers fall back to the boundary draws plus the selected
    boundary columns' edges.
    """
    if plan.sampling_ops is not None:
        return plan.sampling_ops
    prop = plan.prop
    if isinstance(prop, SplitOperator):
        extra = prop.boundary_nnz
    else:  # custom sampler with a materialised operator
        extra = max(prop.nnz - rank_data.p_in.nnz, 0)
    return rank_data.n_boundary + extra


def _finish(prop, kept: np.ndarray, t0: float, ops: int) -> EpochPlan:
    return EpochPlan(
        prop=prop,
        kept_positions=np.asarray(kept, dtype=np.int64),
        sampling_seconds=time.perf_counter() - t0,
        sampling_ops=int(ops),
    )


def _empty_plan(rank_data, mode: str) -> EpochPlan:
    """The cached kept-nothing plan: zero per-epoch cost."""
    return EpochPlan(
        prop=rank_data.empty_operator(mode),
        kept_positions=np.empty(0, dtype=np.int64),
        sampling_seconds=0.0,
        sampling_ops=0,
    )


def _empty_draw_plan(rank_data, mode: str, t0: float, drawn_ops: int) -> EpochPlan:
    """A p > 0 draw that kept nothing: the cached empty operator, but
    the wall time and the draws that did happen are still recorded."""
    plan = _empty_plan(rank_data, mode)
    plan.sampling_seconds = time.perf_counter() - t0
    plan.sampling_ops = drawn_ops
    return plan


def _renorm_plan_op(rank_data, kept: np.ndarray) -> SplitOperator:
    """Renorm-mode operator for a kept boundary subset: raw adjacency
    blocks with the surviving-degree row scale (Algorithm 1 line 5),
    shared by the uniform and importance node samplers."""
    bd = rank_data.a_bd_csc[:, kept]
    deg = rank_data.inner_deg + np.asarray(bd.sum(axis=1)).ravel()
    return SplitOperator(
        rank_data.a_in,
        bd,
        kept,
        row_scale=safe_inverse(deg),
        inner_t=rank_data.a_in_t,
    )


def _check_mode(mode: str) -> str:
    if mode not in MODES:
        raise ValueError(f"unknown estimator mode {mode!r}; known: {MODES}")
    return mode


def explicit_stacked_operator(
    rank_data,
    kept_positions: np.ndarray,
    mode: str,
    rate: Union[float, np.ndarray] = 1.0,
) -> sp.csr_matrix:
    """Legacy eager construction of the effective operator.

    Materialises ``[P̃_in | P̃_bd]`` through per-epoch CSC conversion,
    column slice, hstack and (for renorm) a full ``row_normalise``
    rebuild — four O(nnz) sparse reallocations.  Kept as the reference
    implementation: the equivalence tests assert the split operator
    matches it to 1e-9, and the perf microbenchmark measures the
    speedup of abandoning it.

    ``rate`` is the keep probability dividing the kept columns in
    scale mode — a scalar (uniform BNS) or a per-kept-column vector
    (importance-weighted BNS's Horvitz–Thompson ``1/π_v`` weights).
    """
    kept = np.asarray(kept_positions, dtype=np.int64)
    if mode == "renorm":
        if kept.size == 0:
            return row_normalise(rank_data.a_in)
        sub = rank_data.a_bd.tocsc()[:, kept].tocsr()
        stacked = sp.hstack([rank_data.a_in, sub], format="csr")
        return row_normalise(stacked)
    if kept.size == 0:
        return sp.csr_matrix(rank_data.p_in, dtype=rank_data.p_in.dtype)
    sub = rank_data.p_bd.tocsc()[:, kept]
    if np.ndim(rate) > 0:
        inv = (1.0 / np.asarray(rate).ravel()).astype(sub.dtype)
        sub = sub @ sp.diags(inv)
    elif rate != 1.0:
        sub = sub * (1.0 / rate)
    return sp.hstack([rank_data.p_in, sub.tocsr()], format="csr")


class BoundarySampler:
    """Interface: produce an :class:`EpochPlan` per partition per epoch."""

    name = "abstract"

    def plan(self, rank_data, rng: np.random.Generator) -> EpochPlan:  # pragma: no cover
        raise NotImplementedError


class FullBoundarySampler(BoundarySampler):
    """No sampling — vanilla partition parallelism (BNS with p = 1).

    Serves the rank's precomputed full operator
    (:meth:`RankData.full_operator`), shared with every other consumer
    of the degenerate plans, so the per-epoch sampling overhead is
    zero, matching Table 12's p = 1 row.
    """

    name = "full"

    def plan(self, rank_data, rng) -> EpochPlan:
        op = rank_data.full_operator()
        return EpochPlan(op, op.kept_cols, 0.0, sampling_ops=0)


class BoundaryNodeSampler(BoundarySampler):
    """BNS: keep each boundary node independently with probability p.

    ``p = 0`` drops every boundary node (fully isolated training, the
    pathological case of Section 4.3).
    """

    name = "bns"

    def __init__(self, p: float, mode: str = "renorm") -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"sampling rate p must be in [0, 1], got {p}")
        self.p = p
        self.mode = _check_mode(mode)

    def plan(self, rank_data, rng) -> EpochPlan:
        n_bd = rank_data.n_boundary
        if self.p == 0.0 or n_bd == 0:
            return _empty_plan(rank_data, self.mode)
        t0 = time.perf_counter()
        kept = np.flatnonzero(rng.random(n_bd) < self.p)
        if kept.size == 0:
            return _empty_draw_plan(rank_data, self.mode, t0, drawn_ops=n_bd)
        if self.mode == "renorm":
            op = _renorm_plan_op(rank_data, kept)
        else:
            op = SplitOperator(
                rank_data.p_in,
                rank_data.p_bd_csc[:, kept],
                kept,
                col_scale=1.0 / self.p,
                inner_t=rank_data.p_in_t,
            )
        # Touched: one Bernoulli draw per boundary node + the kept
        # columns' edges (slice + degree SpMV).
        return _finish(op, kept, t0, ops=n_bd + op.boundary_nnz)


def default_p_min(p: float) -> float:
    """Default clip floor for importance sampling: a quarter of the
    uniform rate, so no Horvitz–Thompson weight exceeds ``4/p``."""
    return 0.25 * p


def column_sq_mass(matrix: sp.spmatrix) -> np.ndarray:
    """``‖M[:,j]‖²`` per column — the importance degree measure.

    The single definition shared by the training side
    (:meth:`~repro.core.bns.RankData.boundary_degree`) and the
    variance harness (:class:`~repro.core.variance.OneStepProblem`),
    so the Monte-Carlo study always validates the distribution the
    sampler actually draws from.
    """
    sq = matrix.copy()
    sq.data = sq.data ** 2
    return np.asarray(sq.sum(axis=0)).ravel()


def degree_keep_probs(
    degree: np.ndarray, p: float, p_min: float
) -> np.ndarray:
    """Water-filled degree-proportional keep probabilities.

    Returns ``π = clip(c·degree, p_min, 1)`` with ``c`` chosen (by
    bisection — the clipped sum is continuous and nondecreasing in
    ``c``) so that ``Σπ = p·n``: the *expected* kept count, and thus
    the expected communication traffic, matches uniform BNS at rate
    ``p`` exactly.  Hubs saturate at 1 (always communicated), the tail
    is floored at ``p_min`` so no Horvitz–Thompson weight exceeds
    ``1/p_min``.  Equal degrees reduce to the uniform ``π ≡ p``.
    """
    deg = np.asarray(degree, dtype=np.float64).ravel()
    n = deg.size
    if n == 0:
        return np.empty(0)
    if not 0.0 < p <= 1.0:
        raise ValueError(f"keep rate p must be in (0, 1], got {p}")
    if not 0.0 < p_min <= 1.0:
        raise ValueError(f"p_min must be in (0, 1], got {p_min}")
    if p >= 1.0:
        return np.ones(n)
    p_min = min(p_min, p)
    total = deg.sum()
    if total <= 0:  # no boundary mass to weight by: uniform
        return np.full(n, p)
    target = p * n
    positive = deg > 0
    n_zero = int(n - positive.sum())
    if n_zero:
        # Zero-mass entries pin at the p_min floor, capping the
        # achievable sum at n_pos + n_zero*p_min.  Past that cap the
        # water level is above 1: saturate every massive column and
        # split the remaining budget uniformly over the zero-mass ones
        # (still ≤ 1 since target ≤ n), keeping Σπ = p·n exact instead
        # of overflowing the bisection bracket.
        spill = target - float(positive.sum())
        if spill > n_zero * p_min:
            pi = np.ones(n)
            pi[~positive] = spill / n_zero
            return pi
    lo, hi = 0.0, max(target / total, 1.0 / deg.max())
    while np.clip(hi * deg, p_min, 1.0).sum() < target:
        hi *= 2.0
    for _ in range(100):
        mid = 0.5 * (lo + hi)
        if np.clip(mid * deg, p_min, 1.0).sum() < target:
            lo = mid
        else:
            hi = mid
    return np.clip(hi * deg, p_min, 1.0)


class ImportanceBoundarySampler(BoundarySampler):
    """Importance-weighted BNS: keep node v w.p. ``π_v ∝ deg(v)``.

    ``deg(v)`` is the boundary column's operator mass
    (:meth:`~repro.core.bns.RankData.boundary_degree` — the surviving
    degree on the raw-adjacency block, the ``‖P[:,v]‖²`` importance
    mass on the pre-normalised block), water-filled through
    :func:`degree_keep_probs` into ``[p_min, 1]`` with the expected
    kept count pinned to ``p·|B_i|`` — the same expected traffic as
    uniform BNS at rate ``p``, but with the sampling budget
    concentrated on the columns that carry the most operator mass.

    * ``mode="scale"`` — Horvitz–Thompson estimator: each kept column
      is weighted ``1/π_v`` (a per-column ``col_scale`` vector on the
      :class:`~repro.tensor.sparse.SplitOperator`), unbiased with
      variance ``Σ_v (1/π_v − 1)·‖P[:,v]‖²·‖h_v W‖²`` — strictly below
      uniform BNS whenever the boundary degrees are skewed enough for
      the clipping to bind (the Table 2 harness measures this).
    * ``mode="renorm"`` (default) — the self-normalised estimator:
      the node-induced subgraph of the kept set, renormalised by the
      surviving degree exactly as uniform BNS.

    π is derived from rank-local state and cached on the
    :class:`~repro.core.bns.RankData`, so the sampler spec itself — and
    anything that ships it to a worker process — stays an index-free
    ``(p, p_min, mode)`` triple, and a plan remains an index set plus
    scale vectors (the zero-rebuild discipline).
    """

    name = "importance"

    def __init__(
        self, p: float, mode: str = "renorm", p_min: Optional[float] = None
    ) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"sampling rate p must be in [0, 1], got {p}")
        self.p = p
        self.mode = _check_mode(mode)
        if p_min is None:
            p_min = default_p_min(p)
        if p > 0.0 and not 0.0 < p_min <= 1.0:
            raise ValueError(f"p_min must be in (0, 1], got {p_min}")
        self.p_min = p_min

    def plan(self, rank_data, rng) -> EpochPlan:
        n_bd = rank_data.n_boundary
        if self.p == 0.0 or n_bd == 0:
            return _empty_plan(rank_data, self.mode)
        t0 = time.perf_counter()
        pi = rank_data.boundary_keep_probs(self.p, self.p_min, self.mode)
        kept = np.flatnonzero(rng.random(n_bd) < pi)
        if kept.size == 0:
            return _empty_draw_plan(rank_data, self.mode, t0, drawn_ops=n_bd)
        if self.mode == "renorm":
            op = _renorm_plan_op(rank_data, kept)
        else:
            pi_kept = pi[kept]
            weights = None
            if (pi_kept < 1.0).any():  # p = 1 degenerates to no weights
                weights = (1.0 / pi_kept).astype(rank_data.p_in.dtype)
            op = SplitOperator(
                rank_data.p_in,
                rank_data.p_bd_csc[:, kept],
                kept,
                col_scale=weights,
                inner_t=rank_data.p_in_t,
            )
        # Touched: one Bernoulli draw per boundary node + the kept
        # columns' edges — π itself is served from the rank-level
        # cache, so planning stays O(boundary) like uniform BNS.
        return _finish(op, kept, t0, ops=n_bd + op.boundary_nnz)


def make_sampler(
    name: str,
    p: float,
    mode: str = "renorm",
    p_min: Optional[float] = None,
) -> BoundarySampler:
    """Build a sampler from its spec — the CLI/bench construction point.

    ``bns`` and ``importance`` collapse to :class:`FullBoundarySampler`
    at ``p >= 1`` (vanilla partition parallelism, zero per-epoch cost),
    matching what the training drivers have always done.
    """
    if name == "full":
        return FullBoundarySampler()
    if name == "bns":
        return (
            FullBoundarySampler() if p >= 1.0
            else BoundaryNodeSampler(p, mode=mode)
        )
    if name == "importance":
        return (
            FullBoundarySampler() if p >= 1.0
            else ImportanceBoundarySampler(p, mode=mode, p_min=p_min)
        )
    if name == "bes":
        return BoundaryEdgeSampler(p, mode=mode)
    if name == "dropedge":
        return DropEdgeSampler(p, mode=mode)
    raise ValueError(f"unknown sampler {name!r}; known: {SAMPLER_NAMES}")


def _sample_bd_block(
    rank_data, mode: str, q: float, rng, scale: float
):
    """Draw boundary edges w.p. ``q`` straight off the CSC arrays.

    Returns ``(sub, kept)`` — the surviving columns' block (CSC,
    compacted) and their boundary positions — without a per-epoch COO
    round-trip; the edge→column map is precomputed on the rank.
    """
    csc = rank_data.a_bd_csc if mode == "renorm" else rank_data.p_bd_csc
    edge_cols = rank_data.bd_edge_cols(mode)
    keep = rng.random(csc.nnz) < q
    cols = edge_cols[keep]
    kept = np.unique(cols)
    if kept.size == 0:
        return None, kept
    data = csc.data[keep]
    if scale != 1.0:
        data = data * scale
    sub = sp.csc_matrix(
        (data, (csc.indices[keep], np.searchsorted(kept, cols))),
        shape=(csc.shape[0], kept.size),
    )
    return sub, kept


class BoundaryEdgeSampler(BoundarySampler):
    """BES: keep each boundary *edge* independently with probability q.

    Only columns that lose *all* incident edges stop being
    communicated, so traffic shrinks far slower than q (Table 9).
    """

    name = "bes"

    def __init__(self, q: float, mode: str = "renorm") -> None:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"edge keep rate q must be in [0, 1], got {q}")
        self.q = q
        self.mode = _check_mode(mode)

    def plan(self, rank_data, rng) -> EpochPlan:
        if rank_data.n_boundary == 0 or self.q == 0.0:
            return _empty_plan(rank_data, self.mode)
        t0 = time.perf_counter()
        scale = (1.0 / self.q) if self.mode == "scale" else 1.0
        sub, kept = _sample_bd_block(rank_data, self.mode, self.q, rng, scale)
        if sub is None:  # every edge was drawn, none survived
            return _empty_draw_plan(
                rank_data, self.mode, t0, drawn_ops=rank_data.a_bd.nnz
            )
        if self.mode == "renorm":
            deg = rank_data.inner_deg + np.asarray(sub.sum(axis=1)).ravel()
            op = SplitOperator(
                rank_data.a_in,
                sub,
                kept,
                row_scale=safe_inverse(deg),
                inner_t=rank_data.a_in_t,
            )
        else:
            op = SplitOperator(
                rank_data.p_in, sub, kept, inner_t=rank_data.p_in_t
            )
        # Touched: one Bernoulli draw per boundary *edge* + the
        # surviving edges re-packed into the kept block.
        bd_universe_nnz = rank_data.a_bd.nnz
        return _finish(op, kept, t0, ops=bd_universe_nnz + op.boundary_nnz)


class DropEdgeSampler(BoundarySampler):
    """DropEdge: drop edges uniformly over the whole local block.

    Inner edges are dropped too (DropEdge's global semantics), which
    perturbs computation without reducing communication much.  The
    inner block changes per epoch, so this is the one sampler whose
    plan cost stays O(nnz) — exactly the contrast Table 12 draws.
    """

    name = "dropedge"

    def __init__(self, q: float, mode: str = "renorm") -> None:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"edge keep rate q must be in [0, 1], got {q}")
        self.q = q
        self.mode = _check_mode(mode)

    def plan(self, rank_data, rng) -> EpochPlan:
        t0 = time.perf_counter()
        inner_csr = rank_data.a_in if self.mode == "renorm" else rank_data.p_in
        scale = (1.0 / self.q) if (self.mode == "scale" and self.q > 0) else 1.0

        rows, cols = rank_data.inner_edges(self.mode)
        keep = rng.random(inner_csr.nnz) < self.q
        inner_eff = sp.csr_matrix(
            (inner_csr.data[keep] * scale, (rows[keep], cols[keep])),
            shape=inner_csr.shape,
        )
        if rank_data.n_boundary and self.q > 0.0:
            sub, kept = _sample_bd_block(
                rank_data, self.mode, self.q, rng, scale
            )
        else:
            sub, kept = None, np.empty(0, dtype=np.int64)
        row_scale = None
        if self.mode == "renorm":
            deg = np.asarray(inner_eff.sum(axis=1)).ravel()
            if sub is not None:
                deg = deg + np.asarray(sub.sum(axis=1)).ravel()
            row_scale = safe_inverse(deg)
        op = SplitOperator(inner_eff, sub, kept, row_scale=row_scale)
        # DropEdge Bernoulli-draws every stored edge of the local block
        # and rebuilds the surviving structure — the O(nnz) per-epoch
        # cost that Table 12 contrasts against BNS's boundary-only work.
        universe_nnz = inner_csr.nnz + rank_data.a_bd.nnz
        return _finish(op, kept, t0, ops=universe_nnz + op.nnz)
