"""Partition-parallel GCN training — Algorithm 1 end to end.

:class:`DistributedTrainer` executes boundary-sampled partition-parallel
training exactly as the paper's Algorithm 1, with all ranks simulated in
one process:

* line 4-5:  each rank draws its sampled boundary set U_i through the
  configured :class:`~repro.core.sampler.BoundarySampler`;
* line 6-7:  the kept index sets are "broadcast" (metered through the
  :class:`~repro.dist.comm.SimulatedCommunicator`) and resolved into
  per-owner gather lists (precomputed sort makes this a group-by);
* line 9-10: per layer, boundary features are gathered from their
  owners (metered as forward traffic) and each rank runs its local
  layer on ``[H_i ; H_{U_i}]`` with the 1/p-rescaled operator;
* line 12-13: per-rank loss over inner training nodes; one global
  backward pass pushes boundary-feature gradients back through the
  gather ops (metered as backward traffic — the transpose of forward);
* line 14-15: the gradient AllReduce is metered, and because all ranks
  share one model replica in-process, the accumulated gradient already
  equals the AllReduce-sum.

With ``FullBoundarySampler`` (p=1) and dropout disabled the trainer is
numerically identical to single-device full-graph training — the
central correctness property, asserted in the test suite.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..dist.transport import Transport, resolve_transport
from ..dist.cost_model import (
    SECONDS_PER_SAMPLER_EDGE,
    ClusterSpec,
    EpochBreakdown,
    epoch_time,
    layer_flops,
)
from ..graph.graph import Graph
from ..nn import functional as F
from ..nn.metrics import accuracy, f1_micro_multilabel
from ..nn.module import resolve_model_dtype
from ..nn.optim import Adam, Optimizer
from ..partition.types import PartitionResult
from ..tensor import (
    Tensor,
    concat_rows,
    gather_rows,
    no_grad,
    relu,
    use_backend,
)
from .bns import PartitionRuntime
from .sampler import BoundarySampler, FullBoundarySampler, plan_sampling_ops

__all__ = ["TrainHistory", "DistributedTrainer", "BNSTrainer"]


@dataclass
class TrainHistory:
    """Per-epoch records of one training run."""

    loss: List[float] = field(default_factory=list)
    val_metric: List[float] = field(default_factory=list)
    test_metric: List[float] = field(default_factory=list)
    eval_epochs: List[int] = field(default_factory=list)
    comm_bytes: List[int] = field(default_factory=list)
    sampling_seconds: List[float] = field(default_factory=list)
    wall_seconds: List[float] = field(default_factory=list)
    modeled: List[EpochBreakdown] = field(default_factory=list)

    @property
    def best_val(self) -> float:
        return max(self.val_metric) if self.val_metric else float("nan")

    def test_at_best_val(self) -> float:
        """Test metric at the best-validation epoch (paper protocol)."""
        if not self.val_metric:
            return float("nan")
        return self.test_metric[int(np.argmax(self.val_metric))]


class DistributedTrainer:
    """Boundary-sampled partition-parallel trainer (Algorithm 1).

    Parameters
    ----------
    graph / partition:
        The full graph and its k-way partition.
    model:
        A :class:`GraphSAGEModel` or :class:`GCNModel`; its layer count
        and widths drive both computation and byte metering.
    sampler:
        Boundary sampling strategy; ``FullBoundarySampler`` = vanilla.
    lr:
        Adam learning rate.
    seed:
        Seeds the per-rank sampling RNGs and the dropout RNG.
    cluster:
        Optional :class:`ClusterSpec`; when given, every epoch also
        records a modelled :class:`EpochBreakdown` built from the
        *metered* traffic of that epoch.
    transport:
        Optional :class:`~repro.dist.transport.Transport` to meter
        through (any implementation conforms; the default is a fresh
        :class:`~repro.dist.comm.SimulatedCommunicator`).  The trainer
        runs every rank in-process either way — to actually execute
        ranks behind a data-moving transport use
        :class:`~repro.dist.executor.ProcessRankExecutor`.
    dtype:
        Numeric precision of the run (float32/float64).  Omitted, it is
        taken from the model's parameters, so metering is honest by
        construction: a default transport's ``bytes_per_scalar`` is the
        actual scalar width shipped, not an assumed 4 bytes.  Given
        explicitly, the model is cast to it in place.
    kernel_backend:
        Split-SpMM kernel implementation
        (:mod:`repro.tensor.kernels`) the epoch bodies run under —
        ``"numpy"`` (fused one-pass, the default), ``"split"``
        (two-pass reference) or ``"numba"`` (jitted, optional import).
        ``None`` resolves to the process default
        (``REPRO_KERNEL_BACKEND``).
    """

    def __init__(
        self,
        graph: Graph,
        partition: PartitionResult,
        model,
        sampler: Optional[BoundarySampler] = None,
        lr: float = 0.01,
        seed: int = 0,
        cluster: Optional[ClusterSpec] = None,
        optimizer: Optional[Optimizer] = None,
        aggregation: str = "mean",
        transport: Optional[Transport] = None,
        dtype=None,
        kernel_backend=None,
    ) -> None:
        self.dtype = resolve_model_dtype(model, dtype, optimizer)
        self.graph = graph
        self.runtime = PartitionRuntime(
            graph, partition, aggregation=aggregation, dtype=self.dtype,
            kernel_backend=kernel_backend,
        )
        self.kernel_backend = self.runtime.kernel_backend
        self.model = model
        self.sampler = sampler or FullBoundarySampler()
        self.comm = resolve_transport(
            transport, partition.num_parts, dtype=self.dtype
        )
        self.cluster = cluster
        self.optimizer = optimizer or Adam(model.parameters(), lr=lr)
        # Independent sampling stream per rank (Algorithm 1 samples
        # locally and independently), plus one stream for dropout.
        root = np.random.default_rng(seed)
        self.sample_rngs = [
            np.random.default_rng(s) for s in root.integers(0, 2**63 - 1, partition.num_parts)
        ]
        self.dropout_rng = np.random.default_rng(root.integers(0, 2**63 - 1))
        self.history = TrainHistory()
        self._features = [
            np.asarray(graph.features[r.inner], dtype=self.dtype)
            for r in self.runtime.ranks
        ]

    # ------------------------------------------------------------------
    @property
    def num_parts(self) -> int:
        return self.runtime.num_parts

    def _metric(self, logits: np.ndarray, labels: np.ndarray) -> float:
        if self.graph.multilabel:
            return f1_micro_multilabel(logits, labels)
        return accuracy(logits, labels)

    # ------------------------------------------------------------------
    def train_epoch(self) -> float:
        """One iteration of Algorithm 1's outer loop; returns the loss.

        The whole epoch body (forward SpMMs and the backward through
        the tape) runs under this trainer's kernel backend.
        """
        with use_backend(self.kernel_backend):
            return self._train_epoch()

    def _train_epoch(self) -> float:
        self.model.train()
        self.comm.reset()
        m = self.num_parts
        ranks = self.runtime.ranks
        dims = self.model.dims

        # --- lines 4-7: sample, broadcast selections ------------------
        plans = [
            self.sampler.plan(r, self.sample_rngs[i]) for i, r in enumerate(ranks)
        ]
        sampling_seconds = sum(pl.sampling_seconds for pl in plans)
        # Modelled (device-scale) sampling cost for the epoch-time
        # breakdown: proportional to the elements the sampler touches
        # (boundary nodes drawn + edges of the selected columns).
        # Plans with zero wall cost are cached (p ∈ {0, 1}): zero ops.
        sampling_ops = sum(
            plan_sampling_ops(r, pl)
            for r, pl in zip(ranks, plans)
            if pl.sampling_seconds > 0.0
        )
        modeled_sampling = sampling_ops * SECONDS_PER_SAMPLER_EDGE
        for i, pl in enumerate(plans):
            # Index broadcast: |U_i| int32 ids to every other rank.
            self.comm.broadcast(i, len(pl.kept_positions), "sample_sync")

        # --- lines 8-11: layered forward with exchanges ---------------
        h_ranks = [Tensor(x) for x in self._features]
        flops = np.zeros(m)
        for layer_idx, layer in enumerate(self.model.layers):
            d_in = dims[layer_idx]
            d_out = dims[layer_idx + 1]
            new_h = []
            for i, r in enumerate(ranks):
                pl = plans[i]
                parts = [h_ranks[i]]
                for owner, _pos, owner_rows in r.boundary_groups(pl.kept_positions):
                    parts.append(gather_rows(h_ranks[owner], owner_rows))
                    # features now, gradients on the way back
                    self.comm.send(owner, i, len(owner_rows) * d_in, "forward")
                    self.comm.send(i, owner, len(owner_rows) * d_in, "backward")
                h_all = concat_rows(parts) if len(parts) > 1 else parts[0]
                h_all = self.model.dropout(h_all, self.dropout_rng)
                h_self = h_all[0:r.n_inner]
                out = layer(pl.prop, h_all, h_self)
                if layer_idx < len(self.model.layers) - 1:
                    out = relu(out)
                new_h.append(out)
                flops[i] += layer_flops(pl.prop.nnz, r.n_inner, d_in, d_out)
            h_ranks = new_h

        # --- lines 12-13: loss and backward ----------------------------
        total = None
        for i, r in enumerate(ranks):
            if r.train_local.size == 0:
                continue
            logits = gather_rows(h_ranks[i], r.train_local)
            labels = r.labels[r.train_local]
            if self.graph.multilabel:
                part_loss = F.bce_with_logits(logits, labels, reduction="sum")
            else:
                part_loss = F.cross_entropy(logits, labels, reduction="sum")
            total = part_loss if total is None else total + part_loss
        if total is None:
            raise RuntimeError("no training nodes in any partition")
        denom = self.runtime.total_train * (
            self.graph.labels.shape[1] if self.graph.multilabel else 1
        )
        loss = total * (1.0 / denom)
        self.optimizer.zero_grad()
        loss.backward()

        # --- lines 14-15: AllReduce + update ---------------------------
        # Snapshot point-to-point traffic first: the collective is
        # priced from the model size, not as pairwise bytes.
        p2p_bytes = self.comm.pairwise.copy()
        self.comm.allreduce(self.model.num_parameters(), "reduce")
        self.optimizer.step()

        # --- bookkeeping -----------------------------------------------
        self.history.loss.append(loss.item())
        self.history.comm_bytes.append(self.comm.total_bytes())
        self.history.sampling_seconds.append(sampling_seconds)
        if self.cluster is not None:
            breakdown = epoch_time(
                per_rank_flops=flops,
                pairwise_comm_bytes=p2p_bytes,
                model_bytes=self.model.num_parameters() * self.comm.bytes_per_scalar,
                cluster=self.cluster,
                sampling_seconds=modeled_sampling,
            )
            self.history.modeled.append(breakdown)
        return loss.item()

    # ------------------------------------------------------------------
    def evaluate(self) -> Dict[str, float]:
        """Full-graph evaluation (standard protocol: no sampling)."""
        self.model.eval()
        with no_grad():
            logits = self.model.full_forward(
                self.runtime.full_prop,
                Tensor(self.graph.features, dtype=self.dtype),
                self.dropout_rng,
            ).numpy()
        self.model.train()
        g = self.graph
        return {
            "train": self._metric(logits[g.train_mask], g.labels[g.train_mask]),
            "val": self._metric(logits[g.val_mask], g.labels[g.val_mask]),
            "test": self._metric(logits[g.test_mask], g.labels[g.test_mask]),
        }

    # ------------------------------------------------------------------
    def train(
        self,
        epochs: int,
        eval_every: int = 0,
        verbose: bool = False,
        patience: int = 0,
        scheduler=None,
    ) -> TrainHistory:
        """Run ``epochs`` iterations; optionally evaluate periodically.

        Parameters
        ----------
        patience:
            If non-zero, stop early once the validation metric has not
            improved for ``patience`` consecutive evaluations (requires
            ``eval_every``).
        scheduler:
            Optional :class:`~repro.nn.schedulers.LRScheduler`; its
            :meth:`step` is called once per epoch
            (:class:`ReduceLROnPlateau` is stepped with the validation
            metric at each evaluation instead).
        """
        if patience and not eval_every:
            raise ValueError("patience requires eval_every > 0")
        from ..nn.schedulers import ReduceLROnPlateau

        plateau = isinstance(scheduler, ReduceLROnPlateau)
        best_val = -float("inf")
        bad_evals = 0
        for epoch in range(epochs):
            t0 = time.perf_counter()
            loss = self.train_epoch()
            self.history.wall_seconds.append(time.perf_counter() - t0)
            if scheduler is not None and not plateau:
                scheduler.step()
            if eval_every and (epoch % eval_every == eval_every - 1 or epoch == epochs - 1):
                scores = self.evaluate()
                self.history.val_metric.append(scores["val"])
                self.history.test_metric.append(scores["test"])
                self.history.eval_epochs.append(epoch)
                if plateau:
                    scheduler.step(scores["val"])
                if verbose:
                    print(
                        f"epoch {epoch:4d}  loss {loss:.4f}  "
                        f"val {scores['val']:.4f}  test {scores['test']:.4f}"
                    )
                if patience:
                    if scores["val"] > best_val:
                        best_val = scores["val"]
                        bad_evals = 0
                    else:
                        bad_evals += 1
                        if bad_evals >= patience:
                            break
            elif verbose:
                print(f"epoch {epoch:4d}  loss {loss:.4f}")
        return self.history


#: The paper's name for the synchronous boundary-sampled trainer.
BNSTrainer = DistributedTrainer
