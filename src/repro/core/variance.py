"""Feature-approximation variance analysis (Section 3.3 / Appendix A).

The paper argues BNS-GCN converges better than layer-sampling methods
because its estimator of one aggregation step ``Z = P H W`` has the
smallest variance at matched sample size.  This module provides:

* **estimators** — one-step approximations of ``Z_{V_i}`` under BNS
  (scale and renorm modes), FastGCN-style global column sampling,
  LADIES-style dependent column sampling, and GraphSAGE-style per-row
  neighbour sampling — all written against raw numpy so that repeated
  sampling is fast;
* :func:`empirical_variance` — Monte-Carlo ``E‖Z̃ − Z‖²_F / n_rows``;
* :func:`analytic_bounds` — the Table 2 expressions evaluated on a
  concrete partition (γ from Assumption A.1 measured on HW, and the
  Appendix A bound ``γ²‖P_{V_i,B_i}‖²_F / p`` for BNS).

The Table 2 ordering (BNS < LADIES < FastGCN at equal sample size, by
virtue of B_i ⊆ N_i ⊆ V) is asserted empirically in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np
import scipy.sparse as sp

from ..graph.propagation import safe_inverse

__all__ = [
    "OneStepProblem",
    "bns_estimate",
    "fastgcn_estimate",
    "ladies_estimate",
    "graphsage_estimate",
    "empirical_variance",
    "analytic_bounds",
    "gamma_bound",
]


@dataclass
class OneStepProblem:
    """One partition's aggregation step ``Z = [P_in | P_bd] @ H @ W``.

    ``h_in`` are inner-node features (n_in, d); ``h_bd`` boundary
    features (n_bd, d); ``weight`` the layer transform (d, d_out).
    ``a_in`` / ``a_bd`` are the raw adjacency blocks for renorm mode.

    Monte-Carlo estimation draws thousands of boundary subsets per
    problem, so the sampling-invariant structures (CSC views of the
    boundary blocks, the inner degree vector) are cached on the
    instance the same way :class:`~repro.core.bns.RankData` caches
    them for the training hot path.
    """

    p_in: sp.csr_matrix
    p_bd: sp.csr_matrix
    a_in: sp.csr_matrix
    a_bd: sp.csr_matrix
    h_in: np.ndarray
    h_bd: np.ndarray
    weight: np.ndarray

    @property
    def exact(self) -> np.ndarray:
        z = self.p_in @ self.h_in + self.p_bd @ self.h_bd
        return z @ self.weight

    @property
    def n_inner(self) -> int:
        return self.p_in.shape[0]

    @property
    def n_boundary(self) -> int:
        return self.p_bd.shape[1]

    def _cached(self, key: str, build):
        cache = self.__dict__.setdefault("_cache", {})
        if key not in cache:
            cache[key] = build()
        return cache[key]

    @property
    def p_bd_csc(self) -> sp.csc_matrix:
        return self._cached("p_bd_csc", self.p_bd.tocsc)

    @property
    def a_bd_csc(self) -> sp.csc_matrix:
        return self._cached("a_bd_csc", self.a_bd.tocsc)

    @property
    def inner_deg(self) -> np.ndarray:
        return self._cached(
            "inner_deg", lambda: np.asarray(self.a_in.sum(axis=1)).ravel()
        )


def gamma_bound(problem: OneStepProblem) -> float:
    """Assumption A.1's γ: max row L2-norm of H·W over all nodes."""
    hw = np.vstack([problem.h_in, problem.h_bd]) @ problem.weight
    return float(np.linalg.norm(hw, axis=1).max())


# ----------------------------------------------------------------------
# Estimators
# ----------------------------------------------------------------------

def bns_estimate(
    problem: OneStepProblem,
    p: float,
    rng: np.random.Generator,
    mode: str = "scale",
) -> np.ndarray:
    """BNS one-step estimate: sample boundary nodes w.p. ``p``.

    Runs the split-operator computation — inner product plus a kept
    boundary-column product, renormalised through a row-scale vector —
    so repeated draws never rebuild the stacked operator.
    """
    if not 0.0 < p <= 1.0:
        raise ValueError("p must be in (0, 1] for estimation")
    keep = rng.random(problem.n_boundary) < p
    kept = np.flatnonzero(keep)
    if mode == "scale":
        z = problem.p_in @ problem.h_in
        if kept.size:
            z = z + (problem.p_bd_csc[:, kept] @ problem.h_bd[kept]) / p
        return z @ problem.weight
    if mode == "renorm":
        z = problem.a_in @ problem.h_in
        deg = problem.inner_deg
        if kept.size:
            bd = problem.a_bd_csc[:, kept]
            z = z + bd @ problem.h_bd[kept]
            deg = deg + np.asarray(bd.sum(axis=1)).ravel()
        inv = safe_inverse(deg)
        return (z * inv[:, None]) @ problem.weight
    raise ValueError(f"unknown mode {mode!r}")


def fastgcn_estimate(
    problem: OneStepProblem,
    sample_size: int,
    rng: np.random.Generator,
    q: Optional[np.ndarray] = None,
) -> np.ndarray:
    """FastGCN: sample columns of the whole operator from a global q.

    ``q`` defaults to the importance distribution ∝ ‖P[:,u]‖²; entries
    are rescaled 1/(s·q_u) for unbiasedness.
    """
    p_all = sp.hstack([problem.p_in, problem.p_bd], format="csc")
    h_all = np.vstack([problem.h_in, problem.h_bd])
    n_all = p_all.shape[1]
    if q is None:
        q = np.asarray(p_all.multiply(p_all).sum(axis=0)).ravel()
        total = q.sum()
        q = q / total if total > 0 else np.full(n_all, 1.0 / n_all)
    s = min(sample_size, n_all)
    cols = rng.choice(n_all, size=s, replace=True, p=q)
    z = np.zeros((problem.n_inner, h_all.shape[1]))
    uniq, counts = np.unique(cols, return_counts=True)
    for u, c in zip(uniq, counts):
        z += (c / (s * q[u])) * (p_all[:, u] @ h_all[u:u + 1])
    return z @ problem.weight


def ladies_estimate(
    problem: OneStepProblem,
    sample_size: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """LADIES: like FastGCN but q restricted to the receptive field
    N_i (columns with mass in the P[V_i, ·] rows)."""
    p_all = sp.hstack([problem.p_in, problem.p_bd], format="csc")
    col_mass = np.asarray(p_all.multiply(p_all).sum(axis=0)).ravel()
    support = np.flatnonzero(col_mass > 0)
    q = np.zeros_like(col_mass)
    q[support] = col_mass[support] / col_mass[support].sum()
    return fastgcn_estimate(problem, sample_size, rng, q=q)


def graphsage_estimate(
    problem: OneStepProblem,
    fanout: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """GraphSAGE: per-row neighbour sampling (with replacement), each
    row's sample mean scaled back to the row's aggregation weight."""
    p_all = sp.hstack([problem.p_in, problem.p_bd], format="csr")
    h_all = np.vstack([problem.h_in, problem.h_bd])
    n_in = problem.n_inner
    z = np.zeros((n_in, h_all.shape[1]))
    indptr, indices, data = p_all.indptr, p_all.indices, p_all.data
    for v in range(n_in):
        lo, hi = indptr[v], indptr[v + 1]
        if hi == lo:
            continue
        neigh = indices[lo:hi]
        w = data[lo:hi]
        row_sum = w.sum()
        probs = w / row_sum
        picks = rng.choice(len(neigh), size=fanout, replace=True, p=probs)
        z[v] = row_sum * h_all[neigh[picks]].mean(axis=0)
    return z @ problem.weight


# ----------------------------------------------------------------------
# Variance measurement + Table 2 bounds
# ----------------------------------------------------------------------

def empirical_variance(
    estimator: Callable[[np.random.Generator], np.ndarray],
    exact: np.ndarray,
    num_samples: int,
    seed: int = 0,
) -> float:
    """Monte-Carlo average of ‖Z̃ − Z‖²_F / n_rows."""
    rng = np.random.default_rng(seed)
    total = 0.0
    for _ in range(num_samples):
        z = estimator(rng)
        total += float(((z - exact) ** 2).sum())
    return total / (num_samples * exact.shape[0])


def analytic_bounds(problem: OneStepProblem, p: float) -> Dict[str, float]:
    """Evaluate the Table 2 variance expressions on this partition.

    All bounds share the γ² factor and are normalised per inner node;
    the *sample size* is matched at s = p·|B_i| (BNS's expected kept
    set), as in the paper's comparison protocol.
    """
    gamma = gamma_bound(problem)
    n_in = problem.n_inner
    n_bd = problem.n_boundary
    s = max(p * n_bd, 1e-9)
    p_all = sp.hstack([problem.p_in, problem.p_bd], format="csc")
    n_all = p_all.shape[1]
    col_mass = np.asarray(p_all.multiply(p_all).sum(axis=0)).ravel()
    receptive = int((col_mass > 0).sum())  # |N_i|
    deg = np.diff(problem.a_in.indptr) + np.asarray(
        problem.a_bd.sum(axis=1)
    ).ravel()
    avg_deg = float(deg.mean()) if len(deg) else 0.0
    bns_exact_bound = gamma ** 2 * float(
        (problem.p_bd.data ** 2).sum()
    ) / (p * n_in)
    # Table 2 expressions (common factors dropped in the paper; we keep
    # γ²/s so the rows are directly comparable numbers).
    return {
        "gamma": gamma,
        "BNS-GCN": n_bd * gamma ** 2 / s,
        "BNS-GCN (appendix bound)": bns_exact_bound,
        "LADIES": receptive * gamma ** 2 / s,
        "FastGCN": n_all * gamma ** 2 / s,
        "GraphSAGE": avg_deg * gamma ** 2 / s,
        "sample_size": s,
        "|B_i|": n_bd,
        "|N_i|": receptive,
        "|V|": n_all,
        "avg_degree": avg_deg,
    }
