"""Feature-approximation variance analysis (Section 3.3 / Appendix A).

The paper argues BNS-GCN converges better than layer-sampling methods
because its estimator of one aggregation step ``Z = P H W`` has the
smallest variance at matched sample size.  This module provides:

* **estimators** — one-step approximations of ``Z_{V_i}`` under BNS
  (scale and renorm modes), importance-weighted BNS (degree-
  proportional keep probabilities with Horvitz–Thompson weights),
  FastGCN-style global column sampling, LADIES-style dependent column
  sampling, and GraphSAGE-style per-row neighbour sampling — all
  written against raw numpy so that repeated sampling is fast;
* :func:`empirical_variance` — Monte-Carlo ``E‖Z̃ − Z‖²_F / n_rows``;
* :func:`analytic_bounds` — the Table 2 expressions evaluated on a
  concrete partition (γ from Assumption A.1 measured on HW, and the
  Appendix A bound ``γ²‖P_{V_i,B_i}‖²_F / p`` for BNS);
* :func:`importance_analytic_bound` — the importance generalisation
  ``γ² Σ_v (1/π_v − 1)‖P[:,v]‖² / n``, which the uniform ``π ≡ p``
  bound is a special case of.

Every estimator follows the problem's feature dtype: fp32 features
yield fp32 estimates (the "metered == shipped" dtype discipline), no
silent fp64 accumulator upcasts.

The Table 2 ordering (BNS < LADIES < FastGCN at equal sample size, by
virtue of B_i ⊆ N_i ⊆ V) is asserted empirically in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np
import scipy.sparse as sp

from ..graph.propagation import safe_inverse
from .sampler import column_sq_mass, default_p_min, degree_keep_probs

__all__ = [
    "OneStepProblem",
    "bns_estimate",
    "importance_bns_estimate",
    "fastgcn_estimate",
    "ladies_estimate",
    "graphsage_estimate",
    "empirical_variance",
    "analytic_bounds",
    "importance_analytic_bound",
    "gamma_bound",
]


@dataclass
class OneStepProblem:
    """One partition's aggregation step ``Z = [P_in | P_bd] @ H @ W``.

    ``h_in`` are inner-node features (n_in, d); ``h_bd`` boundary
    features (n_bd, d); ``weight`` the layer transform (d, d_out).
    ``a_in`` / ``a_bd`` are the raw adjacency blocks for renorm mode.

    Monte-Carlo estimation draws thousands of boundary subsets per
    problem, so the sampling-invariant structures (CSC views of the
    boundary blocks, the inner degree vector) are cached on the
    instance the same way :class:`~repro.core.bns.RankData` caches
    them for the training hot path.
    """

    p_in: sp.csr_matrix
    p_bd: sp.csr_matrix
    a_in: sp.csr_matrix
    a_bd: sp.csr_matrix
    h_in: np.ndarray
    h_bd: np.ndarray
    weight: np.ndarray

    @property
    def exact(self) -> np.ndarray:
        z = self.p_in @ self.h_in + self.p_bd @ self.h_bd
        return z @ self.weight

    @property
    def n_inner(self) -> int:
        return self.p_in.shape[0]

    @property
    def n_boundary(self) -> int:
        return self.p_bd.shape[1]

    def _cached(self, key: str, build):
        cache = self.__dict__.setdefault("_cache", {})
        if key not in cache:
            cache[key] = build()
        return cache[key]

    @property
    def p_bd_csc(self) -> sp.csc_matrix:
        return self._cached("p_bd_csc", self.p_bd.tocsc)

    @property
    def a_bd_csc(self) -> sp.csc_matrix:
        return self._cached("a_bd_csc", self.a_bd.tocsc)

    @property
    def inner_deg(self) -> np.ndarray:
        return self._cached(
            "inner_deg", lambda: np.asarray(self.a_in.sum(axis=1)).ravel()
        )

    @property
    def p_all(self) -> sp.csc_matrix:
        """``[P_in | P_bd]`` in CSC — the global samplers' column view."""
        return self._cached(
            "p_all",
            lambda: sp.hstack([self.p_in, self.p_bd], format="csc"),
        )

    @property
    def p_all_csr(self) -> sp.csr_matrix:
        return self._cached("p_all_csr", self.p_all.tocsr)

    @property
    def h_all(self) -> np.ndarray:
        return self._cached(
            "h_all", lambda: np.vstack([self.h_in, self.h_bd])
        )

    @property
    def col_mass(self) -> np.ndarray:
        """``‖P[:,u]‖²`` per column of the whole operator (FastGCN's
        importance measure; also the Table 2 receptive-field test)."""
        return self._cached("col_mass", lambda: column_sq_mass(self.p_all))

    def boundary_degree(self, mode: str = "scale") -> np.ndarray:
        """Per-boundary-column operator mass — the importance degree
        (the same :func:`~repro.core.sampler.column_sq_mass` measure
        :meth:`repro.core.bns.RankData.boundary_degree` uses)."""
        key = f"bd_degree_{mode}"
        csc = self.a_bd_csc if mode == "renorm" else self.p_bd_csc
        return self._cached(key, lambda: column_sq_mass(csc))

    def boundary_keep_probs(
        self, p: float, p_min: float, mode: str = "scale"
    ) -> np.ndarray:
        """Water-filled degree-proportional π (cached per config)."""
        key = f"bd_pi_{mode}_{float(p)!r}_{float(p_min)!r}"
        return self._cached(
            key,
            lambda: degree_keep_probs(self.boundary_degree(mode), p, p_min),
        )


def gamma_bound(problem: OneStepProblem) -> float:
    """Assumption A.1's γ: max row L2-norm of H·W over all nodes."""
    hw = np.vstack([problem.h_in, problem.h_bd]) @ problem.weight
    return float(np.linalg.norm(hw, axis=1).max())


# ----------------------------------------------------------------------
# Estimators
# ----------------------------------------------------------------------

def _renorm_estimate(problem: OneStepProblem, kept: np.ndarray) -> np.ndarray:
    """Self-normalised estimate on the kept boundary subset: raw blocks
    renormalised by the surviving degree (Algorithm 1 line 5)."""
    z = problem.a_in @ problem.h_in
    deg = problem.inner_deg
    if kept.size:
        bd = problem.a_bd_csc[:, kept]
        z = z + bd @ problem.h_bd[kept]
        deg = deg + np.asarray(bd.sum(axis=1)).ravel()
    inv = safe_inverse(deg)
    return (z * inv[:, None]) @ problem.weight


def bns_estimate(
    problem: OneStepProblem,
    p: float,
    rng: np.random.Generator,
    mode: str = "scale",
) -> np.ndarray:
    """BNS one-step estimate: sample boundary nodes w.p. ``p``.

    Runs the split-operator computation — inner product plus a kept
    boundary-column product, renormalised through a row-scale vector —
    so repeated draws never rebuild the stacked operator.
    """
    if not 0.0 < p <= 1.0:
        raise ValueError("p must be in (0, 1] for estimation")
    keep = rng.random(problem.n_boundary) < p
    kept = np.flatnonzero(keep)
    if mode == "scale":
        z = problem.p_in @ problem.h_in
        if kept.size:
            z = z + (problem.p_bd_csc[:, kept] @ problem.h_bd[kept]) / p
        return z @ problem.weight
    if mode == "renorm":
        return _renorm_estimate(problem, kept)
    raise ValueError(f"unknown mode {mode!r}")


def importance_bns_estimate(
    problem: OneStepProblem,
    p: float,
    rng: np.random.Generator,
    mode: str = "scale",
    p_min: Optional[float] = None,
) -> np.ndarray:
    """Importance-weighted BNS estimate: keep node v w.p. ``π_v ∝ deg(v)``.

    Mirrors :class:`~repro.core.sampler.ImportanceBoundarySampler`:
    π comes from :func:`~repro.core.sampler.degree_keep_probs` (the
    expected kept count equals ``p·|B_i|`` — uniform BNS traffic at
    matched sample size); scale mode weights each kept column by the
    Horvitz–Thompson ``1/π_v`` (unbiased), renorm mode renormalises by
    the surviving degree like uniform BNS.
    """
    if not 0.0 < p <= 1.0:
        raise ValueError("p must be in (0, 1] for estimation")
    if mode not in ("scale", "renorm"):
        raise ValueError(f"unknown mode {mode!r}")
    if p_min is None:
        p_min = default_p_min(p)
    pi = problem.boundary_keep_probs(p, p_min, mode)
    kept = np.flatnonzero(rng.random(problem.n_boundary) < pi)
    if mode == "renorm":
        return _renorm_estimate(problem, kept)
    z = problem.p_in @ problem.h_in
    if kept.size:
        w = (1.0 / pi[kept]).astype(problem.h_bd.dtype)
        z = z + problem.p_bd_csc[:, kept] @ (problem.h_bd[kept] * w[:, None])
    return z @ problem.weight


def _fastgcn_default_q(problem: OneStepProblem) -> np.ndarray:
    """FastGCN's importance distribution ``q ∝ ‖P[:,u]‖²`` (cached)."""

    def build():
        q = problem.col_mass
        total = q.sum()
        n_all = q.size
        return q / total if total > 0 else np.full(n_all, 1.0 / n_all)

    return problem._cached("fastgcn_q", build)


def _fastgcn_draw(problem, sample_size, rng, q):
    """Shared column draw of the fast and reference FastGCN paths."""
    n_all = problem.p_all.shape[1]
    if q is None:
        q = _fastgcn_default_q(problem)
    s = min(sample_size, n_all)
    cols = rng.choice(n_all, size=s, replace=True, p=q)
    return q, s, np.unique(cols, return_counts=True)


def fastgcn_estimate(
    problem: OneStepProblem,
    sample_size: int,
    rng: np.random.Generator,
    q: Optional[np.ndarray] = None,
) -> np.ndarray:
    """FastGCN: sample columns of the whole operator from a global q.

    ``q`` defaults to the importance distribution ∝ ‖P[:,u]‖²; entries
    are rescaled 1/(s·q_u) for unbiasedness.  The estimate is one
    column-scaled SpMM over the unique sampled columns —
    ``P[:, uniq] @ (w ⊙ H[uniq])`` with ``w_u = c_u/(s·q_u)`` — the
    Monte-Carlo harness's hot path (the retired per-column rank-1
    update loop survives as :func:`_fastgcn_estimate_loop`, the
    equivalence reference).
    """
    h_all = problem.h_all
    q, s, (uniq, counts) = _fastgcn_draw(problem, sample_size, rng, q)
    w = (counts / (s * q[uniq])).astype(h_all.dtype)
    z = problem.p_all[:, uniq] @ (h_all[uniq] * w[:, None])
    return z @ problem.weight


def _fastgcn_estimate_loop(
    problem: OneStepProblem,
    sample_size: int,
    rng: np.random.Generator,
    q: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Reference implementation: one sparse column slice + rank-1
    update per unique sampled column.  Kept only so the test suite can
    pin :func:`fastgcn_estimate` to it (same draws, ≤ 1e-12)."""
    h_all = problem.h_all
    q, s, (uniq, counts) = _fastgcn_draw(problem, sample_size, rng, q)
    z = np.zeros((problem.n_inner, h_all.shape[1]), dtype=h_all.dtype)
    p_all = problem.p_all
    for u, c in zip(uniq, counts):
        z += float(c / (s * q[u])) * (p_all[:, u] @ h_all[u:u + 1])
    return z @ problem.weight


def ladies_estimate(
    problem: OneStepProblem,
    sample_size: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """LADIES: like FastGCN but q restricted to the receptive field
    N_i (columns with mass in the P[V_i, ·] rows)."""

    def build():
        col_mass = problem.col_mass
        support = np.flatnonzero(col_mass > 0)
        q = np.zeros_like(col_mass)
        q[support] = col_mass[support] / col_mass[support].sum()
        return q

    q = problem._cached("ladies_q", build)
    return fastgcn_estimate(problem, sample_size, rng, q=q)


def graphsage_estimate(
    problem: OneStepProblem,
    fanout: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """GraphSAGE: per-row neighbour sampling (with replacement), each
    row's sample mean scaled back to the row's aggregation weight."""
    p_all = problem.p_all_csr
    h_all = problem.h_all
    n_in = problem.n_inner
    z = np.zeros((n_in, h_all.shape[1]), dtype=h_all.dtype)
    indptr, indices, data = p_all.indptr, p_all.indices, p_all.data
    for v in range(n_in):
        lo, hi = indptr[v], indptr[v + 1]
        if hi == lo:
            continue
        neigh = indices[lo:hi]
        w = data[lo:hi]
        row_sum = w.sum()
        probs = w / row_sum
        picks = rng.choice(len(neigh), size=fanout, replace=True, p=probs)
        z[v] = row_sum * h_all[neigh[picks]].mean(axis=0)
    return z @ problem.weight


# ----------------------------------------------------------------------
# Variance measurement + Table 2 bounds
# ----------------------------------------------------------------------

def empirical_variance(
    estimator: Callable[[np.random.Generator], np.ndarray],
    exact: np.ndarray,
    num_samples: int,
    seed: int = 0,
) -> float:
    """Monte-Carlo average of ‖Z̃ − Z‖²_F / n_rows."""
    rng = np.random.default_rng(seed)
    total = 0.0
    for _ in range(num_samples):
        z = estimator(rng)
        total += float(((z - exact) ** 2).sum())
    return total / (num_samples * exact.shape[0])


def analytic_bounds(problem: OneStepProblem, p: float) -> Dict[str, float]:
    """Evaluate the Table 2 variance expressions on this partition.

    All bounds share the γ² factor and are normalised per inner node;
    the *sample size* is matched at s = p·|B_i| (BNS's expected kept
    set), as in the paper's comparison protocol.
    """
    gamma = gamma_bound(problem)
    n_in = problem.n_inner
    n_bd = problem.n_boundary
    s = max(p * n_bd, 1e-9)
    n_all = problem.p_all.shape[1]
    col_mass = problem.col_mass
    receptive = int((col_mass > 0).sum())  # |N_i|
    deg = np.diff(problem.a_in.indptr) + np.asarray(
        problem.a_bd.sum(axis=1)
    ).ravel()
    avg_deg = float(deg.mean()) if len(deg) else 0.0
    bns_exact_bound = gamma ** 2 * float(
        (problem.p_bd.data ** 2).sum()
    ) / (p * n_in)
    # Table 2 expressions (common factors dropped in the paper; we keep
    # γ²/s so the rows are directly comparable numbers).
    return {
        "gamma": gamma,
        "BNS-GCN": n_bd * gamma ** 2 / s,
        "BNS-GCN (appendix bound)": bns_exact_bound,
        "LADIES": receptive * gamma ** 2 / s,
        "FastGCN": n_all * gamma ** 2 / s,
        "GraphSAGE": avg_deg * gamma ** 2 / s,
        "sample_size": s,
        "|B_i|": n_bd,
        "|N_i|": receptive,
        "|V|": n_all,
        "avg_degree": avg_deg,
    }


def importance_analytic_bound(
    problem: OneStepProblem, p: float, p_min: Optional[float] = None
) -> float:
    """Appendix-A-style bound for importance-weighted BNS (scale mode).

    The Horvitz–Thompson estimator's exact variance is
    ``Σ_v (1/π_v − 1)·‖P_bd[:,v]‖²·‖h_v W‖²``; bounding each row-norm
    by γ gives ``γ² Σ_v (1/π_v − 1)·‖P_bd[:,v]‖² / n_in`` per inner
    node.  Uniform ``π ≡ p`` recovers ``γ²(1−p)‖P_bd‖²_F/(p·n_in)`` —
    the appendix bound sans its dropped ``(1−p)`` factor — so the two
    bounds are directly comparable numbers.
    """
    gamma = gamma_bound(problem)
    if p_min is None:
        p_min = default_p_min(p)
    pi = problem.boundary_keep_probs(p, p_min, "scale")
    mass = problem.boundary_degree("scale")
    total = float(((1.0 / pi - 1.0) * mass).sum()) if pi.size else 0.0
    return gamma ** 2 * total / problem.n_inner
