"""Distributed-execution substrate: metered communication and cost models.

The paper evaluates BNS-GCN on real clusters; this package provides the
laptop-scale stand-ins used across the repo:

* :mod:`repro.dist.comm` — :class:`SimulatedCommunicator`, the byte
  metering layer behind every trainer (Eq. 3 made measurable);
* :mod:`repro.dist.cost_model` — device/cluster specs, the per-epoch
  time model (compute / boundary communication / AllReduce / sampling)
  and the analytic system models for BNS, ROC and CAGNET used by the
  Figure 4-6 benchmarks, plus the Eq. 4 memory model;
* :mod:`repro.dist.systems` — :class:`Workload`, the partition-level
  summary (sizes, boundary pair counts, nnz) the cost and memory
  models consume.
"""

from .comm import SimulatedCommunicator
from .cost_model import (
    SECONDS_PER_SAMPLER_EDGE,
    ClusterSpec,
    DeviceSpec,
    EpochBreakdown,
    MemoryModel,
    RTX2080TI_CLUSTER,
    V100_MULTI_MACHINE,
    bns_epoch_model,
    cagnet_epoch_model,
    epoch_time,
    roc_epoch_model,
)
from .systems import Workload, build_workload

__all__ = [
    "SimulatedCommunicator",
    "SECONDS_PER_SAMPLER_EDGE",
    "ClusterSpec",
    "DeviceSpec",
    "EpochBreakdown",
    "MemoryModel",
    "RTX2080TI_CLUSTER",
    "V100_MULTI_MACHINE",
    "bns_epoch_model",
    "cagnet_epoch_model",
    "epoch_time",
    "roc_epoch_model",
    "Workload",
    "build_workload",
]
