"""Distributed-execution substrate: transports, metering, cost models.

The paper evaluates BNS-GCN on real clusters; this package provides
both the laptop-scale stand-ins used across the repo and the real
multi-rank execution path:

* :mod:`repro.dist.transport` — the :class:`Transport` interface and
  its byte-metering core (:class:`ByteMeter`, Eq. 3 made measurable),
  plus the three data-moving implementations:
  :class:`LocalTransport` (threads + queues),
  :class:`MultiprocessTransport` (processes + pipes, real ring/tree
  AllReduce) and :class:`SharedMemoryTransport` (processes +
  zero-copy shared-memory rings; pipes carry control traffic only);
* :mod:`repro.dist.comm` — :class:`SimulatedCommunicator`, the
  metering-only transport behind the in-process trainers;
* :mod:`repro.dist.executor` — :class:`ProcessRankExecutor`, which
  ships each rank's shard to a worker and runs BNS training with real
  boundary feature/gradient exchange, on a synchronous or a
  staleness-1 pipelined schedule with measured compute vs
  blocked-in-recv seconds (imported lazily: it pulls in the trainer
  stack);
* :mod:`repro.dist.cost_model` — device/cluster specs, the per-epoch
  time model (compute / boundary communication / AllReduce / sampling)
  and the analytic system models for BNS, ROC and CAGNET used by the
  Figure 4-6 benchmarks, plus the Eq. 4 memory model;
* :mod:`repro.dist.systems` — :class:`Workload`, the partition-level
  summary (sizes, boundary pair counts, nnz) the cost and memory
  models consume.
"""

from .comm import SimulatedCommunicator
from .cost_model import (
    SECONDS_PER_SAMPLER_EDGE,
    ClusterSpec,
    DeviceSpec,
    EpochBreakdown,
    MemoryModel,
    RTX2080TI_CLUSTER,
    V100_MULTI_MACHINE,
    bns_epoch_model,
    cagnet_epoch_model,
    epoch_time,
    roc_epoch_model,
)
from .systems import Workload, build_workload
from .transport import (
    ByteMeter,
    LocalTransport,
    MultiprocessTransport,
    SharedMemoryTransport,
    Transport,
    TransportError,
    ring_allreduce_scalars,
)

__all__ = [
    "SimulatedCommunicator",
    "SECONDS_PER_SAMPLER_EDGE",
    "ClusterSpec",
    "DeviceSpec",
    "EpochBreakdown",
    "MemoryModel",
    "RTX2080TI_CLUSTER",
    "V100_MULTI_MACHINE",
    "bns_epoch_model",
    "cagnet_epoch_model",
    "epoch_time",
    "roc_epoch_model",
    "Workload",
    "build_workload",
    "ByteMeter",
    "LocalTransport",
    "MultiprocessTransport",
    "SharedMemoryTransport",
    "Transport",
    "TransportError",
    "ring_allreduce_scalars",
    "ProcessRankExecutor",
    "DistTrainResult",
]

_LAZY = ("ProcessRankExecutor", "DistTrainResult")


def __getattr__(name):
    # The executor sits on top of the trainer stack; importing it here
    # eagerly would close an import cycle (executor -> core.trainer ->
    # dist).  PEP 562 keeps `from repro.dist import ProcessRankExecutor`
    # working without paying that import at package init.
    if name in _LAZY:
        from . import executor

        return getattr(executor, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
