"""Metered in-process communication (the "network" of Algorithm 1).

All ranks live in one process, so nothing actually travels — but every
exchange the algorithm *would* perform is recorded here, tagged by its
role:

* ``"sample_sync"`` — the kept-boundary index broadcast (lines 6-7);
* ``"forward"`` / ``"backward"`` — boundary feature/gradient traffic
  (lines 9-10 and the transposed path);
* ``"reduce"`` — the gradient AllReduce (line 14).

Point-to-point traffic is additionally accumulated into a ``(m, m)``
``pairwise`` byte matrix (``pairwise[src, dst]``), which the cluster
cost model turns into per-rank communication time.  The AllReduce is a
collective: its bytes are metered under its tag (ring-allreduce wire
volume) but kept out of ``pairwise`` so the cost model can price it
separately against the model size.

Since the transport refactor this class is one of three interchangeable
:class:`~repro.dist.transport.Transport` implementations — the one
whose "wire" is shared process memory.  Its metering plane *is* the
shared :class:`~repro.dist.transport.ByteMeter`, so its ledgers are
byte-for-byte identical to what :class:`~repro.dist.transport.LocalTransport`
and :class:`~repro.dist.transport.MultiprocessTransport` record when the
same traffic really moves (the transport conformance suite asserts
this).
"""

from __future__ import annotations

from .transport import Transport

__all__ = ["SimulatedCommunicator"]


class SimulatedCommunicator(Transport):
    """Byte-metering stand-in for a NCCL/Gloo communicator.

    Parameters
    ----------
    num_parts:
        Number of simulated ranks.
    bytes_per_scalar:
        Wire size of one scalar.  Omitted, it derives from ``dtype``
        (the run's precision; the library default when that is omitted
        too) so the simulated ledger matches what a real transport
        would ship: 8 bytes at float64, 4 at float32.
    dtype:
        The precision the simulated run represents.

    The entire behaviour — ``send`` / ``broadcast`` / ``allreduce``
    over scalar counts, ``reset``, ``total_bytes``, ``pairwise`` — is
    inherited from :class:`~repro.dist.transport.Transport`; the
    counters are initialised exactly once by the shared meter (the
    historical implementation assigned them in ``__init__`` and then
    immediately reassigned them via ``reset()``).
    """

    name = "simulated"

    def __init__(self, num_parts: int, bytes_per_scalar=None, dtype=None) -> None:
        super().__init__(num_parts, bytes_per_scalar, dtype=dtype)

    def __repr__(self) -> str:
        return (
            f"SimulatedCommunicator(m={self.num_parts}, "
            f"total={self.total_bytes()}B)"
        )
