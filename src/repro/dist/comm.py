"""Metered in-process communication (the "network" of Algorithm 1).

All ranks live in one process, so nothing actually travels — but every
exchange the algorithm *would* perform is recorded here, tagged by its
role:

* ``"sample_sync"`` — the kept-boundary index broadcast (lines 6-7);
* ``"forward"`` / ``"backward"`` — boundary feature/gradient traffic
  (lines 9-10 and the transposed path);
* ``"reduce"`` — the gradient AllReduce (line 14).

Point-to-point traffic is additionally accumulated into a ``(m, m)``
``pairwise`` byte matrix (``pairwise[src, dst]``), which the cluster
cost model turns into per-rank communication time.  The AllReduce is a
collective: its bytes are metered under its tag (ring-allreduce wire
volume) but kept out of ``pairwise`` so the cost model can price it
separately against the model size.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

__all__ = ["SimulatedCommunicator"]


class SimulatedCommunicator:
    """Byte-metering stand-in for a NCCL/Gloo communicator.

    Parameters
    ----------
    num_parts:
        Number of simulated ranks.
    bytes_per_scalar:
        Wire size of one scalar (4 = fp32/int32, the paper's setting).
    """

    def __init__(self, num_parts: int, bytes_per_scalar: int = 4) -> None:
        if num_parts < 1:
            raise ValueError(f"num_parts must be >= 1, got {num_parts}")
        self.num_parts = num_parts
        self.bytes_per_scalar = bytes_per_scalar
        self.pairwise = np.zeros((num_parts, num_parts), dtype=np.int64)
        self._by_tag: Dict[str, int] = {}
        self.reset()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero all counters (called at the top of every epoch)."""
        self.pairwise = np.zeros((self.num_parts, self.num_parts), dtype=np.int64)
        self._by_tag = {}

    def send(self, src: int, dst: int, num_scalars: int, tag: str) -> int:
        """Meter a point-to-point transfer of ``num_scalars`` scalars."""
        if src == dst or num_scalars <= 0:
            return 0
        nbytes = int(num_scalars) * self.bytes_per_scalar
        self.pairwise[src, dst] += nbytes
        self._by_tag[tag] = self._by_tag.get(tag, 0) + nbytes
        return nbytes

    def broadcast(self, src: int, num_scalars: int, tag: str) -> int:
        """Meter ``src`` sending ``num_scalars`` scalars to every other rank."""
        total = 0
        for dst in range(self.num_parts):
            if dst != src:
                total += self.send(src, dst, num_scalars, tag)
        return total

    def allreduce(self, num_scalars: int, tag: str) -> int:
        """Meter a ring AllReduce over ``num_scalars`` scalars.

        Ring wire volume: each of the ``m`` ranks sends
        ``2 (m-1)/m · n`` scalars to its ring successor.  The traffic
        lands in ``pairwise`` like any other transfer; trainers price
        the epoch from a pre-AllReduce snapshot so the collective is
        costed from the model size instead of as point-to-point bytes.
        """
        m = self.num_parts
        if m < 2 or num_scalars <= 0:
            return 0
        per_rank = -(-2 * (m - 1) * int(num_scalars) // m)  # ceil
        total = 0
        for src in range(m):
            total += self.send(src, (src + 1) % m, per_rank, tag)
        return total

    # ------------------------------------------------------------------
    def total_bytes(self, tag: Optional[str] = None) -> int:
        """Bytes metered under ``tag``, or across all tags when omitted."""
        if tag is not None:
            return self._by_tag.get(tag, 0)
        return sum(self._by_tag.values())

    def __repr__(self) -> str:
        return (
            f"SimulatedCommunicator(m={self.num_parts}, "
            f"total={self.total_bytes()}B)"
        )
