"""Cluster cost and memory models (Eq. 3/4 priced in seconds and bytes).

Everything in the benchmark suite that quotes an "epoch time" gets it
from here, so distributed runs and single-device baselines share one
consistent axis:

* :class:`DeviceSpec` / :class:`ClusterSpec` — named device and cluster
  descriptions.  ``RTX2080TI_CLUSTER`` models the paper's main testbed
  (one machine, 10 GPUs on a shared PCIe fabric); ``V100_MULTI_MACHINE``
  models the 32-machine AWS cluster of the papers100M experiment, where
  the cross-machine link is the bottleneck (Table 6's 99%-communication
  epochs).
* :func:`epoch_time` — turns one epoch's *metered* traffic (the
  :class:`~repro.dist.comm.SimulatedCommunicator` pairwise matrix) plus
  per-rank FLOPs into an :class:`EpochBreakdown`.
* :func:`bns_epoch_model` / :func:`roc_epoch_model` /
  :func:`cagnet_epoch_model` — analytic per-epoch models on a
  :class:`~repro.dist.systems.Workload`, used by the Figure 4 system
  comparison.  The BNS sampling term is priced per *touched* element,
  matching the split-operator planner whose per-epoch cost scales with
  the kept boundary set, not the boundary universe.
* :class:`MemoryModel` — Eq. 4 as an affine function of the boundary
  count, the basis of the Appendix E rate auto-tuner.
* ``SECONDS_PER_SAMPLER_EDGE`` — sampler cost per touched element,
  calibrated so GraphSAINT-style whole-graph samplers land in the
  ~20% overhead regime their authors report (Appendix D), which puts
  BNS at the 0-7% of Table 12 with no further tuning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..tensor.dtype import scalar_nbytes

__all__ = [
    "PAPER_DTYPE",
    "SECONDS_PER_SAMPLER_EDGE",
    "DeviceSpec",
    "ClusterSpec",
    "EpochBreakdown",
    "MemoryModel",
    "RTX2080TI_CLUSTER",
    "V100_MULTI_MACHINE",
    "epoch_time",
    "layer_flops",
    "bns_epoch_model",
    "roc_epoch_model",
    "cagnet_epoch_model",
]


def layer_flops(nnz: float, n_rows: float, d_in: int, d_out: int) -> float:
    """Fwd+bwd FLOPs of one SAGE/GCN layer on one rank.

    One SpMM over the rank's operator (``2·nnz·d_in``) plus the dense
    self/neighbour transforms (``4·n_rows·d_in·d_out``), tripled for
    the backward pass (~2x the forward).  The single source of truth
    for per-rank FLOP accounting — the simulated trainers, the
    pipelined trainer and the real-rank executor all price compute
    through this helper, so modeled sync-vs-pipelined comparisons
    cannot drift apart.
    """
    return 3.0 * (2.0 * float(nnz) * d_in + 4.0 * float(n_rows) * d_in * d_out)

#: Wire/storage size the *analytic* system models price scalars at.
#: The paper's testbeds train in fp32, so the Figure 4 / Table 6 style
#: models stay calibrated to 4-byte scalars regardless of the library's
#: numeric default; pass ``dtype=`` to re-price them at another
#: precision.  Metered runs (trainers/transports) derive their own
#: ``bytes_per_scalar`` from the active dtype instead of this constant.
PAPER_DTYPE = np.float32  # repro-lint: ignore[dtype-width] — the one sanctioned literal: the paper's testbed precision, priced through scalar_nbytes below
BYTES = scalar_nbytes(PAPER_DTYPE)

#: Seconds per element a sampler touches while drawing its per-epoch
#: structure (boundary nodes drawn + edges of the selected columns).
#: Calibrated against the ~23% sampling share GraphSAINT reports for
#: its node sampler (see bench.timemodel's calibration test).
SECONDS_PER_SAMPLER_EDGE = 6.0e-10


@dataclass(frozen=True)
class DeviceSpec:
    """One accelerator: sustained training throughput and memory."""

    name: str
    effective_flops: float  # sustained (not peak) training FLOP/s
    memory_bytes: float


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster: devices, machine grouping, links.

    Ranks are laid out ``machine = rank // devices_per_machine``.
    ``intra_*`` prices links between ranks on one machine, ``inter_*``
    links between machines, and ``host_bandwidth`` the (shared) PCIe
    path to host memory that swapping systems like ROC ride on.
    """

    name: str
    device: DeviceSpec
    devices_per_machine: int
    intra_bandwidth: float  # bytes/s between ranks on one machine
    inter_bandwidth: float  # bytes/s between machines
    intra_latency: float  # seconds per message
    inter_latency: float
    host_bandwidth: float = 8.0e9  # device<->host, shared per machine

    def machine_of(self, rank: int) -> int:
        return rank // self.devices_per_machine

    def bandwidth(self, src: int, dst: int) -> float:
        if self.machine_of(src) == self.machine_of(dst):
            return self.intra_bandwidth
        return self.inter_bandwidth

    def latency(self, src: int, dst: int) -> float:
        if self.machine_of(src) == self.machine_of(dst):
            return self.intra_latency
        return self.inter_latency

    def bottleneck(self, num_ranks: int):
        """(bandwidth, latency) of the slowest link a ring over
        ``num_ranks`` ranks must cross."""
        if num_ranks > self.devices_per_machine:
            return self.inter_bandwidth, self.inter_latency
        return self.intra_bandwidth, self.intra_latency


#: The paper's main testbed: one machine, 10× RTX 2080 Ti (11 GB) on a
#: shared PCIe fabric.  Effective per-device training throughput is
#: pinned at 0.8 TFLOP/s by the bench.timemodel calibration tests.
RTX2080TI_CLUSTER = ClusterSpec(
    name="rtx2080ti-x10",
    device=DeviceSpec("RTX 2080 Ti", effective_flops=8.0e11, memory_bytes=11.0e9),
    devices_per_machine=10,
    intra_bandwidth=2.5e9,
    inter_bandwidth=1.25e9,
    intra_latency=4.0e-6,
    inter_latency=5.0e-5,
    host_bandwidth=8.0e9,
)

#: The papers100M testbed: 32 machines × 6 V100; NVLink inside a
#: machine, a ~10 GbE link between machines — the link whose saturation
#: produces Table 6's 99%-communication vanilla epochs.
V100_MULTI_MACHINE = ClusterSpec(
    name="v100-32x6",
    device=DeviceSpec("V100", effective_flops=2.4e12, memory_bytes=16.0e9),
    devices_per_machine=6,
    intra_bandwidth=6.0e10,
    inter_bandwidth=1.25e9,
    intra_latency=5.0e-6,
    inter_latency=4.0e-5,
    host_bandwidth=8.0e9,
)


@dataclass
class EpochBreakdown:
    """One epoch's modelled time, split the way Figure 5 plots it.

    ``total`` honours ``overlap_communication`` (PipeGCN-style
    pipelining hides boundary traffic behind compute, so the epoch is
    paced by their max instead of their sum).
    """

    compute: float
    communication: float
    reduce: float
    sampling: float = 0.0
    overlap_communication: bool = False

    @property
    def total(self) -> float:
        if self.overlap_communication:
            paced = max(self.compute, self.communication)
        else:
            paced = self.compute + self.communication
        return paced + self.reduce + self.sampling

    @property
    def throughput(self) -> float:
        """Epochs per second."""
        t = self.total
        return 1.0 / t if t > 0 else float("inf")


# ----------------------------------------------------------------------
# Shared pricing helpers
# ----------------------------------------------------------------------

def _comm_seconds(pairwise_bytes: np.ndarray, cluster: ClusterSpec) -> float:
    """Per-rank communication time; the epoch waits for the slowest rank.

    Rank *i* spends ``(sent + received)/bandwidth`` plus one latency
    per active peer (messages to distinct peers are serialised on the
    NIC, the conservative model the paper's profiling supports).
    """
    b = np.asarray(pairwise_bytes, dtype=np.float64)
    m = b.shape[0]
    if m < 2:
        return 0.0
    worst = 0.0
    for i in range(m):
        t = 0.0
        for j in range(m):
            if i == j:
                continue
            volume = b[i, j] + b[j, i]
            if volume > 0:
                t += volume / cluster.bandwidth(i, j) + cluster.latency(i, j)
        worst = max(worst, t)
    return worst


def _reduce_seconds(model_bytes: float, cluster: ClusterSpec, num_ranks: int) -> float:
    """Bandwidth-optimal AllReduce over the model gradient.

    Per-rank wire volume is ``2 (m-1)/m · n → 2n``; we price the
    asymptote so the reduce slice is partition-count independent (what
    NCCL rings deliver in practice), plus the ring's latency chain.
    """
    if num_ranks < 2 or model_bytes <= 0:
        return 0.0
    bw, lat = cluster.bottleneck(num_ranks)
    return 2.0 * model_bytes / bw + 2.0 * (num_ranks - 1) * lat


def epoch_time(
    per_rank_flops: np.ndarray,
    pairwise_comm_bytes: np.ndarray,
    model_bytes: float,
    cluster: ClusterSpec,
    sampling_seconds: float = 0.0,
) -> EpochBreakdown:
    """Price one epoch from metered quantities.

    Parameters
    ----------
    per_rank_flops:
        Forward+backward FLOPs each rank executed; the epoch waits for
        the slowest rank (synchronous training).
    pairwise_comm_bytes:
        ``(m, m)`` bytes ``[src, dst]`` of point-to-point traffic (the
        communicator's ``pairwise`` matrix — boundary features,
        gradients and index broadcasts; the AllReduce is priced from
        ``model_bytes`` separately).
    model_bytes:
        Gradient bytes AllReduced at the end of the epoch.
    sampling_seconds:
        Modelled (device-scale) sampling cost of drawing the epoch's
        plans.
    """
    flops = np.asarray(per_rank_flops, dtype=np.float64)
    m = len(flops)
    return EpochBreakdown(
        compute=float(flops.max()) / cluster.device.effective_flops if m else 0.0,
        communication=_comm_seconds(pairwise_comm_bytes, cluster),
        reduce=_reduce_seconds(model_bytes, cluster, m),
        sampling=sampling_seconds,
    )


# ----------------------------------------------------------------------
# Analytic per-system epoch models (Figure 4 / Table 6)
# ----------------------------------------------------------------------

def _sage_flops(n_rows: float, nnz: float, dims: Sequence[int]) -> float:
    """Fwd+bwd FLOPs of a GraphSAGE stack on one rank (×3 ≈ fwd + bwd)."""
    total = 0.0
    for d_in, d_out in zip(dims[:-1], dims[1:]):
        total += layer_flops(nnz, n_rows, d_in, d_out)
    return total


def bns_epoch_model(workload, cluster: ClusterSpec, p: float,
                    dtype=PAPER_DTYPE) -> EpochBreakdown:
    """BNS-GCN epoch at boundary sampling rate ``p`` (Eq. 3 priced).

    Communication is the kept boundary features (and their gradients)
    moving owner→consumer each layer; sampling cost follows the
    split-operator planner — proportional to the *kept* boundary
    nodes/edges, zero at p=1 where the cached full plan is reused.
    ``dtype`` prices the wire scalars (fp32, the paper's setting, by
    default).
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"sampling rate p must be in [0, 1], got {p}")
    nbytes = scalar_nbytes(dtype)
    m = workload.num_parts
    dims = workload.layer_dims
    width = float(sum(dims[:-1]))  # layer input widths, as metered

    flops = np.array(
        [
            _sage_flops(
                workload.inner_sizes[i],
                workload.nnz_inner[i] + p * workload.nnz_boundary[i],
                dims,
            )
            for i in range(m)
        ]
    )

    pair = np.asarray(workload.boundary_pair_counts, dtype=np.float64)
    b = np.zeros((m, m))
    for i in range(m):
        for j in range(m):
            if i == j:
                continue
            feature_bytes = p * pair[j, i] * width * nbytes
            b[j, i] += feature_bytes  # forward: owner j -> consumer i
            b[i, j] += feature_bytes  # backward: gradients retrace the path

    if p >= 1.0 or p <= 0.0:
        sampling = 0.0  # cached degenerate plans: zero per-epoch work
    else:
        # Mirror the metered planner (core.sampler.plan_sampling_ops):
        # one Bernoulli draw per boundary node plus the kept columns'
        # edges (p of the boundary block in expectation).
        touched = float(workload.boundary_sizes.sum()) + p * float(
            workload.nnz_boundary.sum()
        )
        sampling = touched * SECONDS_PER_SAMPLER_EDGE

    return EpochBreakdown(
        compute=float(flops.max()) / cluster.device.effective_flops,
        communication=_comm_seconds(b, cluster),
        reduce=_reduce_seconds(workload.model_params * nbytes, cluster, m),
        sampling=sampling,
    )


def roc_epoch_model(workload, cluster: ClusterSpec,
                    dtype=PAPER_DTYPE) -> EpochBreakdown:
    """ROC (Jia et al.): full-graph training that streams partition
    activations over the (shared) host link every layer.

    Per layer each rank moves its inputs in and outputs out across
    PCIe, forward and backward; the host link is shared by all ranks
    on a machine, which is why ROC's throughput stalls as partitions
    are added (Figure 4's flat curves).
    """
    nbytes = scalar_nbytes(dtype)
    m = workload.num_parts
    dims = workload.layer_dims
    n_local = workload.inner_sizes + workload.boundary_sizes
    total_nnz = workload.nnz_inner + workload.nnz_boundary
    flops = np.array(
        [
            _sage_flops(workload.inner_sizes[i], total_nnz[i], dims)
            for i in range(m)
        ]
    )
    layer_widths = sum(d_in + d_out for d_in, d_out in zip(dims[:-1], dims[1:]))
    sharing = min(m, cluster.devices_per_machine)
    swap_bytes = n_local.astype(np.float64) * layer_widths * nbytes * 2.0
    comm = float(swap_bytes.max()) * sharing / cluster.host_bandwidth
    return EpochBreakdown(
        compute=float(flops.max()) / cluster.device.effective_flops,
        communication=comm,
        reduce=_reduce_seconds(workload.model_params * nbytes, cluster, m),
        sampling=0.0,
    )


def cagnet_epoch_model(workload, cluster: ClusterSpec, c: int,
                       dtype=PAPER_DTYPE) -> EpochBreakdown:
    """CAGNET's 1.5D algorithm with replication factor ``c``.

    Each layer broadcasts the (replicated) feature blocks around the
    rank grid: per-rank volume ≈ ``N · d / c`` regardless of the
    partition count — the broadcast traffic that does *not* shrink
    with more partitions, unlike BNS's boundary traffic.
    """
    if c < 1:
        raise ValueError(f"replication factor c must be >= 1, got {c}")
    nbytes = scalar_nbytes(dtype)
    m = workload.num_parts
    dims = workload.layer_dims
    n = float(workload.num_nodes)
    total_nnz = float(workload.nnz_inner.sum() + workload.nnz_boundary.sum())
    flops = _sage_flops(n / m, total_nnz / m, dims)
    width = float(sum(dims[:-1]))
    bw, lat = cluster.bottleneck(m)
    # Broadcast volume per rank per epoch (forward + transposed backward),
    # shrunk by the replication factor; one message per grid step.
    volume = 2.0 * n * width * nbytes / c
    steps = max(m // max(c, 1) - 1, 1)
    comm = volume / bw + steps * lat
    # Replicas combine partial aggregates with a c-way reduce per layer.
    replica_bytes = (n / m) * width * nbytes * max(c - 1, 0)
    comm += replica_bytes / bw
    return EpochBreakdown(
        compute=flops / cluster.device.effective_flops,
        communication=comm,
        reduce=_reduce_seconds(workload.model_params * nbytes, cluster, m),
        sampling=0.0,
    )


# ----------------------------------------------------------------------
# Memory (Eq. 4 + caches)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class MemoryModel:
    """Per-partition training memory, affine in the boundary count.

    Inner nodes hold every layer's activations *and* their gradients
    (full-graph training keeps the whole tape); boundary nodes hold the
    received features per layer plus the gradients routed back.  Model
    parameters add Adam's two moments on top of weights and gradients.
    """

    bytes_per_scalar: int = BYTES
    activation_copies: float = 2.0  # activations + gradients
    optimizer_copies: float = 3.0  # grads + Adam m/v (on top of weights)

    def per_partition_bytes(
        self,
        inner_sizes: np.ndarray,
        boundary_sizes: np.ndarray,
        layer_dims: Sequence[int],
        model_params: int = 0,
    ) -> np.ndarray:
        inner = np.asarray(inner_sizes, dtype=np.float64)
        boundary = np.asarray(boundary_sizes, dtype=np.float64)
        dims = list(layer_dims)
        inner_width = float(sum(dims))  # every layer input + the output
        boundary_width = float(sum(dims[:-1]))  # received per layer input
        bps = float(self.bytes_per_scalar)
        act = self.activation_copies * bps * (
            inner * inner_width + boundary * boundary_width
        )
        model = (1.0 + self.optimizer_copies) * bps * float(model_params)
        return act + model
