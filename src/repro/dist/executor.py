"""Real multi-rank execution of Algorithm 1 over a data-moving transport.

:class:`ProcessRankExecutor` is the sim-to-real counterpart of
:class:`~repro.core.trainer.DistributedTrainer`: the same algorithm,
but each rank actually *holds only its own shard*.  The parent ships
every rank a :class:`_RankTask` — its
:class:`~repro.core.bns.RankData`, inner features, a model replica and
a seeded sampler — through the transport's launch channel (pickled
through a pipe on :class:`~repro.dist.transport.MultiprocessTransport`,
so the shard genuinely leaves the parent process), and the workers run
boundary-sampled training with real exchanges:

* **sample_sync** — each rank broadcasts the global ids of its kept
  boundary nodes; owners resolve the ids they own into local rows by
  binary search (Algorithm 1's "broadcast U_i / record S_{i,j}");
* **forward** — per layer, owners push the requested feature rows;
  consumers stack them under their inner block and apply the
  :class:`~repro.tensor.sparse.SplitOperator`-backed epoch plan;
* **backward** — the layer-synchronous mirror image: the per-layer
  tape is cut at the layer inputs, gradients w.r.t. the gathered
  boundary blocks travel back to their owners and are scatter-added
  into the owner's input gradient before the next tape segment runs.
  Summed over the AllReduce this reproduces the single-tape gradient
  of the simulated trainer exactly (up to float addition order — the
  equivalence suite pins 1e-9);
* **reduce** — a real ring (or tree) AllReduce over the flattened
  parameter gradients.  The reduced buffer is bitwise identical on
  every rank, so the per-rank Adam replicas stay in lockstep without
  any further synchronisation.

Byte metering is identical to the simulated run by construction: every
worker meters its own traffic through the same
:class:`~repro.dist.transport.ByteMeter` rules, and the per-epoch
merged ledgers match the ``SimulatedCommunicator`` ledgers
byte-for-byte (asserted end-to-end in the equivalence tests).

Dropout note: the simulated trainer threads *one* RNG through all
ranks' dropout masks, which has no multi-process analogue; workers
draw from per-rank streams instead.  Training is equally correct, but
bitwise trajectory comparison against the simulated path is only
meaningful at ``dropout=0`` (or in eval mode).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.bns import PartitionRuntime, RankData
from ..core.sampler import BoundarySampler, FullBoundarySampler
from ..core.trainer import TrainHistory
from ..graph.graph import Graph
from ..nn import functional as F
from ..nn.metrics import accuracy, f1_micro_multilabel
from ..nn.models import GCNModel, GraphSAGEModel
from ..nn.module import resolve_model_dtype
from ..nn.optim import Adam
from ..partition.types import PartitionResult
from ..tensor import Tensor, concat_rows, gather_rows, no_grad, relu
from .transport import Endpoint, resolve_transport

__all__ = ["ProcessRankExecutor", "DistTrainResult"]


# ----------------------------------------------------------------------
# Shipment and result containers
# ----------------------------------------------------------------------
@dataclass
class _RankTask:
    """Everything one worker needs — shippable (pure numpy/scipy state)."""

    rank: int
    num_parts: int
    rank_data: RankData
    features: np.ndarray
    model_kind: str  # "sage" | "gcn"
    model_dims: List[int]
    dropout: float
    state: Dict[str, np.ndarray]
    sampler: BoundarySampler
    sample_seed: int
    dropout_seed: Tuple[int, int]
    epochs: int
    lr: float
    loss_denom: float
    multilabel: bool
    allreduce_algorithm: str
    dtype: str = "float64"


@dataclass
class _RankOutcome:
    """One worker's training record, returned through the transport."""

    rank: int
    local_losses: List[float]
    sampling_seconds: List[float]
    by_tag: List[Dict[str, int]]
    pairwise: List[np.ndarray]
    grad_flat: np.ndarray
    state: Dict[str, np.ndarray]


@dataclass
class DistTrainResult:
    """Merged view of a distributed run (parent-side)."""

    history: TrainHistory
    by_tag: List[Dict[str, int]] = field(default_factory=list)
    pairwise: List[np.ndarray] = field(default_factory=list)
    grad_flat: Optional[np.ndarray] = None


# ----------------------------------------------------------------------
# Worker
# ----------------------------------------------------------------------
def _build_model(task: _RankTask):
    dims = task.model_dims
    num_layers = len(dims) - 1
    hidden = dims[1] if num_layers > 1 else dims[-1]
    cls = GraphSAGEModel if task.model_kind == "sage" else GCNModel
    model = cls(dims[0], hidden, dims[-1], num_layers, task.dropout,
                np.random.default_rng(0), dtype=np.dtype(task.dtype))
    model.load_state_dict(task.state)
    return model


def _resolve_requests(
    rank_data: RankData, incoming: Dict[int, np.ndarray]
) -> Dict[int, np.ndarray]:
    """Map each requester's kept global ids to my local feature rows.

    The broadcast carries *all* of the requester's kept boundary ids;
    each owner extracts the ones it holds.  ``inner`` is sorted, and a
    requester's ids owned by one rank arrive in ascending order (the
    boundary list is owner-then-id sorted), so the resolved row order
    matches the row order the requester's gather expects.
    """
    inner = rank_data.inner
    serve: Dict[int, np.ndarray] = {}
    for src, ids in incoming.items():
        ids = np.asarray(ids, dtype=np.int64)
        if len(inner) == 0 or ids.size == 0:
            serve[src] = np.empty(0, dtype=np.int64)
            continue
        idx = np.searchsorted(inner, ids)
        idx_clipped = np.minimum(idx, len(inner) - 1)
        mine = (idx < len(inner)) & (inner[idx_clipped] == ids)
        serve[src] = idx_clipped[mine]
    return serve


def _run_rank(ep: Endpoint, task: _RankTask) -> _RankOutcome:
    """One rank's whole training loop (runs inside a thread or process)."""
    rank_data = task.rank_data
    model = _build_model(task)
    model.train()
    optimizer = Adam(model.parameters(), lr=task.lr)
    sample_rng = np.random.default_rng(task.sample_seed)
    dropout_rng = np.random.default_rng(task.dropout_seed)
    peers = [j for j in range(task.num_parts) if j != task.rank]
    n_inner = rank_data.n_inner
    dims = task.model_dims
    num_layers = len(model.layers)

    outcome = _RankOutcome(
        rank=task.rank, local_losses=[], sampling_seconds=[],
        by_tag=[], pairwise=[], grad_flat=np.zeros(0), state={},
    )

    for _epoch in range(task.epochs):
        ep.meter.reset()
        model.train()

        # -- lines 4-7: sample locally, broadcast kept ids -------------
        plan = task.sampler.plan(rank_data, sample_rng)
        kept_ids = rank_data.boundary[plan.kept_positions]
        incoming = ep.exchange(
            {j: kept_ids for j in peers}, peers, tag="sample_sync"
        )
        serve_rows = _resolve_requests(rank_data, incoming)
        groups = list(rank_data.boundary_groups(plan.kept_positions))

        # -- lines 8-11: layered forward with real exchanges -----------
        x = task.features
        segments = []  # (h_leaf, boundary leaves, out) per layer
        for layer_idx, layer in enumerate(model.layers):
            sends = {
                j: x[rows] for j, rows in serve_rows.items() if rows.size
            }
            expect = [owner for owner, _pos, _rows in groups]
            received = ep.exchange(sends, expect, tag="forward")

            # Cut the tape at the layer input: the segment's leaves are
            # this rank's own features plus the gathered remote blocks.
            h_leaf = Tensor(x, requires_grad=True)
            parts: List[Tensor] = [h_leaf]
            leaves = []
            for owner, _pos, owner_rows in groups:
                block = Tensor(received[owner], requires_grad=True)
                leaves.append((owner, owner_rows, block))
                parts.append(block)
            h_all = concat_rows(parts) if len(parts) > 1 else h_leaf
            h_all = model.dropout(h_all, dropout_rng)
            h_self = h_all[0:n_inner]
            out = layer(plan.prop, h_all, h_self)
            if layer_idx < num_layers - 1:
                out = relu(out)
            segments.append((h_leaf, leaves, out))
            x = out.numpy()

        # -- lines 12-13: local loss ------------------------------------
        loss_local = None
        if rank_data.train_local.size:
            logits = gather_rows(segments[-1][2], rank_data.train_local)
            labels = rank_data.labels[rank_data.train_local]
            if task.multilabel:
                part = F.bce_with_logits(logits, labels, reduction="sum")
            else:
                part = F.cross_entropy(logits, labels, reduction="sum")
            loss_local = part * (1.0 / task.loss_denom)

        # Layer-synchronous backward: run each tape segment top-down,
        # returning boundary-feature gradients to their owners between
        # segments so cross-rank paths are complete before descending.
        optimizer.zero_grad()
        seed: Optional[np.ndarray] = None
        for layer_idx in range(num_layers - 1, -1, -1):
            h_leaf, leaves, out = segments[layer_idx]
            d_in = dims[layer_idx]
            if layer_idx == num_layers - 1:
                if loss_local is not None:
                    loss_local.backward()
            else:
                out.backward(seed)

            sends = {}
            for owner, owner_rows, block in leaves:
                grad = block.grad
                if grad is None:
                    grad = np.zeros((owner_rows.size, d_in), dtype=block.dtype)
                sends[owner] = grad
            expect = [j for j, rows in serve_rows.items() if rows.size]
            received = ep.exchange(sends, expect, tag="backward")

            grad_h = h_leaf.grad
            if grad_h is None:
                grad_h = np.zeros((n_inner, d_in), dtype=h_leaf.dtype)
            for j in expect:
                grad_h[serve_rows[j]] += received[j]
            seed = grad_h

        # -- lines 14-15: real AllReduce + local replica update ---------
        params = model.parameters()
        flat = np.concatenate([
            (p.grad if p.grad is not None else np.zeros_like(p.data)).ravel()
            for p in params
        ]) if params else np.zeros(0)
        summed = ep.allreduce(flat, "reduce", algorithm=task.allreduce_algorithm)
        offset = 0
        for p in params:
            p.grad = summed[offset:offset + p.data.size].reshape(p.data.shape)
            offset += p.data.size
        optimizer.step()

        outcome.local_losses.append(
            float(loss_local.item()) if loss_local is not None else 0.0
        )
        outcome.sampling_seconds.append(plan.sampling_seconds)
        pairwise, by_tag = ep.meter.snapshot()
        outcome.pairwise.append(pairwise)
        outcome.by_tag.append(by_tag)
        outcome.grad_flat = summed

    outcome.state = model.state_dict()
    return outcome


# ----------------------------------------------------------------------
# Parent-side orchestration
# ----------------------------------------------------------------------
class ProcessRankExecutor:
    """Run Algorithm 1 with each rank behind a data-moving transport.

    Parameters
    ----------
    graph / partition / model / sampler / lr / seed / aggregation:
        As for :class:`~repro.core.trainer.DistributedTrainer` — the
        seed derivation is identical, so a seeded run reproduces the
        simulated trainer's sampling draws exactly.
    transport:
        A :class:`~repro.dist.transport.LocalTransport`,
        :class:`~repro.dist.transport.MultiprocessTransport`, or one of
        the strings ``"local"`` / ``"multiprocess"`` (default
        ``"multiprocess"``).
    allreduce_algorithm:
        ``"ring"`` (default) or ``"tree"`` — how gradient data actually
        moves; metering is the ring model either way.
    timeout:
        Deadline in seconds for the whole launch; a hung worker fails
        fast instead of stalling the caller.
    dtype:
        Precision of the run; taken from the model when omitted (as for
        :class:`~repro.core.trainer.DistributedTrainer`).  Every rank's
        shard — operator blocks, features, replica, gradients — ships
        and computes in this dtype, and the transport meters its actual
        scalar width.
    """

    def __init__(
        self,
        graph: Graph,
        partition: PartitionResult,
        model,
        sampler: Optional[BoundarySampler] = None,
        transport=None,
        lr: float = 0.01,
        seed: int = 0,
        aggregation: str = "mean",
        allreduce_algorithm: str = "ring",
        timeout: float = 300.0,
        dtype=None,
    ) -> None:
        if isinstance(model, GraphSAGEModel):
            self._model_kind = "sage"
        elif isinstance(model, GCNModel):
            self._model_kind = "gcn"
        else:
            raise TypeError(
                "ProcessRankExecutor supports GraphSAGEModel/GCNModel, "
                f"got {type(model).__name__}"
            )
        self.dtype = resolve_model_dtype(model, dtype)
        self.graph = graph
        self.runtime = PartitionRuntime(
            graph, partition, aggregation=aggregation, dtype=self.dtype
        )
        self.model = model
        self.sampler = sampler or FullBoundarySampler()
        self.lr = lr
        self.seed = seed
        self.allreduce_algorithm = allreduce_algorithm
        self.timeout = timeout
        m = partition.num_parts
        self.transport = resolve_transport(
            "multiprocess" if transport is None else transport,
            m, dtype=self.dtype,
        )
        # Mirror DistributedTrainer's RNG derivation exactly so seeded
        # runs draw identical boundary samples.
        root = np.random.default_rng(seed)
        self._sample_seeds = [int(s) for s in root.integers(0, 2**63 - 1, m)]
        self._dropout_base = int(root.integers(0, 2**63 - 1))
        self.result: Optional[DistTrainResult] = None

    # ------------------------------------------------------------------
    @property
    def num_parts(self) -> int:
        return self.runtime.num_parts

    def _tasks(self, epochs: int) -> List[_RankTask]:
        denom = self.runtime.total_train * (
            self.graph.labels.shape[1] if self.graph.multilabel else 1
        )
        state = self.model.state_dict()
        return [
            _RankTask(
                rank=r.rank,
                num_parts=self.num_parts,
                rank_data=r,
                features=np.asarray(
                    self.graph.features[r.inner], dtype=self.dtype
                ),
                model_kind=self._model_kind,
                model_dims=list(self.model.dims),
                dropout=self.model.dropout.rate,
                state=state,
                sampler=self.sampler,
                sample_seed=self._sample_seeds[r.rank],
                dropout_seed=(self._dropout_base, r.rank),
                epochs=epochs,
                lr=self.lr,
                loss_denom=float(denom),
                multilabel=bool(self.graph.multilabel),
                allreduce_algorithm=self.allreduce_algorithm,
                dtype=str(self.dtype),
            )
            for r in self.runtime.ranks
        ]

    def train(self, epochs: int) -> DistTrainResult:
        """Run ``epochs`` epochs across all ranks; merge the records.

        The final replica state is loaded back into ``self.model`` (the
        replicas are verified identical first), so evaluation and
        checkpointing work exactly as after an in-process run.
        """
        if self.runtime.total_train == 0:
            # Fail as loudly as DistributedTrainer.train_epoch does
            # instead of silently training on an all-zero loss.
            raise RuntimeError("no training nodes in any partition")
        t0 = time.perf_counter()
        outcomes: Sequence[_RankOutcome] = self.transport.launch(
            _run_rank, self._tasks(epochs), timeout=self.timeout
        )
        wall = time.perf_counter() - t0
        outcomes = sorted(outcomes, key=lambda o: o.rank)

        for other in outcomes[1:]:
            for name, arr in outcomes[0].state.items():
                if not np.array_equal(arr, other.state[name]):
                    raise RuntimeError(
                        f"model replicas diverged at {name!r} "
                        f"(rank 0 vs rank {other.rank})"
                    )
        self.model.load_state_dict(outcomes[0].state)

        history = TrainHistory()
        by_tag_epochs: List[Dict[str, int]] = []
        pairwise_epochs: List[np.ndarray] = []
        for e in range(epochs):
            history.loss.append(sum(o.local_losses[e] for o in outcomes))
            history.sampling_seconds.append(
                sum(o.sampling_seconds[e] for o in outcomes)
            )
            merged_tags: Dict[str, int] = {}
            for o in outcomes:
                for tag, nbytes in o.by_tag[e].items():
                    merged_tags[tag] = merged_tags.get(tag, 0) + nbytes
            by_tag_epochs.append(merged_tags)
            pairwise_epochs.append(
                np.sum([o.pairwise[e] for o in outcomes], axis=0)
            )
            history.comm_bytes.append(sum(merged_tags.values()))
        history.wall_seconds = [wall / max(epochs, 1)] * epochs

        self.result = DistTrainResult(
            history=history,
            by_tag=by_tag_epochs,
            pairwise=pairwise_epochs,
            grad_flat=outcomes[0].grad_flat,
        )
        return self.result

    # ------------------------------------------------------------------
    def evaluate(self) -> Dict[str, float]:
        """Full-graph evaluation of the (synchronised) final replica."""
        self.model.eval()
        rng = np.random.default_rng(0)
        with no_grad():
            logits = self.model.full_forward(
                self.runtime.full_prop,
                Tensor(self.graph.features, dtype=self.dtype),
                rng,
            ).numpy()
        self.model.train()
        g = self.graph

        def metric(mask):
            if g.multilabel:
                return f1_micro_multilabel(logits[mask], g.labels[mask])
            return accuracy(logits[mask], g.labels[mask])

        return {
            "train": metric(g.train_mask),
            "val": metric(g.val_mask),
            "test": metric(g.test_mask),
        }
