"""Real multi-rank execution of Algorithm 1 over a data-moving transport.

:class:`ProcessRankExecutor` is the sim-to-real counterpart of
:class:`~repro.core.trainer.DistributedTrainer`: the same algorithm,
but each rank actually *holds only its own shard*.  The parent ships
every rank a :class:`_RankTask` — its
:class:`~repro.core.bns.RankData`, inner features, a model replica and
a seeded sampler — through the transport's launch channel (pickled
through a pipe on :class:`~repro.dist.transport.MultiprocessTransport`,
so the shard genuinely leaves the parent process), and the workers run
boundary-sampled training with real exchanges:

* **sample_sync** — each rank broadcasts the global ids of its kept
  boundary nodes; owners resolve the ids they own into local rows by
  binary search (Algorithm 1's "broadcast U_i / record S_{i,j}");
* **forward** — per layer, owners push the requested feature rows;
  consumers stack them under their inner block and apply the
  :class:`~repro.tensor.sparse.SplitOperator`-backed epoch plan;
* **backward** — the layer-synchronous mirror image: the per-layer
  tape is cut at the layer inputs, gradients w.r.t. the gathered
  boundary blocks travel back to their owners and are scatter-added
  into the owner's input gradient before the next tape segment runs.
  Summed over the AllReduce this reproduces the single-tape gradient
  of the simulated trainer exactly (up to float addition order — the
  equivalence suite pins 1e-9);
* **reduce** — a real ring (or tree) AllReduce over the flattened
  parameter gradients.  The reduced buffer is bitwise identical on
  every rank, so the per-rank Adam replicas stay in lockstep without
  any further synchronisation.

Two schedules run on this substrate:

* ``schedule="synchronous"`` (default) — every layer's exchange blocks
  before the layer's compute, Algorithm 1 verbatim;
* ``schedule="pipelined"`` — the PipeGCN-style staleness-1 execution
  of :class:`~repro.core.pipeline.PipelinedTrainer`, for real: after
  the kept-id sync, each rank posts *every* layer's boundary features
  from its previous-epoch layer inputs
  (:meth:`~repro.dist.transport.Endpoint.post_exchange`) and computes
  while they travel; boundary gradients harvested this epoch ship
  during the backward descent and are injected next epoch at the rows
  served then — the distributed image of the simulated trainer's
  ghost-loss construction.  Epoch 0 warms up synchronously, like
  PipeGCN's first iteration.  The bytes are identical either way —
  staleness changes *when* traffic moves, not how much — so the
  per-tag ledgers match :class:`~repro.core.pipeline.PipelinedTrainer`
  byte for byte.

Every rank additionally records, per epoch, its wall seconds and the
seconds it spent blocked inside ``recv`` (the transport's
``blocked_seconds`` counter) — so the overlap claim is *measured*, not
modeled: the pipelined schedule's blocked-in-recv fraction lands in
``BENCH_sampling.json:e2e_epoch`` next to the synchronous one.

Byte metering is identical to the simulated run by construction: every
worker meters its own traffic through the same
:class:`~repro.dist.transport.ByteMeter` rules, and the per-epoch
merged ledgers match the ``SimulatedCommunicator`` ledgers
byte-for-byte (asserted end-to-end in the equivalence tests).

Dropout note: the simulated trainer threads *one* RNG through all
ranks' dropout masks, which has no multi-process analogue; workers
draw from per-rank streams instead.  Training is equally correct, but
bitwise trajectory comparison against the simulated path is only
meaningful at ``dropout=0`` (or in eval mode).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis import sanitizer as lock_sanitizer
from ..core.bns import PartitionRuntime, RankData
from ..core.sampler import BoundarySampler, FullBoundarySampler
from ..core.trainer import TrainHistory
from ..graph.graph import Graph
from ..nn import functional as F
from ..nn.metrics import accuracy, f1_micro_multilabel
from ..nn.models import GCNModel, GraphSAGEModel
from ..nn.module import resolve_model_dtype
from ..nn.optim import Adam
from ..partition.types import PartitionResult
from ..tensor import Tensor, concat_rows, gather_rows, no_grad, relu, use_backend
from .cost_model import layer_flops
from .transport import Endpoint, resolve_transport

__all__ = ["ProcessRankExecutor", "DistTrainResult", "SCHEDULES"]

#: Execution schedules the worker loop understands.
SCHEDULES = ("synchronous", "pipelined")


# ----------------------------------------------------------------------
# Shipment and result containers
# ----------------------------------------------------------------------
@dataclass
class _RankTask:
    """Everything one worker needs — shippable (pure numpy/scipy state).

    ``sampler`` is the *spec*, not per-rank state: any
    :class:`~repro.core.sampler.BoundarySampler` pickles through the
    launch channel and draws its plans worker-side against the shipped
    :class:`~repro.core.bns.RankData`.  Samplers whose distribution
    depends on the rank (e.g. the importance sampler's π vector) must
    derive it rank-locally — that keeps the wire format and the byte
    ledger identical across sampler choices, which the equivalence
    suite asserts.
    """

    rank: int
    num_parts: int
    rank_data: RankData
    features: np.ndarray
    model_kind: str  # "sage" | "gcn"
    model_dims: List[int]
    dropout: float
    state: Dict[str, np.ndarray]
    sampler: BoundarySampler
    sample_seed: int
    dropout_seed: Tuple[int, int]
    epochs: int
    lr: float
    loss_denom: float
    multilabel: bool
    allreduce_algorithm: str
    #: Wire/compute dtype name.  Required, no literal default: the
    #: executor always ships the configured run dtype, and a silent
    #: "float64" fallback here is exactly the class of constant the
    #: dtype-width lint exists to keep out.
    dtype: str
    schedule: str = "synchronous"
    #: Kernel-backend *name* (never the instance): the worker resolves
    #: it against its own registry, so a rank in a fresh process runs
    #: the same kernels as the parent regardless of start method.
    kernel_backend: str = "numpy"


@dataclass
class _RankOutcome:
    """One worker's training record, returned through the transport."""

    rank: int
    local_losses: List[float]
    sampling_seconds: List[float]
    by_tag: List[Dict[str, int]]
    pairwise: List[np.ndarray]
    grad_flat: np.ndarray
    state: Dict[str, np.ndarray]
    epoch_seconds: List[float] = field(default_factory=list)
    blocked_seconds: List[float] = field(default_factory=list)
    flops: List[float] = field(default_factory=list)


@dataclass
class DistTrainResult:
    """Merged view of a distributed run (parent-side)."""

    history: TrainHistory
    by_tag: List[Dict[str, int]] = field(default_factory=list)
    pairwise: List[np.ndarray] = field(default_factory=list)
    grad_flat: Optional[np.ndarray] = None
    schedule: str = "synchronous"
    #: ``[epoch][rank]`` wall seconds of each rank's epoch body.
    epoch_wall_seconds: List[List[float]] = field(default_factory=list)
    #: ``[epoch][rank]`` seconds each rank spent blocked inside recv.
    blocked_recv_seconds: List[List[float]] = field(default_factory=list)
    #: ``[epoch][rank]`` modeled forward+backward FLOPs (layer_flops).
    flops: List[List[float]] = field(default_factory=list)
    launch_seconds: float = 0.0

    def blocked_fraction(self, start_epoch: int = 0) -> float:
        """Share of rank-seconds spent blocked in recv from
        ``start_epoch`` on (skip 1 to exclude the pipelined warm-up)."""
        wall = sum(sum(epoch) for epoch in self.epoch_wall_seconds[start_epoch:])
        blocked = sum(
            sum(epoch) for epoch in self.blocked_recv_seconds[start_epoch:]
        )
        return blocked / wall if wall > 0 else 0.0


# ----------------------------------------------------------------------
# Worker
# ----------------------------------------------------------------------
def _build_model(task: _RankTask):
    dims = task.model_dims
    num_layers = len(dims) - 1
    hidden = dims[1] if num_layers > 1 else dims[-1]
    cls = GraphSAGEModel if task.model_kind == "sage" else GCNModel
    model = cls(dims[0], hidden, dims[-1], num_layers, task.dropout,
                np.random.default_rng(0), dtype=np.dtype(task.dtype))
    model.load_state_dict(task.state)
    return model


def _resolve_requests(
    rank_data: RankData, incoming: Dict[int, np.ndarray]
) -> Dict[int, np.ndarray]:
    """Map each requester's kept global ids to my local feature rows.

    The broadcast carries *all* of the requester's kept boundary ids;
    each owner extracts the ones it holds.  ``inner`` is sorted, and a
    requester's ids owned by one rank arrive in ascending order (the
    boundary list is owner-then-id sorted), so the resolved row order
    matches the row order the requester's gather expects.
    """
    inner = rank_data.inner
    serve: Dict[int, np.ndarray] = {}
    for src, ids in incoming.items():
        ids = np.asarray(ids, dtype=np.int64)
        if len(inner) == 0 or ids.size == 0:
            serve[src] = np.empty(0, dtype=np.int64)
            continue
        idx = np.searchsorted(inner, ids)
        idx_clipped = np.minimum(idx, len(inner) - 1)
        mine = (idx < len(inner)) & (inner[idx_clipped] == ids)
        serve[src] = idx_clipped[mine]
    return serve


class _RankLoop:
    """One rank's training state; the epoch bodies of both schedules."""

    def __init__(self, ep: Endpoint, task: _RankTask) -> None:
        self.ep = ep
        self.task = task
        self.rank_data = task.rank_data
        self.model = _build_model(task)
        self.model.train()
        self.optimizer = Adam(self.model.parameters(), lr=task.lr)
        self.sample_rng = np.random.default_rng(task.sample_seed)
        self.dropout_rng = np.random.default_rng(task.dropout_seed)
        self.peers = [j for j in range(task.num_parts) if j != task.rank]
        self.n_inner = self.rank_data.n_inner
        self.dims = task.model_dims
        self.num_layers = len(self.model.layers)
        # Pipelined (staleness-1) state: my layer inputs of the
        # previous epoch (what neighbours consume this epoch), the rows
        # I served then, and the boundary gradients peers returned for
        # the rows *they* were served.
        self._stale_x: List[Optional[np.ndarray]] = [None] * self.num_layers
        self._prev_serve_rows: Dict[int, np.ndarray] = {}
        self._stale_grad_in: List[Tuple[int, int, np.ndarray]] = []

    # -- shared epoch pieces -------------------------------------------
    def sample_and_sync(self):
        """Lines 4-7: sample locally, broadcast kept ids, resolve."""
        plan = self.task.sampler.plan(self.rank_data, self.sample_rng)
        kept_ids = self.rank_data.boundary[plan.kept_positions]
        incoming = self.ep.exchange(
            {j: kept_ids for j in self.peers}, self.peers, tag="sample_sync"
        )
        serve_rows = _resolve_requests(self.rank_data, incoming)
        groups = list(self.rank_data.boundary_groups(plan.kept_positions))
        return plan, serve_rows, groups

    def forward_segment(self, plan, groups, x, received, layer_idx):
        """One layer on ``[own block ; gathered boundary blocks]``.

        Cuts the tape at the layer input: the segment's leaves are this
        rank's own features plus the gathered remote blocks.
        """
        h_leaf = Tensor(x, requires_grad=True)
        parts: List[Tensor] = [h_leaf]
        leaves = []
        for owner, _pos, owner_rows in groups:
            block = Tensor(received[owner], requires_grad=True)
            leaves.append((owner, owner_rows, block))
            parts.append(block)
        h_all = concat_rows(parts) if len(parts) > 1 else h_leaf
        h_all = self.model.dropout(h_all, self.dropout_rng)
        h_self = h_all[0:self.n_inner]
        out = self.model.layers[layer_idx](plan.prop, h_all, h_self)
        if layer_idx < self.num_layers - 1:
            out = relu(out)
        return h_leaf, leaves, out

    def local_loss(self, segments):
        """Lines 12-13: this rank's share of the global objective."""
        rank_data, task = self.rank_data, self.task
        if not rank_data.train_local.size:
            return None
        logits = gather_rows(segments[-1][2], rank_data.train_local)
        labels = rank_data.labels[rank_data.train_local]
        if task.multilabel:
            part = F.bce_with_logits(logits, labels, reduction="sum")
        else:
            part = F.cross_entropy(logits, labels, reduction="sum")
        return part * (1.0 / task.loss_denom)

    def segment_grads(self, leaves, d_in):
        """Per-owner gradients w.r.t. the gathered boundary blocks."""
        sends: Dict[int, np.ndarray] = {}
        for owner, owner_rows, block in leaves:
            grad = block.grad
            if grad is None:
                grad = np.zeros((owner_rows.size, d_in), dtype=block.dtype)
            sends[owner] = grad
        return sends

    def reduce_and_step(self) -> np.ndarray:
        """Lines 14-15: real AllReduce + local replica update."""
        params = self.model.parameters()
        flat = np.concatenate([
            (p.grad if p.grad is not None else np.zeros_like(p.data)).ravel()
            for p in params
        ]) if params else np.zeros(0)
        summed = self.ep.allreduce(
            flat, "reduce", algorithm=self.task.allreduce_algorithm
        )
        offset = 0
        for p in params:
            p.grad = summed[offset:offset + p.data.size].reshape(p.data.shape)
            offset += p.data.size
        self.optimizer.step()
        return summed

    def epoch_flops(self, plan) -> float:
        """Modeled fwd+bwd FLOPs of this rank's epoch (shared helper —
        the same accounting the simulated trainers record)."""
        return sum(
            layer_flops(plan.prop.nnz, self.n_inner,
                        self.dims[l], self.dims[l + 1])
            for l in range(self.num_layers)
        )

    # -- synchronous epoch (Algorithm 1 verbatim) ----------------------
    def synchronous_epoch(self):
        ep = self.ep
        plan, serve_rows, groups = self.sample_and_sync()
        expect_owners = [owner for owner, _pos, _rows in groups]
        serve_peers = [j for j, rows in serve_rows.items() if rows.size]

        # Lines 8-11: layered forward, each exchange gating its layer.
        x = self.task.features
        segments = []
        for layer_idx in range(self.num_layers):
            sends = {j: x[serve_rows[j]] for j in serve_peers}
            received = ep.exchange(sends, expect_owners, tag="forward")
            seg = self.forward_segment(plan, groups, x, received, layer_idx)
            segments.append(seg)
            x = seg[2].numpy()

        # Layer-synchronous backward: run each tape segment top-down,
        # returning boundary-feature gradients to their owners between
        # segments so cross-rank paths are complete before descending.
        loss_local = self.local_loss(segments)
        self.optimizer.zero_grad()
        seed: Optional[np.ndarray] = None
        for layer_idx in range(self.num_layers - 1, -1, -1):
            h_leaf, leaves, out = segments[layer_idx]
            d_in = self.dims[layer_idx]
            if layer_idx == self.num_layers - 1:
                if loss_local is not None:
                    loss_local.backward()
            else:
                out.backward(seed)
            received = ep.exchange(
                self.segment_grads(leaves, d_in), serve_peers, tag="backward"
            )
            grad_h = h_leaf.grad
            if grad_h is None:
                grad_h = np.zeros((self.n_inner, d_in), dtype=h_leaf.dtype)
            for j in serve_peers:
                grad_h[serve_rows[j]] += received[j]
            seed = grad_h

        return plan, loss_local, self.reduce_and_step()

    # -- pipelined epoch (staleness-1, measured overlap) ---------------
    def pipelined_epoch(self):
        ep = self.ep
        plan, serve_rows, groups = self.sample_and_sync()
        expect_owners = [owner for owner, _pos, _rows in groups]
        serve_peers = [j for j, rows in serve_rows.items() if rows.size]
        warm = all(x is not None for x in self._stale_x)

        # Post every layer's boundary features the moment the requests
        # are known: the payloads are last epoch's layer inputs, so
        # nothing gates on this epoch's compute — epoch t's exchange
        # rides on epoch t's SpMM (the PipeGCN overlap, for real).
        fwd_handles = None
        if warm:
            fwd_handles = [
                ep.post_exchange(
                    {j: self._stale_x[l][serve_rows[j]] for j in serve_peers},
                    expect_owners,
                    tag="forward",
                )
                for l in range(self.num_layers)
            ]

        x = self.task.features
        segments = []
        for layer_idx in range(self.num_layers):
            # Snapshot this epoch's layer input: neighbours consume it
            # next epoch (staleness 1).
            self._stale_x[layer_idx] = x
            if warm:
                received = ep.complete_exchange(fwd_handles[layer_idx])
            else:
                # Warm-up epoch: serve fresh features synchronously,
                # like PipeGCN's first iteration.
                sends = {j: x[serve_rows[j]] for j in serve_peers}
                received = ep.exchange(sends, expect_owners, tag="forward")
            seg = self.forward_segment(plan, groups, x, received, layer_idx)
            segments.append(seg)
            x = seg[2].numpy()

        loss_local = self.local_loss(segments)
        self.optimizer.zero_grad()
        seed: Optional[np.ndarray] = None
        bwd_handles = []
        for layer_idx in range(self.num_layers - 1, -1, -1):
            h_leaf, leaves, out = segments[layer_idx]
            d_in = self.dims[layer_idx]
            if layer_idx == self.num_layers - 1:
                if loss_local is not None:
                    loss_local.backward()
            else:
                out.backward(seed)
            # Gradients w.r.t. the stale blocks gathered THIS epoch
            # ship now (overlapping the rest of the descent) but are
            # consumed next epoch — staleness 1 on the gradient path.
            bwd_handles.append(ep.post_exchange(
                self.segment_grads(leaves, d_in), serve_peers, tag="backward"
            ))
            # Ghost-loss delivery of LAST epoch's returned gradients:
            # d/dh ⟨stop_grad(g), h[rows]⟩ injects exactly g into my
            # current layer input at the rows I served then, and flows
            # down the remaining segments like any other upstream term.
            grad_h = h_leaf.grad
            if grad_h is None:
                grad_h = np.zeros((self.n_inner, d_in), dtype=h_leaf.dtype)
            for rec_layer, src, grad in self._stale_grad_in:
                if rec_layer == layer_idx:
                    grad_h[self._prev_serve_rows[src]] += grad
            seed = grad_h

        # Drain this epoch's boundary gradients — peers posted them
        # top-down, so completing the handles in posting order matches
        # the channel order — and stash them for next epoch's delivery.
        lock_sanitizer.schedule_checkpoint("pipelined-drain")
        self._stale_grad_in = []
        for k, handle in enumerate(bwd_handles):
            layer_idx = self.num_layers - 1 - k
            for src, grad in self.ep.complete_exchange(handle).items():
                self._stale_grad_in.append((layer_idx, src, grad))
        self._prev_serve_rows = serve_rows

        return plan, loss_local, self.reduce_and_step()


def _run_rank(ep: Endpoint, task: _RankTask) -> _RankOutcome:
    """One rank's whole training loop (runs inside a thread or process)."""
    if lock_sanitizer.locks_enabled():
        # Under REPRO_SANITIZE=locks each rank checks its own observed
        # lock-order graph; a forked worker must not inherit edges the
        # parent observed among its own (distinct) lock instances.
        lock_sanitizer.reset_graph()
    with use_backend(task.kernel_backend):
        return _run_rank_epochs(ep, task)


def _run_rank_epochs(ep: Endpoint, task: _RankTask) -> _RankOutcome:
    loop = _RankLoop(ep, task)
    epoch_fn = (
        loop.pipelined_epoch if task.schedule == "pipelined"
        else loop.synchronous_epoch
    )
    outcome = _RankOutcome(
        rank=task.rank, local_losses=[], sampling_seconds=[],
        by_tag=[], pairwise=[], grad_flat=np.zeros(0), state={},
    )
    for _epoch in range(task.epochs):
        # A jitter point per epoch under REPRO_SANITIZE=schedule, so
        # different seeds stagger the ranks' epoch boundaries.
        lock_sanitizer.schedule_checkpoint("epoch-start")
        ep.meter.reset()
        loop.model.train()
        blocked0 = ep.blocked_seconds
        t0 = time.perf_counter()
        plan, loss_local, summed = epoch_fn()
        outcome.epoch_seconds.append(time.perf_counter() - t0)
        outcome.blocked_seconds.append(ep.blocked_seconds - blocked0)
        outcome.flops.append(loop.epoch_flops(plan))
        outcome.local_losses.append(
            float(loss_local.item()) if loss_local is not None else 0.0
        )
        outcome.sampling_seconds.append(plan.sampling_seconds)
        pairwise, by_tag = ep.meter.snapshot()
        outcome.pairwise.append(pairwise)
        outcome.by_tag.append(by_tag)
        outcome.grad_flat = summed
    outcome.state = loop.model.state_dict()
    return outcome


# ----------------------------------------------------------------------
# Parent-side orchestration
# ----------------------------------------------------------------------
class ProcessRankExecutor:
    """Run Algorithm 1 with each rank behind a data-moving transport.

    Parameters
    ----------
    graph / partition / model / sampler / lr / seed / aggregation:
        As for :class:`~repro.core.trainer.DistributedTrainer` — the
        seed derivation is identical, so a seeded run reproduces the
        simulated trainer's sampling draws exactly.  Any sampler spec
        ships to the workers as-is (uniform, importance-weighted,
        edge-based or custom); rank-dependent structure such as the
        importance π vector is derived on the worker from its own
        ``RankData``, never serialised.
    transport:
        A :class:`~repro.dist.transport.LocalTransport`,
        :class:`~repro.dist.transport.MultiprocessTransport`,
        :class:`~repro.dist.transport.SharedMemoryTransport`, or one
        of the strings ``"local"`` / ``"multiprocess"`` / ``"shm"``
        (default ``"multiprocess"``).  ``"shm"`` keeps the worker
        processes but moves payloads through zero-copy shared-memory
        rings — same ledger, same results, less wire time.
    schedule:
        ``"synchronous"`` (default) blocks on every layer's exchange;
        ``"pipelined"`` runs the PipeGCN-style staleness-1 schedule —
        epoch *t−1*'s layer inputs serve the neighbours while epoch
        *t*'s local compute runs, stale boundary gradients delivered
        one epoch late.  A seeded pipelined run matches
        :class:`~repro.core.pipeline.PipelinedTrainer` at
        dtype-appropriate tolerance with byte-identical metering.
    allreduce_algorithm:
        ``"ring"`` (default) or ``"tree"`` — how gradient data actually
        moves; metering is the ring model either way.
    timeout:
        Deadline in seconds for the whole launch; a hung worker fails
        fast instead of stalling the caller.  A transport built by the
        executor (``transport`` given as ``None`` or a string) also
        uses this as its per-receive window; a :class:`Transport`
        *instance* keeps its own ``recv_timeout`` — size it for the
        slowest single receive you expect (peer death is detected by
        EOF regardless).
    dtype:
        Precision of the run; taken from the model when omitted (as for
        :class:`~repro.core.trainer.DistributedTrainer`).  Every rank's
        shard — operator blocks, features, replica, gradients — ships
        and computes in this dtype, and the transport meters its actual
        scalar width.
    kernel_backend:
        Split-SpMM kernel implementation
        (:mod:`repro.tensor.kernels`) every rank's epoch body runs
        under.  Resolved parent-side (so an unavailable backend fails
        fast, before any worker launches) and shipped to the workers by
        *name* — each rank re-resolves it against its own registry, so
        the same kernels run rank-side whatever the process start
        method.  ``None`` → the process default
        (``REPRO_KERNEL_BACKEND``).
    """

    def __init__(
        self,
        graph: Graph,
        partition: PartitionResult,
        model,
        sampler: Optional[BoundarySampler] = None,
        transport=None,
        lr: float = 0.01,
        seed: int = 0,
        aggregation: str = "mean",
        schedule: str = "synchronous",
        allreduce_algorithm: str = "ring",
        timeout: float = 300.0,
        dtype=None,
        kernel_backend=None,
    ) -> None:
        if isinstance(model, GraphSAGEModel):
            self._model_kind = "sage"
        elif isinstance(model, GCNModel):
            self._model_kind = "gcn"
        else:
            raise TypeError(
                "ProcessRankExecutor supports GraphSAGEModel/GCNModel, "
                f"got {type(model).__name__}"
            )
        if schedule not in SCHEDULES:
            raise ValueError(
                f"unknown schedule {schedule!r}; expected one of {SCHEDULES}"
            )
        self.dtype = resolve_model_dtype(model, dtype)
        self.graph = graph
        self.runtime = PartitionRuntime(
            graph, partition, aggregation=aggregation, dtype=self.dtype,
            kernel_backend=kernel_backend,
        )
        self.kernel_backend = self.runtime.kernel_backend
        self.model = model
        self.sampler = sampler or FullBoundarySampler()
        self.lr = lr
        self.seed = seed
        self.schedule = schedule
        self.allreduce_algorithm = allreduce_algorithm
        self.timeout = timeout
        m = partition.num_parts
        # A transport built here inherits the executor's deadline as
        # its per-recv window: a caller raising `timeout` for long
        # epochs must not be cut short by the transport default.  (A
        # transport passed in keeps its own recv_timeout; dead peers
        # surface via EOF either way.)
        # wrap_protocol is the identity unless REPRO_SANITIZE=protocol
        # is set, in which case the transport's typestate table (no
        # re-entrant launch, ...) is enforced on every call.
        self.transport = lock_sanitizer.wrap_protocol(resolve_transport(
            "multiprocess" if transport is None else transport,
            m, dtype=self.dtype, recv_timeout=timeout,
        ))
        # Mirror DistributedTrainer's RNG derivation exactly so seeded
        # runs draw identical boundary samples.
        root = np.random.default_rng(seed)
        self._sample_seeds = [int(s) for s in root.integers(0, 2**63 - 1, m)]
        self._dropout_base = int(root.integers(0, 2**63 - 1))
        self.result: Optional[DistTrainResult] = None

    # ------------------------------------------------------------------
    @property
    def num_parts(self) -> int:
        return self.runtime.num_parts

    def _tasks(self, epochs: int) -> List[_RankTask]:
        denom = self.runtime.total_train * (
            self.graph.labels.shape[1] if self.graph.multilabel else 1
        )
        state = self.model.state_dict()
        return [
            _RankTask(
                rank=r.rank,
                num_parts=self.num_parts,
                rank_data=r,
                features=np.asarray(
                    self.graph.features[r.inner], dtype=self.dtype
                ),
                model_kind=self._model_kind,
                model_dims=list(self.model.dims),
                dropout=self.model.dropout.rate,
                state=state,
                sampler=self.sampler,
                sample_seed=self._sample_seeds[r.rank],
                dropout_seed=(self._dropout_base, r.rank),
                epochs=epochs,
                lr=self.lr,
                loss_denom=float(denom),
                multilabel=bool(self.graph.multilabel),
                allreduce_algorithm=self.allreduce_algorithm,
                dtype=str(self.dtype),
                schedule=self.schedule,
                kernel_backend=self.kernel_backend.name,
            )
            for r in self.runtime.ranks
        ]

    def train(self, epochs: int) -> DistTrainResult:
        """Run ``epochs`` epochs across all ranks; merge the records.

        The final replica state is loaded back into ``self.model`` (the
        replicas are verified identical first), so evaluation and
        checkpointing work exactly as after an in-process run.
        """
        if self.runtime.total_train == 0:
            # Fail as loudly as DistributedTrainer.train_epoch does
            # instead of silently training on an all-zero loss.
            raise RuntimeError("no training nodes in any partition")
        t0 = time.perf_counter()
        outcomes: Sequence[_RankOutcome] = self.transport.launch(
            _run_rank, self._tasks(epochs), timeout=self.timeout
        )
        wall = time.perf_counter() - t0
        outcomes = sorted(outcomes, key=lambda o: o.rank)

        for other in outcomes[1:]:
            for name, arr in outcomes[0].state.items():
                if not np.array_equal(arr, other.state[name]):
                    raise RuntimeError(
                        f"model replicas diverged at {name!r} "
                        f"(rank 0 vs rank {other.rank})"
                    )
        self.model.load_state_dict(outcomes[0].state)

        history = TrainHistory()
        by_tag_epochs: List[Dict[str, int]] = []
        pairwise_epochs: List[np.ndarray] = []
        epoch_wall: List[List[float]] = []
        blocked: List[List[float]] = []
        flops: List[List[float]] = []
        for e in range(epochs):
            history.loss.append(sum(o.local_losses[e] for o in outcomes))
            history.sampling_seconds.append(
                sum(o.sampling_seconds[e] for o in outcomes)
            )
            merged_tags: Dict[str, int] = {}
            for o in outcomes:
                for tag, nbytes in o.by_tag[e].items():
                    merged_tags[tag] = merged_tags.get(tag, 0) + nbytes
            by_tag_epochs.append(merged_tags)
            pairwise_epochs.append(
                np.sum([o.pairwise[e] for o in outcomes], axis=0)
            )
            history.comm_bytes.append(sum(merged_tags.values()))
            epoch_wall.append([o.epoch_seconds[e] for o in outcomes])
            blocked.append([o.blocked_seconds[e] for o in outcomes])
            flops.append([o.flops[e] for o in outcomes])
            # The epoch is paced by its slowest rank — a measured
            # epoch time, not the launch wall smeared over epochs.
            history.wall_seconds.append(max(epoch_wall[-1]))

        self.result = DistTrainResult(
            history=history,
            by_tag=by_tag_epochs,
            pairwise=pairwise_epochs,
            grad_flat=outcomes[0].grad_flat,
            schedule=self.schedule,
            epoch_wall_seconds=epoch_wall,
            blocked_recv_seconds=blocked,
            flops=flops,
            launch_seconds=wall,
        )
        return self.result

    # ------------------------------------------------------------------
    def evaluate(self) -> Dict[str, float]:
        """Full-graph evaluation of the (synchronised) final replica."""
        self.model.eval()
        rng = np.random.default_rng(0)
        with no_grad():
            logits = self.model.full_forward(
                self.runtime.full_prop,
                Tensor(self.graph.features, dtype=self.dtype),
                rng,
            ).numpy()
        self.model.train()
        g = self.graph

        def metric(mask):
            if g.multilabel:
                return f1_micro_multilabel(logits[mask], g.labels[mask])
            return accuracy(logits[mask], g.labels[mask])

        return {
            "train": metric(g.train_mask),
            "val": metric(g.val_mask),
            "test": metric(g.test_mask),
        }
