"""Partition-level workload summaries for the cost/memory models.

A :class:`Workload` is everything the analytic models need to price an
epoch or a memory footprint — sizes, boundary ownership pair counts and
sparsity — without holding the graph itself.  It is what you would ship
to a scheduler deciding how many machines a training job needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["Workload", "build_workload"]


@dataclass
class Workload:
    """One partitioned training job, summarised.

    Attributes
    ----------
    inner_sizes:
        ``(m,)`` — ``|V_i|`` per partition.
    boundary_pair_counts:
        ``(m, m)`` — entry ``[j, i]`` counts the boundary nodes of
        partition *i* owned by partition *j* (column sums are
        ``|B_i|``, row sums the nodes each owner must serve).
    nnz_inner / nnz_boundary:
        ``(m,)`` — edges in each rank's ``P_in`` / ``P_bd`` block.
    layer_dims:
        Model widths ``[d_0, ..., d_L]`` (input → output).
    model_params:
        Parameter count (drives the AllReduce and optimizer memory).
    num_nodes:
        ``|V|`` of the underlying graph.
    """

    inner_sizes: np.ndarray
    boundary_pair_counts: np.ndarray
    nnz_inner: np.ndarray
    nnz_boundary: np.ndarray
    layer_dims: Sequence[int]
    model_params: int
    num_nodes: int

    def __post_init__(self) -> None:
        self.inner_sizes = np.asarray(self.inner_sizes, dtype=np.int64)
        self.boundary_pair_counts = np.asarray(
            self.boundary_pair_counts, dtype=np.int64
        )
        self.nnz_inner = np.asarray(self.nnz_inner, dtype=np.int64)
        self.nnz_boundary = np.asarray(self.nnz_boundary, dtype=np.int64)

    @property
    def num_parts(self) -> int:
        return len(self.inner_sizes)

    @property
    def boundary_sizes(self) -> np.ndarray:
        """``|B_i]`` per partition (Eq. 3's per-receiver counts)."""
        return self.boundary_pair_counts.sum(axis=0)

    @property
    def total_nnz(self) -> int:
        return int(self.nnz_inner.sum() + self.nnz_boundary.sum())


def build_workload(
    graph,
    partition,
    layer_dims: Sequence[int],
    model_params: int = 0,
) -> Workload:
    """Summarise (graph, partition, model) into a :class:`Workload`."""
    adj = graph.adj
    assignment = partition.assignment
    m = partition.num_parts
    inner_sizes = np.zeros(m, dtype=np.int64)
    pair = np.zeros((m, m), dtype=np.int64)
    nnz_inner = np.zeros(m, dtype=np.int64)
    nnz_boundary = np.zeros(m, dtype=np.int64)
    for i in range(m):
        inner = partition.inner_nodes(i)
        boundary = partition.boundary_nodes(adj, i)
        inner_sizes[i] = len(inner)
        if len(boundary):
            owners = assignment[boundary]
            pair[:, i] = np.bincount(owners, minlength=m)
        rows = adj[inner]
        if len(boundary):
            cols = np.concatenate([inner, boundary])
            block = rows[:, cols]
            nnz_boundary[i] = block[:, len(inner):].nnz
            nnz_inner[i] = block[:, : len(inner)].nnz
        else:
            nnz_inner[i] = rows[:, inner].nnz
    return Workload(
        inner_sizes=inner_sizes,
        boundary_pair_counts=pair,
        nnz_inner=nnz_inner,
        nnz_boundary=nnz_boundary,
        layer_dims=list(layer_dims),
        model_params=int(model_params),
        num_nodes=graph.num_nodes,
    )
