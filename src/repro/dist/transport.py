"""Transport abstraction: one metering model, three wire implementations.

Every trainer in this repo accounts communication through the same
byte-metering model (Eq. 3 made measurable): point-to-point transfers
land in an ``(m, m)`` ``pairwise`` matrix and a per-tag byte ledger,
and the gradient AllReduce is priced with the ring wire-volume formula
``ceil(2 (m-1) n / m)`` scalars per rank.  This module separates that
*model* from the *wire*:

* :class:`ByteMeter` — the metering core, shared verbatim by every
  transport so per-tag totals and pairwise matrices are byte-for-byte
  identical no matter how the data actually moves;
* :class:`Transport` — the interface.  The metering plane
  (:meth:`~Transport.send` / :meth:`~Transport.broadcast` /
  :meth:`~Transport.allreduce` with scalar *counts*) is what the
  in-process trainers consume; the data plane
  (:meth:`~Transport.launch` + per-rank :class:`Endpoint` objects with
  payload-carrying ``send``/``recv``/``allreduce``) is what
  :class:`~repro.dist.executor.ProcessRankExecutor` consumes;
* :class:`LocalTransport` — ranks as threads, queues as wires.  Fast,
  deterministic, no serialisation: the reference data-moving
  implementation for tests;
* :class:`MultiprocessTransport` — ranks as OS processes, pipes as
  wires.  Payloads are pickled through the pipe (including the initial
  per-rank task shipment), so a rank's working set really does leave
  the parent process, like it would leave the machine in a cluster run;
* :class:`SharedMemoryTransport` — ranks as OS processes, but the data
  plane is a mesh of single-producer/single-consumer
  ``multiprocessing.shared_memory`` ring buffers: payloads cross as
  raw numpy frames (a fixed header word carrying length / dtype-id /
  tag-id, then the payload bytes memcpy'd in), so the hot path pays no
  pickle framing and no pipe copies.  The pipes remain, carrying only
  control traffic — the launch payload, the result, doorbell wakeups
  for a blocked ring side, and dead-peer EOF.

The in-process :class:`~repro.dist.comm.SimulatedCommunicator` is the
fourth implementation: it subclasses :class:`Transport` and implements
only the metering plane (its "wire" is shared process memory, so
nothing needs to travel).

Every data-moving transport distinguishes two deadlines, named
explicitly: ``recv_timeout`` is the per-receive window (the bound
within which a silent peer must surface as a
:class:`TransportError`), and ``launch_timeout`` is the deadline for
the launch as a whole — result collection included.  Unless overridden
the launch deadline equals ``recv_timeout`` on all transports (the
multiprocess transport historically widened it to ``2 ×`` silently).

Metering is canonical, not observational: a transport meters the
*model's* wire volume (scalar counts × ``bytes_per_scalar``, ring
formula for collectives) rather than the bytes its implementation
happens to push — pickle framing, pipe overhead and the choice of
ring- vs tree-AllReduce never leak into the measurements.  That is
what makes cost-model numbers comparable across simulated and real
runs, and it is asserted by the transport conformance suite.

``bytes_per_scalar`` itself is honest by construction: unless
overridden it derives from the transport's configured ``dtype``
(:func:`~repro.tensor.dtype.scalar_nbytes` — 8 for the float64
default, 4 under ``--dtype float32``), so the ledger prices exactly
the scalar width the data plane actually pickles and ships.
"""
# repro-lint: layer=endpoint — this file IS the raw-channel layer the
# metering pass protects; pipes/shm rings are constructed and driven
# here, always behind the ByteMeter accounting above them.

from __future__ import annotations

import atexit
import queue
import threading
import time
import traceback
import uuid
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.sanitizer import (
    begin_schedule_exploration,
    end_schedule_exploration,
    make_lock,
    schedule_note_complete,
    schedule_note_post,
    schedule_wait_scope,
    wrap_protocol,
)
from ..tensor.dtype import float_dtype_for_nbytes, resolve_dtype, scalar_nbytes

__all__ = [
    "ByteMeter",
    "Endpoint",
    "ExchangeHandle",
    "LocalTransport",
    "MultiprocessTransport",
    "SharedMemoryTransport",
    "Transport",
    "TransportError",
    "resolve_transport",
    "ring_allreduce_scalars",
]


def resolve_transport(transport, num_parts: int, bytes_per_scalar: Optional[int] = None,
                      dtype=None, recv_timeout: Optional[float] = None):
    """Normalise a trainer/executor ``transport=`` argument.

    ``None`` yields a fresh metering-only
    :class:`~repro.dist.comm.SimulatedCommunicator`; the strings
    ``"local"`` / ``"multiprocess"`` / ``"shm"`` build the matching
    data-moving transport; an existing :class:`Transport` is validated
    against the partition's rank count and returned as-is (its own
    metering and timeout configuration wins).  A freshly built
    transport meters ``scalar_nbytes(dtype)`` per scalar unless
    ``bytes_per_scalar`` overrides it explicitly, and waits
    ``recv_timeout`` seconds per receive when given (callers raising
    their launch deadline — e.g. ``ProcessRankExecutor(timeout=...)``
    — widen the per-recv window with it; peer *death* is detected by
    EOF regardless).
    """
    if transport is None or transport == "simulated":
        from .comm import SimulatedCommunicator

        return SimulatedCommunicator(num_parts, bytes_per_scalar, dtype=dtype)
    kwargs = {} if recv_timeout is None else {"recv_timeout": float(recv_timeout)}
    if transport == "local":
        return LocalTransport(num_parts, bytes_per_scalar, dtype=dtype, **kwargs)
    if transport == "multiprocess":
        return MultiprocessTransport(num_parts, bytes_per_scalar, dtype=dtype,
                                     **kwargs)
    if transport == "shm":
        return SharedMemoryTransport(num_parts, bytes_per_scalar, dtype=dtype,
                                     **kwargs)
    if not isinstance(transport, Transport):
        raise TypeError(f"unknown transport {transport!r}")
    if transport.num_parts != num_parts:
        raise ValueError(
            f"transport has {transport.num_parts} ranks, "
            f"partition has {num_parts}"
        )
    return transport


class TransportError(RuntimeError):
    """A data-plane failure: timeout, tag mismatch, or a dead peer."""


def ring_allreduce_scalars(num_parts: int, num_scalars: int) -> int:
    """Per-rank scalars sent by a ring AllReduce of ``num_scalars``.

    Each of the ``m`` ranks sends ``ceil(2 (m-1) n / m)`` scalars to
    its ring successor (reduce-scatter + allgather).  Degenerate cases
    (one rank, nothing to reduce) send nothing.
    """
    if num_parts < 2 or num_scalars <= 0:
        return 0
    return -(-2 * (num_parts - 1) * int(num_scalars) // num_parts)


class ByteMeter:
    """Pairwise + per-tag byte ledger shared by every transport.

    The recording rules are the contract the conformance suite pins
    down: self-sends and empty sends meter zero, point-to-point bytes
    land in ``pairwise[src, dst]``, and the AllReduce meters the ring
    formula from each rank to its ring successor regardless of the
    algorithm that actually moves the data.

    ``bytes_per_scalar`` omitted derives from ``dtype`` (the configured
    precision of the run; library default when that is omitted too) —
    the ledger prices exactly the scalar width the run ships.
    """

    def __init__(self, num_parts: int, bytes_per_scalar: Optional[int] = None,
                 dtype=None) -> None:
        if num_parts < 1:
            raise ValueError(f"num_parts must be >= 1, got {num_parts}")
        self.num_parts = num_parts
        self.bytes_per_scalar = (
            int(bytes_per_scalar) if bytes_per_scalar is not None
            else scalar_nbytes(dtype)
        )
        self.pairwise: np.ndarray = np.zeros((num_parts, num_parts), dtype=np.int64)
        self.by_tag: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero all counters (called at the top of every epoch)."""
        self.pairwise[:] = 0
        self.by_tag = {}

    def record_send(self, src: int, dst: int, num_scalars: int, tag: str) -> int:
        """Meter a point-to-point transfer of ``num_scalars`` scalars."""
        if src == dst or num_scalars <= 0:
            return 0
        nbytes = int(num_scalars) * self.bytes_per_scalar
        self.pairwise[src, dst] += nbytes
        self.by_tag[tag] = self.by_tag.get(tag, 0) + nbytes
        return nbytes

    def record_broadcast(self, src: int, num_scalars: int, tag: str) -> int:
        """Meter ``src`` sending ``num_scalars`` scalars to every other rank."""
        total = 0
        for dst in range(self.num_parts):
            if dst != src:
                total += self.record_send(src, dst, num_scalars, tag)
        return total

    def record_allreduce_rank(self, src: int, num_scalars: int, tag: str) -> int:
        """Meter one rank's share of a ring AllReduce (to its successor)."""
        per_rank = ring_allreduce_scalars(self.num_parts, num_scalars)
        return self.record_send(src, (src + 1) % self.num_parts, per_rank, tag)

    def record_allreduce(self, num_scalars: int, tag: str) -> int:
        """Meter a full ring AllReduce: every rank's share at once."""
        total = 0
        for src in range(self.num_parts):
            total += self.record_allreduce_rank(src, num_scalars, tag)
        return total

    # ------------------------------------------------------------------
    def total_bytes(self, tag: Optional[str] = None) -> int:
        """Bytes metered under ``tag``, or across all tags when omitted."""
        if tag is not None:
            return self.by_tag.get(tag, 0)
        return sum(self.by_tag.values())

    def merge(self, other: "ByteMeter") -> None:
        """Fold another rank's ledger into this one."""
        if other.num_parts != self.num_parts:
            raise ValueError("cannot merge meters with different num_parts")
        self.pairwise += other.pairwise
        for tag, nbytes in other.by_tag.items():
            self.by_tag[tag] = self.by_tag.get(tag, 0) + nbytes

    def snapshot(self) -> Tuple[np.ndarray, Dict[str, int]]:
        """(pairwise copy, by-tag copy) — one epoch's record."""
        return self.pairwise.copy(), dict(self.by_tag)


class Transport:
    """Interface shared by the simulated, thread and process transports.

    The *metering plane* (this class) mirrors the historical
    ``SimulatedCommunicator`` API — ``send`` / ``broadcast`` /
    ``allreduce`` take scalar **counts** and only touch the meter — so
    any transport can be handed to the in-process trainers.  Data-moving
    implementations additionally provide :meth:`launch`, which runs one
    worker per rank against payload-carrying :class:`Endpoint` objects
    and folds the per-rank meters back into :attr:`meter`.
    """

    name = "abstract"

    def __init__(self, num_parts: int, bytes_per_scalar: Optional[int] = None,
                 dtype=None) -> None:
        self.dtype = resolve_dtype(dtype)
        self.meter = ByteMeter(num_parts, bytes_per_scalar, dtype=self.dtype)

    # -- metering plane (SimulatedCommunicator-compatible) -------------
    @property
    def num_parts(self) -> int:
        return self.meter.num_parts

    @property
    def bytes_per_scalar(self) -> int:
        return self.meter.bytes_per_scalar

    @property
    def pairwise(self) -> np.ndarray:
        return self.meter.pairwise

    @property
    def _by_tag(self) -> Dict[str, int]:  # backwards-compatible alias
        return self.meter.by_tag

    def reset(self) -> None:
        self.meter.reset()

    def send(self, src: int, dst: int, num_scalars: int, tag: str) -> int:
        return self.meter.record_send(src, dst, num_scalars, tag)

    def broadcast(self, src: int, num_scalars: int, tag: str) -> int:
        return self.meter.record_broadcast(src, num_scalars, tag)

    def allreduce(self, num_scalars: int, tag: str) -> int:
        return self.meter.record_allreduce(num_scalars, tag)

    def total_bytes(self, tag: Optional[str] = None) -> int:
        return self.meter.total_bytes(tag)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(m={self.num_parts}, "
            f"total={self.total_bytes()}B)"
        )

    # -- data plane ----------------------------------------------------
    def launch(
        self,
        worker: Callable,
        payloads: Optional[Sequence] = None,
        timeout: Optional[float] = None,
    ) -> List:
        """Run ``worker(endpoint, payload)`` once per rank; return results.

        Only data-moving transports implement this; the simulated
        communicator's ranks live inside the trainers' own loop.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no data plane; use LocalTransport "
            "or MultiprocessTransport to actually execute ranks"
        )


class _SendTicket:
    """Completion handle of one queued outbound message.

    Mirrors the ``threading.Thread`` join/is_alive surface the callers
    historically used, plus an ``error`` slot so a failed push (dead
    peer pipe) surfaces at the join instead of vanishing with the
    sender thread.
    """

    __slots__ = ("dst", "tag", "_done", "error")

    def __init__(self, dst: int, tag: str) -> None:
        self.dst = dst
        self.tag = tag
        self._done = threading.Event()
        self.error: Optional[BaseException] = None

    def join(self, timeout: Optional[float] = None) -> bool:
        """Wait for completion; True iff the send finished in time."""
        return self._done.wait(timeout)

    def is_alive(self) -> bool:
        return not self._done.is_set()


@dataclass
class ExchangeHandle:
    """In-flight exchange: posted sends plus deferred receives.

    Produced by :meth:`Endpoint.post_exchange`; redeemed by
    :meth:`Endpoint.complete_exchange`.  Holding a handle means the
    outbound payloads are already metered and queued on their channels
    while the caller computes — the overlap the pipelined schedule is
    built on.
    """

    tag: str
    sends: List[_SendTicket] = field(default_factory=list)
    expect: List[int] = field(default_factory=list)
    completed: bool = False


class Endpoint:
    """One rank's handle on a data-moving transport.

    Subclasses supply the raw channel primitives ``_put`` / ``_get``;
    everything else — metering, tag checking, deadlock-free pairwise
    exchange, the ring/tree AllReduce — is shared, so the local and
    multiprocess transports are behaviourally identical by
    construction.

    Outbound messages to one destination travel through a single
    per-destination sender thread fed by a FIFO queue, so posting
    several non-blocking sends to the same peer (the pipelined
    schedule posts every layer's stale features up front) preserves
    their order on the channel — a guarantee thread-per-send cannot
    make.

    :attr:`blocked_seconds` accumulates the wall time this rank spends
    inside ``_get`` waiting for inbound messages; per-epoch deltas of
    it are what split measured epoch time into compute vs
    blocked-in-recv.
    """

    def __init__(self, rank: int, num_parts: int, bytes_per_scalar: int,
                 recv_timeout: float) -> None:
        self.rank = rank
        self.num_parts = num_parts
        self.bytes_per_scalar = bytes_per_scalar
        self.recv_timeout = recv_timeout
        self.meter = ByteMeter(num_parts, bytes_per_scalar)
        self.blocked_seconds = 0.0
        self._send_queues: Dict[int, queue.Queue] = {}
        self._send_threads: Dict[int, threading.Thread] = {}
        self._closed = False

    # -- raw channel (implemented by subclasses) -----------------------
    def _put(self, dst: int, message) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _get(self, src: int):  # pragma: no cover - abstract
        raise NotImplementedError

    # -- ordered outbound queues ---------------------------------------
    def _sender_loop(self, dst: int) -> None:
        q = self._send_queues[dst]
        while True:
            item = q.get()
            if item is None:
                return
            message, ticket = item
            try:
                self._put(dst, message)
            except BaseException as exc:  # noqa: BLE001 - surfaced at join
                ticket.error = exc
            finally:
                ticket._done.set()

    def _enqueue(self, dst: int, message, tag: str) -> _SendTicket:
        """Queue a message on the ordered channel to ``dst``."""
        if dst not in self._send_queues:
            self._send_queues[dst] = queue.Queue()
            thread = threading.Thread(
                target=self._sender_loop, args=(dst,), daemon=True
            )
            self._send_threads[dst] = thread
            thread.start()
        ticket = _SendTicket(dst, tag)
        self._send_queues[dst].put((message, ticket))
        return ticket

    def _join_send(self, ticket: _SendTicket) -> None:
        """Wait for a queued send; a send still in flight after the
        receive window (peer not draining — a hang the old bare
        ``thread.join(timeout)`` silently swallowed) or a failed push
        raises :class:`TransportError` instead of being abandoned."""
        with schedule_wait_scope("join", self.rank, ticket.dst):
            delivered = ticket.join(self.recv_timeout)
        if not delivered:
            raise TransportError(
                f"rank {self.rank} send (tag {ticket.tag!r}) to rank "
                f"{ticket.dst} still in flight after {self.recv_timeout}s "
                "(peer not draining?)"
            )
        if ticket.error is not None:
            raise TransportError(
                f"rank {self.rank} failed to ship tag {ticket.tag!r} to "
                f"rank {ticket.dst} (peer died?)"
            ) from ticket.error

    def close(self) -> None:
        """Shut the sender threads down (launch teardown)."""
        self._closed = True
        for q in self._send_queues.values():
            q.put(None)

    def _check_float_width(self, payload: np.ndarray, tag: str) -> None:
        """Metered == shipped, enforced: a float payload whose scalar
        width differs from the meter's ``bytes_per_scalar`` would be
        silently mis-priced (the pre-dtype-subsystem bug).  Integer
        payloads (index broadcasts) are exempt — they are metered at
        the run's scalar width by convention."""
        if (
            payload.size
            and payload.dtype.kind == "f"
            and payload.dtype.itemsize != self.bytes_per_scalar
        ):
            raise TransportError(
                f"rank {self.rank} shipping a {payload.dtype} payload "
                f"(tag {tag!r}) through a transport metering "
                f"{self.bytes_per_scalar} B/scalar — metered would not "
                "equal shipped; construct the transport with the run's "
                "dtype (or cast the payload)"
            )

    # -- point-to-point ------------------------------------------------
    def send(self, dst: int, payload: np.ndarray, tag: str) -> int:
        """Send ``payload`` to ``dst``; meters ``payload.size`` scalars.

        Empty payloads still travel (receivers stay in lockstep) but
        meter zero bytes, matching the simulated semantics.  Blocks
        until the payload is on the wire (the queued-send join), so a
        peer that never drains raises instead of hanging.
        """
        if dst == self.rank:
            raise TransportError(f"rank {self.rank} cannot send to itself")
        payload = np.asarray(payload)
        self._check_float_width(payload, tag)
        nbytes = self.meter.record_send(self.rank, dst, payload.size, tag)
        self._join_send(self._enqueue(dst, (tag, payload), tag))
        return nbytes

    def isend(self, dst: int, payload: np.ndarray, tag: str) -> _SendTicket:
        """Non-blocking :meth:`send`: meters now, ships asynchronously.

        Bounded channels (OS pipes) block the writer when full; pushing
        from the per-destination sender thread lets a rank post all its
        outbound traffic before draining inbound, which makes the
        exchange patterns below deadlock-free regardless of payload
        size — and the FIFO queue keeps multiple in-flight messages to
        one peer in posting order.
        """
        if dst == self.rank:
            raise TransportError(f"rank {self.rank} cannot send to itself")
        payload = np.asarray(payload)
        self._check_float_width(payload, tag)
        self.meter.record_send(self.rank, dst, payload.size, tag)
        return self._enqueue(dst, (tag, payload), tag)

    def recv(self, src: int, tag: str) -> np.ndarray:
        """Receive the next message from ``src``; the tag must match.

        Time spent waiting on the channel accumulates into
        :attr:`blocked_seconds` (the measured, not modeled, side of the
        compute/communication split).
        """
        t0 = time.perf_counter()
        try:
            got_tag, payload = self._get(src)
        finally:
            self.blocked_seconds += time.perf_counter() - t0
        if got_tag != tag:
            raise TransportError(
                f"rank {self.rank} expected tag {tag!r} from {src}, got {got_tag!r}"
            )
        return payload

    def _isend_raw(self, dst: int, payload: np.ndarray, tag: str) -> _SendTicket:
        """Unmetered queued push — for collective-internal traffic
        whose wire volume was already metered canonically."""
        return self._enqueue(dst, (tag, payload), tag)

    def _send_raw(self, dst: int, payload: np.ndarray, tag: str) -> None:
        self._join_send(self._enqueue(dst, (tag, payload), tag))

    def exchange(
        self,
        outgoing: Dict[int, np.ndarray],
        expect: Iterable[int],
        tag: str,
    ) -> Dict[int, np.ndarray]:
        """Send to each key of ``outgoing``; receive from each of ``expect``.

        All sends are posted first, then inbound messages are drained,
        so the pattern cannot deadlock however large the payloads are.
        Equivalent to :meth:`complete_exchange` of a fresh
        :meth:`post_exchange` — the blocking special case.
        """
        return self.complete_exchange(self.post_exchange(outgoing, expect, tag))

    def post_exchange(
        self,
        outgoing: Dict[int, np.ndarray],
        expect: Iterable[int],
        tag: str,
    ) -> ExchangeHandle:
        """Post the sends of an exchange without touching the receives.

        Meters and queues every outbound payload now, records the
        deferred receives, and returns an :class:`ExchangeHandle`.  The
        caller is free to compute while the payloads travel; redeem the
        handle with :meth:`complete_exchange` when the inbound data is
        actually needed.
        """
        handle = ExchangeHandle(tag=tag, expect=list(expect))
        handle.sends = [
            self.isend(dst, payload, tag) for dst, payload in outgoing.items()
        ]
        schedule_note_post(self.rank, handle)
        return handle

    def complete_exchange(self, handle: ExchangeHandle) -> Dict[int, np.ndarray]:
        """Drain the deferred receives of ``handle``; join its sends.

        A send still undelivered after the receive window raises
        :class:`TransportError` — an abandoned sender masks a hung peer
        as corruption.
        """
        if handle.completed:
            raise TransportError(
                f"rank {self.rank} completed exchange handle "
                f"(tag {handle.tag!r}) twice"
            )
        handle.completed = True
        schedule_note_complete(self.rank, handle)
        received = {src: self.recv(src, handle.tag) for src in handle.expect}
        for ticket in handle.sends:
            self._join_send(ticket)
        return received

    # -- collectives ---------------------------------------------------
    def allreduce(
        self, array: np.ndarray, tag: str, algorithm: str = "ring"
    ) -> np.ndarray:
        """Sum ``array`` across all ranks; every rank gets the result.

        The data moves by a real ring (reduce-scatter + allgather) or
        binomial tree; the metering is always the canonical ring
        formula (:func:`ring_allreduce_scalars`), keeping the ledger
        identical across algorithms and transports.  The reduced buffer
        is bitwise identical on every rank — each chunk is finalised by
        exactly one rank and copies of it are distributed — which is
        what keeps model replicas in lockstep.

        The payload's float dtype is preserved on the wire: fp32
        gradients ship and reduce as fp32 (what the meter prices), with
        no silent fp64 upcast anywhere on the path.
        """
        arr = np.asarray(array)
        self._check_float_width(arr, tag)
        if arr.dtype.kind != "f":
            # Integer summands reduce as floats; pick the float whose
            # width matches the meter so even this fallback ships
            # exactly what it prices.
            arr = arr.astype(float_dtype_for_nbytes(self.bytes_per_scalar))
        shape = arr.shape
        flat = arr.ravel().copy()
        self.meter.record_allreduce_rank(self.rank, flat.size, tag)
        if self.num_parts == 1 or flat.size == 0:
            return flat.reshape(shape)
        if algorithm == "ring":
            out = self._ring_allreduce(flat, tag)
        elif algorithm == "tree":
            out = self._tree_allreduce(flat, tag)
        else:
            raise ValueError(f"unknown allreduce algorithm {algorithm!r}")
        return out.reshape(shape)

    def _chunk_slices(self, n: int) -> List[slice]:
        bounds = np.linspace(0, n, self.num_parts + 1).astype(np.int64)
        return [slice(int(a), int(b)) for a, b in zip(bounds[:-1], bounds[1:])]

    def _ring_allreduce(self, buf: np.ndarray, tag: str) -> np.ndarray:
        m, rank = self.num_parts, self.rank
        succ, pred = (rank + 1) % m, (rank - 1) % m
        slices = self._chunk_slices(buf.size)
        # Reduce-scatter: after m-1 steps rank owns chunk (rank+1) % m.
        for step in range(m - 1):
            send_idx = (rank - step) % m
            recv_idx = (rank - step - 1) % m
            ticket = self._isend_raw(succ, buf[slices[send_idx]].copy(), tag)
            buf[slices[recv_idx]] += self.recv(pred, tag)
            self._join_send(ticket)
        # Allgather: circulate the finalised chunks.
        for step in range(m - 1):
            send_idx = (rank + 1 - step) % m
            recv_idx = (rank - step) % m
            ticket = self._isend_raw(succ, buf[slices[send_idx]].copy(), tag)
            buf[slices[recv_idx]] = self.recv(pred, tag)
            self._join_send(ticket)
        return buf

    def _tree_allreduce(self, buf: np.ndarray, tag: str) -> np.ndarray:
        m, rank = self.num_parts, self.rank
        # Reduce up a binomial tree rooted at 0.
        span, sent_span = 1, None
        while span < m:
            r = rank % (2 * span)
            if r == span:
                self._send_raw(rank - span, buf, tag)
                sent_span = span
                break
            if r == 0 and rank + span < m:
                buf = buf + self.recv(rank + span, tag)
            span *= 2
        # Broadcast the root's buffer back down the same tree.
        if sent_span is not None:
            buf = self.recv(rank - sent_span, tag)
            span = sent_span
        down = span // 2
        while down >= 1:
            if rank % (2 * down) == 0 and rank + down < m:
                self._send_raw(rank + down, buf, tag)
            down //= 2
        return buf


# ----------------------------------------------------------------------
# Threads + queues
# ----------------------------------------------------------------------
class _QueueEndpoint(Endpoint):
    def __init__(self, rank, num_parts, bytes_per_scalar, recv_timeout, queues):
        super().__init__(rank, num_parts, bytes_per_scalar, recv_timeout)
        self._queues = queues

    def _put(self, dst: int, message) -> None:
        self._queues[(self.rank, dst)].put(message)

    def _get(self, src: int):
        try:
            return self._queues[(src, self.rank)].get(timeout=self.recv_timeout)
        except queue.Empty:
            raise TransportError(
                f"rank {self.rank} timed out waiting for rank {src} "
                f"({self.recv_timeout}s)"
            ) from None


class LocalTransport(Transport):
    """Ranks as daemon threads, unbounded queues as wires.

    No serialisation and no OS scheduling noise: the deterministic
    reference for the data-moving path, and the fast engine behind the
    conformance and equivalence tests.
    """

    name = "local"

    def __init__(self, num_parts: int, bytes_per_scalar: Optional[int] = None,
                 recv_timeout: float = 60.0, dtype=None,
                 launch_timeout: Optional[float] = None) -> None:
        super().__init__(num_parts, bytes_per_scalar, dtype=dtype)
        self.recv_timeout = recv_timeout
        # The launch deadline is named, not derived ad hoc: one uniform
        # default (= recv_timeout) across every data-moving transport.
        self.launch_timeout = (
            float(recv_timeout) if launch_timeout is None
            else float(launch_timeout)
        )

    def launch(self, worker, payloads=None, timeout=None):
        m = self.num_parts
        timeout = self.launch_timeout if timeout is None else timeout
        payloads = list(payloads) if payloads is not None else [None] * m
        if len(payloads) != m:
            raise ValueError(f"expected {m} payloads, got {len(payloads)}")
        # Under REPRO_SANITIZE=schedule the wires become the explorer's
        # rendezvous channels and the launch gains deadlock detection
        # plus seed-driven interleaving jitter; otherwise plain queues.
        explorer = begin_schedule_exploration(m)
        queues = {
            (i, j): (explorer.make_channel(i, j) if explorer is not None
                     else queue.Queue())
            for i in range(m) for j in range(m) if i != j
        }
        # Per-recv windows stay at the transport's recv_timeout — the
        # bound within which a dropped peer must surface as a
        # TransportError; `timeout` only caps the launch as a whole.
        endpoints = [
            _QueueEndpoint(i, m, self.bytes_per_scalar, self.recv_timeout,
                           queues)
            for i in range(m)
        ]
        results: List = [None] * m
        failures: List[Tuple[int, BaseException, str]] = []
        failed = threading.Event()

        def run(rank: int) -> None:
            try:
                if explorer is not None:
                    explorer.rank_started(rank)
                # Identity unless REPRO_SANITIZE=protocol is on, in
                # which case the endpoint enforces its typestate table.
                results[rank] = worker(
                    wrap_protocol(endpoints[rank]), payloads[rank]
                )
                if explorer is not None:
                    # Leaked posted-exchange handles surface here, at
                    # the rank boundary, as this rank's failure.
                    explorer.rank_completed(rank)
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                failures.append((rank, exc, traceback.format_exc()))
                failed.set()
            finally:
                if explorer is not None:
                    explorer.rank_finished(rank)

        threads = [
            threading.Thread(target=run, args=(i,), daemon=True) for i in range(m)
        ]
        for t in threads:
            t.start()
        try:
            # One shared deadline for the whole launch; a crashed rank is
            # reported immediately (the daemon threads of the surviving
            # ranks are abandoned to their recv timeouts).
            deadline = _now() + timeout
            while not failed.is_set():
                alive = [t for t in threads if t.is_alive()]
                if not alive:
                    break
                remaining = deadline - _now()
                if remaining <= 0:
                    break
                alive[0].join(min(0.05, remaining))
            if failures:
                rank, exc, tb = failures[0]
                raise TransportError(f"rank {rank} failed:\n{tb}") from exc
            if any(t.is_alive() for t in threads):
                stuck = [i for i, t in enumerate(threads) if t.is_alive()]
                raise TransportError(f"ranks {stuck} still running after {timeout}s")
        finally:
            for ep in endpoints:
                ep.close()
            end_schedule_exploration(explorer)
        for ep in endpoints:
            self.meter.merge(ep.meter)
        return results


# ----------------------------------------------------------------------
# Processes + pipes
# ----------------------------------------------------------------------
class _PipeEndpoint(Endpoint):
    def __init__(self, rank, num_parts, bytes_per_scalar, recv_timeout, conns):
        super().__init__(rank, num_parts, bytes_per_scalar, recv_timeout)
        self._conns = conns

    @classmethod
    def _from_launch(cls, rank, num_parts, bytes_per_scalar, recv_timeout,
                     conns, extra):
        return cls(rank, num_parts, bytes_per_scalar, recv_timeout, conns)

    # The per-destination sender thread is the only writer of each pipe
    # (Endpoint routes every outbound message through it), so no send
    # lock is needed.
    def _put(self, dst: int, message) -> None:
        self._conns[dst].send(message)

    def _get(self, src: int):
        conn = self._conns[src]
        try:
            if not conn.poll(self.recv_timeout):
                raise TransportError(
                    f"rank {self.rank} timed out waiting for rank {src} "
                    f"({self.recv_timeout}s)"
                )
            return conn.recv()
        except (EOFError, OSError):
            raise TransportError(
                f"rank {self.rank} lost its connection to rank {src} "
                "(peer died?)"
            ) from None


def _proc_rank_main(worker, rank, num_parts, bytes_per_scalar, recv_timeout,
                    mesh, sibling_result_conns, parent_conn, endpoint_cls,
                    endpoint_extra) -> None:
    """Entry point of one worker process (pipe- or shm-backed).

    The payload arrives through the parent pipe (pickled — the rank's
    working set genuinely leaves the parent), the result and the
    rank's meter travel back the same way.  ``endpoint_cls`` picks the
    data plane: :class:`_PipeEndpoint` moves payloads through the mesh
    pipes; :class:`_ShmEndpoint` moves them through shared-memory
    rings (``endpoint_extra`` names the segments) and uses the mesh
    pipes only to observe peer death.

    Fork duplicated *every* pipe end into this worker (and spawn
    duplicates whatever is in the args), so the ends that belong to
    other ranks are closed first.  Without this, a dead peer's channel
    never drains to EOF — some sibling always still holds a duplicate
    of the write end — and peer death silently degrades into a poll
    timeout instead of an immediate :class:`TransportError`.
    """
    for other_rank, peer_conns in mesh.items():
        if other_rank != rank:
            for conn in peer_conns.values():
                conn.close()
    for conn in sibling_result_conns:
        conn.close()
    conns = mesh[rank]
    endpoint = None
    try:
        endpoint = endpoint_cls._from_launch(
            rank, num_parts, bytes_per_scalar, recv_timeout, conns,
            endpoint_extra,
        )
        payload = parent_conn.recv()
        # The worker sees its endpoint through the typestate proxy
        # under REPRO_SANITIZE=protocol (identity otherwise); the
        # harness close() in the finally below deliberately bypasses
        # it — infrastructure cleanup is not a protocol event.
        result = worker(wrap_protocol(endpoint), payload)
        parent_conn.send(("ok", result, endpoint.meter))
    except BaseException:  # noqa: BLE001 - serialised back to the parent
        try:
            parent_conn.send(("err", traceback.format_exc(), None))
        except Exception:  # pragma: no cover - parent already gone
            pass
    finally:
        # Workers only ever close() their shared-memory handles —
        # unlinking is the creator's (the parent's) job, so an
        # abnormal worker exit can never leak or destroy a segment
        # another rank still maps.
        if endpoint is not None:
            endpoint.close()


class MultiprocessTransport(Transport):
    """Ranks as OS processes, duplex pipes as wires.

    A full mesh of :func:`multiprocessing.Pipe` connections carries
    rank-to-rank traffic; a separate parent pipe per rank ships the
    task payload in (pickled) and the result + byte ledger out.
    ``launch`` enforces the named ``launch_timeout`` deadline: a hung
    pipe kills the worker tree and raises :class:`TransportError`
    instead of stalling the caller — which is what lets CI run a smoke
    job against this transport without risking a wedged runner.
    """

    name = "multiprocess"
    _endpoint_cls = _PipeEndpoint

    def __init__(self, num_parts: int, bytes_per_scalar: Optional[int] = None,
                 recv_timeout: float = 60.0, start_method: Optional[str] = None,
                 dtype=None, launch_timeout: Optional[float] = None) -> None:
        super().__init__(num_parts, bytes_per_scalar, dtype=dtype)
        self.recv_timeout = recv_timeout
        self.start_method = start_method
        # Named uniformly across the data-moving transports (this class
        # used to widen its default to `recv_timeout * 2` silently,
        # unlike LocalTransport — the launch-window asymmetry bugfix).
        self.launch_timeout = (
            float(recv_timeout) if launch_timeout is None
            else float(launch_timeout)
        )

    # -- data-plane hooks (overridden by SharedMemoryTransport) --------
    def _data_plane_setup(self, m: int):
        """Per-launch data-plane state: (per-rank extra arg, cleanup)."""
        return None, lambda: None

    def launch(self, worker, payloads=None, timeout=None):
        import multiprocessing as mp

        m = self.num_parts
        timeout = self.launch_timeout if timeout is None else timeout
        # Per-recv windows stay at the transport's recv_timeout — the
        # bound within which a silent peer must surface as a
        # TransportError; `timeout` only caps the launch as a whole.
        # (Peer *death* surfaces even sooner: the workers close the
        # pipe ends that are not theirs, so a dead peer's channel
        # drains to EOF immediately.)
        payloads = list(payloads) if payloads is not None else [None] * m
        if len(payloads) != m:
            raise ValueError(f"expected {m} payloads, got {len(payloads)}")
        ctx = mp.get_context(self.start_method)
        extra, cleanup = self._data_plane_setup(m)

        mesh: Dict[int, Dict[int, object]] = {i: {} for i in range(m)}
        for i in range(m):
            for j in range(i + 1, m):
                ci, cj = ctx.Pipe(duplex=True)
                mesh[i][j] = ci
                mesh[j][i] = cj
        parent_conns, child_conns, procs = [], [], []
        for rank in range(m):
            parent_end, child_end = ctx.Pipe(duplex=True)
            parent_conns.append(parent_end)
            child_conns.append(child_end)
        for rank in range(m):
            siblings = [c for i, c in enumerate(child_conns) if i != rank]
            procs.append(ctx.Process(
                target=_proc_rank_main,
                args=(worker, rank, m, self.bytes_per_scalar,
                      self.recv_timeout, mesh, siblings, child_conns[rank],
                      self._endpoint_cls, extra),
                daemon=True,
            ))
        try:
            for proc in procs:
                proc.start()
            # The mesh and child-side result ends belong to the workers
            # (fork duplicated them); closing the parent's copies lets a
            # dead peer surface as EOF instead of a silent poll timeout.
            for rank in range(m):
                for conn in mesh[rank].values():
                    conn.close()
                child_conns[rank].close()
            for rank in range(m):
                parent_conns[rank].send(payloads[rank])

            # Collect results as they arrive (not in rank order): a
            # crashed rank is reported immediately with its traceback
            # even while other ranks are still blocked on it.
            deadline = _now() + timeout
            results: List = [None] * m
            pending = {parent_conns[rank]: rank for rank in range(m)}
            while pending:
                remaining = deadline - _now()
                if remaining <= 0:
                    raise TransportError(
                        f"ranks {sorted(pending.values())} produced no "
                        f"result within {timeout}s (hung pipe?)"
                    )
                ready = mp.connection.wait(list(pending), timeout=remaining)
                if not ready:
                    raise TransportError(
                        f"ranks {sorted(pending.values())} produced no "
                        f"result within {timeout}s (hung pipe?)"
                    )
                for conn in ready:
                    rank = pending.pop(conn)
                    try:
                        status, value, meter = conn.recv()
                    except EOFError:
                        raise TransportError(
                            f"rank {rank} died without reporting a result"
                        ) from None
                    if status != "ok":
                        raise TransportError(f"rank {rank} failed:\n{value}")
                    results[rank] = value
                    self.meter.merge(meter)
            for proc in procs:
                proc.join(self.recv_timeout)
            return results
        finally:
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
                    proc.join(1.0)
            cleanup()


# ----------------------------------------------------------------------
# Processes + shared-memory rings
# ----------------------------------------------------------------------
#: Ring segment layout: four int64 control words, then the data bytes.
#: ``head`` counts bytes ever written, ``tail`` bytes ever read — both
#: monotone, so full/empty are never ambiguous and the ring needs no
#: locks with one producer and one consumer.  ``writer_waiting`` /
#: ``reader_waiting`` are the doorbell handshake flags: a side sets
#: its flag before blocking on the control pipe, and the other side
#: rings the pipe (one byte) after making progress only when the flag
#: is up — OS-level wakeup at arrival time, no spinning, no doorbell
#: storms.
#: Width of one framing/control word.  Framing is always int64
#: regardless of the payload dtype — derived, not hard-coded, so the
#: dtype-width lint can hold the rest of the file to the same rule.
_I64 = np.dtype(np.int64).itemsize
_CTRL_HEAD = 0
_CTRL_TAIL = 1
_CTRL_WRITER_WAITING = 2
_CTRL_READER_WAITING = 3
_CTRL_FIELDS = 4
_RING_CTRL_NBYTES = _CTRL_FIELDS * _I64
_MIN_RING_NBYTES = 1 << 12
#: Fixed frame header: payload_nbytes, tag_id, tag_len, dtype_id,
#: dtype_len, ndim (all int64).  Tags and dtype strings are interned
#: per channel — their bytes ride along only the first time an id is
#: used, so a steady-state frame header is 48 bytes + 8·ndim.
_FRAME_FIELDS = 6

_EMPTY_U8 = np.empty(0, dtype=np.uint8)

#: Segments created by this process and not yet unlinked — the atexit
#: backstop for launches torn down by something harsher than `finally`.
_LIVE_SEGMENTS: set = set()


def _unlink_stale_segments() -> None:  # pragma: no cover - shutdown path
    for name in list(_LIVE_SEGMENTS):
        try:
            from multiprocessing import shared_memory

            # This *is* the creator: _LIVE_SEGMENTS only ever holds
            # names this process created, so the re-attach-and-unlink
            # here upholds creator-owns-unlink rather than breaking it.
            # repro-lint: ignore[lifecycle]
            shared_memory.SharedMemory(name=name).unlink()
        except Exception:
            pass
        _LIVE_SEGMENTS.discard(name)


atexit.register(_unlink_stale_segments)


def _attach_segment(name: str):
    """Attach (never create) a segment without registering it with the
    resource tracker: the creator owns the unlink, and a second
    registration would make the *attacher's* tracker unlink — and warn
    about — a segment the parent still owns (the CPython "leaked
    shared_memory" false positive under spawn)."""
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track= parameter (bpo-38119)
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register


class _RingWaiter:
    """Doorbell/deadline policy for one blocking ring operation.

    When the ring cannot advance, the stalled side raises its waiting
    flag in the segment, re-checks the cursors (the flag-then-recheck
    handshake closes the lost-wakeup race), and blocks on the control
    pipe — which in shm mode carries only doorbell bytes and dead-peer
    EOF.  The other side rings the bell after moving a cursor *only*
    when the flag is up, so steady-state traffic pays zero doorbell
    syscalls and a blocked side wakes at arrival time (OS-level, no
    spinning — on a loaded or single-core host, spinning would steal
    the CPU from the very peer being waited on).  A short poll
    backstop covers the residual reorder window and doorbells drained
    by a sibling thread.  ``progress`` resets the no-progress window,
    so a frame larger than the ring gets ``recv_timeout`` per stalled
    chunk, not per frame.
    """

    __slots__ = ("rank", "peer", "conn", "lock", "timeout", "what",
                 "deadline", "peer_dead")

    _BACKSTOP = 0.005
    _SPIN = 1  # sched_yield rounds before parking on the doorbell

    def __init__(self, rank, peer, conn, lock, timeout, what):
        self.rank = rank
        self.peer = peer
        self.conn = conn
        # Two threads share each control pipe (the endpoint's calling
        # thread reading one ring, the per-destination sender thread
        # writing the other): concurrent recv_bytes would interleave
        # the length-prefixed doorbell frames, so poll + drain is
        # serialised per connection.
        self.lock = lock
        self.timeout = timeout
        self.what = what
        self.deadline = _now() + timeout
        self.peer_dead = False

    def progress(self) -> None:
        self.deadline = _now() + self.timeout

    def _peer_died(self) -> TransportError:
        return TransportError(
            f"rank {self.rank} lost its connection to rank {self.peer} "
            "(peer died?)"
        )

    def ring_doorbell(self) -> None:
        if self.conn is None or self.peer_dead:
            return  # no control channel; the peer backs off on a timer
        try:
            self.conn.send_bytes(b"!")
        except (BrokenPipeError, OSError):
            # A dead peer can't be woken, but that doesn't invalidate
            # the cursor move we just made — our own stall (if any)
            # will surface the death from _sleep.
            self.peer_dead = True

    def wait_readable(self, ring: "_ShmRing") -> None:
        ctrl = ring._ctrl

        def readable() -> bool:
            return int(ctrl[_CTRL_HEAD]) - int(ctrl[_CTRL_TAIL]) > 0

        for _ in range(self._SPIN):
            # Brief yield-spin before parking: a peer mid-copy usually
            # publishes within a scheduler quantum, and catching it
            # here skips the doorbell syscall round-trip entirely.
            time.sleep(0)
            if readable():
                return
        ctrl[_CTRL_READER_WAITING] = 1
        try:
            if readable():
                return  # data landed between the check and the flag
            self._sleep(readable)
        finally:
            ctrl[_CTRL_READER_WAITING] = 0

    def wait_writable(self, ring: "_ShmRing") -> None:
        ctrl = ring._ctrl
        cap = ring.capacity

        def writable() -> bool:
            return cap - (int(ctrl[_CTRL_HEAD]) - int(ctrl[_CTRL_TAIL])) > 0

        for _ in range(self._SPIN):
            time.sleep(0)
            if writable():
                return
        ctrl[_CTRL_WRITER_WAITING] = 1
        try:
            if writable():
                return
            self._sleep(writable)
        finally:
            ctrl[_CTRL_WRITER_WAITING] = 0

    def _sleep(self, ready) -> None:
        conn = self.conn
        if conn is None:
            # No control channel (in-process harness): plain backoff.
            time.sleep(5e-5)
        elif self.peer_dead:
            # The peer's pipe end only closes when its process exits,
            # so every ring write it will ever make is already visible:
            # a ring that still cannot advance never will.
            if not ready():
                raise self._peer_died()
            return
        else:
            # repro-lint: ignore[blocking-in-lock] — serialising both
            # ring directions on one doorbell pipe is the design; the
            # poll is bounded by _BACKSTOP, so the stall is too.
            with self.lock:
                # The sibling thread may have drained our doorbell
                # while it held the lock — recheck before blocking.
                if ready():
                    return
                try:
                    if conn.poll(self._BACKSTOP):
                        # Drain every pending doorbell; EOF here is how
                        # a dead peer surfaces (its pipe end closed).
                        conn.recv_bytes()
                        while conn.poll(0):
                            conn.recv_bytes()
                except (EOFError, OSError):
                    # EOF is a wake-up, not a verdict — the peer may
                    # have published the frame we need and then exited
                    # cleanly.  Recheck the ring; only a stall that
                    # persists (next _sleep) is fatal.
                    self.peer_dead = True
                    return
        if _now() > self.deadline:
            raise TransportError(
                f"rank {self.rank} timed out {self.what} rank {self.peer} "
                f"({self.timeout}s)"
            )


class _ShmRing:
    """Single-producer / single-consumer byte ring over one segment.

    The producer only ever advances ``head``, the consumer only
    ``tail``; each side reads the other's cursor conservatively, so no
    locks are needed.  Writes and reads are chunked against available
    space — a frame larger than the buffer streams through in pieces
    as the reader drains, bounded memory for any frame size.
    """

    __slots__ = ("shm", "name", "capacity", "_ctrl", "_data")

    def __init__(self, shm) -> None:
        self.shm = shm
        self.name = shm.name
        self.capacity = shm.size - _RING_CTRL_NBYTES
        self._ctrl = np.frombuffer(shm.buf, dtype=np.int64, count=_CTRL_FIELDS)
        self._data = np.frombuffer(
            shm.buf, dtype=np.uint8, offset=_RING_CTRL_NBYTES,
            count=self.capacity,
        )

    # -- lifecycle ------------------------------------------------------
    @classmethod
    def create(cls, name: str, nbytes: int) -> "_ShmRing":
        from multiprocessing import shared_memory

        if nbytes < _MIN_RING_NBYTES:
            raise ValueError(
                f"ring_bytes must be >= {_MIN_RING_NBYTES}, got {nbytes}"
            )
        try:
            shm = shared_memory.SharedMemory(
                name=name, create=True, size=_RING_CTRL_NBYTES + int(nbytes)
            )
        except OSError as exc:
            raise TransportError(
                f"could not allocate a {nbytes}-byte shared-memory ring "
                f"({exc}); is /dev/shm large enough?"
            ) from exc
        try:
            _LIVE_SEGMENTS.add(shm.name)
            ring = cls(shm)
            ring._ctrl[:] = 0
        except BaseException:
            # The segment exists kernel-side the moment create=True
            # returns; if mapping it fails we must tear it down here or
            # it lingers in /dev/shm until the atexit backstop.
            try:
                shm.close()  # may refuse while half-built views map it
            finally:
                shm.unlink()
                _LIVE_SEGMENTS.discard(shm.name)
            raise
        return ring

    @classmethod
    def attach(cls, name: str) -> "_ShmRing":
        return cls(_attach_segment(name))

    def close(self) -> None:
        """Drop this process's mapping (never the segment itself)."""
        self._ctrl = None
        self._data = None
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - a sender thread still maps it
            pass

    def unlink(self) -> None:
        """Destroy the segment — creator only."""
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        _LIVE_SEGMENTS.discard(self.name)

    def free_bytes(self) -> int:
        """Writable bytes right now — producer-side view, conservative
        (the reader can only grow it by draining)."""
        ctrl = self._ctrl
        return self.capacity - (int(ctrl[_CTRL_HEAD]) - int(ctrl[_CTRL_TAIL]))

    # -- producer -------------------------------------------------------
    def write(self, raw: np.ndarray, waiter: _RingWaiter) -> None:
        """Copy ``raw`` (1-d uint8) in, chunking as the reader drains."""
        ctrl, data, cap = self._ctrl, self._data, self.capacity
        n = raw.size
        written = 0
        while written < n:
            head = int(ctrl[_CTRL_HEAD])
            free = cap - (head - int(ctrl[_CTRL_TAIL]))
            if free <= 0:
                waiter.wait_writable(self)
                continue
            k = min(free, n - written)
            pos = head % cap
            first = min(k, cap - pos)
            data[pos:pos + first] = raw[written:written + first]
            if k > first:
                data[:k - first] = raw[written + first:written + k]
            # Publish only after the payload bytes are in place.
            ctrl[_CTRL_HEAD] = head + k
            if ctrl[_CTRL_READER_WAITING]:
                waiter.ring_doorbell()
            written += k
            waiter.progress()

    # -- consumer -------------------------------------------------------
    def read_into(self, out: np.ndarray, waiter: _RingWaiter) -> None:
        """Fill ``out`` (1-d uint8) from the ring, chunk by chunk."""
        ctrl, data, cap = self._ctrl, self._data, self.capacity
        n = out.size
        got = 0
        while got < n:
            tail = int(ctrl[_CTRL_TAIL])
            avail = int(ctrl[_CTRL_HEAD]) - tail
            if avail <= 0:
                waiter.wait_readable(self)
                continue
            k = min(avail, n - got)
            pos = tail % cap
            first = min(k, cap - pos)
            out[got:got + first] = data[pos:pos + first]
            if k > first:
                out[got + first:got + k] = data[:k - first]
            ctrl[_CTRL_TAIL] = tail + k
            if ctrl[_CTRL_WRITER_WAITING]:
                waiter.ring_doorbell()
            got += k
            waiter.progress()


class _ShmEndpoint(Endpoint):
    """One rank's handle on the shared-memory data plane.

    ``_put`` frames a numpy payload into the outbound ring for its
    destination — header word, then interned tag/dtype bytes on first
    use, then the raw payload memcpy'd in; ``_get`` reverses it.  The
    mesh pipes are consulted only when a ring stalls, to turn peer
    death into an immediate :class:`TransportError` (EOF) instead of a
    timeout.  Everything above the raw channel — metering, FIFO send
    tickets, exchanges, collectives, blocked-seconds accounting — is
    the shared :class:`Endpoint` machinery, with one refinement: a
    send whose channel is idle and whose frame fits the ring's free
    space is written inline from the calling thread (see
    :meth:`_enqueue`) instead of paying the queue/condvar handoff.
    """

    def __init__(self, rank, num_parts, bytes_per_scalar, recv_timeout,
                 conns, send_rings, recv_rings):
        super().__init__(rank, num_parts, bytes_per_scalar, recv_timeout)
        self._conns = conns
        self._send_rings = send_rings
        self._recv_rings = recv_rings
        # Per-channel intern tables: ids are assigned in first-use
        # order by the producer and mirrored by the consumer — valid
        # because each directed ring is strictly FIFO.
        self._tags_out: Dict[int, Dict[str, int]] = {d: {} for d in send_rings}
        self._tags_in: Dict[int, List[str]] = {s: [] for s in recv_rings}
        self._dtypes_out: Dict[int, Dict[str, int]] = {d: {} for d in send_rings}
        self._dtypes_in: Dict[int, List[str]] = {s: [] for s in recv_rings}
        # One lock per control pipe: the calling thread (reads) and the
        # per-destination sender thread (writes) both park on the same
        # pipe when their ring stalls, and concurrent recv_bytes would
        # tear the length-prefixed doorbell frames.
        # make_lock: plain Lock normally, order-checked wrapper under
        # REPRO_SANITIZE=locks.  One name per creation site — instances
        # sharing a name form one lock-order class.
        self._conn_locks: Dict[int, threading.Lock] = {
            peer: make_lock("shm-conn") for peer in conns
        }

    @classmethod
    def _from_launch(cls, rank, num_parts, bytes_per_scalar, recv_timeout,
                     conns, extra):
        ring_names = extra
        send_rings = {
            j: _ShmRing.attach(ring_names[(rank, j)])
            for j in range(num_parts) if j != rank
        }
        recv_rings = {
            j: _ShmRing.attach(ring_names[(j, rank)])
            for j in range(num_parts) if j != rank
        }
        return cls(rank, num_parts, bytes_per_scalar, recv_timeout, conns,
                   send_rings, recv_rings)

    def _waiter(self, peer: int, what: str) -> _RingWaiter:
        return _RingWaiter(self.rank, peer, self._conns.get(peer),
                           self._conn_locks.get(peer) or make_lock("shm-conn"),
                           self.recv_timeout, what)

    # -- ordered outbound, inline fast-path -----------------------------
    def _frame_nbytes(self, dst: int, message) -> int:
        tag, payload = message
        arr = np.asarray(payload)
        n = _I64 * (_FRAME_FIELDS + arr.ndim) + arr.size * arr.dtype.itemsize
        if tag not in self._tags_out[dst]:
            n += len(tag.encode("utf-8"))
        if arr.dtype.str not in self._dtypes_out[dst]:
            n += len(arr.dtype.str.encode("ascii"))
        return n

    def _enqueue(self, dst: int, message, tag: str) -> _SendTicket:
        """Ordered send with an inline fast-path.

        Every send originates on the endpoint's calling thread, so
        whenever the ordered queue to ``dst`` is idle, writing the
        frame right here preserves FIFO by program order — and skips
        the queue/ticket/condvar handoff (two thread wakeups through
        the GIL per message), which on a loaded host costs more than
        the memcpy itself.  The fast-path is taken only when the whole
        frame fits the ring's free space *now*: with the queue idle no
        other writer can shrink it, the reader can only grow it, so
        the inline write cannot block and ``isend`` stays
        non-blocking.  Large frames (above an eighth of the ring) take
        the sender thread even when they would fit: for those the
        copy itself is the cost, and pushing it to the sender thread
        lets the calling thread drain inbound traffic concurrently —
        the overlap that keeps both peers' rings moving.  Oversized or
        queued-behind frames likewise fall back, unchanged.
        """
        q = self._send_queues.get(dst)
        if q is None or q.unfinished_tasks == 0:
            ring = self._send_rings.get(dst)
            if (ring is not None
                    and self._frame_nbytes(dst, message)
                    <= min(ring.free_bytes(), ring.capacity >> 3)):
                ticket = _SendTicket(dst, tag)
                try:
                    self._put(dst, message)
                except BaseException as exc:  # noqa: BLE001 - at join
                    ticket.error = exc
                ticket._done.set()
                return ticket
        return super()._enqueue(dst, message, tag)

    def _sender_loop(self, dst: int) -> None:
        # Identical to the base loop except for the ``task_done`` — the
        # fast-path reads ``unfinished_tasks`` to know whether the
        # channel is idle, so completions must be acknowledged.
        q = self._send_queues[dst]
        while True:
            item = q.get()
            try:
                if item is None:
                    return
                message, ticket = item
                try:
                    self._put(dst, message)
                except BaseException as exc:  # noqa: BLE001 - at join
                    ticket.error = exc
                finally:
                    ticket._done.set()
            finally:
                q.task_done()

    # -- raw channel ----------------------------------------------------
    def _put(self, dst: int, message) -> None:
        tag, payload = message
        arr = np.ascontiguousarray(payload)
        raw = arr.reshape(-1).view(np.uint8) if arr.size else _EMPTY_U8
        tags = self._tags_out[dst]
        tag_id = tags.get(tag)
        tag_bytes = b""
        if tag_id is None:
            tag_id = tags[tag] = len(tags)
            tag_bytes = tag.encode("utf-8")
        dtypes = self._dtypes_out[dst]
        dtype_str = arr.dtype.str
        dtype_id = dtypes.get(dtype_str)
        dtype_bytes = b""
        if dtype_id is None:
            dtype_id = dtypes[dtype_str] = len(dtypes)
            dtype_bytes = dtype_str.encode("ascii")
        header = np.array(
            [raw.size, tag_id, len(tag_bytes), dtype_id, len(dtype_bytes),
             arr.ndim],
            dtype=np.int64,
        )
        shape = np.asarray(arr.shape, dtype=np.int64)
        meta = (header.tobytes() + tag_bytes + dtype_bytes + shape.tobytes())
        ring = self._send_rings[dst]
        waiter = self._waiter(dst, "writing to")
        ring.write(np.frombuffer(meta, dtype=np.uint8), waiter)
        if raw.size:
            ring.write(raw, waiter)

    def _get(self, src: int):
        ring = self._recv_rings[src]
        waiter = self._waiter(src, "waiting for")
        header = np.empty(_FRAME_FIELDS, dtype=np.int64)
        ring.read_into(header.view(np.uint8), waiter)
        payload_nbytes, tag_id, tag_len, dtype_id, dtype_len, ndim = (
            int(v) for v in header
        )
        trailer = np.empty(tag_len + dtype_len + _I64 * ndim, dtype=np.uint8)
        ring.read_into(trailer, waiter)
        trailer_bytes = trailer.tobytes()
        known_tags = self._tags_in[src]
        if tag_len:
            known_tags.append(trailer_bytes[:tag_len].decode("utf-8"))
        known_dtypes = self._dtypes_in[src]
        if dtype_len:
            known_dtypes.append(
                trailer_bytes[tag_len:tag_len + dtype_len].decode("ascii")
            )
        try:
            tag = known_tags[tag_id]
            dtype = np.dtype(known_dtypes[dtype_id])
        except (IndexError, TypeError) as exc:
            raise TransportError(
                f"rank {self.rank} read a corrupt frame header from rank "
                f"{src} (unknown tag/dtype id)"
            ) from exc
        shape = tuple(
            np.frombuffer(trailer_bytes, dtype=np.int64,
                          offset=tag_len + dtype_len, count=ndim)
        ) if ndim else ()
        out = np.empty(shape, dtype=dtype)
        if out.nbytes != payload_nbytes:
            raise TransportError(
                f"rank {self.rank} read a corrupt frame from rank {src}: "
                f"header promises {payload_nbytes} B, shape/dtype give "
                f"{out.nbytes} B"
            )
        if out.size:
            ring.read_into(out.reshape(-1).view(np.uint8), waiter)
        return tag, out

    def close(self) -> None:
        super().close()
        # Give the sender threads a moment to drain their queues before
        # dropping the ring mappings they write through; a thread stuck
        # past its own recv_timeout is abandoned (its ring close is
        # skipped — the OS reclaims the mapping at process exit, and
        # the segment itself is the parent's to unlink).
        stuck = set()
        for dst, thread in self._send_threads.items():
            thread.join(2.0)
            if thread.is_alive():
                stuck.add(dst)
        for dst, ring in self._send_rings.items():
            if dst not in stuck:
                ring.close()
        for ring in self._recv_rings.values():
            ring.close()


class SharedMemoryTransport(MultiprocessTransport):
    """Ranks as OS processes, shared-memory rings as wires.

    The zero-copy data plane: one
    :class:`multiprocessing.shared_memory` ring buffer per *directed*
    rank pair carries raw numpy frames — no pickle framing, no pipe
    copies, payload bytes move by exactly one memcpy in and one out.
    The pipe mesh stays, carrying only control traffic (launch
    payload, result + meter, doorbell wakeups, dead-peer EOF), so
    dead-peer detection, metering, FIFO send ordering and the
    non-blocking exchange path behave exactly as on
    :class:`MultiprocessTransport`.

    Lifecycle discipline: the parent *creates* every segment before
    the workers start and is the only process that ever *unlinks*
    (``launch``'s ``finally`` plus an ``atexit`` backstop); workers
    attach without resource-tracker registration and only ``close()``
    their mappings — so neither a crashed worker nor CPython's tracker
    can leak or prematurely destroy a segment.

    ``ring_bytes`` sizes each ring's data area.  Frames larger than
    the ring stream through in chunks as the reader drains, so
    correctness never depends on the size — only latency does.
    """

    name = "shm"
    _endpoint_cls = _ShmEndpoint

    def __init__(self, num_parts: int, bytes_per_scalar: Optional[int] = None,
                 recv_timeout: float = 60.0, start_method: Optional[str] = None,
                 dtype=None, launch_timeout: Optional[float] = None,
                 ring_bytes: int = 4 << 20) -> None:
        super().__init__(num_parts, bytes_per_scalar,
                         recv_timeout=recv_timeout, start_method=start_method,
                         dtype=dtype, launch_timeout=launch_timeout)
        if ring_bytes < _MIN_RING_NBYTES:
            raise ValueError(
                f"ring_bytes must be >= {_MIN_RING_NBYTES}, got {ring_bytes}"
            )
        self.ring_bytes = int(ring_bytes)
        #: Segment names of the most recent launch (tests assert they
        #: are gone from /dev/shm after teardown).
        self._segment_names: List[str] = []

    def _data_plane_setup(self, m: int):
        token = uuid.uuid4().hex[:8]
        rings: List[_ShmRing] = []
        names: Dict[Tuple[int, int], str] = {}
        try:
            for i in range(m):
                for j in range(m):
                    if i == j:
                        continue
                    # Short names: POSIX shm caps them at 31 chars on
                    # some platforms (macOS), '/' included.
                    name = f"rg{token}_{i}_{j}"
                    rings.append(_ShmRing.create(name, self.ring_bytes))
                    names[(i, j)] = name
        except BaseException:
            for ring in rings:
                ring.close()
                ring.unlink()
            raise
        self._segment_names = [ring.name for ring in rings]

        def cleanup() -> None:
            # Creator-owns-unlink: by the time launch()'s finally runs
            # the workers are dead or done, so dropping the parent's
            # mapping and unlinking destroys the segment for good.
            for ring in rings:
                ring.close()
                ring.unlink()

        return names, cleanup


def _now() -> float:
    return time.monotonic()
