"""Transport abstraction: one metering model, three wire implementations.

Every trainer in this repo accounts communication through the same
byte-metering model (Eq. 3 made measurable): point-to-point transfers
land in an ``(m, m)`` ``pairwise`` matrix and a per-tag byte ledger,
and the gradient AllReduce is priced with the ring wire-volume formula
``ceil(2 (m-1) n / m)`` scalars per rank.  This module separates that
*model* from the *wire*:

* :class:`ByteMeter` — the metering core, shared verbatim by every
  transport so per-tag totals and pairwise matrices are byte-for-byte
  identical no matter how the data actually moves;
* :class:`Transport` — the interface.  The metering plane
  (:meth:`~Transport.send` / :meth:`~Transport.broadcast` /
  :meth:`~Transport.allreduce` with scalar *counts*) is what the
  in-process trainers consume; the data plane
  (:meth:`~Transport.launch` + per-rank :class:`Endpoint` objects with
  payload-carrying ``send``/``recv``/``allreduce``) is what
  :class:`~repro.dist.executor.ProcessRankExecutor` consumes;
* :class:`LocalTransport` — ranks as threads, queues as wires.  Fast,
  deterministic, no serialisation: the reference data-moving
  implementation for tests;
* :class:`MultiprocessTransport` — ranks as OS processes, pipes as
  wires.  Payloads are pickled through the pipe (including the initial
  per-rank task shipment), so a rank's working set really does leave
  the parent process, like it would leave the machine in a cluster run.

The in-process :class:`~repro.dist.comm.SimulatedCommunicator` is the
third implementation: it subclasses :class:`Transport` and implements
only the metering plane (its "wire" is shared process memory, so
nothing needs to travel).

Metering is canonical, not observational: a transport meters the
*model's* wire volume (scalar counts × ``bytes_per_scalar``, ring
formula for collectives) rather than the bytes its implementation
happens to push — pickle framing, pipe overhead and the choice of
ring- vs tree-AllReduce never leak into the measurements.  That is
what makes cost-model numbers comparable across simulated and real
runs, and it is asserted by the transport conformance suite.

``bytes_per_scalar`` itself is honest by construction: unless
overridden it derives from the transport's configured ``dtype``
(:func:`~repro.tensor.dtype.scalar_nbytes` — 8 for the float64
default, 4 under ``--dtype float32``), so the ledger prices exactly
the scalar width the data plane actually pickles and ships.
"""

from __future__ import annotations

import queue
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..tensor.dtype import float_dtype_for_nbytes, resolve_dtype, scalar_nbytes

__all__ = [
    "ByteMeter",
    "Endpoint",
    "ExchangeHandle",
    "LocalTransport",
    "MultiprocessTransport",
    "Transport",
    "TransportError",
    "resolve_transport",
    "ring_allreduce_scalars",
]


def resolve_transport(transport, num_parts: int, bytes_per_scalar: Optional[int] = None,
                      dtype=None, recv_timeout: Optional[float] = None):
    """Normalise a trainer/executor ``transport=`` argument.

    ``None`` yields a fresh metering-only
    :class:`~repro.dist.comm.SimulatedCommunicator`; the strings
    ``"local"`` / ``"multiprocess"`` build the matching data-moving
    transport; an existing :class:`Transport` is validated against the
    partition's rank count and returned as-is (its own metering and
    timeout configuration wins).  A freshly built transport meters
    ``scalar_nbytes(dtype)`` per scalar unless ``bytes_per_scalar``
    overrides it explicitly, and waits ``recv_timeout`` seconds per
    receive when given (callers raising their launch deadline — e.g.
    ``ProcessRankExecutor(timeout=...)`` — widen the per-recv window
    with it; peer *death* is detected by EOF regardless).
    """
    if transport is None or transport == "simulated":
        from .comm import SimulatedCommunicator

        return SimulatedCommunicator(num_parts, bytes_per_scalar, dtype=dtype)
    kwargs = {} if recv_timeout is None else {"recv_timeout": float(recv_timeout)}
    if transport == "local":
        return LocalTransport(num_parts, bytes_per_scalar, dtype=dtype, **kwargs)
    if transport == "multiprocess":
        return MultiprocessTransport(num_parts, bytes_per_scalar, dtype=dtype,
                                     **kwargs)
    if not isinstance(transport, Transport):
        raise TypeError(f"unknown transport {transport!r}")
    if transport.num_parts != num_parts:
        raise ValueError(
            f"transport has {transport.num_parts} ranks, "
            f"partition has {num_parts}"
        )
    return transport


class TransportError(RuntimeError):
    """A data-plane failure: timeout, tag mismatch, or a dead peer."""


def ring_allreduce_scalars(num_parts: int, num_scalars: int) -> int:
    """Per-rank scalars sent by a ring AllReduce of ``num_scalars``.

    Each of the ``m`` ranks sends ``ceil(2 (m-1) n / m)`` scalars to
    its ring successor (reduce-scatter + allgather).  Degenerate cases
    (one rank, nothing to reduce) send nothing.
    """
    if num_parts < 2 or num_scalars <= 0:
        return 0
    return -(-2 * (num_parts - 1) * int(num_scalars) // num_parts)


class ByteMeter:
    """Pairwise + per-tag byte ledger shared by every transport.

    The recording rules are the contract the conformance suite pins
    down: self-sends and empty sends meter zero, point-to-point bytes
    land in ``pairwise[src, dst]``, and the AllReduce meters the ring
    formula from each rank to its ring successor regardless of the
    algorithm that actually moves the data.

    ``bytes_per_scalar`` omitted derives from ``dtype`` (the configured
    precision of the run; library default when that is omitted too) —
    the ledger prices exactly the scalar width the run ships.
    """

    def __init__(self, num_parts: int, bytes_per_scalar: Optional[int] = None,
                 dtype=None) -> None:
        if num_parts < 1:
            raise ValueError(f"num_parts must be >= 1, got {num_parts}")
        self.num_parts = num_parts
        self.bytes_per_scalar = (
            int(bytes_per_scalar) if bytes_per_scalar is not None
            else scalar_nbytes(dtype)
        )
        self.pairwise: np.ndarray = np.zeros((num_parts, num_parts), dtype=np.int64)
        self.by_tag: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero all counters (called at the top of every epoch)."""
        self.pairwise[:] = 0
        self.by_tag = {}

    def record_send(self, src: int, dst: int, num_scalars: int, tag: str) -> int:
        """Meter a point-to-point transfer of ``num_scalars`` scalars."""
        if src == dst or num_scalars <= 0:
            return 0
        nbytes = int(num_scalars) * self.bytes_per_scalar
        self.pairwise[src, dst] += nbytes
        self.by_tag[tag] = self.by_tag.get(tag, 0) + nbytes
        return nbytes

    def record_broadcast(self, src: int, num_scalars: int, tag: str) -> int:
        """Meter ``src`` sending ``num_scalars`` scalars to every other rank."""
        total = 0
        for dst in range(self.num_parts):
            if dst != src:
                total += self.record_send(src, dst, num_scalars, tag)
        return total

    def record_allreduce_rank(self, src: int, num_scalars: int, tag: str) -> int:
        """Meter one rank's share of a ring AllReduce (to its successor)."""
        per_rank = ring_allreduce_scalars(self.num_parts, num_scalars)
        return self.record_send(src, (src + 1) % self.num_parts, per_rank, tag)

    def record_allreduce(self, num_scalars: int, tag: str) -> int:
        """Meter a full ring AllReduce: every rank's share at once."""
        total = 0
        for src in range(self.num_parts):
            total += self.record_allreduce_rank(src, num_scalars, tag)
        return total

    # ------------------------------------------------------------------
    def total_bytes(self, tag: Optional[str] = None) -> int:
        """Bytes metered under ``tag``, or across all tags when omitted."""
        if tag is not None:
            return self.by_tag.get(tag, 0)
        return sum(self.by_tag.values())

    def merge(self, other: "ByteMeter") -> None:
        """Fold another rank's ledger into this one."""
        if other.num_parts != self.num_parts:
            raise ValueError("cannot merge meters with different num_parts")
        self.pairwise += other.pairwise
        for tag, nbytes in other.by_tag.items():
            self.by_tag[tag] = self.by_tag.get(tag, 0) + nbytes

    def snapshot(self) -> Tuple[np.ndarray, Dict[str, int]]:
        """(pairwise copy, by-tag copy) — one epoch's record."""
        return self.pairwise.copy(), dict(self.by_tag)


class Transport:
    """Interface shared by the simulated, thread and process transports.

    The *metering plane* (this class) mirrors the historical
    ``SimulatedCommunicator`` API — ``send`` / ``broadcast`` /
    ``allreduce`` take scalar **counts** and only touch the meter — so
    any transport can be handed to the in-process trainers.  Data-moving
    implementations additionally provide :meth:`launch`, which runs one
    worker per rank against payload-carrying :class:`Endpoint` objects
    and folds the per-rank meters back into :attr:`meter`.
    """

    name = "abstract"

    def __init__(self, num_parts: int, bytes_per_scalar: Optional[int] = None,
                 dtype=None) -> None:
        self.dtype = resolve_dtype(dtype)
        self.meter = ByteMeter(num_parts, bytes_per_scalar, dtype=self.dtype)

    # -- metering plane (SimulatedCommunicator-compatible) -------------
    @property
    def num_parts(self) -> int:
        return self.meter.num_parts

    @property
    def bytes_per_scalar(self) -> int:
        return self.meter.bytes_per_scalar

    @property
    def pairwise(self) -> np.ndarray:
        return self.meter.pairwise

    @property
    def _by_tag(self) -> Dict[str, int]:  # backwards-compatible alias
        return self.meter.by_tag

    def reset(self) -> None:
        self.meter.reset()

    def send(self, src: int, dst: int, num_scalars: int, tag: str) -> int:
        return self.meter.record_send(src, dst, num_scalars, tag)

    def broadcast(self, src: int, num_scalars: int, tag: str) -> int:
        return self.meter.record_broadcast(src, num_scalars, tag)

    def allreduce(self, num_scalars: int, tag: str) -> int:
        return self.meter.record_allreduce(num_scalars, tag)

    def total_bytes(self, tag: Optional[str] = None) -> int:
        return self.meter.total_bytes(tag)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(m={self.num_parts}, "
            f"total={self.total_bytes()}B)"
        )

    # -- data plane ----------------------------------------------------
    def launch(
        self,
        worker: Callable,
        payloads: Optional[Sequence] = None,
        timeout: Optional[float] = None,
    ) -> List:
        """Run ``worker(endpoint, payload)`` once per rank; return results.

        Only data-moving transports implement this; the simulated
        communicator's ranks live inside the trainers' own loop.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no data plane; use LocalTransport "
            "or MultiprocessTransport to actually execute ranks"
        )


class _SendTicket:
    """Completion handle of one queued outbound message.

    Mirrors the ``threading.Thread`` join/is_alive surface the callers
    historically used, plus an ``error`` slot so a failed push (dead
    peer pipe) surfaces at the join instead of vanishing with the
    sender thread.
    """

    __slots__ = ("dst", "tag", "_done", "error")

    def __init__(self, dst: int, tag: str) -> None:
        self.dst = dst
        self.tag = tag
        self._done = threading.Event()
        self.error: Optional[BaseException] = None

    def join(self, timeout: Optional[float] = None) -> None:
        self._done.wait(timeout)

    def is_alive(self) -> bool:
        return not self._done.is_set()


@dataclass
class ExchangeHandle:
    """In-flight exchange: posted sends plus deferred receives.

    Produced by :meth:`Endpoint.post_exchange`; redeemed by
    :meth:`Endpoint.complete_exchange`.  Holding a handle means the
    outbound payloads are already metered and queued on their channels
    while the caller computes — the overlap the pipelined schedule is
    built on.
    """

    tag: str
    sends: List[_SendTicket] = field(default_factory=list)
    expect: List[int] = field(default_factory=list)
    completed: bool = False


class Endpoint:
    """One rank's handle on a data-moving transport.

    Subclasses supply the raw channel primitives ``_put`` / ``_get``;
    everything else — metering, tag checking, deadlock-free pairwise
    exchange, the ring/tree AllReduce — is shared, so the local and
    multiprocess transports are behaviourally identical by
    construction.

    Outbound messages to one destination travel through a single
    per-destination sender thread fed by a FIFO queue, so posting
    several non-blocking sends to the same peer (the pipelined
    schedule posts every layer's stale features up front) preserves
    their order on the channel — a guarantee thread-per-send cannot
    make.

    :attr:`blocked_seconds` accumulates the wall time this rank spends
    inside ``_get`` waiting for inbound messages; per-epoch deltas of
    it are what split measured epoch time into compute vs
    blocked-in-recv.
    """

    def __init__(self, rank: int, num_parts: int, bytes_per_scalar: int,
                 recv_timeout: float) -> None:
        self.rank = rank
        self.num_parts = num_parts
        self.bytes_per_scalar = bytes_per_scalar
        self.recv_timeout = recv_timeout
        self.meter = ByteMeter(num_parts, bytes_per_scalar)
        self.blocked_seconds = 0.0
        self._send_queues: Dict[int, queue.Queue] = {}
        self._send_threads: Dict[int, threading.Thread] = {}
        self._closed = False

    # -- raw channel (implemented by subclasses) -----------------------
    def _put(self, dst: int, message) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _get(self, src: int):  # pragma: no cover - abstract
        raise NotImplementedError

    # -- ordered outbound queues ---------------------------------------
    def _sender_loop(self, dst: int) -> None:
        q = self._send_queues[dst]
        while True:
            item = q.get()
            if item is None:
                return
            message, ticket = item
            try:
                self._put(dst, message)
            except BaseException as exc:  # noqa: BLE001 - surfaced at join
                ticket.error = exc
            finally:
                ticket._done.set()

    def _enqueue(self, dst: int, message, tag: str) -> _SendTicket:
        """Queue a message on the ordered channel to ``dst``."""
        if dst not in self._send_queues:
            self._send_queues[dst] = queue.Queue()
            thread = threading.Thread(
                target=self._sender_loop, args=(dst,), daemon=True
            )
            self._send_threads[dst] = thread
            thread.start()
        ticket = _SendTicket(dst, tag)
        self._send_queues[dst].put((message, ticket))
        return ticket

    def _join_send(self, ticket: _SendTicket) -> None:
        """Wait for a queued send; a send still in flight after the
        receive window (peer not draining — a hang the old bare
        ``thread.join(timeout)`` silently swallowed) or a failed push
        raises :class:`TransportError` instead of being abandoned."""
        ticket.join(self.recv_timeout)
        if ticket.is_alive():
            raise TransportError(
                f"rank {self.rank} send (tag {ticket.tag!r}) to rank "
                f"{ticket.dst} still in flight after {self.recv_timeout}s "
                "(peer not draining?)"
            )
        if ticket.error is not None:
            raise TransportError(
                f"rank {self.rank} failed to ship tag {ticket.tag!r} to "
                f"rank {ticket.dst} (peer died?)"
            ) from ticket.error

    def close(self) -> None:
        """Shut the sender threads down (launch teardown)."""
        self._closed = True
        for q in self._send_queues.values():
            q.put(None)

    def _check_float_width(self, payload: np.ndarray, tag: str) -> None:
        """Metered == shipped, enforced: a float payload whose scalar
        width differs from the meter's ``bytes_per_scalar`` would be
        silently mis-priced (the pre-dtype-subsystem bug).  Integer
        payloads (index broadcasts) are exempt — they are metered at
        the run's scalar width by convention."""
        if (
            payload.size
            and payload.dtype.kind == "f"
            and payload.dtype.itemsize != self.bytes_per_scalar
        ):
            raise TransportError(
                f"rank {self.rank} shipping a {payload.dtype} payload "
                f"(tag {tag!r}) through a transport metering "
                f"{self.bytes_per_scalar} B/scalar — metered would not "
                "equal shipped; construct the transport with the run's "
                "dtype (or cast the payload)"
            )

    # -- point-to-point ------------------------------------------------
    def send(self, dst: int, payload: np.ndarray, tag: str) -> int:
        """Send ``payload`` to ``dst``; meters ``payload.size`` scalars.

        Empty payloads still travel (receivers stay in lockstep) but
        meter zero bytes, matching the simulated semantics.  Blocks
        until the payload is on the wire (the queued-send join), so a
        peer that never drains raises instead of hanging.
        """
        if dst == self.rank:
            raise TransportError(f"rank {self.rank} cannot send to itself")
        payload = np.asarray(payload)
        self._check_float_width(payload, tag)
        nbytes = self.meter.record_send(self.rank, dst, payload.size, tag)
        self._join_send(self._enqueue(dst, (tag, payload), tag))
        return nbytes

    def isend(self, dst: int, payload: np.ndarray, tag: str) -> _SendTicket:
        """Non-blocking :meth:`send`: meters now, ships asynchronously.

        Bounded channels (OS pipes) block the writer when full; pushing
        from the per-destination sender thread lets a rank post all its
        outbound traffic before draining inbound, which makes the
        exchange patterns below deadlock-free regardless of payload
        size — and the FIFO queue keeps multiple in-flight messages to
        one peer in posting order.
        """
        if dst == self.rank:
            raise TransportError(f"rank {self.rank} cannot send to itself")
        payload = np.asarray(payload)
        self._check_float_width(payload, tag)
        self.meter.record_send(self.rank, dst, payload.size, tag)
        return self._enqueue(dst, (tag, payload), tag)

    def recv(self, src: int, tag: str) -> np.ndarray:
        """Receive the next message from ``src``; the tag must match.

        Time spent waiting on the channel accumulates into
        :attr:`blocked_seconds` (the measured, not modeled, side of the
        compute/communication split).
        """
        t0 = time.perf_counter()
        try:
            got_tag, payload = self._get(src)
        finally:
            self.blocked_seconds += time.perf_counter() - t0
        if got_tag != tag:
            raise TransportError(
                f"rank {self.rank} expected tag {tag!r} from {src}, got {got_tag!r}"
            )
        return payload

    def _isend_raw(self, dst: int, payload: np.ndarray, tag: str) -> _SendTicket:
        """Unmetered queued push — for collective-internal traffic
        whose wire volume was already metered canonically."""
        return self._enqueue(dst, (tag, payload), tag)

    def _send_raw(self, dst: int, payload: np.ndarray, tag: str) -> None:
        self._join_send(self._enqueue(dst, (tag, payload), tag))

    def exchange(
        self,
        outgoing: Dict[int, np.ndarray],
        expect: Iterable[int],
        tag: str,
    ) -> Dict[int, np.ndarray]:
        """Send to each key of ``outgoing``; receive from each of ``expect``.

        All sends are posted first, then inbound messages are drained,
        so the pattern cannot deadlock however large the payloads are.
        Equivalent to :meth:`complete_exchange` of a fresh
        :meth:`post_exchange` — the blocking special case.
        """
        return self.complete_exchange(self.post_exchange(outgoing, expect, tag))

    def post_exchange(
        self,
        outgoing: Dict[int, np.ndarray],
        expect: Iterable[int],
        tag: str,
    ) -> ExchangeHandle:
        """Post the sends of an exchange without touching the receives.

        Meters and queues every outbound payload now, records the
        deferred receives, and returns an :class:`ExchangeHandle`.  The
        caller is free to compute while the payloads travel; redeem the
        handle with :meth:`complete_exchange` when the inbound data is
        actually needed.
        """
        handle = ExchangeHandle(tag=tag, expect=list(expect))
        handle.sends = [
            self.isend(dst, payload, tag) for dst, payload in outgoing.items()
        ]
        return handle

    def complete_exchange(self, handle: ExchangeHandle) -> Dict[int, np.ndarray]:
        """Drain the deferred receives of ``handle``; join its sends.

        A send still undelivered after the receive window raises
        :class:`TransportError` — an abandoned sender masks a hung peer
        as corruption.
        """
        if handle.completed:
            raise TransportError(
                f"rank {self.rank} completed exchange handle "
                f"(tag {handle.tag!r}) twice"
            )
        handle.completed = True
        received = {src: self.recv(src, handle.tag) for src in handle.expect}
        for ticket in handle.sends:
            self._join_send(ticket)
        return received

    # -- collectives ---------------------------------------------------
    def allreduce(
        self, array: np.ndarray, tag: str, algorithm: str = "ring"
    ) -> np.ndarray:
        """Sum ``array`` across all ranks; every rank gets the result.

        The data moves by a real ring (reduce-scatter + allgather) or
        binomial tree; the metering is always the canonical ring
        formula (:func:`ring_allreduce_scalars`), keeping the ledger
        identical across algorithms and transports.  The reduced buffer
        is bitwise identical on every rank — each chunk is finalised by
        exactly one rank and copies of it are distributed — which is
        what keeps model replicas in lockstep.

        The payload's float dtype is preserved on the wire: fp32
        gradients ship and reduce as fp32 (what the meter prices), with
        no silent fp64 upcast anywhere on the path.
        """
        arr = np.asarray(array)
        self._check_float_width(arr, tag)
        if arr.dtype.kind != "f":
            # Integer summands reduce as floats; pick the float whose
            # width matches the meter so even this fallback ships
            # exactly what it prices.
            arr = arr.astype(float_dtype_for_nbytes(self.bytes_per_scalar))
        shape = arr.shape
        flat = arr.ravel().copy()
        self.meter.record_allreduce_rank(self.rank, flat.size, tag)
        if self.num_parts == 1 or flat.size == 0:
            return flat.reshape(shape)
        if algorithm == "ring":
            out = self._ring_allreduce(flat, tag)
        elif algorithm == "tree":
            out = self._tree_allreduce(flat, tag)
        else:
            raise ValueError(f"unknown allreduce algorithm {algorithm!r}")
        return out.reshape(shape)

    def _chunk_slices(self, n: int) -> List[slice]:
        bounds = np.linspace(0, n, self.num_parts + 1).astype(np.int64)
        return [slice(int(a), int(b)) for a, b in zip(bounds[:-1], bounds[1:])]

    def _ring_allreduce(self, buf: np.ndarray, tag: str) -> np.ndarray:
        m, rank = self.num_parts, self.rank
        succ, pred = (rank + 1) % m, (rank - 1) % m
        slices = self._chunk_slices(buf.size)
        # Reduce-scatter: after m-1 steps rank owns chunk (rank+1) % m.
        for step in range(m - 1):
            send_idx = (rank - step) % m
            recv_idx = (rank - step - 1) % m
            ticket = self._isend_raw(succ, buf[slices[send_idx]].copy(), tag)
            buf[slices[recv_idx]] += self.recv(pred, tag)
            self._join_send(ticket)
        # Allgather: circulate the finalised chunks.
        for step in range(m - 1):
            send_idx = (rank + 1 - step) % m
            recv_idx = (rank - step) % m
            ticket = self._isend_raw(succ, buf[slices[send_idx]].copy(), tag)
            buf[slices[recv_idx]] = self.recv(pred, tag)
            self._join_send(ticket)
        return buf

    def _tree_allreduce(self, buf: np.ndarray, tag: str) -> np.ndarray:
        m, rank = self.num_parts, self.rank
        # Reduce up a binomial tree rooted at 0.
        span, sent_span = 1, None
        while span < m:
            r = rank % (2 * span)
            if r == span:
                self._send_raw(rank - span, buf, tag)
                sent_span = span
                break
            if r == 0 and rank + span < m:
                buf = buf + self.recv(rank + span, tag)
            span *= 2
        # Broadcast the root's buffer back down the same tree.
        if sent_span is not None:
            buf = self.recv(rank - sent_span, tag)
            span = sent_span
        down = span // 2
        while down >= 1:
            if rank % (2 * down) == 0 and rank + down < m:
                self._send_raw(rank + down, buf, tag)
            down //= 2
        return buf


# ----------------------------------------------------------------------
# Threads + queues
# ----------------------------------------------------------------------
class _QueueEndpoint(Endpoint):
    def __init__(self, rank, num_parts, bytes_per_scalar, recv_timeout, queues):
        super().__init__(rank, num_parts, bytes_per_scalar, recv_timeout)
        self._queues = queues

    def _put(self, dst: int, message) -> None:
        self._queues[(self.rank, dst)].put(message)

    def _get(self, src: int):
        try:
            return self._queues[(src, self.rank)].get(timeout=self.recv_timeout)
        except queue.Empty:
            raise TransportError(
                f"rank {self.rank} timed out waiting for rank {src} "
                f"({self.recv_timeout}s)"
            ) from None


class LocalTransport(Transport):
    """Ranks as daemon threads, unbounded queues as wires.

    No serialisation and no OS scheduling noise: the deterministic
    reference for the data-moving path, and the fast engine behind the
    conformance and equivalence tests.
    """

    name = "local"

    def __init__(self, num_parts: int, bytes_per_scalar: Optional[int] = None,
                 recv_timeout: float = 60.0, dtype=None) -> None:
        super().__init__(num_parts, bytes_per_scalar, dtype=dtype)
        self.recv_timeout = recv_timeout

    def launch(self, worker, payloads=None, timeout=None):
        m = self.num_parts
        timeout = self.recv_timeout if timeout is None else timeout
        payloads = list(payloads) if payloads is not None else [None] * m
        if len(payloads) != m:
            raise ValueError(f"expected {m} payloads, got {len(payloads)}")
        queues = {
            (i, j): queue.Queue() for i in range(m) for j in range(m) if i != j
        }
        # Per-recv windows stay at the transport's recv_timeout — the
        # bound within which a dropped peer must surface as a
        # TransportError; `timeout` only caps the launch as a whole.
        endpoints = [
            _QueueEndpoint(i, m, self.bytes_per_scalar, self.recv_timeout,
                           queues)
            for i in range(m)
        ]
        results: List = [None] * m
        failures: List[Tuple[int, BaseException, str]] = []
        failed = threading.Event()

        def run(rank: int) -> None:
            try:
                results[rank] = worker(endpoints[rank], payloads[rank])
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                failures.append((rank, exc, traceback.format_exc()))
                failed.set()

        threads = [
            threading.Thread(target=run, args=(i,), daemon=True) for i in range(m)
        ]
        for t in threads:
            t.start()
        try:
            # One shared deadline for the whole launch; a crashed rank is
            # reported immediately (the daemon threads of the surviving
            # ranks are abandoned to their recv timeouts).
            deadline = _now() + timeout
            while not failed.is_set():
                alive = [t for t in threads if t.is_alive()]
                if not alive:
                    break
                remaining = deadline - _now()
                if remaining <= 0:
                    break
                alive[0].join(min(0.05, remaining))
            if failures:
                rank, exc, tb = failures[0]
                raise TransportError(f"rank {rank} failed:\n{tb}") from exc
            if any(t.is_alive() for t in threads):
                stuck = [i for i, t in enumerate(threads) if t.is_alive()]
                raise TransportError(f"ranks {stuck} still running after {timeout}s")
        finally:
            for ep in endpoints:
                ep.close()
        for ep in endpoints:
            self.meter.merge(ep.meter)
        return results


# ----------------------------------------------------------------------
# Processes + pipes
# ----------------------------------------------------------------------
class _PipeEndpoint(Endpoint):
    def __init__(self, rank, num_parts, bytes_per_scalar, recv_timeout, conns):
        super().__init__(rank, num_parts, bytes_per_scalar, recv_timeout)
        self._conns = conns

    # The per-destination sender thread is the only writer of each pipe
    # (Endpoint routes every outbound message through it), so no send
    # lock is needed.
    def _put(self, dst: int, message) -> None:
        self._conns[dst].send(message)

    def _get(self, src: int):
        conn = self._conns[src]
        try:
            if not conn.poll(self.recv_timeout):
                raise TransportError(
                    f"rank {self.rank} timed out waiting for rank {src} "
                    f"({self.recv_timeout}s)"
                )
            return conn.recv()
        except (EOFError, OSError):
            raise TransportError(
                f"rank {self.rank} lost its connection to rank {src} "
                "(peer died?)"
            ) from None


def _mp_rank_main(worker, rank, num_parts, bytes_per_scalar, recv_timeout,
                  mesh, sibling_result_conns, parent_conn) -> None:
    """Entry point of one worker process.

    The payload arrives through the parent pipe (pickled — the rank's
    working set genuinely leaves the parent), the result and the
    rank's meter travel back the same way.

    Fork duplicated *every* pipe end into this worker (and spawn
    duplicates whatever is in the args), so the ends that belong to
    other ranks are closed first.  Without this, a dead peer's channel
    never drains to EOF — some sibling always still holds a duplicate
    of the write end — and peer death silently degrades into a poll
    timeout instead of an immediate :class:`TransportError`.
    """
    for other_rank, peer_conns in mesh.items():
        if other_rank != rank:
            for conn in peer_conns.values():
                conn.close()
    for conn in sibling_result_conns:
        conn.close()
    conns = mesh[rank]
    endpoint = None
    try:
        endpoint = _PipeEndpoint(rank, num_parts, bytes_per_scalar,
                                 recv_timeout, conns)
        payload = parent_conn.recv()
        result = worker(endpoint, payload)
        parent_conn.send(("ok", result, endpoint.meter))
    except BaseException:  # noqa: BLE001 - serialised back to the parent
        try:
            parent_conn.send(("err", traceback.format_exc(), None))
        except Exception:  # pragma: no cover - parent already gone
            pass
    finally:
        if endpoint is not None:
            endpoint.close()


class MultiprocessTransport(Transport):
    """Ranks as OS processes, duplex pipes as wires.

    A full mesh of :func:`multiprocessing.Pipe` connections carries
    rank-to-rank traffic; a separate parent pipe per rank ships the
    task payload in (pickled) and the result + byte ledger out.
    ``launch`` enforces a deadline: a hung pipe kills the worker tree
    and raises :class:`TransportError` instead of stalling the caller
    — which is what lets CI run a smoke job against this transport
    without risking a wedged runner.
    """

    name = "multiprocess"

    def __init__(self, num_parts: int, bytes_per_scalar: Optional[int] = None,
                 recv_timeout: float = 60.0, start_method: Optional[str] = None,
                 dtype=None) -> None:
        super().__init__(num_parts, bytes_per_scalar, dtype=dtype)
        self.recv_timeout = recv_timeout
        self.start_method = start_method

    def launch(self, worker, payloads=None, timeout=None):
        import multiprocessing as mp

        m = self.num_parts
        timeout = self.recv_timeout * 2 if timeout is None else timeout
        # Per-recv windows stay at the transport's recv_timeout — the
        # bound within which a silent peer must surface as a
        # TransportError; `timeout` only caps the launch as a whole.
        # (Peer *death* surfaces even sooner: the workers close the
        # pipe ends that are not theirs, so a dead peer's channel
        # drains to EOF immediately.)
        payloads = list(payloads) if payloads is not None else [None] * m
        if len(payloads) != m:
            raise ValueError(f"expected {m} payloads, got {len(payloads)}")
        ctx = mp.get_context(self.start_method)

        mesh: Dict[int, Dict[int, object]] = {i: {} for i in range(m)}
        for i in range(m):
            for j in range(i + 1, m):
                ci, cj = ctx.Pipe(duplex=True)
                mesh[i][j] = ci
                mesh[j][i] = cj
        parent_conns, child_conns, procs = [], [], []
        for rank in range(m):
            parent_end, child_end = ctx.Pipe(duplex=True)
            parent_conns.append(parent_end)
            child_conns.append(child_end)
        for rank in range(m):
            siblings = [c for i, c in enumerate(child_conns) if i != rank]
            procs.append(ctx.Process(
                target=_mp_rank_main,
                args=(worker, rank, m, self.bytes_per_scalar,
                      self.recv_timeout, mesh, siblings, child_conns[rank]),
                daemon=True,
            ))
        try:
            for proc in procs:
                proc.start()
            # The mesh and child-side result ends belong to the workers
            # (fork duplicated them); closing the parent's copies lets a
            # dead peer surface as EOF instead of a silent poll timeout.
            for rank in range(m):
                for conn in mesh[rank].values():
                    conn.close()
                child_conns[rank].close()
            for rank in range(m):
                parent_conns[rank].send(payloads[rank])

            # Collect results as they arrive (not in rank order): a
            # crashed rank is reported immediately with its traceback
            # even while other ranks are still blocked on it.
            deadline = _now() + timeout
            results: List = [None] * m
            pending = {parent_conns[rank]: rank for rank in range(m)}
            while pending:
                remaining = deadline - _now()
                if remaining <= 0:
                    raise TransportError(
                        f"ranks {sorted(pending.values())} produced no "
                        f"result within {timeout}s (hung pipe?)"
                    )
                ready = mp.connection.wait(list(pending), timeout=remaining)
                if not ready:
                    raise TransportError(
                        f"ranks {sorted(pending.values())} produced no "
                        f"result within {timeout}s (hung pipe?)"
                    )
                for conn in ready:
                    rank = pending.pop(conn)
                    try:
                        status, value, meter = conn.recv()
                    except EOFError:
                        raise TransportError(
                            f"rank {rank} died without reporting a result"
                        ) from None
                    if status != "ok":
                        raise TransportError(f"rank {rank} failed:\n{value}")
                    results[rank] = value
                    self.meter.merge(meter)
            for proc in procs:
                proc.join(self.recv_timeout)
            return results
        finally:
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
                    proc.join(1.0)


def _now() -> float:
    return time.monotonic()
