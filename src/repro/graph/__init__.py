"""Graph substrate: containers, generators, datasets, propagation ops."""

from .graph import Graph
from .generators import SyntheticSpec, generate_graph, planted_partition_adjacency
from .datasets import DATASET_SPECS, dataset_spec, load_dataset, paper_partition_grid
from .propagation import mean_aggregation, sym_norm, row_normalise
from .io import save_graph, load_graph

__all__ = [
    "save_graph",
    "load_graph",
    "Graph",
    "SyntheticSpec",
    "generate_graph",
    "planted_partition_adjacency",
    "DATASET_SPECS",
    "dataset_spec",
    "load_dataset",
    "paper_partition_grid",
    "mean_aggregation",
    "sym_norm",
    "row_normalise",
]
