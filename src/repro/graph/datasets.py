"""Named dataset registry: laptop-scale analogues of Table 3.

Each entry mirrors the *relative* characteristics that the paper's
experiments depend on, at ~1/30th scale:

===============  ========  =========  ======================================
name             paper     here       property preserved
===============  ========  =========  ======================================
reddit-sim       233K/984  8K/48      dense graph, many boundary nodes,
                                      0.66/0.10/0.24 split, 41 classes
products-sim     2.4M/50   20K/24     sparser than reddit, tiny train
                                      split (8%), train/test shift
yelp-sim         716K/20   12K/10     multilabel (micro-F1, BCE loss),
                                      0.75/0.10/0.15 split
papers-sim       111M/29   48K/14     huge partition count (192), heavy
                                      degree tail -> boundary stragglers
===============  ========  =========  ======================================

``scale`` multiplies the node count (edges scale with it) so tests can
use pocket-sized versions of the same recipes.
"""

from __future__ import annotations

from typing import Dict

from .generators import SyntheticSpec, generate_graph
from .graph import Graph

__all__ = ["DATASET_SPECS", "dataset_spec", "load_dataset", "paper_partition_grid"]


DATASET_SPECS: Dict[str, SyntheticSpec] = {
    "reddit-sim": SyntheticSpec(
        n=8000,
        num_communities=41,
        avg_degree=48.0,
        homophily=0.70,
        degree_exponent=2.0,
        feature_dim=64,
        feature_signal=0.05,
        train_frac=0.66,
        val_frac=0.10,
        test_frac=0.24,
        name="reddit-sim",
    ),
    "products-sim": SyntheticSpec(
        n=20000,
        num_communities=47,
        avg_degree=24.0,
        homophily=0.87,
        degree_exponent=2.2,
        feature_dim=50,
        feature_signal=0.08,
        train_frac=0.08,
        val_frac=0.02,
        test_frac=0.90,
        test_feature_noise=1.5,
        name="products-sim",
    ),
    "yelp-sim": SyntheticSpec(
        n=12000,
        num_communities=32,
        avg_degree=10.0,
        homophily=0.85,
        degree_exponent=2.5,
        feature_dim=50,
        feature_signal=0.30,
        multilabel=True,
        num_labels=20,
        labels_per_node=3.0,
        train_frac=0.75,
        val_frac=0.10,
        test_frac=0.15,
        name="yelp-sim",
    ),
    "papers-sim": SyntheticSpec(
        n=48000,
        num_communities=32,
        avg_degree=14.0,
        homophily=0.80,
        degree_exponent=1.8,
        feature_dim=32,
        feature_signal=0.8,
        train_frac=0.78,
        val_frac=0.08,
        test_frac=0.14,
        name="papers-sim",
    ),
}

# Partition counts the paper sweeps per dataset (Figure 4 / Table 4).
paper_partition_grid: Dict[str, list] = {
    "reddit-sim": [2, 4, 8],
    "products-sim": [5, 8, 10],
    "yelp-sim": [3, 6, 10],
    "papers-sim": [192],
}


def dataset_spec(name: str, scale: float = 1.0) -> SyntheticSpec:
    """Return the (possibly rescaled) spec for a named dataset."""
    if name not in DATASET_SPECS:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(DATASET_SPECS)}")
    spec = DATASET_SPECS[name]
    if scale == 1.0:
        return spec
    n = max(int(spec.n * scale), 4 * spec.num_communities)
    from dataclasses import replace

    return replace(spec, n=n)


def load_dataset(name: str, scale: float = 1.0, seed: int = 0) -> Graph:
    """Generate the named dataset deterministically from ``seed``."""
    return generate_graph(dataset_spec(name, scale), seed=seed)
