"""Synthetic graph generators standing in for the paper's datasets.

The evaluation graphs (Reddit, ogbn-products, Yelp, ogbn-papers100M)
cannot be downloaded in this offline environment, so we synthesise
degree-corrected planted-partition graphs whose *relevant* properties
match each original:

* community structure + homophily — so a GCN genuinely learns from
  neighbour aggregation (accuracy experiments are meaningful);
* heavy-tailed degrees — so METIS-style partitions produce the
  imbalanced boundary sets of Table 1 / Fig. 3;
* controllable density — Reddit is dense (avg degree 984 in the
  paper), products sparse (50.5); we keep that *ratio* at laptop scale;
* label regime — multiclass vs multilabel (Yelp);
* distribution shift — ogbn-products' test distribution differs from
  train (the cause of Fig. 7's overfitting), reproduced by adding
  feature noise to the non-train split.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np
import scipy.sparse as sp

from .graph import Graph

__all__ = ["SyntheticSpec", "generate_graph", "planted_partition_adjacency"]


@dataclass
class SyntheticSpec:
    """Recipe for one synthetic dataset.

    Attributes
    ----------
    n:
        Number of nodes.
    num_communities:
        Planted communities; also the class count for multiclass tasks.
    avg_degree:
        Target average (undirected) degree.
    homophily:
        Probability that a sampled edge is intra-community.  Higher
        values make neighbour aggregation more informative.
    degree_exponent:
        Pareto shape for node propensities; smaller = heavier tail
        (more hub-like boundary stragglers).  ``0`` disables the
        degree correction (near-regular graph).
    feature_dim:
        Node feature width.
    feature_signal:
        Scale of the community prototype inside each feature (relative
        to unit noise).  Lower = harder task.
    multilabel:
        If True, emit an ``(n, num_labels)`` binary label matrix.
    num_labels:
        Multilabel width (ignored for multiclass).
    labels_per_node:
        Expected active labels per node in the multilabel regime.
    train_frac / val_frac / test_frac:
        Split proportions (Table 3 of the paper).
    test_feature_noise:
        Extra gaussian feature noise added to val+test nodes to mimic
        ogbn-products' train/test distribution shift.
    community_shift:
        Scale (in units of ``feature_signal``) of a *community-coherent*
        feature offset applied to val+test nodes.  Unlike per-node noise
        (which mean aggregation averages away), a shared per-community
        delta survives aggregation, so a model that fits the train
        prototypes ever more tightly loses held-out accuracy over time —
        the mechanism behind ogbn-products' overfitting in Fig. 7.
    """

    n: int
    num_communities: int
    avg_degree: float
    homophily: float = 0.85
    degree_exponent: float = 2.5
    feature_dim: int = 32
    feature_signal: float = 1.0
    multilabel: bool = False
    num_labels: int = 16
    labels_per_node: float = 3.0
    train_frac: float = 0.66
    val_frac: float = 0.10
    test_frac: float = 0.24
    test_feature_noise: float = 0.0
    community_shift: float = 0.0
    name: str = "synthetic"


def planted_partition_adjacency(
    rng: np.random.Generator,
    n: int,
    communities: np.ndarray,
    avg_degree: float,
    homophily: float,
    degree_exponent: float,
) -> sp.csr_matrix:
    """Sample a symmetric binary adjacency from a degree-corrected
    planted-partition model.

    Edges are drawn one endpoint-pair at a time (vectorised in bulk):
    with probability ``homophily`` both endpoints come from one
    community, otherwise from two distinct ones; endpoints inside a
    community are chosen proportionally to Pareto-distributed
    propensities, producing heavy-tailed degrees.
    """
    if n < 2:
        raise ValueError("need at least two nodes")
    k = int(communities.max()) + 1
    target_edges = int(n * avg_degree / 2)

    # Node propensities (degree correction).
    if degree_exponent > 0:
        weights = rng.pareto(degree_exponent, size=n) + 1.0
    else:
        weights = np.ones(n)

    # Per-community cumulative weight tables for weighted sampling.
    comm_nodes = [np.flatnonzero(communities == c) for c in range(k)]
    for c, nodes in enumerate(comm_nodes):
        if len(nodes) == 0:
            raise ValueError(f"community {c} is empty")
    comm_probs = []
    for nodes in comm_nodes:
        w = weights[nodes]
        comm_probs.append(w / w.sum())
    comm_weight = np.array([weights[nodes].sum() for nodes in comm_nodes])
    comm_pick = comm_weight / comm_weight.sum()

    def sample_nodes(comm_ids: np.ndarray) -> np.ndarray:
        out = np.empty(len(comm_ids), dtype=np.int64)
        for c in np.unique(comm_ids):
            sel = comm_ids == c
            out[sel] = rng.choice(comm_nodes[c], size=sel.sum(), p=comm_probs[c])
        return out

    edges: set = set()
    attempts = 0
    while len(edges) < target_edges and attempts < 30:
        attempts += 1
        batch = int((target_edges - len(edges)) * 1.5) + 16
        intra = rng.random(batch) < homophily
        c1 = rng.choice(k, size=batch, p=comm_pick)
        c2 = np.where(
            intra,
            c1,
            (c1 + rng.integers(1, max(k, 2), size=batch)) % max(k, 1),
        )
        if k == 1:
            c2 = c1
        u = sample_nodes(c1)
        v = sample_nodes(c2)
        valid = u != v
        for a, b in zip(u[valid], v[valid]):
            if a > b:
                a, b = b, a
            edges.add((int(a), int(b)))
            if len(edges) >= target_edges:
                break

    rows = np.fromiter((e[0] for e in edges), dtype=np.int64, count=len(edges))
    cols = np.fromiter((e[1] for e in edges), dtype=np.int64, count=len(edges))
    data = np.ones(len(edges))
    upper = sp.coo_matrix((data, (rows, cols)), shape=(n, n))
    adj = (upper + upper.T).tocsr()
    adj.data[:] = 1.0
    adj.setdiag(0)
    adj.eliminate_zeros()
    return adj


def generate_graph(spec: SyntheticSpec, seed: int = 0) -> Graph:
    """Generate a full attributed graph from a :class:`SyntheticSpec`."""
    rng = np.random.default_rng(seed)
    n, k = spec.n, spec.num_communities

    # Balanced community assignment with a shuffle (so node ids carry
    # no information about community, like real datasets).
    communities = np.arange(n) % k
    rng.shuffle(communities)

    adj = planted_partition_adjacency(
        rng, n, communities, spec.avg_degree, spec.homophily, spec.degree_exponent
    )

    # Features: community prototype + unit gaussian noise.
    prototypes = rng.normal(0.0, 1.0, size=(k, spec.feature_dim))
    features = (
        spec.feature_signal * prototypes[communities]
        + rng.normal(0.0, 1.0, size=(n, spec.feature_dim))
    )

    # Labels.
    if spec.multilabel:
        # Each community owns a small set of *strong* labels (active with
        # high probability) on top of a low background rate, mirroring
        # Yelp where a business category implies a few near-certain tags.
        # A flat per-community Bernoulli rate would cap the achievable
        # micro-F1 near zero (no label crosses the 0.5 decision line).
        strong_per_comm = max(int(round(spec.labels_per_node)), 1)
        label_probs = np.full((k, spec.num_labels), 0.05)
        for c in range(k):
            strong = rng.choice(spec.num_labels, size=strong_per_comm, replace=False)
            label_probs[c, strong] = 0.85
        labels = (rng.random((n, spec.num_labels)) < label_probs[communities]).astype(
            np.float64
        )
    else:
        labels = communities.astype(np.int64)

    # Splits.
    order = rng.permutation(n)
    n_train = int(round(spec.train_frac * n))
    n_val = int(round(spec.val_frac * n))
    train_mask = np.zeros(n, dtype=bool)
    val_mask = np.zeros(n, dtype=bool)
    test_mask = np.zeros(n, dtype=bool)
    train_mask[order[:n_train]] = True
    val_mask[order[n_train:n_train + n_val]] = True
    test_mask[order[n_train + n_val:]] = True

    # Distribution shift on the held-out splits (ogbn-products style).
    if spec.test_feature_noise > 0:
        held_out = val_mask | test_mask
        features[held_out] += rng.normal(
            0.0, spec.test_feature_noise, size=(held_out.sum(), spec.feature_dim)
        )
    if spec.community_shift > 0:
        held_out = val_mask | test_mask
        delta = rng.normal(
            0.0,
            spec.community_shift * spec.feature_signal,
            size=(k, spec.feature_dim),
        )
        features[held_out] += delta[communities[held_out]]

    graph = Graph(
        adj=adj,
        features=features,
        labels=labels,
        train_mask=train_mask,
        val_mask=val_mask,
        test_mask=test_mask,
        name=spec.name,
        multilabel=spec.multilabel,
    )
    graph.validate()
    return graph
