"""The :class:`Graph` container used across the library.

A graph bundles an undirected adjacency structure (CSR), node features,
labels (integer multiclass or binary multilabel) and train/val/test
masks — the same payload a DGLGraph carries in the paper's artifact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
import scipy.sparse as sp

__all__ = ["Graph"]


@dataclass
class Graph:
    """An attributed, undirected graph.

    Attributes
    ----------
    adj:
        ``(n, n)`` symmetric CSR adjacency with zero diagonal and
        binary values.
    features:
        ``(n, d)`` float node features.
    labels:
        ``(n,)`` int class ids, or ``(n, L)`` binary multilabel matrix.
    train_mask / val_mask / test_mask:
        Boolean node masks; disjoint.
    name:
        Dataset identifier (for logging / tables).
    multilabel:
        True when labels is a binary matrix scored with micro-F1.
    """

    adj: sp.csr_matrix
    features: np.ndarray
    labels: np.ndarray
    train_mask: np.ndarray
    val_mask: np.ndarray
    test_mask: np.ndarray
    name: str = "graph"
    multilabel: bool = False

    def __post_init__(self) -> None:
        self.adj = sp.csr_matrix(self.adj)
        n = self.adj.shape[0]
        if self.adj.shape[0] != self.adj.shape[1]:
            raise ValueError("adjacency must be square")
        if self.features.shape[0] != n:
            raise ValueError("features row count must match adjacency")
        if self.labels.shape[0] != n:
            raise ValueError("labels row count must match adjacency")
        for mask_name in ("train_mask", "val_mask", "test_mask"):
            mask = np.asarray(getattr(self, mask_name), dtype=bool)
            if mask.shape != (n,):
                raise ValueError(f"{mask_name} must be shape ({n},)")
            setattr(self, mask_name, mask)
        if (self.train_mask & self.val_mask).any() or (
            self.train_mask & self.test_mask
        ).any() or (self.val_mask & self.test_mask).any():
            raise ValueError("train/val/test masks must be disjoint")

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.adj.shape[0]

    @property
    def num_edges(self) -> int:
        """Undirected edge count (each edge stored twice in CSR)."""
        return self.adj.nnz // 2

    @property
    def feature_dim(self) -> int:
        return self.features.shape[1]

    @property
    def num_classes(self) -> int:
        if self.multilabel:
            return self.labels.shape[1]
        return int(self.labels.max()) + 1

    def degrees(self) -> np.ndarray:
        return np.asarray(self.adj.sum(axis=1)).ravel().astype(np.int64)

    @property
    def avg_degree(self) -> float:
        return float(self.degrees().mean())

    def neighbors(self, v: int) -> np.ndarray:
        start, end = self.adj.indptr[v], self.adj.indptr[v + 1]
        return self.adj.indices[start:end]

    def edge_list(self) -> Tuple[np.ndarray, np.ndarray]:
        """Directed edge list (both directions of every undirected edge)."""
        coo = self.adj.tocoo()
        return coo.row.astype(np.int64), coo.col.astype(np.int64)

    # ------------------------------------------------------------------
    def subgraph(self, nodes: np.ndarray) -> "Graph":
        """Node-induced subgraph; masks/labels/features are sliced."""
        nodes = np.asarray(nodes, dtype=np.int64)
        sub_adj = self.adj[nodes][:, nodes].tocsr()
        return Graph(
            adj=sub_adj,
            features=self.features[nodes],
            labels=self.labels[nodes],
            train_mask=self.train_mask[nodes],
            val_mask=self.val_mask[nodes],
            test_mask=self.test_mask[nodes],
            name=f"{self.name}[sub{len(nodes)}]",
            multilabel=self.multilabel,
        )

    def validate(self) -> None:
        """Check structural invariants (symmetry, zero diagonal, binary)."""
        if (self.adj != self.adj.T).nnz != 0:
            raise ValueError("adjacency must be symmetric")
        if self.adj.diagonal().any():
            raise ValueError("adjacency must have a zero diagonal")
        if self.adj.nnz and not np.all(self.adj.data == 1.0):
            raise ValueError("adjacency values must be binary")

    def __repr__(self) -> str:
        return (
            f"Graph(name={self.name!r}, n={self.num_nodes}, m={self.num_edges}, "
            f"d={self.feature_dim}, classes={self.num_classes}, "
            f"multilabel={self.multilabel})"
        )
