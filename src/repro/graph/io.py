"""Graph serialisation: one compressed ``.npz`` per graph.

Generated analogues are deterministic but not free (the papers-sim
graph takes tens of seconds to sample), so a library user iterating on
training configs wants to generate once and reload.  The format is a
flat compressed-numpy archive — CSR triplet for the adjacency plus the
feature/label/mask arrays and a small metadata record — portable and
inspectable with nothing but numpy.
"""

from __future__ import annotations

import os

import numpy as np
import scipy.sparse as sp

from .graph import Graph

__all__ = ["save_graph", "load_graph"]

_FORMAT_VERSION = 1


def save_graph(path: str, graph: Graph) -> str:
    """Write ``graph`` to ``path`` (``.npz`` appended if missing).

    The write is atomic (temp file + rename) so an interrupted save
    never leaves a truncated archive behind.
    """
    if not path.endswith(".npz"):
        path = path + ".npz"
    adj = graph.adj.tocsr()
    arrays = {
        "version": np.array(_FORMAT_VERSION),
        "adj_indptr": adj.indptr,
        "adj_indices": adj.indices,
        "adj_data": adj.data,
        "num_nodes": np.array(adj.shape[0]),
        "features": graph.features,
        "labels": graph.labels,
        "train_mask": graph.train_mask,
        "val_mask": graph.val_mask,
        "test_mask": graph.test_mask,
        "name": np.array(graph.name),
        "multilabel": np.array(graph.multilabel),
    }
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        np.savez_compressed(fh, **arrays)
    os.replace(tmp, path)
    return path


def load_graph(path: str) -> Graph:
    """Load a graph written by :func:`save_graph`."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    with np.load(path, allow_pickle=False) as archive:
        version = int(archive["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported graph archive version {version} "
                f"(this build reads version {_FORMAT_VERSION})"
            )
        n = int(archive["num_nodes"])
        adj = sp.csr_matrix(
            (archive["adj_data"], archive["adj_indices"], archive["adj_indptr"]),
            shape=(n, n),
        )
        graph = Graph(
            adj=adj,
            features=archive["features"],
            labels=archive["labels"],
            train_mask=archive["train_mask"],
            val_mask=archive["val_mask"],
            test_mask=archive["test_mask"],
            name=str(archive["name"]),
            multilabel=bool(archive["multilabel"]),
        )
    graph.validate()
    return graph
