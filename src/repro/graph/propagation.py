"""Propagation matrices for GCN-style aggregation.

Two operators are used in the paper:

* ``mean_aggregation`` — row-normalised adjacency ``D^{-1} A`` for the
  GraphSAGE mean aggregator (Eq. 1 with ζ = mean, no self loop; the
  self feature enters through the concat in Eq. 2).
* ``sym_norm`` — ``D̃^{-1/2} (A + I) D̃^{-1/2}`` for vanilla GCN.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..tensor import SparseOp, float_dtype_like, resolve_dtype

__all__ = ["mean_aggregation", "sym_norm", "row_normalise", "safe_inverse"]


def safe_inverse(values: np.ndarray, dtype=None) -> np.ndarray:
    """Elementwise ``1/x`` with non-finite results (x = 0) set to 0.

    The row-scale vector of a lazily-normalised operator: zero-degree
    rows stay all-zero instead of propagating inf/nan.  Float inputs
    keep their dtype (an fp32 degree vector yields fp32 scales).
    """
    arr = np.asarray(values)
    if dtype is None:
        dtype = float_dtype_like(arr.dtype)
    values = arr.astype(dtype, copy=False)
    with np.errstate(divide="ignore"):
        inv = 1.0 / values
    inv[~np.isfinite(inv)] = 0.0
    return inv


def mean_aggregation(adj: sp.spmatrix, dtype=None) -> SparseOp:
    """``P = D^{-1} A``; isolated nodes get an all-zero row."""
    return SparseOp(row_normalise(sp.csr_matrix(adj), dtype=dtype))


def sym_norm(adj: sp.spmatrix, add_self_loops: bool = True, dtype=None) -> SparseOp:
    """``P = D̃^{-1/2} Ã D̃^{-1/2}`` with Ã = A + I by default."""
    if dtype is None:
        dtype = float_dtype_like(adj.dtype)
    else:
        dtype = resolve_dtype(dtype)
    a = sp.csr_matrix(adj, dtype=dtype)
    if add_self_loops:
        # sp.eye defaults to float64; an un-dtyped identity would
        # silently promote the whole operator back to fp64.
        a = a + sp.eye(a.shape[0], format="csr", dtype=a.dtype)
    deg = np.asarray(a.sum(axis=1)).ravel()
    with np.errstate(divide="ignore"):
        d_inv_sqrt = 1.0 / np.sqrt(deg)
    d_inv_sqrt[~np.isfinite(d_inv_sqrt)] = 0.0
    d_mat = sp.diags(d_inv_sqrt)
    return SparseOp(d_mat @ a @ d_mat)


def row_normalise(matrix: sp.csr_matrix, dtype=None) -> sp.csr_matrix:
    """Divide each row by its sum (zero rows stay zero).

    Note this materialises a rescaled copy of the matrix; the
    boundary-sampling hot path avoids it by carrying the inverse row
    sums as the ``row_scale`` of a
    :class:`~repro.tensor.sparse.SplitOperator` instead.
    """
    if dtype is None:
        dtype = float_dtype_like(matrix.dtype)
    else:
        dtype = resolve_dtype(dtype)
    m = sp.csr_matrix(matrix, dtype=dtype)
    inv = safe_inverse(np.asarray(m.sum(axis=1)).ravel())
    return sp.diags(inv) @ m
