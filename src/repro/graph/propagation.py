"""Propagation matrices for GCN-style aggregation.

Two operators are used in the paper:

* ``mean_aggregation`` — row-normalised adjacency ``D^{-1} A`` for the
  GraphSAGE mean aggregator (Eq. 1 with ζ = mean, no self loop; the
  self feature enters through the concat in Eq. 2).
* ``sym_norm`` — ``D̃^{-1/2} (A + I) D̃^{-1/2}`` for vanilla GCN.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..tensor import SparseOp

__all__ = ["mean_aggregation", "sym_norm", "row_normalise", "safe_inverse"]


def safe_inverse(values: np.ndarray) -> np.ndarray:
    """Elementwise ``1/x`` with non-finite results (x = 0) set to 0.

    The row-scale vector of a lazily-normalised operator: zero-degree
    rows stay all-zero instead of propagating inf/nan.
    """
    values = np.asarray(values, dtype=np.float64)
    with np.errstate(divide="ignore"):
        inv = 1.0 / values
    inv[~np.isfinite(inv)] = 0.0
    return inv


def mean_aggregation(adj: sp.spmatrix) -> SparseOp:
    """``P = D^{-1} A``; isolated nodes get an all-zero row."""
    return SparseOp(row_normalise(sp.csr_matrix(adj)))


def sym_norm(adj: sp.spmatrix, add_self_loops: bool = True) -> SparseOp:
    """``P = D̃^{-1/2} Ã D̃^{-1/2}`` with Ã = A + I by default."""
    a = sp.csr_matrix(adj, dtype=np.float64)
    if add_self_loops:
        a = a + sp.eye(a.shape[0], format="csr")
    deg = np.asarray(a.sum(axis=1)).ravel()
    with np.errstate(divide="ignore"):
        d_inv_sqrt = 1.0 / np.sqrt(deg)
    d_inv_sqrt[~np.isfinite(d_inv_sqrt)] = 0.0
    d_mat = sp.diags(d_inv_sqrt)
    return SparseOp(d_mat @ a @ d_mat)


def row_normalise(matrix: sp.csr_matrix) -> sp.csr_matrix:
    """Divide each row by its sum (zero rows stay zero).

    Note this materialises a rescaled copy of the matrix; the
    boundary-sampling hot path avoids it by carrying the inverse row
    sums as the ``row_scale`` of a
    :class:`~repro.tensor.sparse.SplitOperator` instead.
    """
    m = sp.csr_matrix(matrix, dtype=np.float64)
    inv = safe_inverse(np.asarray(m.sum(axis=1)).ravel())
    return sp.diags(inv) @ m
