"""Neural-network substrate: modules, layers, models, losses, optimisers."""

from .module import Module, Parameter, module_dtype, resolve_model_dtype
from .layers import Linear, Dropout
from .sage import SAGELayer
from .gcn import GCNLayer
from .gat import GATLayer
from .models import GraphSAGEModel, GCNModel, GATModel, layer_dims
from .optim import Optimizer, SGD, Adam
from .schedulers import (
    LRScheduler,
    StepLR,
    MultiStepLR,
    CosineAnnealingLR,
    LinearWarmupLR,
    ReduceLROnPlateau,
)
from .checkpoint import save_checkpoint, load_checkpoint
from .metrics import accuracy, f1_micro_multilabel, f1_micro_multiclass
from . import functional

__all__ = [
    "Module",
    "Parameter",
    "module_dtype",
    "resolve_model_dtype",
    "Linear",
    "Dropout",
    "SAGELayer",
    "GCNLayer",
    "GATLayer",
    "GraphSAGEModel",
    "GCNModel",
    "GATModel",
    "layer_dims",
    "Optimizer",
    "SGD",
    "Adam",
    "LRScheduler",
    "StepLR",
    "MultiStepLR",
    "CosineAnnealingLR",
    "LinearWarmupLR",
    "ReduceLROnPlateau",
    "save_checkpoint",
    "load_checkpoint",
    "accuracy",
    "f1_micro_multilabel",
    "f1_micro_multiclass",
    "functional",
]
