"""Checkpointing: save/restore model (and optimiser) state to ``.npz``.

Long full-graph runs (the paper trains Reddit for 3000 epochs) need
resumable state.  Checkpoints are plain compressed-numpy archives so
they stay portable and inspectable; optimiser moments are stored under
a reserved prefix next to the parameters.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

import numpy as np

from .module import Module, module_dtype
from .optim import Adam, Optimizer, SGD

__all__ = ["save_checkpoint", "load_checkpoint", "optimizer_state", "load_optimizer_state"]

_OPT_PREFIX = "__opt__/"
_META_PREFIX = "__meta__/"


def optimizer_state(optimizer: Optimizer) -> Dict[str, np.ndarray]:
    """Flatten an optimiser's internal buffers into named arrays."""
    state: Dict[str, np.ndarray] = {f"{_META_PREFIX}lr": np.array(optimizer.lr)}
    if isinstance(optimizer, Adam):
        state[f"{_META_PREFIX}kind"] = np.array("adam")
        state[f"{_META_PREFIX}t"] = np.array(optimizer._t)
        for i, (m, v) in enumerate(zip(optimizer._m, optimizer._v)):
            if m is not None:
                state[f"{_OPT_PREFIX}m{i}"] = m
                state[f"{_OPT_PREFIX}v{i}"] = v
    elif isinstance(optimizer, SGD):
        state[f"{_META_PREFIX}kind"] = np.array("sgd")
        for i, vel in enumerate(optimizer._velocity):
            if vel is not None:
                state[f"{_OPT_PREFIX}vel{i}"] = vel
    else:
        raise TypeError(f"unsupported optimizer type {type(optimizer).__name__}")
    return state


def load_optimizer_state(optimizer: Optimizer, state: Dict[str, np.ndarray]) -> None:
    """Restore buffers produced by :func:`optimizer_state` in place."""
    kind = str(state[f"{_META_PREFIX}kind"])
    optimizer.lr = float(state[f"{_META_PREFIX}lr"])
    if isinstance(optimizer, Adam):
        if kind != "adam":
            raise TypeError(f"checkpoint holds {kind} state, optimizer is Adam")
        optimizer._t = int(state[f"{_META_PREFIX}t"])
        for i, p in enumerate(optimizer.params):
            if f"{_OPT_PREFIX}m{i}" in state:
                # Moments follow the parameter's dtype so a restored
                # fp32 run does not mix fp64 state into every step.
                optimizer._m[i] = state[f"{_OPT_PREFIX}m{i}"].astype(
                    p.data.dtype, copy=True
                )
                optimizer._v[i] = state[f"{_OPT_PREFIX}v{i}"].astype(
                    p.data.dtype, copy=True
                )
    elif isinstance(optimizer, SGD):
        if kind != "sgd":
            raise TypeError(f"checkpoint holds {kind} state, optimizer is SGD")
        for i, p in enumerate(optimizer.params):
            if f"{_OPT_PREFIX}vel{i}" in state:
                optimizer._velocity[i] = state[f"{_OPT_PREFIX}vel{i}"].astype(
                    p.data.dtype, copy=True
                )
    else:
        raise TypeError(f"unsupported optimizer type {type(optimizer).__name__}")


def save_checkpoint(
    path: str,
    model: Module,
    optimizer: Optional[Optimizer] = None,
    epoch: int = 0,
) -> str:
    """Write model parameters (and optionally optimiser state) to ``path``.

    Returns the path actually written (``.npz`` appended if missing).
    """
    arrays: Dict[str, np.ndarray] = dict(model.state_dict())
    for key in list(arrays):
        if key.startswith((_OPT_PREFIX, _META_PREFIX)):
            raise ValueError(f"parameter name {key!r} collides with a reserved prefix")
    arrays[f"{_META_PREFIX}epoch"] = np.array(epoch)
    arrays[f"{_META_PREFIX}dtype"] = np.array(str(module_dtype(model)))
    if optimizer is not None:
        arrays.update(optimizer_state(optimizer))
    if not path.endswith(".npz"):
        path = path + ".npz"
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        np.savez_compressed(fh, **arrays)
    os.replace(tmp, path)
    return path


def load_checkpoint(
    path: str,
    model: Module,
    optimizer: Optional[Optimizer] = None,
) -> int:
    """Restore a checkpoint in place; returns the stored epoch."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    with np.load(path, allow_pickle=False) as archive:
        arrays = {k: archive[k] for k in archive.files}
    params = {
        k: v for k, v in arrays.items() if not k.startswith((_OPT_PREFIX, _META_PREFIX))
    }
    model.load_state_dict(params)
    if optimizer is not None:
        opt_keys = {
            k: v for k, v in arrays.items() if k.startswith((_OPT_PREFIX, _META_PREFIX))
        }
        if f"{_META_PREFIX}kind" not in opt_keys:
            raise KeyError("checkpoint has no optimizer state")
        load_optimizer_state(optimizer, opt_keys)
    return int(arrays[f"{_META_PREFIX}epoch"])
