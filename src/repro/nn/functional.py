"""Loss functions and related functional utilities."""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, as_tensor, log_softmax
from ..tensor import ops as T

__all__ = ["cross_entropy", "nll_loss", "bce_with_logits", "masked_rows"]


def cross_entropy(
    logits: Tensor,
    labels: np.ndarray,
    reduction: str = "mean",
) -> Tensor:
    """Softmax cross-entropy for integer class labels.

    Parameters
    ----------
    logits:
        ``(n, num_classes)`` raw scores.
    labels:
        ``(n,)`` integer class ids.
    reduction:
        "mean", "sum" or "none".
    """
    labels = np.asarray(labels, dtype=np.int64)
    lp = log_softmax(logits, axis=-1)
    rows = np.arange(labels.shape[0])
    picked = lp[(rows, labels)]
    loss = -picked
    return _reduce(loss, reduction)


def nll_loss(log_probs: Tensor, labels: np.ndarray, reduction: str = "mean") -> Tensor:
    """Negative log-likelihood given precomputed log-probabilities."""
    labels = np.asarray(labels, dtype=np.int64)
    rows = np.arange(labels.shape[0])
    loss = -log_probs[(rows, labels)]
    return _reduce(loss, reduction)


def bce_with_logits(logits: Tensor, targets: np.ndarray, reduction: str = "mean") -> Tensor:
    """Numerically stable binary cross-entropy with logits.

    Used for the multilabel Yelp-style task (micro-F1 metric).
    Implements ``max(x,0) - x*t + log(1 + exp(-|x|))`` elementwise.
    """
    logits = as_tensor(logits)
    # Targets follow the logits dtype (fp32 logits keep an fp32 loss path).
    t = np.asarray(targets, dtype=logits.data.dtype)
    x = logits.data
    out_data = np.maximum(x, 0.0) - x * t + np.log1p(np.exp(-np.abs(x)))

    def backward(g: np.ndarray):
        # d/dx = sigmoid(x) - t
        return ((logits, g * (1.0 / (1.0 + np.exp(-x)) - t)),)

    loss = Tensor._make(out_data, (logits,), "bce_with_logits", backward)
    return _reduce(loss, reduction)


def masked_rows(x: Tensor, mask: np.ndarray) -> Tensor:
    """Select the rows where ``mask`` is True (e.g. the train split)."""
    idx = np.nonzero(np.asarray(mask))[0]
    return T.gather_rows(x, idx)


def _reduce(loss: Tensor, reduction: str) -> Tensor:
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    if reduction == "none":
        return loss
    raise ValueError(f"unknown reduction {reduction!r}")
