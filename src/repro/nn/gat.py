"""Graph attention layer (Velickovic et al.) for the Table 10 experiment.

GAT aggregates with learned, edge-wise attention instead of a fixed
operator, so the layer works on an explicit edge list:

  e_uv   = LeakyReLU(a_src · W h_u + a_dst · W h_v)
  α_uv   = softmax over u ∈ N(v) of e_uv
  h'_v   = Σ_u α_uv · W h_u          (per head; heads concatenated)

Under BNS, edges whose source boundary node was dropped simply vanish
from the edge list; the segment softmax renormalises over the surviving
edges, so no 1/p correction is needed (attention is already a convex
combination).
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, concat_cols, gather_rows, leaky_relu, segment_softmax, segment_sum, xavier_uniform
from .module import Module, Parameter

__all__ = ["GATLayer"]


class GATLayer(Module):
    """Multi-head graph attention layer.

    Parameters
    ----------
    in_features:
        Input embedding width.
    out_features:
        Output width *per head*; the layer output is
        ``num_heads * out_features`` wide (heads concatenated).
    num_heads:
        Number of attention heads.
    negative_slope:
        LeakyReLU slope for the attention logits.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        num_heads: int = 1,
        negative_slope: float = 0.2,
        dtype=None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.num_heads = num_heads
        self.negative_slope = negative_slope
        self.weight = Parameter(
            xavier_uniform((in_features, num_heads * out_features), rng, dtype=dtype).data
        )
        # Attention vectors, one (a_src, a_dst) pair per head.
        self.att_src = Parameter(
            xavier_uniform((num_heads, out_features), rng, dtype=dtype).data
        )
        self.att_dst = Parameter(
            xavier_uniform((num_heads, out_features), rng, dtype=dtype).data
        )

    def forward(
        self,
        h_all: Tensor,
        src: np.ndarray,
        dst: np.ndarray,
        n_dst: int,
    ) -> Tensor:
        """Run attention aggregation over the given edges.

        Parameters
        ----------
        h_all:
            ``(n_all, in)`` features of all candidate source nodes; the
            first ``n_dst`` rows must be the destination (inner) nodes.
        src / dst:
            Edge endpoints; ``src`` indexes ``h_all`` rows, ``dst``
            indexes ``[0, n_dst)``.
        n_dst:
            Number of destination nodes (output rows).
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError("src and dst must have equal length")

        wh = h_all @ self.weight  # (n_all, heads*out)
        head_outputs = []
        for k in range(self.num_heads):
            lo, hi = k * self.out_features, (k + 1) * self.out_features
            wh_k = wh[:, lo:hi]
            # Per-node attention contributions.
            s_src = wh_k @ self.att_src[k]  # (n_all,)
            s_dst = wh_k @ self.att_dst[k]  # (n_all,) — only first n_dst used
            logits = leaky_relu(
                gather_rows(s_src, src) + gather_rows(s_dst, dst),
                self.negative_slope,
            )
            alpha = segment_softmax(logits, dst, n_dst)
            messages = gather_rows(wh_k, src) * alpha.reshape(-1, 1)
            head_outputs.append(segment_sum(messages, dst, n_dst))
        if self.num_heads == 1:
            return head_outputs[0]
        return concat_cols(head_outputs)

    __call__ = forward

    def flops(self, n_dst: int, n_all: int, n_edges: int) -> int:
        """Forward FLOPs: projection + per-edge attention + aggregation."""
        proj = 2 * n_all * self.in_features * self.num_heads * self.out_features
        att = 4 * n_all * self.num_heads * self.out_features
        per_edge = self.num_heads * (6 * n_edges + 2 * n_edges * self.out_features)
        return proj + att + per_edge
