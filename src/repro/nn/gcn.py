"""Vanilla GCN layer (Kipf & Welling): ``H' = P H W`` with
``P = D̃^{-1/2} Ã D̃^{-1/2}``.

Like :class:`~repro.nn.sage.SAGELayer` it is location-agnostic: the
propagation operator may cover the full graph or one partition's
``(inner, inner ∪ sampled-boundary)`` block.
"""

from __future__ import annotations

import numpy as np

from ..tensor import SparseOp, Tensor, spmm, xavier_uniform
from .module import Module, Parameter

__all__ = ["GCNLayer"]


class GCNLayer(Module):
    """One GCN layer: aggregate with a (sym-normalised) operator, then
    apply a linear transform."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
        dtype=None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            xavier_uniform((in_features, out_features), rng, dtype=dtype).data
        )
        self.bias = Parameter(np.zeros(out_features), dtype=dtype) if bias else None

    def forward(self, prop: SparseOp, h_all: Tensor, h_self: Tensor = None) -> Tensor:
        """``h_self`` is accepted (and ignored) so GCN and SAGE layers
        are interchangeable inside the trainers."""
        if prop.shape[1] != h_all.shape[0]:
            raise ValueError(
                f"operator cols {prop.shape[1]} != feature rows {h_all.shape[0]}"
            )
        # Transform first when it shrinks the width, aggregate first
        # otherwise — same result, fewer FLOPs (standard GCN trick).
        if self.in_features > self.out_features:
            out = spmm(prop, h_all @ self.weight)
        else:
            out = spmm(prop, h_all) @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    __call__ = forward

    def flops(self, n_self: int, n_all: int, nnz: int) -> int:
        if self.in_features > self.out_features:
            return 2 * n_all * self.in_features * self.out_features + 2 * nnz * self.out_features
        return 2 * nnz * self.in_features + 2 * n_self * self.in_features * self.out_features
