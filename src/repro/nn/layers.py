"""Basic dense layers: Linear and Dropout."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import Tensor, dropout as dropout_op, xavier_uniform
from .module import Module, Parameter

__all__ = ["Linear", "Dropout"]


class Linear(Module):
    """Affine map ``y = x W + b`` with Xavier-uniform init."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
        dtype=None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            xavier_uniform((in_features, out_features), rng, dtype=dtype).data
        )
        self.bias: Optional[Parameter] = (
            Parameter(np.zeros(out_features), dtype=dtype) if bias else None
        )

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    __call__ = forward

    def flops(self, n_rows: int) -> int:
        """Multiply-accumulate count for ``n_rows`` input rows (×2 for MAC)."""
        return 2 * n_rows * self.in_features * self.out_features


class Dropout(Module):
    """Inverted dropout whose randomness comes from a threaded RNG."""

    def __init__(self, rate: float) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate

    def forward(self, x: Tensor, rng: np.random.Generator) -> Tensor:
        return dropout_op(x, self.rate, rng, training=self.training)

    __call__ = forward
