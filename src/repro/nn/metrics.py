"""Evaluation metrics.

The paper reports test accuracy on Reddit / ogbn-products and micro-F1
on the multilabel Yelp task (where micro-F1 over {0,1} predictions is
the standard GraphSAINT protocol).  Macro-F1, per-class breakdowns and
the confusion matrix are provided for error analysis beyond the
paper's headline numbers.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "accuracy",
    "f1_micro_multilabel",
    "f1_macro_multilabel",
    "f1_micro_multiclass",
    "f1_macro_multiclass",
    "confusion_matrix",
    "per_class_accuracy",
]


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy for integer-labelled multiclass outputs."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.shape[0] != labels.shape[0]:
        raise ValueError("logits and labels disagree on the number of rows")
    if logits.shape[0] == 0:
        return float("nan")
    pred = logits.argmax(axis=1)
    return float((pred == labels).mean())


def f1_micro_multilabel(logits: np.ndarray, targets: np.ndarray, threshold: float = 0.0) -> float:
    """Micro-averaged F1 for multilabel outputs.

    Predictions are ``logits > threshold`` (threshold 0 on logits is
    sigmoid > 0.5).  Micro-F1 pools TP/FP/FN over all (node, label)
    pairs before computing F1.
    """
    logits = np.asarray(logits)
    targets = np.asarray(targets).astype(bool)
    pred = logits > threshold
    tp = np.logical_and(pred, targets).sum()
    fp = np.logical_and(pred, ~targets).sum()
    fn = np.logical_and(~pred, targets).sum()
    denom = 2 * tp + fp + fn
    if denom == 0:
        return 0.0
    return float(2 * tp / denom)


def f1_macro_multilabel(
    logits: np.ndarray, targets: np.ndarray, threshold: float = 0.0
) -> float:
    """Macro-averaged F1 for multilabel outputs.

    F1 is computed per label and averaged; labels absent from both
    predictions and targets contribute an F1 of 0 (the conservative
    sklearn ``zero_division=0`` convention).
    """
    logits = np.asarray(logits)
    targets = np.asarray(targets).astype(bool)
    pred = logits > threshold
    tp = np.logical_and(pred, targets).sum(axis=0).astype(np.float64)
    fp = np.logical_and(pred, ~targets).sum(axis=0)
    fn = np.logical_and(~pred, targets).sum(axis=0)
    denom = 2 * tp + fp + fn
    f1 = np.divide(2 * tp, denom, out=np.zeros_like(tp), where=denom > 0)
    return float(f1.mean()) if f1.size else 0.0


def f1_micro_multiclass(logits: np.ndarray, labels: np.ndarray) -> float:
    """For single-label multiclass problems micro-F1 equals accuracy."""
    return accuracy(logits, labels)


def confusion_matrix(
    logits: np.ndarray, labels: np.ndarray, num_classes: int = None
) -> np.ndarray:
    """``(num_classes, num_classes)`` counts, rows = true class."""
    logits = np.asarray(logits)
    labels = np.asarray(labels, dtype=np.int64)
    if logits.shape[0] != labels.shape[0]:
        raise ValueError("logits and labels disagree on the number of rows")
    if num_classes is None:
        num_classes = logits.shape[1]
    pred = logits.argmax(axis=1)
    mat = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(mat, (labels, pred), 1)
    return mat


def f1_macro_multiclass(logits: np.ndarray, labels: np.ndarray) -> float:
    """Macro-averaged one-vs-rest F1 from the confusion matrix."""
    mat = confusion_matrix(logits, labels)
    tp = np.diag(mat).astype(np.float64)
    fp = mat.sum(axis=0) - tp
    fn = mat.sum(axis=1) - tp
    denom = 2 * tp + fp + fn
    f1 = np.divide(2 * tp, denom, out=np.zeros_like(tp), where=denom > 0)
    # Average over classes that actually occur in the labels.
    present = mat.sum(axis=1) > 0
    if not present.any():
        return float("nan")
    return float(f1[present].mean())


def per_class_accuracy(logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Recall of each class (NaN for classes absent from ``labels``)."""
    mat = confusion_matrix(logits, labels)
    totals = mat.sum(axis=1).astype(np.float64)
    correct = np.diag(mat).astype(np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(totals > 0, correct / totals, np.nan)
