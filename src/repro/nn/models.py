"""Model containers: stacked GraphSAGE / GCN / GAT networks.

A model is a thin list of layers plus dropout/activation policy.  The
*trainers* orchestrate the forward pass layer-by-layer because in
partition-parallel training a boundary-feature exchange happens
between layers — the model cannot run itself end-to-end without the
communication context.  ``full_forward`` is provided for the
single-device baseline and for evaluation.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..tensor import SparseOp, Tensor, relu, resolve_dtype
from .layers import Dropout
from .module import Module
from .gat import GATLayer
from .gcn import GCNLayer
from .sage import SAGELayer

__all__ = ["GraphSAGEModel", "GCNModel", "GATModel", "layer_dims"]


def layer_dims(in_dim: int, hidden_dim: int, out_dim: int, num_layers: int) -> List[int]:
    """Widths [d_0, ..., d_L] for an L-layer model."""
    if num_layers < 1:
        raise ValueError("num_layers must be >= 1")
    if num_layers == 1:
        return [in_dim, out_dim]
    return [in_dim] + [hidden_dim] * (num_layers - 1) + [out_dim]


class _StackedModel(Module):
    """Shared plumbing for SAGE/GCN stacks (layers + dropout + ReLU)."""

    def __init__(self, dims: List[int], dropout: float, dtype=None) -> None:
        super().__init__()
        self.dims = dims
        self.dtype = resolve_dtype(dtype)
        self.dropout = Dropout(dropout)
        self.layers: List[Module] = []

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def full_forward(
        self,
        prop: SparseOp,
        x: Tensor,
        rng: np.random.Generator,
    ) -> Tensor:
        """Single-device forward over the whole graph."""
        h = x
        for i, layer in enumerate(self.layers):
            h = self.dropout(h, rng)
            h = layer(prop, h, h)
            if i < len(self.layers) - 1:
                h = relu(h)
        return h


class GraphSAGEModel(_StackedModel):
    """L-layer GraphSAGE with mean aggregation — the paper's main model."""

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        out_dim: int,
        num_layers: int,
        dropout: float,
        rng: np.random.Generator,
        dtype=None,
    ) -> None:
        dims = layer_dims(in_dim, hidden_dim, out_dim, num_layers)
        super().__init__(dims, dropout, dtype)
        self.layers = [
            SAGELayer(dims[i], dims[i + 1], rng, dtype=self.dtype)
            for i in range(len(dims) - 1)
        ]

    def layer_flops(self, layer_idx: int, n_self: int, n_all: int, nnz: int) -> int:
        return self.layers[layer_idx].flops(n_self, n_all, nnz)


class GCNModel(_StackedModel):
    """L-layer vanilla GCN (sym-normalised propagation)."""

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        out_dim: int,
        num_layers: int,
        dropout: float,
        rng: np.random.Generator,
        dtype=None,
    ) -> None:
        dims = layer_dims(in_dim, hidden_dim, out_dim, num_layers)
        super().__init__(dims, dropout, dtype)
        self.layers = [
            GCNLayer(dims[i], dims[i + 1], rng, dtype=self.dtype)
            for i in range(len(dims) - 1)
        ]

    def layer_flops(self, layer_idx: int, n_self: int, n_all: int, nnz: int) -> int:
        return self.layers[layer_idx].flops(n_self, n_all, nnz)


class GATModel(Module):
    """L-layer GAT; hidden layers use ``num_heads`` concatenated heads,
    the output layer uses a single head (standard configuration)."""

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        out_dim: int,
        num_layers: int,
        dropout: float,
        rng: np.random.Generator,
        num_heads: int = 2,
        dtype=None,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.dtype = resolve_dtype(dtype)
        self.dropout = Dropout(dropout)
        self.num_heads = num_heads
        dt = self.dtype
        layers: List[GATLayer] = []
        if num_layers == 1:
            layers.append(GATLayer(in_dim, out_dim, rng, num_heads=1, dtype=dt))
            dims = [in_dim, out_dim]
        else:
            layers.append(
                GATLayer(in_dim, hidden_dim, rng, num_heads=num_heads, dtype=dt)
            )
            dims = [in_dim, hidden_dim * num_heads]
            for _ in range(num_layers - 2):
                layers.append(
                    GATLayer(hidden_dim * num_heads, hidden_dim, rng,
                             num_heads=num_heads, dtype=dt)
                )
                dims.append(hidden_dim * num_heads)
            layers.append(
                GATLayer(hidden_dim * num_heads, out_dim, rng, num_heads=1, dtype=dt)
            )
            dims.append(out_dim)
        self.layers = layers
        self.dims = dims

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def full_forward(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        x: Tensor,
        rng: np.random.Generator,
    ) -> Tensor:
        """Single-device forward given the full edge list."""
        n = x.shape[0]
        h = x
        from ..tensor import relu as _relu

        for i, layer in enumerate(self.layers):
            h = self.dropout(h, rng)
            h = layer(h, src, dst, n)
            if i < len(self.layers) - 1:
                h = _relu(h)
        return h
