"""Minimal module/parameter containers (the ``torch.nn.Module`` analogue).

Modules auto-register parameters and sub-modules assigned as
attributes, so ``model.parameters()`` finds every trainable tensor for
the optimiser and for the AllReduce byte accounting in the distributed
trainer.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

import numpy as np

from ..tensor import Tensor, get_default_dtype, resolve_dtype

__all__ = ["Parameter", "Module", "module_dtype", "resolve_model_dtype"]


class Parameter(Tensor):
    """A tensor that is always trainable."""

    def __init__(self, data, dtype=None) -> None:
        super().__init__(data, requires_grad=True, dtype=dtype)


def module_dtype(module: "Module") -> np.dtype:
    """The float dtype a module's parameters are stored in.

    Parameterless modules report the library default.  Trainers use
    this to derive honest byte metering from the model they are given.
    """
    for p in module.parameters():
        return p.data.dtype
    return get_default_dtype()


def resolve_model_dtype(model: "Module", dtype=None, optimizer=None) -> np.dtype:
    """Resolve a trainer's run dtype against its model — one policy
    shared by every trainer/executor.

    ``None`` adopts the model's parameter dtype (metering then prices
    exactly what the model computes in).  An explicit dtype casts the
    model in place, and a warm externally-built ``optimizer`` has its
    state buffers re-aligned so fp64 moments never keep feeding fp32
    steps (or vice versa).
    """
    if dtype is None:
        return module_dtype(model)
    target = resolve_dtype(dtype)
    model.to(target)
    if optimizer is not None:
        optimizer.to()
    return target


class Module:
    """Base class providing parameter registration and (de)serialisation."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        elif isinstance(value, (list, tuple)) and value and all(
            isinstance(v, Module) for v in value
        ):
            for i, v in enumerate(value):
                self._modules[f"{name}.{i}"] = v
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    def parameters(self) -> List[Tensor]:
        """All trainable tensors of this module and its children."""
        params: List[Tensor] = list(self._parameters.values())
        for child in self._modules.values():
            params.extend(child.parameters())
        return params

    def named_parameters(self, prefix: str = "") -> Iterator[tuple]:
        for name, p in self._parameters.items():
            yield (f"{prefix}{name}", p)
        for mod_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{mod_name}.")

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def to(self, dtype) -> "Module":
        """Cast every parameter (and live gradient) to ``dtype`` in place.

        Modules that advertise a ``dtype`` attribute (the model
        containers) have it updated too, so ``module_dtype`` and the
        attribute stay consistent.
        """
        target = resolve_dtype(dtype)
        for p in self.parameters():
            p.data = p.data.astype(target, copy=False)
            if p.grad is not None:
                p.grad = p.grad.astype(target, copy=False)

        def _stamp(mod: "Module") -> None:
            if hasattr(mod, "dtype"):
                object.__setattr__(mod, "dtype", target)
            for child in mod._modules.values():
                _stamp(child)

        _stamp(self)
        return self

    # ------------------------------------------------------------------
    def train(self) -> "Module":
        object.__setattr__(self, "training", True)
        for child in self._modules.values():
            child.train()
        return self

    def eval(self) -> "Module":
        object.__setattr__(self, "training", False)
        for child in self._modules.values():
            child.eval()
        return self

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}")
        for name, p in own.items():
            if p.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: {p.data.shape} vs {state[name].shape}"
                )
            # Restore in the parameter's own dtype: loading an fp64
            # checkpoint into an fp32 model must not mix precisions.
            p.data = state[name].astype(p.data.dtype, copy=True)
