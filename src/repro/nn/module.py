"""Minimal module/parameter containers (the ``torch.nn.Module`` analogue).

Modules auto-register parameters and sub-modules assigned as
attributes, so ``model.parameters()`` finds every trainable tensor for
the optimiser and for the AllReduce byte accounting in the distributed
trainer.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

import numpy as np

from ..tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A tensor that is always trainable."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class providing parameter registration and (de)serialisation."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        elif isinstance(value, (list, tuple)) and value and all(
            isinstance(v, Module) for v in value
        ):
            for i, v in enumerate(value):
                self._modules[f"{name}.{i}"] = v
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    def parameters(self) -> List[Tensor]:
        """All trainable tensors of this module and its children."""
        params: List[Tensor] = list(self._parameters.values())
        for child in self._modules.values():
            params.extend(child.parameters())
        return params

    def named_parameters(self, prefix: str = "") -> Iterator[tuple]:
        for name, p in self._parameters.items():
            yield (f"{prefix}{name}", p)
        for mod_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{mod_name}.")

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    def train(self) -> "Module":
        object.__setattr__(self, "training", True)
        for child in self._modules.values():
            child.train()
        return self

    def eval(self) -> "Module":
        object.__setattr__(self, "training", False)
        for child in self._modules.values():
            child.eval()
        return self

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}")
        for name, p in own.items():
            if p.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: {p.data.shape} vs {state[name].shape}"
                )
            p.data = state[name].astype(np.float64).copy()
