"""Optimisers: SGD (with momentum) and Adam.

The paper trains every model with Adam; SGD is kept for tests and the
convergence-analysis utilities.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base class: holds the parameter list and a ``zero_grad``."""

    def __init__(self, params: Sequence[Tensor], lr: float) -> None:
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def to(self) -> "Optimizer":
        """Align internal state buffers with each parameter's dtype.

        Called after a model-wide cast (``Module.to``): a warm
        optimizer's moments must not keep feeding fp64 state into fp32
        steps (or vice versa).
        """
        for i, p in enumerate(self.params):
            self._cast_buffers(i, p.data.dtype)
        return self

    def _cast_buffers(self, i: int, dtype: np.dtype) -> None:
        """Cast parameter ``i``'s state buffers (base class: none)."""

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Plain/momentum SGD with optional weight decay."""

    def __init__(
        self,
        params: Sequence[Tensor],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.params)

    def _cast_buffers(self, i: int, dtype: np.dtype) -> None:
        if self._velocity[i] is not None:
            self._velocity[i] = self._velocity[i].astype(dtype, copy=False)

    def step(self) -> None:
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(p.data)
                self._velocity[i] = self.momentum * self._velocity[i] + g
                g = self._velocity[i]
            p.data -= self.lr * g


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction and optional weight decay."""

    def __init__(
        self,
        params: Sequence[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: List[Optional[np.ndarray]] = [None] * len(self.params)
        self._v: List[Optional[np.ndarray]] = [None] * len(self.params)
        self._t = 0

    def _cast_buffers(self, i: int, dtype: np.dtype) -> None:
        if self._m[i] is not None:
            self._m[i] = self._m[i].astype(dtype, copy=False)
            self._v[i] = self._v[i].astype(dtype, copy=False)

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self._t
        bias2 = 1.0 - b2 ** self._t
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self._m[i] is None:
                self._m[i] = np.zeros_like(p.data)
                self._v[i] = np.zeros_like(p.data)
            self._m[i] = b1 * self._m[i] + (1 - b1) * g
            self._v[i] = b2 * self._v[i] + (1 - b2) * (g * g)
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
