"""GraphSAGE layer with a mean aggregator (the paper's Eq. 1-2 instance).

Per layer:  ``z_v = mean_{u in N(v)} h_u``  and
``h'_v = W @ concat(z_v, h_v) + b``  (activation applied by the model).

The layer is *location-agnostic*: it takes a propagation operator of
shape ``(n_self, n_all)`` plus the corresponding feature matrices, so
the same layer object serves single-device full-graph training
(``n_all = n_self = N``) and partition-parallel training
(``n_all = |V_i| + |U_i|``, the inner block plus the sampled boundary
block).  That property is what makes the "p = 1 equals full graph"
equivalence test exact.
"""

from __future__ import annotations

import numpy as np

from ..tensor import SparseOp, Tensor, concat_cols, spmm, xavier_uniform
from .module import Module, Parameter

__all__ = ["SAGELayer"]


class SAGELayer(Module):
    """One GraphSAGE-mean layer.

    Parameters
    ----------
    in_features / out_features:
        Input and output embedding widths.
    rng:
        Generator for Xavier init.
    bias:
        Whether to add a bias after the linear transform.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
        dtype=None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        # W acts on concat(z, h): shape (2*in, out).
        self.weight = Parameter(
            xavier_uniform((2 * in_features, out_features), rng, dtype=dtype).data
        )
        self.bias = Parameter(np.zeros(out_features), dtype=dtype) if bias else None

    def forward(self, prop: SparseOp, h_all: Tensor, h_self: Tensor) -> Tensor:
        """Aggregate + update.

        Parameters
        ----------
        prop:
            ``(n_self, n_all)`` mean-aggregation operator.  Row *v*
            holds ``1/deg(v)`` at the columns of *v*'s neighbours
            (possibly rescaled by 1/p on sampled boundary columns).
        h_all:
            ``(n_all, in)`` features of every node the operator reads.
        h_self:
            ``(n_self, in)`` the nodes' own features for the update.
        """
        if prop.shape[0] != h_self.shape[0]:
            raise ValueError(
                f"operator rows {prop.shape[0]} != self rows {h_self.shape[0]}"
            )
        if prop.shape[1] != h_all.shape[0]:
            raise ValueError(
                f"operator cols {prop.shape[1]} != feature rows {h_all.shape[0]}"
            )
        z = spmm(prop, h_all)
        zh = concat_cols([z, h_self])
        out = zh @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    __call__ = forward

    def flops(self, n_self: int, n_all: int, nnz: int) -> int:
        """Forward FLOPs: SpMM plus the dense update."""
        spmm_cost = 2 * nnz * self.in_features
        dense_cost = 2 * n_self * 2 * self.in_features * self.out_features
        return spmm_cost + dense_cost
