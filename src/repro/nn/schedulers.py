"""Learning-rate schedulers.

The paper trains with a fixed learning rate, but any library release
of a distributed GCN trainer needs schedules: at small sampling rates
the gradient noise floor rises (Table 2's variance bound scales with
``1/s_ℓ``), and decaying the step size recovers the tail of
convergence.  All schedulers mutate ``optimizer.lr`` in place and are
driven by an explicit :meth:`step` per epoch, mirroring the PyTorch
convention so downstream code ports directly.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from .optim import Optimizer

__all__ = [
    "LRScheduler",
    "StepLR",
    "MultiStepLR",
    "CosineAnnealingLR",
    "LinearWarmupLR",
    "ReduceLROnPlateau",
]


class LRScheduler:
    """Base class: remembers the initial rate and the epoch counter."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.last_epoch = -1

    def get_lr(self, epoch: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch; returns the rate now in effect."""
        self.last_epoch += 1
        lr = self.get_lr(self.last_epoch)
        self.optimizer.lr = lr
        return lr


class StepLR(LRScheduler):
    """Multiply the rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class MultiStepLR(LRScheduler):
    """Multiply the rate by ``gamma`` at each listed milestone epoch."""

    def __init__(
        self, optimizer: Optimizer, milestones: Sequence[int], gamma: float = 0.1
    ) -> None:
        super().__init__(optimizer)
        self.milestones: List[int] = sorted(milestones)
        if self.milestones and self.milestones[0] < 0:
            raise ValueError("milestones must be non-negative")
        self.gamma = gamma

    def get_lr(self, epoch: int) -> float:
        passed = sum(1 for m in self.milestones if m <= epoch)
        return self.base_lr * self.gamma ** passed


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base rate to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0) -> None:
        if t_max <= 0:
            raise ValueError(f"t_max must be positive, got {t_max}")
        super().__init__(optimizer)
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self, epoch: int) -> float:
        t = min(epoch, self.t_max)
        cos = (1.0 + math.cos(math.pi * t / self.t_max)) / 2.0
        return self.eta_min + (self.base_lr - self.eta_min) * cos


class LinearWarmupLR(LRScheduler):
    """Ramp linearly from ~0 to the base rate over ``warmup`` epochs,
    then hand over to an optional inner scheduler (epoch-shifted)."""

    def __init__(
        self,
        optimizer: Optimizer,
        warmup: int,
        after: LRScheduler = None,
    ) -> None:
        if warmup <= 0:
            raise ValueError(f"warmup must be positive, got {warmup}")
        super().__init__(optimizer)
        self.warmup = warmup
        self.after = after

    def get_lr(self, epoch: int) -> float:
        if epoch < self.warmup:
            return self.base_lr * (epoch + 1) / self.warmup
        if self.after is not None:
            return self.after.get_lr(epoch - self.warmup)
        return self.base_lr


class ReduceLROnPlateau(LRScheduler):
    """Multiply the rate by ``factor`` when the monitored metric stops
    improving for ``patience`` consecutive steps.

    Unlike the epoch-indexed schedulers, :meth:`step` takes the metric
    value (higher-is-better by default, e.g. validation accuracy).
    """

    def __init__(
        self,
        optimizer: Optimizer,
        factor: float = 0.5,
        patience: int = 10,
        mode: str = "max",
        min_lr: float = 0.0,
    ) -> None:
        if not 0.0 < factor < 1.0:
            raise ValueError(f"factor must be in (0, 1), got {factor}")
        if mode not in ("max", "min"):
            raise ValueError(f"mode must be 'max' or 'min', got {mode!r}")
        super().__init__(optimizer)
        self.factor = factor
        self.patience = patience
        self.mode = mode
        self.min_lr = min_lr
        self.best = -math.inf if mode == "max" else math.inf
        self.bad_steps = 0

    def _improved(self, value: float) -> bool:
        return value > self.best if self.mode == "max" else value < self.best

    def step(self, metric: float = None) -> float:  # type: ignore[override]
        if metric is None:
            raise ValueError("ReduceLROnPlateau.step requires the metric value")
        self.last_epoch += 1
        if self._improved(metric):
            self.best = metric
            self.bad_steps = 0
        else:
            self.bad_steps += 1
            if self.bad_steps > self.patience:
                self.optimizer.lr = max(self.optimizer.lr * self.factor, self.min_lr)
                self.bad_steps = 0
        return self.optimizer.lr

    def get_lr(self, epoch: int) -> float:
        return self.optimizer.lr
