"""Partitioning substrate: METIS-like multilevel and random partitioners
plus the boundary/communication analysis of Section 3.1."""

from typing import Optional

import numpy as np

from .types import PartitionResult
from .random_part import random_partition
from .metis_like import metis_like_partition, MetisLikeConfig
from .spectral import spectral_partition, SpectralConfig
from .analysis import (
    PartitionStats,
    boundary_inner_table,
    communication_volume,
    edge_cut,
    partition_stats,
    ratio_distribution,
    sender_degrees,
)

__all__ = [
    "PartitionResult",
    "random_partition",
    "metis_like_partition",
    "MetisLikeConfig",
    "spectral_partition",
    "SpectralConfig",
    "PartitionStats",
    "boundary_inner_table",
    "communication_volume",
    "edge_cut",
    "partition_stats",
    "ratio_distribution",
    "sender_degrees",
    "partition_graph",
]


def partition_graph(
    graph,
    num_parts: int,
    method: str = "metis",
    seed: int = 0,
    objective: str = "volume",
) -> PartitionResult:
    """Facade: partition a :class:`~repro.graph.Graph`.

    ``method`` is "metis" (multilevel, default), "spectral"
    (normalised-Laplacian embedding + balanced k-means) or "random".
    """
    if method == "random":
        rng = np.random.default_rng(seed)
        return random_partition(graph.num_nodes, num_parts, rng)
    if method == "metis":
        cfg = MetisLikeConfig(objective=objective, seed=seed)
        return metis_like_partition(graph.adj, num_parts, cfg)
    if method == "spectral":
        return spectral_partition(graph.adj, num_parts, SpectralConfig(seed=seed))
    raise ValueError(f"unknown partition method {method!r}")
