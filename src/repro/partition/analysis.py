"""Partition quality analysis: the quantities of Section 3.1.

* :func:`communication_volume` — Eq. 3: total boundary-node count,
  computed two equivalent ways (per-sender D(v) and per-receiver
  |B_i|); tests assert they agree.
* :func:`boundary_inner_table` — the Table 1 rows.
* :func:`ratio_distribution` — the Fig. 3 histogram data.
* :func:`edge_cut` — the classic min-cut objective (what DistDGL &
  friends minimise; compared against in Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np
import scipy.sparse as sp

from .types import PartitionResult

__all__ = [
    "PartitionStats",
    "sender_degrees",
    "communication_volume",
    "edge_cut",
    "boundary_inner_table",
    "ratio_distribution",
    "partition_stats",
]


@dataclass
class PartitionStats:
    """Summary of one partitioning (fuel for Tables 1/8, Figs 3/8)."""

    num_parts: int
    inner_sizes: np.ndarray
    boundary_sizes: np.ndarray
    ratios: np.ndarray
    comm_volume: int
    edge_cut: int

    @property
    def max_ratio(self) -> float:
        return float(self.ratios.max())

    @property
    def total_boundary(self) -> int:
        return int(self.boundary_sizes.sum())


def sender_degrees(adj: sp.csr_matrix, assignment: np.ndarray) -> np.ndarray:
    """D(v) per node: number of *other* partitions containing at least
    one neighbour of v (Buluc et al. definition used in Eq. 3)."""
    assignment = np.asarray(assignment, dtype=np.int64)
    n = adj.shape[0]
    indptr, indices = adj.indptr, adj.indices
    own = assignment
    d = np.zeros(n, dtype=np.int64)
    neigh_parts = assignment[indices]
    for v in range(n):
        parts = neigh_parts[indptr[v]:indptr[v + 1]]
        if parts.size == 0:
            continue
        uniq = np.unique(parts)
        d[v] = uniq.size - (1 if own[v] in uniq else 0)
    return d


def communication_volume(adj: sp.csr_matrix, partition: PartitionResult) -> int:
    """Eq. 3: total per-layer feature messages = Σ_i |B_i|."""
    return int(sum(len(b) for b in partition.all_boundary_nodes(adj)))


def edge_cut(adj: sp.csr_matrix, assignment: np.ndarray) -> int:
    """Number of undirected edges crossing partitions."""
    coo = adj.tocoo()
    assignment = np.asarray(assignment)
    cross = assignment[coo.row] != assignment[coo.col]
    return int(cross.sum() // 2)


def boundary_inner_table(adj: sp.csr_matrix, partition: PartitionResult) -> List[Dict]:
    """Rows of Table 1: per-partition inner/boundary counts and ratio."""
    rows = []
    for i in range(partition.num_parts):
        inner = partition.inner_nodes(i)
        boundary = partition.boundary_nodes(adj, i)
        n_in = len(inner)
        n_bd = len(boundary)
        rows.append(
            {
                "partition": i + 1,
                "inner": n_in,
                "boundary": n_bd,
                "ratio": (n_bd / n_in) if n_in else float("inf"),
            }
        )
    return rows


def ratio_distribution(adj: sp.csr_matrix, partition: PartitionResult) -> np.ndarray:
    """Boundary/inner ratio per partition (the Fig. 3 histogram)."""
    return np.array(
        [row["ratio"] for row in boundary_inner_table(adj, partition)]
    )


def partition_stats(adj: sp.csr_matrix, partition: PartitionResult) -> PartitionStats:
    """Collect per-partition inner/boundary statistics for ``partition``."""
    table = boundary_inner_table(adj, partition)
    inner = np.array([r["inner"] for r in table])
    boundary = np.array([r["boundary"] for r in table])
    ratios = np.array([r["ratio"] for r in table])
    return PartitionStats(
        num_parts=partition.num_parts,
        inner_sizes=inner,
        boundary_sizes=boundary,
        ratios=ratios,
        comm_volume=int(boundary.sum()),
        edge_cut=edge_cut(adj, partition.assignment),
    )
