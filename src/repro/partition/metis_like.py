"""Multilevel k-way graph partitioner (METIS-style).

The paper partitions with METIS configured to minimise *communication
volume* (the number of boundary nodes, Eq. 3) rather than edge cut.
METIS itself is unavailable offline, so this module implements the same
algorithmic recipe from scratch:

1. **Coarsening** — repeated heavy-edge matching contracts the graph
   until it is small; edge weights accumulate collapsed multiplicities
   and node weights accumulate collapsed node counts.
2. **Initial partition** — greedy region growing on the coarsest
   graph: each part grows from a seed by absorbing the unassigned
   neighbour with the strongest connection until it reaches its weight
   target.
3. **Uncoarsening + refinement** — the assignment is projected back
   level by level; at each level a boundary-refinement pass moves
   nodes between neighbouring parts when doing so reduces the
   objective while keeping parts balanced.

Two objectives are supported, matching the paper's discussion:

* ``"cut"``    — minimise the weight of crossing edges (the DistDGL
  default the paper argues against);
* ``"volume"`` — minimise Σ_v w_v · D(v), the (weighted) communication
  volume of Eq. 3 (the paper's choice, Section 3.2 Goal-1).

Balance (Goal-2) is enforced as a hard constraint: no move may push a
part above ``(1 + balance_eps)`` × the average part weight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from .types import PartitionResult

__all__ = ["metis_like_partition", "MetisLikeConfig"]


@dataclass
class MetisLikeConfig:
    """Tuning knobs for :func:`metis_like_partition`."""

    objective: str = "volume"  # "volume" (Eq. 3) or "cut"
    balance_eps: float = 0.10
    refine_passes: int = 4
    coarsen_factor: int = 25  # stop coarsening near coarsen_factor * k nodes
    max_levels: int = 25
    seed: int = 0


def metis_like_partition(
    adj: sp.csr_matrix,
    num_parts: int,
    config: Optional[MetisLikeConfig] = None,
) -> PartitionResult:
    """Partition an undirected graph into ``num_parts`` balanced parts.

    Parameters
    ----------
    adj:
        Symmetric CSR adjacency (binary or weighted).
    num_parts:
        Number of parts k.
    config:
        Optional :class:`MetisLikeConfig`.
    """
    cfg = config or MetisLikeConfig()
    if cfg.objective not in ("volume", "cut"):
        raise ValueError(f"unknown objective {cfg.objective!r}")
    n = adj.shape[0]
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    if num_parts == 1:
        return PartitionResult(np.zeros(n, dtype=np.int64), 1, method="metis-like")
    if num_parts > n:
        raise ValueError("more partitions than nodes")

    rng = np.random.default_rng(cfg.seed)
    a = sp.csr_matrix(adj, dtype=np.float64)
    a.setdiag(0)
    a.eliminate_zeros()

    # ------------------------------------------------------------------
    # 1. Coarsening
    # ------------------------------------------------------------------
    graphs: List[sp.csr_matrix] = [a]
    node_weights: List[np.ndarray] = [np.ones(n)]
    mappings: List[np.ndarray] = []  # fine node -> coarse node, per level
    stop_at = max(cfg.coarsen_factor * num_parts, 64)
    while graphs[-1].shape[0] > stop_at and len(mappings) < cfg.max_levels:
        mapping, coarse_n = _heavy_edge_matching(graphs[-1], rng)
        if coarse_n >= graphs[-1].shape[0]:  # matching made no progress
            break
        coarse_adj, coarse_w = _contract(graphs[-1], node_weights[-1], mapping, coarse_n)
        graphs.append(coarse_adj)
        node_weights.append(coarse_w)
        mappings.append(mapping)

    # ------------------------------------------------------------------
    # 2. Initial partition on the coarsest graph
    # ------------------------------------------------------------------
    assignment = _greedy_grow(graphs[-1], node_weights[-1], num_parts, rng)

    # ------------------------------------------------------------------
    # 3. Uncoarsen + refine
    # ------------------------------------------------------------------
    assignment = _refine(graphs[-1], node_weights[-1], assignment, num_parts, cfg, rng)
    for level in range(len(mappings) - 1, -1, -1):
        assignment = assignment[mappings[level]]  # project to finer graph
        assignment = _refine(
            graphs[level], node_weights[level], assignment, num_parts, cfg, rng
        )

    return PartitionResult(assignment, num_parts, method=f"metis-like/{cfg.objective}")


# ----------------------------------------------------------------------
# Coarsening helpers
# ----------------------------------------------------------------------

def _heavy_edge_matching(
    adj: sp.csr_matrix, rng: np.random.Generator
) -> Tuple[np.ndarray, int]:
    """Match each node with its heaviest unmatched neighbour.

    Returns ``(mapping, coarse_n)`` where ``mapping[v]`` is the coarse
    node id of fine node v.
    """
    n = adj.shape[0]
    indptr, indices, data = adj.indptr, adj.indices, adj.data
    match = np.full(n, -1, dtype=np.int64)
    order = rng.permutation(n)
    for v in order:
        if match[v] != -1:
            continue
        best, best_w = -1, 0.0
        for idx in range(indptr[v], indptr[v + 1]):
            u = indices[idx]
            if match[u] != -1 or u == v:
                continue
            w = data[idx]
            if w > best_w:
                best, best_w = u, w
        if best != -1:
            match[v] = best
            match[best] = v
        else:
            match[v] = v  # stays single
    # Assign coarse ids.
    mapping = np.full(n, -1, dtype=np.int64)
    next_id = 0
    for v in range(n):
        if mapping[v] != -1:
            continue
        mapping[v] = next_id
        partner = match[v]
        if partner != v and partner != -1:
            mapping[partner] = next_id
        next_id += 1
    return mapping, next_id


def _contract(
    adj: sp.csr_matrix,
    node_w: np.ndarray,
    mapping: np.ndarray,
    coarse_n: int,
) -> Tuple[sp.csr_matrix, np.ndarray]:
    """Collapse matched pairs; edge weights/multiplicities accumulate."""
    coo = adj.tocoo()
    rows = mapping[coo.row]
    cols = mapping[coo.col]
    coarse = sp.coo_matrix((coo.data, (rows, cols)), shape=(coarse_n, coarse_n)).tocsr()
    coarse.setdiag(0)
    coarse.eliminate_zeros()
    coarse.sum_duplicates()
    coarse_w = np.zeros(coarse_n)
    np.add.at(coarse_w, mapping, node_w)
    return coarse, coarse_w


# ----------------------------------------------------------------------
# Initial partition
# ----------------------------------------------------------------------

def _greedy_grow(
    adj: sp.csr_matrix,
    node_w: np.ndarray,
    k: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Greedy region growing: parts absorb their best-connected
    unassigned neighbour until each reaches the weight target."""
    n = adj.shape[0]
    indptr, indices, data = adj.indptr, adj.indices, adj.data
    assignment = np.full(n, -1, dtype=np.int64)
    conn = np.zeros(n)  # connection strength to the part being grown

    unassigned_left = n
    remaining_weight = float(node_w.sum())
    for part in range(k - 1):
        if unassigned_left == 0:
            break
        # Adaptive target keeps late parts from starving when early
        # parts overshoot (coarse node weights are lumpy).
        target = remaining_weight / (k - part)
        # Seed: the unassigned node with the largest weight (hubs make
        # good region centres); ties broken by rng ordering.
        candidates = np.flatnonzero(assignment == -1)
        seed = candidates[np.argmax(node_w[candidates] + rng.random(len(candidates)) * 1e-9)]
        conn[:] = 0.0
        frontier: set = set()
        current = int(seed)
        weight = 0.0
        while True:
            assignment[current] = part
            unassigned_left -= 1
            weight += node_w[current]
            frontier.discard(current)
            for idx in range(indptr[current], indptr[current + 1]):
                u = indices[idx]
                if assignment[u] == -1:
                    conn[u] += data[idx]
                    frontier.add(int(u))
            if weight >= target or unassigned_left == 0:
                break
            if frontier:
                current = max(frontier, key=lambda u: conn[u])
            else:
                remaining = np.flatnonzero(assignment == -1)
                if remaining.size == 0:
                    break
                current = int(remaining[rng.integers(len(remaining))])
        remaining_weight -= weight
    # Last part takes everything left.
    assignment[assignment == -1] = k - 1
    return assignment


# ----------------------------------------------------------------------
# Refinement
# ----------------------------------------------------------------------

def _neighbour_part_counts(
    adj: sp.csr_matrix, assignment: np.ndarray, k: int
) -> np.ndarray:
    """``counts[v, p]`` = total edge weight from v into part p."""
    n = adj.shape[0]
    coo = adj.tocoo()
    counts = np.zeros((n, k))
    np.add.at(counts, (coo.row, assignment[coo.col]), coo.data)
    return counts


def _refine(
    adj: sp.csr_matrix,
    node_w: np.ndarray,
    assignment: np.ndarray,
    k: int,
    cfg: MetisLikeConfig,
    rng: np.random.Generator,
) -> np.ndarray:
    """Greedy boundary refinement under a hard balance constraint."""
    n = adj.shape[0]
    assignment = assignment.copy()
    indptr, indices, data = adj.indptr, adj.indices, adj.data
    counts = _neighbour_part_counts(adj, assignment, k)
    part_weight = np.zeros(k)
    np.add.at(part_weight, assignment, node_w)
    max_weight = (1.0 + cfg.balance_eps) * node_w.sum() / k

    for _ in range(cfg.refine_passes):
        moved = 0
        # Boundary nodes: any node with edges into a foreign part.
        own_counts = counts[np.arange(n), assignment]
        row_tot = counts.sum(axis=1)
        boundary = np.flatnonzero(row_tot - own_counts > 0)
        rng.shuffle(boundary)
        for v in boundary:
            a_part = assignment[v]
            cand = np.flatnonzero(counts[v] > 0)
            cand = cand[cand != a_part]
            if cand.size == 0:
                continue
            gains = _move_gains(
                v, a_part, cand, assignment, counts, indptr, indices, data,
                node_w, cfg.objective,
            )
            # Respect balance.
            feasible = part_weight[cand] + node_w[v] <= max_weight
            gains = np.where(feasible, gains, -np.inf)
            best = int(np.argmax(gains))
            if gains[best] <= 0:
                continue
            b_part = int(cand[best])
            # Apply the move.
            neigh = indices[indptr[v]:indptr[v + 1]]
            w_edges = data[indptr[v]:indptr[v + 1]]
            np.add.at(counts[:, a_part], neigh, -w_edges)
            np.add.at(counts[:, b_part], neigh, w_edges)
            part_weight[a_part] -= node_w[v]
            part_weight[b_part] += node_w[v]
            assignment[v] = b_part
            moved += 1
        if moved == 0:
            break

    _rebalance(
        assignment, counts, part_weight, node_w, k, cfg,
        indptr, indices, data, rng,
    )
    return assignment


def _rebalance(
    assignment: np.ndarray,
    counts: np.ndarray,
    part_weight: np.ndarray,
    node_w: np.ndarray,
    k: int,
    cfg: MetisLikeConfig,
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    rng: np.random.Generator,
) -> None:
    """Feed underweight parts from their neighbours (in place).

    Greedy growth can leave late parts starved; refinement alone cannot
    fix that because it only accepts strictly improving moves.  Here we
    accept objective-neutral or -negative moves as long as they flow
    weight from heavier parts into any part below
    ``(1 - balance_eps) * average``.
    """
    n = assignment.shape[0]
    avg = node_w.sum() / k
    min_weight = (1.0 - cfg.balance_eps) * avg
    max_moves = n  # hard stop; each move strictly raises the light part
    for _ in range(max_moves):
        light = int(np.argmin(part_weight))
        if part_weight[light] >= min_weight:
            break
        # Candidate donors: nodes outside `light` adjacent to it whose
        # own part is heavier than average.
        cand = np.flatnonzero((counts[:, light] > 0) & (assignment != light))
        cand = cand[part_weight[assignment[cand]] > avg]
        if cand.size == 0:
            # Disconnected light part: pull any node from the heaviest part.
            heavy = int(np.argmax(part_weight))
            pool = np.flatnonzero(assignment == heavy)
            if pool.size == 0:
                break
            cand = pool[rng.integers(pool.size)][None]
        # Prefer the donor with the strongest connection into `light`
        # (least cut damage).
        v = int(cand[np.argmax(counts[cand, light])])
        a_part = int(assignment[v])
        neigh = indices[indptr[v]:indptr[v + 1]]
        w_edges = data[indptr[v]:indptr[v + 1]]
        np.add.at(counts[:, a_part], neigh, -w_edges)
        np.add.at(counts[:, light], neigh, w_edges)
        part_weight[a_part] -= node_w[v]
        part_weight[light] += node_w[v]
        assignment[v] = light


def _move_gains(
    v: int,
    a_part: int,
    cand: np.ndarray,
    assignment: np.ndarray,
    counts: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    node_w: np.ndarray,
    objective: str,
) -> np.ndarray:
    """Objective reduction for moving ``v`` from ``a_part`` to each
    candidate part (positive = improvement)."""
    if objective == "cut":
        # Cut decreases by (edges to b) - (edges to a).
        return counts[v, cand] - counts[v, a_part]

    # Volume objective: ΔVol = Δ(w_v·D(v)) + Σ_u Δ(w_u·D(u)).
    neigh = indices[indptr[v]:indptr[v + 1]]
    w_edges = data[indptr[v]:indptr[v + 1]]
    gains = np.empty(len(cand))
    for j, b_part in enumerate(cand):
        # D(v) = |{p != own : counts[v,p] > 0}| and v's neighbour
        # multiset is unchanged by the move, so only the excluded own
        # part flips: D_new - D_old = (counts[v,a]>0) - (counts[v,b]>0).
        delta = node_w[v] * (
            (counts[v, a_part] > 0).astype(np.float64)
            - (counts[v, b_part] > 0).astype(np.float64)
        )
        # Neighbours u: counts[u, a] -= w_uv, counts[u, b] += w_uv.
        # Presence in a vanishes iff counts[u,a] == w_uv;
        # presence in b appears  iff counts[u,b] == 0.
        lose_a = (np.abs(counts[neigh, a_part] - w_edges) < 1e-12) & (
            assignment[neigh] != a_part
        )
        gain_b = (counts[neigh, b_part] == 0) & (assignment[neigh] != b_part)
        delta += -(node_w[neigh] * lose_a).sum() + (node_w[neigh] * gain_b).sum()
        gains[j] = -delta  # positive gain = volume reduction
    return gains
