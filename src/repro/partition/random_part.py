"""Random partitioner — the ablation baseline of Tables 7 and 8.

Nodes are dealt to partitions uniformly at random with exact balance
(sizes differ by at most one).  Random partitioning maximises boundary
nodes, which is exactly why the paper uses it to show (a) BNS-GCN's
accuracy is partitioner-agnostic and (b) BNS saves *more* when the
partitioner is worse.
"""

from __future__ import annotations

import numpy as np

from .types import PartitionResult

__all__ = ["random_partition"]


def random_partition(
    num_nodes: int,
    num_parts: int,
    rng: np.random.Generator,
) -> PartitionResult:
    """Assign nodes to ``num_parts`` balanced random parts."""
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    if num_parts > num_nodes:
        raise ValueError("more partitions than nodes")
    ids = np.arange(num_nodes) % num_parts
    rng.shuffle(ids)
    return PartitionResult(assignment=ids, num_parts=num_parts, method="random")
