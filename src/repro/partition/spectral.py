"""Spectral partitioner.

Section 3.2 notes that "other partitioning algorithms are also
compatible with BNS-GCN" (validated in the paper's Tables 7-8 with a
random partitioner).  This module adds a third family: spectral
bisection/k-means on the normalised-Laplacian eigenvectors — a
classical alternative to multilevel METIS with very different
cut structure, useful for the partitioner-robustness ablations.

The embedding uses the ``k`` smallest non-trivial eigenvectors of
``L = I - D^{-1/2} A D^{-1/2}`` (via ``scipy.sparse.linalg.eigsh`` on
the shifted operator), followed by balanced k-means: standard Lloyd
iterations, then a greedy rebalancing pass that moves nodes out of
oversized clusters (farthest-from-centroid first) so no partition
exceeds ``(1 + slack)`` of the ideal size — the balance Goal-2 of
Section 3.2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from .types import PartitionResult

__all__ = ["SpectralConfig", "spectral_partition"]


@dataclass(frozen=True)
class SpectralConfig:
    """Knobs for :func:`spectral_partition`.

    Attributes
    ----------
    slack:
        Maximum allowed relative imbalance; 0.1 means no partition may
        hold more than 1.1x the ideal share of nodes.
    kmeans_iters:
        Lloyd iterations on the spectral embedding.
    seed:
        Seeds centroid initialisation.
    """

    slack: float = 0.1
    kmeans_iters: int = 30
    seed: int = 0


def _spectral_embedding(adj: sp.csr_matrix, dim: int, seed: int) -> np.ndarray:
    """Ng-Jordan-Weiss embedding: rows of the ``dim`` *largest*
    eigenvectors of the normalised adjacency, row-normalised.

    Keeping the leading (near-constant) eigenvector rather than
    dropping it matters: on graphs with ``dim`` well-separated clusters
    the top eigenspace is nearly degenerate and ARPACK returns an
    arbitrary rotation of the cluster indicators — any fixed "drop the
    trivial one" rule can discard cluster information, while k-means on
    the row-normalised full basis is rotation-invariant.
    Degree-zero nodes get a zero embedding.
    """
    n = adj.shape[0]
    deg = np.asarray(adj.sum(axis=1)).ravel()
    inv_sqrt = np.zeros(n)
    nz = deg > 0
    inv_sqrt[nz] = 1.0 / np.sqrt(deg[nz])
    d_half = sp.diags(inv_sqrt)
    sym = d_half @ adj @ d_half
    k = min(dim, n - 1)
    v0 = np.random.default_rng(seed).normal(size=n)
    try:
        _, vecs = spla.eigsh(sym, k=k, which="LA", v0=v0, maxiter=5000)
    except spla.ArpackNoConvergence as exc:  # pragma: no cover - rare
        if exc.eigenvectors is None or exc.eigenvectors.shape[1] < 1:
            raise
        vecs = exc.eigenvectors
    norms = np.linalg.norm(vecs, axis=1)
    emb = vecs / np.maximum(norms, 1e-12)[:, None]
    emb[~nz] = 0.0
    return emb


def _balanced_kmeans(
    emb: np.ndarray, k: int, cfg: SpectralConfig
) -> np.ndarray:
    """Lloyd's algorithm followed by a greedy capacity-rebalancing pass."""
    n = emb.shape[0]
    rng = np.random.default_rng(cfg.seed)
    centroids = emb[rng.choice(n, size=k, replace=False)]
    assign = np.zeros(n, dtype=np.int64)
    for _ in range(cfg.kmeans_iters):
        dist = ((emb[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        new_assign = dist.argmin(axis=1)
        if (new_assign == assign).all():
            assign = new_assign
            break
        assign = new_assign
        for c in range(k):
            members = emb[assign == c]
            if len(members):
                centroids[c] = members.mean(axis=0)
            else:  # re-seed empty clusters at the farthest point
                far = dist.min(axis=1).argmax()
                centroids[c] = emb[far]

    # Rebalance: cap every cluster at (1 + slack) * ideal.
    cap = int(np.ceil((1.0 + cfg.slack) * n / k))
    dist = ((emb[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
    sizes = np.bincount(assign, minlength=k)
    order = np.argsort(dist[np.arange(n), assign])[::-1]  # worst-fit first
    for v in order:
        c = assign[v]
        if sizes[c] <= cap:
            continue
        # Move v to the nearest cluster with headroom.
        for alt in np.argsort(dist[v]):
            if alt != c and sizes[alt] < cap:
                assign[v] = alt
                sizes[c] -= 1
                sizes[alt] += 1
                break
    return assign


def spectral_partition(
    adj: sp.csr_matrix,
    num_parts: int,
    config: SpectralConfig = SpectralConfig(),
) -> PartitionResult:
    """Partition ``adj`` into ``num_parts`` via spectral embedding +
    balanced k-means.

    Dense eigensolves limit this to mid-sized graphs (the embedding is
    ``O(n * num_parts)`` memory); for the laptop-scale analogues used
    here that is ample.
    """
    n = adj.shape[0]
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    if num_parts > n:
        raise ValueError("more partitions than nodes")
    if num_parts == 1:
        return PartitionResult(
            assignment=np.zeros(n, dtype=np.int64), num_parts=1, method="spectral"
        )
    emb = _spectral_embedding(adj, dim=num_parts, seed=config.seed)
    assign = _balanced_kmeans(emb, num_parts, config)
    return PartitionResult(assignment=assign, num_parts=num_parts, method="spectral")
