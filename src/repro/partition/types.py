"""Partition result container and invariant checks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np
import scipy.sparse as sp

__all__ = ["PartitionResult"]


@dataclass
class PartitionResult:
    """A k-way node partition of a graph.

    Attributes
    ----------
    assignment:
        ``(n,)`` int array mapping node -> partition id in ``[0, k)``.
    num_parts:
        ``k``.
    method:
        Identifier of the partitioner that produced it.
    """

    assignment: np.ndarray
    num_parts: int
    method: str = "unknown"

    def __post_init__(self) -> None:
        self.assignment = np.asarray(self.assignment, dtype=np.int64)
        if self.assignment.ndim != 1:
            raise ValueError("assignment must be 1-D")
        if self.num_parts < 1:
            raise ValueError("num_parts must be >= 1")
        if self.assignment.size and (
            self.assignment.min() < 0 or self.assignment.max() >= self.num_parts
        ):
            raise ValueError("assignment ids must lie in [0, num_parts)")

    @property
    def num_nodes(self) -> int:
        return self.assignment.shape[0]

    def inner_nodes(self, part: int) -> np.ndarray:
        """Global ids of partition ``part``'s inner nodes (sorted)."""
        return np.flatnonzero(self.assignment == part)

    def part_sizes(self) -> np.ndarray:
        return np.bincount(self.assignment, minlength=self.num_parts)

    def boundary_nodes(self, adj: sp.csr_matrix, part: int) -> np.ndarray:
        """Global ids of nodes outside ``part`` adjacent to its inner set.

        This is the paper's boundary node set B_i: remote nodes whose
        features partition *i* must receive to aggregate its inner
        nodes (Section 3.1).
        """
        inner = self.inner_nodes(part)
        if inner.size == 0:
            return np.empty(0, dtype=np.int64)
        neigh = adj[inner].indices
        mask = np.zeros(self.num_nodes, dtype=bool)
        mask[neigh] = True
        mask[inner] = False
        return np.flatnonzero(mask)

    def all_boundary_nodes(self, adj: sp.csr_matrix) -> List[np.ndarray]:
        return [self.boundary_nodes(adj, i) for i in range(self.num_parts)]

    def validate(self) -> None:
        sizes = self.part_sizes()
        if sizes.sum() != self.num_nodes:
            raise AssertionError("partition does not cover all nodes")
