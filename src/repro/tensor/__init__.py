"""Autograd substrate: numpy-backed tensors, ops, sparse matmul, init."""

from .tensor import Tensor, as_tensor, no_grad, is_grad_enabled, unbroadcast
from .ops import (
    concat_cols,
    concat_rows,
    dropout,
    exp,
    gather_rows,
    leaky_relu,
    log,
    log_softmax,
    relu,
    scatter_rows,
    segment_softmax,
    segment_sum,
    sigmoid,
    softmax,
    stack_mean,
    tanh,
)
from .sparse import SparseOp, spmm
from .init import make_rng, xavier_normal, xavier_uniform, kaiming_uniform, zeros

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "unbroadcast",
    "exp",
    "log",
    "relu",
    "leaky_relu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "dropout",
    "gather_rows",
    "scatter_rows",
    "segment_sum",
    "segment_softmax",
    "concat_rows",
    "concat_cols",
    "stack_mean",
    "SparseOp",
    "spmm",
    "make_rng",
    "xavier_uniform",
    "xavier_normal",
    "kaiming_uniform",
    "zeros",
]
