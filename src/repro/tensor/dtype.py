"""The dtype policy of the numeric stack (fp32 / fp64).

Every float that the library creates — tensors, sparse operator
blocks, gradients, optimiser moments, wire payloads — is governed by
one module-level default plus per-object overrides, so a whole run can
be flipped between float64 (the numerically-robust default that the
gradient checks and 1e-9 equivalence suites pin down) and float32 (half
the memory, ~2× SpMM throughput, half the wire bytes).

The same policy is what makes the communication ledger *honest*:
:func:`scalar_nbytes` is the single source of a scalar's wire size, so
a transport constructed without an explicit ``bytes_per_scalar``
meters exactly what it ships (``np.dtype(d).itemsize``), instead of
assuming 4-byte scalars while pickling 8-byte payloads.

The default can be pre-set for a whole process with the ``REPRO_DTYPE``
environment variable (``float32`` or ``float64``) — that is how the CI
float32 job re-runs the equivalence suites at reduced precision — or
switched at runtime with :func:`set_default_dtype` /
:class:`default_dtype`.
"""

from __future__ import annotations

import os
from typing import Optional, Union

import numpy as np

__all__ = [
    "DTYPES",
    "default_dtype",
    "float_dtype_for_nbytes",
    "float_dtype_like",
    "get_default_dtype",
    "resolve_dtype",
    "scalar_nbytes",
    "set_default_dtype",
]

DTypeLike = Union[str, type, np.dtype]

#: The floating-point dtypes the stack supports end to end.
DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def _validate(dtype: DTypeLike) -> np.dtype:
    d = np.dtype(dtype)
    if d not in DTYPES:
        raise ValueError(
            f"unsupported dtype {d!r}; supported: "
            + ", ".join(str(x) for x in DTYPES)
        )
    return d


_default: np.dtype = _validate(os.environ.get("REPRO_DTYPE", "float64"))


def get_default_dtype() -> np.dtype:
    """The module-level default float dtype (float64 unless changed)."""
    return _default


def set_default_dtype(dtype: DTypeLike) -> np.dtype:
    """Set the module-level default; returns the previous default."""
    global _default
    previous = _default
    _default = _validate(dtype)
    return previous


class default_dtype:
    """Context manager scoping a default-dtype change.

    >>> with default_dtype(np.float32):
    ...     t = Tensor([1.0, 2.0])  # float32
    """

    def __init__(self, dtype: DTypeLike) -> None:
        self._dtype = _validate(dtype)

    def __enter__(self) -> np.dtype:
        self._previous = set_default_dtype(self._dtype)
        return self._dtype

    def __exit__(self, *exc) -> None:
        set_default_dtype(self._previous)


def resolve_dtype(dtype: Optional[DTypeLike] = None) -> np.dtype:
    """``None`` → the module default; anything else is validated."""
    if dtype is None:
        return _default
    return _validate(dtype)


def float_dtype_like(dtype: DTypeLike) -> np.dtype:
    """Keep a supported float dtype; map everything else (ints, bools,
    half floats) to the module default."""
    d = np.dtype(dtype)
    return d if d in DTYPES else _default


def scalar_nbytes(dtype: Optional[DTypeLike] = None) -> int:
    """Wire/storage bytes of one scalar of ``dtype`` (default dtype if
    omitted) — the single source of every ``bytes_per_scalar``."""
    return resolve_dtype(dtype).itemsize


def float_dtype_for_nbytes(nbytes: int) -> np.dtype:
    """The float dtype whose scalar width is ``nbytes`` (inverse of
    :func:`scalar_nbytes`; widths without a float map to float64)."""
    for d in DTYPES:
        if d.itemsize == nbytes:
            return d
    return np.dtype(np.float64)
