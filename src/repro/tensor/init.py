"""Weight initialisation and RNG plumbing.

Every stochastic component in the library (weight init, dropout,
boundary-node sampling, dataset synthesis, baseline samplers) draws
from an explicitly threaded ``np.random.Generator`` so that a single
seed reproduces an entire experiment.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from .tensor import Tensor

__all__ = ["make_rng", "xavier_uniform", "xavier_normal", "zeros", "kaiming_uniform"]


def make_rng(seed: Optional[int]) -> np.random.Generator:
    """Create a ``Generator``; ``None`` gives OS entropy."""
    return np.random.default_rng(seed)


def xavier_uniform(
    shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0, dtype=None
) -> Tensor:
    """Glorot/Xavier uniform init — the DGL default for SAGEConv.

    The draw itself is dtype-independent (the fp32 and fp64 paths see
    identical RNG streams); only the stored parameter is cast.
    """
    fan_in, fan_out = _fans(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return Tensor(rng.uniform(-bound, bound, size=shape), requires_grad=True, dtype=dtype)


def xavier_normal(
    shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0, dtype=None
) -> Tensor:
    """Glorot-normal initialised parameter tensor."""
    fan_in, fan_out = _fans(shape)
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return Tensor(rng.normal(0.0, std, size=shape), requires_grad=True, dtype=dtype)


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator, dtype=None) -> Tensor:
    """He-uniform initialised parameter tensor (ReLU fan-in scaling)."""
    fan_in, _ = _fans(shape)
    bound = math.sqrt(3.0 / fan_in)
    return Tensor(rng.uniform(-bound, bound, size=shape), requires_grad=True, dtype=dtype)


def zeros(shape: Tuple[int, ...], dtype=None) -> Tensor:
    """Zero-initialised parameter tensor (biases)."""
    return Tensor(np.zeros(shape), requires_grad=True, dtype=dtype)


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
