"""Pluggable kernel backends for the split-operator SpMM.

The split-form product ``rowscale ⊙ (P_in @ H_in + P_bd·colscale @
H_bd)`` is the hot loop of every sampled epoch, and how it is computed
is a *backend* decision, not an operator decision: the same
:class:`~repro.tensor.sparse.SplitOperator` can be driven by scipy's
two-pass split kernels, by a fused one-pass CSR kernel, or by a jitted
implementation when an optional accelerator package is importable.
This module is the seam: a tiny registry of named backends, each
exposing two primitives —

* ``split_spmm_forward(op, h)``  → ``P_eff @ h``
* ``split_spmm_backward(op, g)`` → ``P_eff.T @ g``

with the scale vectors folded into the traversal instead of applied as
separate dense passes.  Registered backends:

``numpy`` (default)
    Fused one-pass kernel: the inner and boundary blocks are merged
    once per operator into a single CSR whose values already carry
    ``col_scale`` and ``row_scale`` (:func:`merge_split_csr`, one
    O(nnz) pass, cached on the operator like ``inner_t`` is), so every
    subsequent forward is exactly one sparse pass — no ``h_bd`` copy,
    no post-hoc row rescale, no second ``out +=`` accumulation.  The
    backward runs one pass over the cached transpose of the same
    merged matrix.

``split``
    The reference two-pass implementation (inner product + boundary
    product + dense scale passes) — the shape every epoch paid before
    the fused kernel existed.  Kept registered for benchmarking and
    conformance testing.

``numba``
    A fused one-pass traversal jitted with numba, specialised per
    dtype (fp32/fp64) by numba's lazy compilation.  Registered only
    when ``import numba`` succeeds; selecting it without the package
    raises a clear error.  Unlike ``numpy`` it needs *no* merged-CSR
    build at all — the traversal reads the split blocks directly and
    folds the scales into the accumulation, so there is no per-plan
    O(nnz) preparation on either direction (the backward reuses the
    rank-cached ``inner_t``).

Selection: the ``REPRO_KERNEL_BACKEND`` environment variable pre-sets
the process default (mirroring ``REPRO_DTYPE``), :func:`set_backend` /
:class:`use_backend` switch it at runtime, and the trainers, the
distributed executor and the CLI (``--kernel-backend``) thread an
explicit choice end to end — a multiprocess worker resolves the same
backend rank-side from the shipped task spec.  A future torch/GPU
backend plugs into this registry without touching the operator or the
trainers.
"""
# repro-lint: layer=kernels — this registry IS the kernel layer the
# kernel-purity pass protects; raw matmuls on SplitOperator blocks are
# legal here and nowhere else.

from __future__ import annotations

import os
import threading
from typing import Dict, Optional, Tuple, Union

import numpy as np
import scipy.sparse as sp

__all__ = [
    "KernelBackend",
    "NUMBA_AVAILABLE",
    "available_backends",
    "backend_names",
    "get_backend",
    "merge_split_csr",
    "register_backend",
    "resolve_backend",
    "set_backend",
    "use_backend",
]

#: Environment variable that pre-sets the process-wide default backend.
ENV_VAR = "REPRO_KERNEL_BACKEND"

try:  # optional dependency — the registry gates it, nothing imports it
    import numba  # noqa: F401
    from numba import njit as _njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - exercised in the numba CI job
    NUMBA_AVAILABLE = False


# ----------------------------------------------------------------------
# Shared scale helpers
# ----------------------------------------------------------------------
def _scale_rows(x: np.ndarray, scale: np.ndarray) -> np.ndarray:
    """``scale ⊙ x`` for 1-D or 2-D ``x`` (scale has len(x) entries)."""
    return x * (scale[:, None] if x.ndim == 2 else scale)


def _apply_col_scale(op, x: np.ndarray) -> np.ndarray:
    """Scale the per-kept-column rows of ``x`` ((k, d) or (k,)) by
    ``op.col_scale`` — a scalar broadcast or an elementwise vector."""
    cs = op.col_scale
    if np.ndim(cs) == 0 or x.ndim == 1:
        return x * cs
    return x * cs[:, None]


def merge_split_csr(
    inner: sp.csr_matrix,
    boundary_csr: Optional[sp.csr_matrix],
    row_scale: Optional[np.ndarray],
    col_scale: Optional[Union[float, np.ndarray]],
) -> sp.csr_matrix:
    """One-pass merge of the split blocks into a scale-folded CSR.

    Builds ``rowscale ⊙ [inner | boundary·colscale]`` directly from the
    blocks' CSR arrays — a single allocation and one vectorised pass
    over the nonzeros, instead of the hstack + two diagonal products a
    naive materialisation costs.  Within each row the inner entries
    precede the boundary entries, and both blocks keep their sorted
    column order, so the result has canonical (sorted, deduplicated)
    CSR structure.
    """
    if boundary_csr is None:
        if row_scale is None:
            return inner
        out = inner.copy()
        out.data = inner.data * np.repeat(row_scale, np.diff(inner.indptr))
        return out
    a, b = inner, boundary_csr
    n_rows = a.shape[0]
    ca = np.diff(a.indptr).astype(np.int64)
    cb = np.diff(b.indptr).astype(np.int64)
    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(ca + cb, out=indptr[1:])
    # Destination slot of every source entry: each row's inner entries
    # land at the row's start, its boundary entries right after them.
    dest_a = np.arange(a.indices.size, dtype=np.int64) + np.repeat(
        indptr[:-1] - a.indptr[:-1], ca
    )
    dest_b = np.arange(b.indices.size, dtype=np.int64) + np.repeat(
        indptr[:-1] + ca - b.indptr[:-1], cb
    )
    indices = np.empty(int(indptr[-1]), dtype=np.int64)
    indices[dest_a] = a.indices
    indices[dest_b] = b.indices.astype(np.int64) + a.shape[1]
    da = a.data
    db = b.data
    if col_scale is not None:
        if np.ndim(col_scale) == 0:
            db = db * b.data.dtype.type(col_scale)
        else:
            db = db * np.asarray(col_scale, dtype=b.data.dtype)[b.indices]
    if row_scale is not None:
        da = da * np.repeat(row_scale, ca)
        db = db * np.repeat(row_scale, cb)
    data = np.empty(int(indptr[-1]), dtype=a.data.dtype)
    data[dest_a] = da
    data[dest_b] = db
    return sp.csr_matrix(
        (data, indices, indptr), shape=(n_rows, a.shape[1] + b.shape[1])
    )


# ----------------------------------------------------------------------
# Backend interface and registry
# ----------------------------------------------------------------------
class KernelBackend:
    """One named implementation of the split-SpMM primitives.

    Subclasses implement :meth:`split_spmm_forward` /
    :meth:`split_spmm_backward` over a
    :class:`~repro.tensor.sparse.SplitOperator` (duck-typed — this
    module never imports the operator class) and a raw ndarray operand.
    ``available`` is ``False`` for backends whose optional dependency
    is not importable on this host; they stay listed by
    :func:`backend_names` so selection errors can name the missing
    package, but :func:`available_backends` excludes them.
    """

    name: str = "base"
    available: bool = True
    #: Human-readable reason when ``available`` is False.
    unavailable_reason: str = ""

    def split_spmm_forward(self, op, h: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def split_spmm_backward(self, op, g: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


_REGISTRY: Dict[str, KernelBackend] = {}


def register_backend(backend: KernelBackend) -> KernelBackend:
    """Add ``backend`` to the registry (later names shadow earlier)."""
    _REGISTRY[backend.name] = backend
    return backend


def backend_names() -> Tuple[str, ...]:
    """All registered backend names, available or not (CLI choices)."""
    return tuple(_REGISTRY)


def available_backends() -> Tuple[str, ...]:
    """Names of the backends usable on this host."""
    return tuple(n for n, b in _REGISTRY.items() if b.available)


def resolve_backend(
    spec: Union[None, str, KernelBackend] = None
) -> KernelBackend:
    """``None`` → the current backend; a name → registry lookup (with
    an availability check); a backend instance passes through."""
    if spec is None:
        return get_backend()
    if isinstance(spec, KernelBackend):
        return spec
    try:
        backend = _REGISTRY[spec]
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {spec!r}; registered: "
            + ", ".join(backend_names())
        ) from None
    if not backend.available:
        raise RuntimeError(
            f"kernel backend {spec!r} is not available: "
            f"{backend.unavailable_reason}"
        )
    return backend


def get_backend() -> KernelBackend:
    """The currently active backend: the innermost :class:`use_backend`
    scope on this thread, else the process default (``numpy`` unless
    changed)."""
    stack = getattr(_tls, "stack", None)
    return stack[-1] if stack else _current


def set_backend(spec: Union[str, KernelBackend]) -> KernelBackend:
    """Set the process-default backend; returns the previous default.

    Scoped, thread-safe selection (what the trainers and the rank
    workers use) goes through :class:`use_backend` instead — the
    thread-based transport runs every rank in one process, and a rank
    finishing early must not flip its siblings' kernels mid-epoch.
    """
    global _current
    previous = _current
    _current = resolve_backend(spec)
    return previous


class use_backend:
    """Context manager scoping a backend change to the current thread.

    >>> with use_backend("split"):
    ...     out = op.matmul(h)  # two-pass reference kernels

    The override nests and is thread-local, so concurrent rank threads
    each carry their own scope.
    """

    def __init__(self, spec: Union[None, str, KernelBackend]) -> None:
        self._backend = resolve_backend(spec)

    def __enter__(self) -> KernelBackend:
        stack = getattr(_tls, "stack", None)
        if stack is None:
            stack = _tls.stack = []
        stack.append(self._backend)
        return self._backend

    def __exit__(self, *exc) -> None:
        _tls.stack.pop()


# ----------------------------------------------------------------------
# split — the two-pass reference implementation
# ----------------------------------------------------------------------
class SplitReferenceBackend(KernelBackend):
    """Two sparse passes plus separate dense scale passes (the
    pre-fusion shape of ``SplitOperator.matmul``/``rmatmul``)."""

    name = "split"

    def split_spmm_forward(self, op, h: np.ndarray) -> np.ndarray:
        n_in = op.inner.shape[1]
        out = op.inner @ h[:n_in]
        if op.boundary is not None:
            h_bd = h[n_in:]
            if op.col_scale is not None:
                h_bd = _apply_col_scale(op, h_bd)
            out += op.boundary_csr @ h_bd
        if op.row_scale is not None:
            out = _scale_rows(out, op.row_scale)
        return out

    def split_spmm_backward(self, op, g: np.ndarray) -> np.ndarray:
        if op.row_scale is not None:
            g = _scale_rows(g, op.row_scale)
        n_in = op.inner.shape[1]
        k = op.boundary.shape[1] if op.boundary is not None else 0
        out = np.empty((n_in + k,) + g.shape[1:], dtype=g.dtype)
        out[:n_in] = op.inner_t @ g
        if op.boundary is not None:
            d_bd = op.boundary_t @ g
            if op.col_scale is not None:
                d_bd = _apply_col_scale(op, d_bd)
            out[n_in:] = d_bd
        return out


# ----------------------------------------------------------------------
# numpy — fused one-pass kernel over the merged, scale-folded CSR
# ----------------------------------------------------------------------
class NumpyFusedBackend(KernelBackend):
    """One sparse pass per direction over the operator's merged CSR.

    The merge (:func:`merge_split_csr`) folds both scale vectors into
    the stored values and is cached on the operator, so the steady
    state — every layer of every epoch reusing the same plan — costs
    exactly one scipy CSR·dense product, closing the measured 25–40%
    gap the two-pass split path paid over a stacked matmul.
    """

    name = "numpy"

    def split_spmm_forward(self, op, h: np.ndarray) -> np.ndarray:
        return op.fused_csr @ h

    def split_spmm_backward(self, op, g: np.ndarray) -> np.ndarray:
        return op.fused_csr_t @ g


# ----------------------------------------------------------------------
# numba — jitted one-pass traversal of the raw split blocks
# ----------------------------------------------------------------------
if NUMBA_AVAILABLE:

    @_njit(cache=True)
    def _nb_forward(
        in_indptr, in_indices, in_data,
        bd_indptr, bd_indices, bd_data, has_bd,
        col_vec, col_scalar, col_kind,  # 0 none, 1 scalar, 2 vector
        row_scale, has_rs,
        h, n_in, out,
    ):  # pragma: no cover - measured in the numba CI job
        n_rows, d = out.shape
        for i in range(n_rows):
            for t in range(in_indptr[i], in_indptr[i + 1]):
                j = in_indices[t]
                v = in_data[t]
                for c in range(d):
                    out[i, c] += v * h[j, c]
            if has_bd:
                for t in range(bd_indptr[i], bd_indptr[i + 1]):
                    j = bd_indices[t]
                    v = bd_data[t]
                    if col_kind == 2:
                        v = v * col_vec[j]
                    elif col_kind == 1:
                        v = v * col_scalar
                    for c in range(d):
                        out[i, c] += v * h[n_in + j, c]
            if has_rs:
                r = row_scale[i]
                for c in range(d):
                    out[i, c] *= r

    @_njit(cache=True)
    def _nb_backward(
        it_indptr, it_indices, it_data,
        bt_indptr, bt_indices, bt_data, has_bd,
        col_vec, col_scalar, col_kind,
        row_scale, has_rs,
        g, n_in, out,
    ):  # pragma: no cover - measured in the numba CI job
        d = g.shape[1]
        for i in range(n_in):
            for t in range(it_indptr[i], it_indptr[i + 1]):
                j = it_indices[t]
                v = it_data[t]
                if has_rs:
                    v = v * row_scale[j]
                for c in range(d):
                    out[i, c] += v * g[j, c]
        if has_bd:
            k = out.shape[0] - n_in
            for i in range(k):
                for t in range(bt_indptr[i], bt_indptr[i + 1]):
                    j = bt_indices[t]
                    v = bt_data[t]
                    if has_rs:
                        v = v * row_scale[j]
                    for c in range(d):
                        out[n_in + i, c] += v * g[j, c]
                if col_kind == 2:
                    cv = col_vec[i]
                    for c in range(d):
                        out[n_in + i, c] *= cv
                elif col_kind == 1:
                    for c in range(d):
                        out[n_in + i, c] *= col_scalar


class NumbaFusedBackend(KernelBackend):
    """Fused one-pass traversal jitted with numba.

    Reads the split CSR blocks directly — no merged-matrix build, no
    transpose of the stacked operator (the backward reuses the cached
    ``inner_t``/``boundary_t`` blocks) — and numba's lazy compilation
    specialises the loops per dtype, so fp32 runs genuine fp32 machine
    code.  Operand and operator dtypes must match (the trainers keep
    them consistent); on a mismatch the computation falls back to the
    fused numpy kernel rather than silently upcasting.
    """

    name = "numba"
    available = NUMBA_AVAILABLE
    unavailable_reason = "the 'numba' package is not installed"

    _EMPTY_I = np.empty(0, dtype=np.int64)

    def _scales(self, op, dtype):
        cs = op.col_scale
        if cs is None:
            col_vec = np.empty(0, dtype=dtype)
            col_scalar, col_kind = dtype.type(0), 0
        elif np.ndim(cs) == 0:
            col_vec = np.empty(0, dtype=dtype)
            col_scalar, col_kind = dtype.type(cs), 1
        else:
            col_vec = np.ascontiguousarray(cs, dtype=dtype)
            col_scalar, col_kind = dtype.type(0), 2
        rs = op.row_scale
        if rs is None:
            row_scale, has_rs = np.empty(0, dtype=dtype), False
        else:
            row_scale, has_rs = np.ascontiguousarray(rs, dtype=dtype), True
        return col_vec, col_scalar, col_kind, row_scale, has_rs

    @staticmethod
    def _blocks(block, dtype):
        if block is None:
            return (
                np.zeros(1, dtype=np.int64),
                NumbaFusedBackend._EMPTY_I,
                np.empty(0, dtype=dtype),
                False,
            )
        return (
            block.indptr.astype(np.int64),
            block.indices.astype(np.int64),
            block.data,
            True,
        )

    def split_spmm_forward(self, op, h: np.ndarray) -> np.ndarray:
        dtype = op.inner.data.dtype
        if h.dtype != dtype:  # mixed precision: not a jitted case
            return _numpy_backend.split_spmm_forward(op, h)
        squeeze = h.ndim == 1
        h2 = np.ascontiguousarray(h.reshape(h.shape[0], -1))
        n_in = op.inner.shape[1]
        ia, ja, va, _ = self._blocks(op.inner, dtype)
        ib, jb, vb, has_bd = self._blocks(op.boundary_csr, dtype)
        col_vec, col_scalar, col_kind, row_scale, has_rs = self._scales(
            op, dtype
        )
        out = np.zeros((op.inner.shape[0], h2.shape[1]), dtype=dtype)
        _nb_forward(
            ia, ja, va, ib, jb, vb, has_bd,
            col_vec, col_scalar, col_kind, row_scale, has_rs,
            h2, n_in, out,
        )
        return out[:, 0] if squeeze else out

    def split_spmm_backward(self, op, g: np.ndarray) -> np.ndarray:
        dtype = op.inner.data.dtype
        if g.dtype != dtype:
            return _numpy_backend.split_spmm_backward(op, g)
        squeeze = g.ndim == 1
        g2 = np.ascontiguousarray(g.reshape(g.shape[0], -1))
        n_in = op.inner.shape[1]
        ia, ja, va, _ = self._blocks(op.inner_t, dtype)
        ib, jb, vb, has_bd = self._blocks(op.boundary_t, dtype)
        col_vec, col_scalar, col_kind, row_scale, has_rs = self._scales(
            op, dtype
        )
        k = op.boundary.shape[1] if op.boundary is not None else 0
        out = np.zeros((n_in + k, g2.shape[1]), dtype=dtype)
        _nb_backward(
            ia, ja, va, ib, jb, vb, has_bd,
            col_vec, col_scalar, col_kind, row_scale, has_rs,
            g2, n_in, out,
        )
        return out[:, 0] if squeeze else out


# ----------------------------------------------------------------------
# Registration and process default
# ----------------------------------------------------------------------
_numpy_backend = register_backend(NumpyFusedBackend())
register_backend(SplitReferenceBackend())
register_backend(NumbaFusedBackend())

_tls = threading.local()
_current: KernelBackend = _numpy_backend
_env_choice = os.environ.get(ENV_VAR)
if _env_choice:
    _current = resolve_backend(_env_choice)
