"""Elementwise, structural and neural-network ops on :class:`Tensor`.

Everything a GCN training stack needs beyond basic arithmetic lives
here: activations, row-wise softmax, dropout, row gather/scatter
(the communication primitives of partition-parallel training) and
segment reductions (the aggregation primitive of GAT).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "exp",
    "log",
    "relu",
    "leaky_relu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "dropout",
    "gather_rows",
    "scatter_rows",
    "segment_sum",
    "segment_softmax",
    "concat_rows",
    "stack_mean",
]


def exp(x: Tensor) -> Tensor:
    """Elementwise e**x."""
    x = as_tensor(x)
    out_data = np.exp(x.data)

    def backward(g: np.ndarray):
        return ((x, g * out_data),)

    return Tensor._make(out_data, (x,), "exp", backward)


def log(x: Tensor) -> Tensor:
    """Elementwise natural logarithm."""
    x = as_tensor(x)
    out_data = np.log(x.data)

    def backward(g: np.ndarray):
        return ((x, g / x.data),)

    return Tensor._make(out_data, (x,), "log", backward)


def relu(x: Tensor) -> Tensor:
    """Elementwise max(x, 0)."""
    x = as_tensor(x)
    mask = x.data > 0
    out_data = np.where(mask, x.data, 0.0)

    def backward(g: np.ndarray):
        return ((x, g * mask),)

    return Tensor._make(out_data, (x,), "relu", backward)


def leaky_relu(x: Tensor, negative_slope: float = 0.2) -> Tensor:
    """ReLU with a small slope for negative inputs (GAT's default)."""
    x = as_tensor(x)
    mask = x.data > 0
    out_data = np.where(mask, x.data, negative_slope * x.data)

    def backward(g: np.ndarray):
        return ((x, g * np.where(mask, 1.0, negative_slope)),)

    return Tensor._make(out_data, (x,), "leaky_relu", backward)


def sigmoid(x: Tensor) -> Tensor:
    """Elementwise logistic function."""
    x = as_tensor(x)
    out_data = 1.0 / (1.0 + np.exp(-x.data))

    def backward(g: np.ndarray):
        return ((x, g * out_data * (1.0 - out_data)),)

    return Tensor._make(out_data, (x,), "sigmoid", backward)


def tanh(x: Tensor) -> Tensor:
    """Elementwise hyperbolic tangent."""
    x = as_tensor(x)
    out_data = np.tanh(x.data)

    def backward(g: np.ndarray):
        return ((x, g * (1.0 - out_data ** 2)),)

    return Tensor._make(out_data, (x,), "tanh", backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out_data = e / e.sum(axis=axis, keepdims=True)

    def backward(g: np.ndarray):
        dot = (g * out_data).sum(axis=axis, keepdims=True)
        return ((x, out_data * (g - dot)),)

    return Tensor._make(out_data, (x,), "softmax", backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """log(softmax(x)) computed stably (used by cross-entropy)."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_z
    soft = np.exp(out_data)

    def backward(g: np.ndarray):
        return ((x, g - soft * g.sum(axis=axis, keepdims=True)),)

    return Tensor._make(out_data, (x,), "log_softmax", backward)


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: scale kept activations by ``1/(1-rate)``.

    The caller supplies the RNG so that experiments are reproducible
    end-to-end from a single seed.
    """
    x = as_tensor(x)
    if not training or rate <= 0.0:
        return x
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    keep = 1.0 - rate
    # The Bernoulli draw is dtype-independent (the RNG stream is shared
    # across precisions); only the mask adopts the tensor's dtype.
    mask = ((rng.random(x.shape) < keep) / keep).astype(x.data.dtype, copy=False)

    def backward(g: np.ndarray):
        return ((x, g * mask),)

    return Tensor._make(x.data * mask, (x,), "dropout", backward)


def gather_rows(x: Tensor, index: np.ndarray) -> Tensor:
    """Select rows ``x[index]``; backward scatters gradients back.

    This is the forward half of a boundary-feature exchange: rank *j*
    gathers the rows rank *i* requested and ships them over.  Backward
    is the gradient exchange of the backward pass.
    """
    x = as_tensor(x)
    index = np.asarray(index, dtype=np.int64)
    out_data = x.data[index]

    def backward(g: np.ndarray):
        full = np.zeros_like(x.data)
        np.add.at(full, index, g)
        return ((x, full),)

    return Tensor._make(out_data, (x,), "gather_rows", backward)


def scatter_rows(x: Tensor, index: np.ndarray, num_rows: int) -> Tensor:
    """Scatter-add rows of ``x`` into a ``(num_rows, d)`` zero matrix.

    ``out[index[k]] += x[k]``.  Dual of :func:`gather_rows`.
    """
    x = as_tensor(x)
    index = np.asarray(index, dtype=np.int64)
    out_data = np.zeros((num_rows,) + x.shape[1:], dtype=x.data.dtype)
    np.add.at(out_data, index, x.data)

    def backward(g: np.ndarray):
        return ((x, g[index]),)

    return Tensor._make(out_data, (x,), "scatter_rows", backward)


def segment_sum(x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``x`` that share a segment id (scatter-add reduce)."""
    return scatter_rows(x, segment_ids, num_segments)


def segment_softmax(scores: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Softmax over entries sharing a segment id.

    Used by GAT to normalise attention logits over each destination
    node's incident edges.  ``scores`` is 1-D (one logit per edge).
    """
    scores = as_tensor(scores)
    if scores.ndim != 1:
        raise ValueError("segment_softmax expects a 1-D score tensor")
    ids = np.asarray(segment_ids, dtype=np.int64)

    # Numerically stable: subtract per-segment max (constant wrt grad).
    seg_max = np.full(num_segments, -np.inf, dtype=scores.data.dtype)
    np.maximum.at(seg_max, ids, scores.data)
    shifted = scores.data - seg_max[ids]
    e = np.exp(shifted)
    denom = np.zeros(num_segments, dtype=e.dtype)
    np.add.at(denom, ids, e)
    out_data = e / denom[ids]

    def backward(g: np.ndarray):
        # d softmax_i / d score_j = s_i (δ_ij - s_j) within each segment
        weighted = np.zeros(num_segments, dtype=out_data.dtype)
        np.add.at(weighted, ids, g * out_data)
        return ((scores, out_data * (g - weighted[ids])),)

    return Tensor._make(out_data, (scores,), "segment_softmax", backward)


def concat_rows(tensors: Sequence[Tensor]) -> Tensor:
    """Concatenate 2-D tensors along axis 0 (row blocks).

    The partition-parallel trainer uses this to stitch the inner-node
    block and the received boundary block into one feature matrix.
    """
    tensors = [as_tensor(t) for t in tensors]
    sizes = [t.shape[0] for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=0)
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray):
        return tuple(
            (t, g[offsets[k]:offsets[k + 1]]) for k, t in enumerate(tensors)
        )

    return Tensor._make(out_data, tuple(tensors), "concat_rows", backward)


def concat_cols(tensors: Sequence[Tensor]) -> Tensor:
    """Concatenate 2-D tensors along axis 1 (feature blocks).

    GraphSAGE's update step concatenates the aggregated neighbour
    feature with the node's own feature before the linear transform.
    """
    tensors = [as_tensor(t) for t in tensors]
    sizes = [t.shape[1] for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=1)
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray):
        return tuple(
            (t, g[:, offsets[k]:offsets[k + 1]]) for k, t in enumerate(tensors)
        )

    return Tensor._make(out_data, tuple(tensors), "concat_cols", backward)


def stack_mean(tensors: Sequence[Tensor]) -> Tensor:
    """Mean of same-shaped tensors; the AllReduce-average primitive."""
    tensors = [as_tensor(t) for t in tensors]
    n = len(tensors)
    out_data = sum(t.data for t in tensors) / n

    def backward(g: np.ndarray):
        return tuple((t, g / n) for t in tensors)

    return Tensor._make(out_data, tuple(tensors), "stack_mean", backward)


__all__.append("concat_cols")
