"""Sparse matrix support: constant CSR operators and autograd SpMM.

GCN aggregation is a sparse-dense matmul ``Z = P @ H`` where ``P`` is a
fixed propagation matrix derived from the adjacency structure.  Two
operator representations are provided:

* :class:`SparseOp` — a plain CSR wrapper for operators that exist as
  one materialised matrix (the full-graph propagation, baselines).
* :class:`SplitOperator` — the boundary-sampled partition operator
  ``rowscale ⊙ [P_in | P_bd[:, kept] · colscale]`` kept in *split*
  form.  Partition-parallel epochs need a fresh operator per epoch per
  rank; materialising the stacked matrix costs several full sparse
  copies (CSC conversion, column slice, CSR conversion, hstack,
  row-normalise) — all O(nnz) — every epoch.  The split form stores
  the immutable inner block once, selects boundary columns lazily from
  a prebuilt CSC view (O(kept nnz)), and folds renormalisation into a
  row-scale vector, so per-epoch plan construction touches only the
  kept boundary set.  ``spmm`` computes
  ``rowscale ⊙ (P_in @ H_in + P_bd_kept @ (colscale ⊙ H_bd))``
  without ever forming ``[P̃_in | P̃_bd]``; the backward multiplies by
  the transposed blocks (the inner transpose is shared across epochs).

:func:`spmm` dispatches on the operator type; its backward multiplies
by ``P.T`` — exactly what DGL's ``update_all`` with a copy/sum message
function compiles to.  The matrix values never require gradients
(attention-weighted aggregation for GAT is built from edge-level ops in
:mod:`repro.tensor.ops` instead), so the implementation stays simple
and fast.

*How* the split product is computed is delegated to the pluggable
kernel registry in :mod:`repro.tensor.kernels`:
``SplitOperator.matmul``/``rmatmul`` call the active backend's
``split_spmm_forward``/``split_spmm_backward`` primitives (fused
one-pass ``numpy`` by default; two-pass ``split`` reference; jitted
``numba`` when importable), selected via ``REPRO_KERNEL_BACKEND``,
:func:`~repro.tensor.kernels.set_backend` or the CLI's
``--kernel-backend``.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np
import scipy.sparse as sp

from . import kernels
from .dtype import float_dtype_like, resolve_dtype
from .tensor import Tensor, as_tensor

__all__ = ["SparseOp", "SplitOperator", "spmm"]


class SparseOp:
    """An immutable sparse linear operator (CSR) used in aggregation.

    Parameters
    ----------
    matrix:
        Any scipy sparse matrix; converted to CSR.  Treated as a
        constant: no gradients flow into the values.
    dtype:
        Optional float dtype of the values.  Omitted, a float32/float64
        matrix keeps its dtype and anything else (ints, bools) lands on
        the module default.
    """

    __slots__ = ("csr", "_csr_t")

    def __init__(self, matrix: sp.spmatrix, dtype=None) -> None:
        if dtype is None:
            dtype = float_dtype_like(matrix.dtype)
        else:
            dtype = resolve_dtype(dtype)
        self.csr: sp.csr_matrix = sp.csr_matrix(matrix, dtype=dtype)
        self._csr_t: Optional[sp.csr_matrix] = None

    @property
    def shape(self) -> Tuple[int, int]:
        return self.csr.shape

    @property
    def dtype(self) -> np.dtype:
        return self.csr.dtype

    def astype(self, dtype) -> "SparseOp":
        """Cast the operator values to ``dtype`` (no-op if already)."""
        target = resolve_dtype(dtype)
        return self if self.csr.dtype == target else SparseOp(self.csr, dtype=target)

    @property
    def nnz(self) -> int:
        return self.csr.nnz

    def select_columns(self, cols: np.ndarray, scale: float = 1.0) -> "SparseOp":
        """Restrict the operator to a subset of columns.

        ``cols`` are column indices of the original matrix; the result
        has ``len(cols)`` columns in that order, optionally scaled.
        This implements the BNS column selection: keeping only the
        sampled boundary nodes' columns and rescaling them by ``1/p``.
        """
        sub = self.csr[:, np.asarray(cols, dtype=np.int64)]
        if scale != 1.0:
            sub = sub * scale
        return SparseOp(sub)

    def scale_columns(self, factors: np.ndarray) -> "SparseOp":
        """Return a copy with column ``j`` multiplied by ``factors[j]``."""
        diag = sp.diags(np.asarray(factors, dtype=self.csr.dtype))
        return SparseOp(self.csr @ diag)

    def hstack(self, other: "SparseOp") -> "SparseOp":
        """Concatenate two operators column-wise ([A | B])."""
        return SparseOp(sp.hstack([self.csr, other.csr], format="csr"))

    @property
    def csr_t(self) -> sp.csr_matrix:
        """Cached CSR transpose — the SpMM backward multiplies by it on
        every call, so the O(nnz) conversion happens once per operator
        (mirroring ``SplitOperator.inner_t``), not once per forward."""
        if self._csr_t is None:
            self._csr_t = self.csr.T.tocsr()
        return self._csr_t

    def transpose(self) -> "SparseOp":
        return SparseOp(self.csr_t)

    def toarray(self) -> np.ndarray:
        return self.csr.toarray()

    def frobenius_norm_sq(self) -> float:
        """||P||_F^2 — appears in the variance bound (Appendix A)."""
        return float((self.csr.data ** 2).sum())

    def __repr__(self) -> str:
        return f"SparseOp(shape={self.shape}, nnz={self.nnz})"


class SplitOperator:
    """``rowscale ⊙ [P_in | P_bd_kept · colscale]`` kept in split form.

    Parameters
    ----------
    inner:
        ``(n_in, n_in)`` CSR inner block, shared across epochs.
    boundary:
        ``(n_in, k)`` boundary block of the *kept* columns (CSC), or
        ``None`` when no boundary columns survive.
    kept_cols:
        Positions of the kept columns inside the rank's boundary list
        (metadata used by consumers to route communication).
    row_scale:
        Optional ``(n_in,)`` vector applied to every row of the
        stacked operator — the lazy form of ``row_normalise``; for
        renorm-mode sampling it is ``1 / (inner_deg + A_bd_kept·1)``,
        one SpMV on the kept block instead of a full matrix rebuild.
    col_scale:
        Optional scalar — or ``(k,)`` vector, one factor per kept
        column — applied to the boundary block only.  The scalar form
        is the uniform 1/p rescale of the unbiased BNS estimator; the
        vector form carries per-column Horvitz–Thompson weights
        ``1/π_v`` for importance-weighted boundary sampling.
    inner_t:
        Optional precomputed CSR transpose of ``inner``; pass the
        rank-level cached transpose so the SpMM backward does not
        re-transpose the (immutable) inner block every epoch.
    """

    __slots__ = (
        "inner",
        "boundary",
        "kept_cols",
        "row_scale",
        "col_scale",
        "_inner_t",
        "_boundary_t",
        "_boundary_csr",
        "_csr",
        "_fused_csr",
        "_fused_csr_t",
    )

    def __init__(
        self,
        inner: sp.csr_matrix,
        boundary: Optional[sp.spmatrix] = None,
        kept_cols: Optional[np.ndarray] = None,
        row_scale: Optional[np.ndarray] = None,
        col_scale: Optional[Union[float, np.ndarray]] = None,
        inner_t: Optional[sp.csr_matrix] = None,
    ) -> None:
        self.inner = inner
        if boundary is not None and boundary.shape[1] == 0:
            boundary = None
        self.boundary = boundary
        if kept_cols is None:
            k = boundary.shape[1] if boundary is not None else 0
            kept_cols = np.arange(k, dtype=np.int64)
        self.kept_cols = np.asarray(kept_cols, dtype=np.int64)
        self.row_scale = row_scale
        if col_scale is not None:
            if np.ndim(col_scale) == 0:
                if col_scale == 1.0:
                    col_scale = None
            else:
                col_scale = np.asarray(col_scale).ravel()
                k = self.boundary.shape[1] if self.boundary is not None else 0
                if col_scale.size != k:
                    raise ValueError(
                        f"col_scale vector has {col_scale.size} entries "
                        f"for {k} boundary columns"
                    )
        if self.boundary is None:
            col_scale = None
        self.col_scale = col_scale
        self._inner_t = inner_t
        self._boundary_t = None
        self._boundary_csr = None
        self._csr = None
        self._fused_csr = None
        self._fused_csr_t = None

    @classmethod
    def select(
        cls,
        inner: sp.csr_matrix,
        boundary_csc: sp.csc_matrix,
        kept_cols: np.ndarray,
        row_scale: Optional[np.ndarray] = None,
        col_scale: Optional[Union[float, np.ndarray]] = None,
        inner_t: Optional[sp.csr_matrix] = None,
    ) -> "SplitOperator":
        """Select ``kept_cols`` from a prebuilt boundary CSC universe.

        The slice costs O(nnz of the kept columns) — the whole point
        of precomputing the CSC view once per rank.
        """
        kept_cols = np.asarray(kept_cols, dtype=np.int64)
        bd = boundary_csc[:, kept_cols] if kept_cols.size else None
        return cls(inner, bd, kept_cols, row_scale, col_scale, inner_t)

    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        k = self.boundary.shape[1] if self.boundary is not None else 0
        return (self.inner.shape[0], self.inner.shape[1] + k)

    @property
    def dtype(self) -> np.dtype:
        """The operator's value dtype (set by the inner block)."""
        return self.inner.dtype

    def astype(self, dtype) -> "SplitOperator":
        """Cast every block (and scale vector) to ``dtype``.

        Returns ``self`` when nothing changes, so the cached degenerate
        plans stay shared.
        """
        target = resolve_dtype(dtype)
        if self.inner.dtype == target:
            return self
        col_scale = self.col_scale
        if isinstance(col_scale, np.ndarray):
            col_scale = col_scale.astype(target)
        return SplitOperator(
            self.inner.astype(target),
            self.boundary.astype(target) if self.boundary is not None else None,
            self.kept_cols,
            self.row_scale.astype(target) if self.row_scale is not None else None,
            col_scale,
            self._inner_t.astype(target) if self._inner_t is not None else None,
        )

    @property
    def inner_nnz(self) -> int:
        return self.inner.nnz

    @property
    def boundary_nnz(self) -> int:
        return self.boundary.nnz if self.boundary is not None else 0

    @property
    def nnz(self) -> int:
        return self.inner_nnz + self.boundary_nnz

    @property
    def inner_t(self) -> sp.csr_matrix:
        if self._inner_t is None:
            self._inner_t = self.inner.T.tocsr()
        return self._inner_t

    @property
    def boundary_t(self):
        if self._boundary_t is None and self.boundary is not None:
            self._boundary_t = self.boundary.T.tocsr()
        return self._boundary_t

    @property
    def boundary_csr(self):
        """CSR view of the boundary block (row-major products are
        faster; converted once per plan, reused every layer)."""
        if self._boundary_csr is None and self.boundary is not None:
            self._boundary_csr = sp.csr_matrix(self.boundary)
        return self._boundary_csr

    # ------------------------------------------------------------------
    @property
    def csr(self) -> sp.csr_matrix:
        """The stacked operator, materialised lazily (and cached).

        Only inspection/debug paths need this; training and planning
        never call it.  It is also the reference the equivalence tests
        compare the split SpMM against.
        """
        if self._csr is None:
            if self.boundary is not None:
                bd = self.boundary
                if self.col_scale is not None:
                    if np.ndim(self.col_scale) == 0:
                        bd = bd * self.col_scale
                    else:
                        bd = bd @ sp.diags(self.col_scale)
                stacked = sp.hstack([self.inner, bd], format="csr")
            else:
                stacked = self.inner.copy()
            if self.row_scale is not None:
                stacked = sp.diags(self.row_scale) @ stacked
            self._csr = sp.csr_matrix(stacked, dtype=self.inner.dtype)
        return self._csr

    def toarray(self) -> np.ndarray:
        return self.csr.toarray()

    @property
    def fused_csr(self) -> sp.csr_matrix:
        """The merged, scale-folded CSR the fused numpy kernel runs on.

        Numerically identical to :attr:`csr` but built in one
        vectorised pass (:func:`~repro.tensor.kernels.merge_split_csr`)
        and cached, so the per-plan build amortises over every layer's
        forward/backward of every epoch the plan serves.
        """
        if self._fused_csr is None:
            self._fused_csr = kernels.merge_split_csr(
                self.inner, self.boundary_csr, self.row_scale, self.col_scale
            )
        return self._fused_csr

    @property
    def fused_csr_t(self) -> sp.csr_matrix:
        """Cached CSR transpose of :attr:`fused_csr` (one pass per plan
        for the fused backward, reused across layers and epochs)."""
        if self._fused_csr_t is None:
            self._fused_csr_t = self.fused_csr.T.tocsr()
        return self._fused_csr_t

    def matmul(self, h: np.ndarray) -> np.ndarray:
        """Split-form product ``P_eff @ h`` on a raw ndarray (no tape),
        computed by the active kernel backend."""
        return kernels.get_backend().split_spmm_forward(self, h)

    def rmatmul(self, g: np.ndarray) -> np.ndarray:
        """Transposed product ``P_eff.T @ g`` (the SpMM backward),
        computed by the active kernel backend."""
        return kernels.get_backend().split_spmm_backward(self, g)

    def frobenius_norm_sq(self) -> float:
        """||P_eff||_F^2 from the split blocks and scale vectors alone —
        the stacked matrix is never materialised (the row/column
        factors enter each stored entry squared)."""
        inner = self.inner
        sq = inner.data ** 2
        if self.row_scale is not None:
            sq = sq * np.repeat(self.row_scale, np.diff(inner.indptr)) ** 2
        total = float(sq.sum())
        if self.boundary is not None:
            bd = self.boundary
            sq = bd.data ** 2
            if sp.isspmatrix_csc(bd):
                rows, cols = bd.indices, np.repeat(
                    np.arange(bd.shape[1]), np.diff(bd.indptr)
                )
            else:
                bd = self.boundary_csr
                sq = bd.data ** 2
                rows, cols = np.repeat(
                    np.arange(bd.shape[0]), np.diff(bd.indptr)
                ), bd.indices
            cs = self.col_scale
            if cs is not None:
                sq = sq * (cs * cs if np.ndim(cs) == 0 else np.asarray(cs)[cols] ** 2)
            if self.row_scale is not None:
                sq = sq * self.row_scale[rows] ** 2
            total += float(sq.sum())
        return total

    def __repr__(self) -> str:
        cs = self.col_scale
        if isinstance(cs, np.ndarray):
            cs = f"vector({cs.size})"
        return (
            f"SplitOperator(shape={self.shape}, inner_nnz={self.inner_nnz}, "
            f"boundary_nnz={self.boundary_nnz}, "
            f"renorm={self.row_scale is not None}, "
            f"col_scale={cs})"
        )


AnyOp = Union[SparseOp, SplitOperator]


def spmm(op: AnyOp, dense: Tensor) -> Tensor:
    """Sparse @ dense with autograd through the dense operand.

    Forward: ``out = P @ H``.  Backward: ``dH = P.T @ dOut``.  For a
    :class:`SplitOperator` both directions run in split form — the
    stacked matrix is never materialised.
    """
    dense = as_tensor(dense)
    if isinstance(op, SplitOperator):
        out_data = op.matmul(dense.data)

        def backward_split(g: np.ndarray):
            return ((dense, op.rmatmul(g)),)

        return Tensor._make(out_data, (dense,), "spmm", backward_split)

    out_data = op.csr @ dense.data
    csr_t = op.csr_t  # cached on the operator, not rebuilt per forward

    def backward(g: np.ndarray):
        return ((dense, csr_t @ g),)

    return Tensor._make(out_data, (dense,), "spmm", backward)
