"""Sparse matrix support: constant CSR operators and autograd SpMM.

GCN aggregation is a sparse-dense matmul ``Z = P @ H`` where ``P`` is a
fixed propagation matrix derived from the adjacency structure.  We wrap
``scipy.sparse.csr_matrix`` in :class:`SparseOp` and provide
:func:`spmm` whose backward multiplies by ``P.T`` — exactly what DGL's
``update_all`` with a copy/sum message function compiles to.

The matrix values never require gradients (attention-weighted
aggregation for GAT is built from edge-level ops in
:mod:`repro.tensor.ops` instead), so the implementation stays simple
and fast.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp

from .tensor import Tensor, as_tensor

__all__ = ["SparseOp", "spmm"]


class SparseOp:
    """An immutable sparse linear operator (CSR) used in aggregation.

    Parameters
    ----------
    matrix:
        Any scipy sparse matrix; converted to CSR.  Treated as a
        constant: no gradients flow into the values.
    """

    __slots__ = ("csr",)

    def __init__(self, matrix: sp.spmatrix) -> None:
        self.csr: sp.csr_matrix = sp.csr_matrix(matrix, dtype=np.float64)

    @property
    def shape(self) -> Tuple[int, int]:
        return self.csr.shape

    @property
    def nnz(self) -> int:
        return self.csr.nnz

    def select_columns(self, cols: np.ndarray, scale: float = 1.0) -> "SparseOp":
        """Restrict the operator to a subset of columns.

        ``cols`` are column indices of the original matrix; the result
        has ``len(cols)`` columns in that order, optionally scaled.
        This implements the BNS column selection: keeping only the
        sampled boundary nodes' columns and rescaling them by ``1/p``.
        """
        sub = self.csr[:, np.asarray(cols, dtype=np.int64)]
        if scale != 1.0:
            sub = sub * scale
        return SparseOp(sub)

    def scale_columns(self, factors: np.ndarray) -> "SparseOp":
        """Return a copy with column ``j`` multiplied by ``factors[j]``."""
        diag = sp.diags(np.asarray(factors, dtype=np.float64))
        return SparseOp(self.csr @ diag)

    def hstack(self, other: "SparseOp") -> "SparseOp":
        """Concatenate two operators column-wise ([A | B])."""
        return SparseOp(sp.hstack([self.csr, other.csr], format="csr"))

    def transpose(self) -> "SparseOp":
        return SparseOp(self.csr.T.tocsr())

    def toarray(self) -> np.ndarray:
        return self.csr.toarray()

    def frobenius_norm_sq(self) -> float:
        """||P||_F^2 — appears in the variance bound (Appendix A)."""
        return float((self.csr.data ** 2).sum())

    def __repr__(self) -> str:
        return f"SparseOp(shape={self.shape}, nnz={self.nnz})"


def spmm(op: SparseOp, dense: Tensor) -> Tensor:
    """Sparse @ dense with autograd through the dense operand.

    Forward: ``out = P @ H``.  Backward: ``dH = P.T @ dOut``.
    """
    dense = as_tensor(dense)
    out_data = op.csr @ dense.data
    csr_t = op.csr.T.tocsr()

    def backward(g: np.ndarray):
        return ((dense, csr_t @ g),)

    return Tensor._make(out_data, (dense,), "spmm", backward)
