"""Reverse-mode automatic differentiation on numpy arrays.

This module is the substrate that replaces PyTorch's autograd in the
BNS-GCN reproduction.  A :class:`Tensor` wraps an ``np.ndarray`` and
records the operations applied to it on a dynamic tape; calling
:meth:`Tensor.backward` on a scalar result walks the tape in reverse
topological order and accumulates gradients into every tensor created
with ``requires_grad=True``.

The design follows the "define-by-run" style: each op constructs the
output tensor eagerly and attaches a closure that knows how to push the
output's gradient back to its parents.  Gradients are plain numpy
arrays (never Tensors), so the engine is first-order only — exactly
what GCN training needs.

Broadcasting is fully supported: gradients flowing into a broadcast
operand are summed over the broadcast axes by :func:`unbroadcast`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from .dtype import DTYPES, get_default_dtype, resolve_dtype

__all__ = ["Tensor", "unbroadcast", "as_tensor", "no_grad", "is_grad_enabled"]

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

_GRAD_ENABLED = True


class no_grad:
    """Context manager that disables tape recording.

    Used for evaluation passes so that inference does not build (and
    hold onto) an autograd graph.
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def is_grad_enabled() -> bool:
    """Return whether new ops are currently recorded on the tape."""
    return _GRAD_ENABLED


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``.

    When an operand of shape ``shape`` was broadcast up to ``grad.shape``
    during the forward pass, the chain rule requires summing the
    incoming gradient over every broadcast axis.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Anything convertible to ``np.ndarray``.  Float arrays that are
        already float32 or float64 keep their dtype; everything else
        floating lands on the module default
        (:func:`~repro.tensor.dtype.get_default_dtype`, float64 unless
        changed).  Integer arrays are kept as-is (they cannot require
        gradients).
    requires_grad:
        If True, gradients are accumulated into :attr:`grad` during
        :meth:`backward`.
    dtype:
        Optional explicit float dtype (float32/float64); overrides both
        the array's dtype and the module default.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_op")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        dtype=None,
        _parents: Tuple["Tensor", ...] = (),
        _op: str = "",
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        # Explicitly-dtyped numpy arrays/scalars keep their
        # float32/float64; python lists/scalars (which numpy coerces to
        # float64) follow the module default — the PyTorch convention.
        from_ndarray = isinstance(data, (np.ndarray, np.generic))
        arr = np.asarray(data)
        if arr.dtype.kind in ("i", "u", "b"):
            if requires_grad:
                raise ValueError("integer tensors cannot require gradients")
            if dtype is not None:
                arr = arr.astype(resolve_dtype(dtype))
        elif dtype is not None:
            target = resolve_dtype(dtype)
            if arr.dtype != target:
                arr = arr.astype(target)
        elif arr.dtype not in DTYPES or not from_ndarray:
            target = get_default_dtype()
            if arr.dtype != target:
                arr = arr.astype(target)
        self.data: np.ndarray = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple[Tensor, ...] = _parents if _GRAD_ENABLED else ()
        self._op: str = _op

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError("item() requires a single-element tensor")
        return float(self.data.reshape(()))

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    def astype(self, dtype) -> "Tensor":
        """Differentiable cast to float32/float64 (no-op if already)."""
        target = resolve_dtype(dtype)
        if self.data.dtype == target:
            return self
        out_data = self.data.astype(target)

        def backward(g: np.ndarray):
            return ((self, g.astype(self.data.dtype)),)

        return Tensor._make(out_data, (self,), "astype", backward)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, op={self._op or 'leaf'}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Graph bookkeeping
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's ``.grad`` buffer."""
        if not self.requires_grad:
            return
        if self.grad is None:
            # Accumulate in the tensor's own dtype: an fp32 parameter
            # must not grow an fp64 gradient (the optimizer would
            # silently upcast it on the first step).
            self.grad = np.array(grad, dtype=self.data.dtype, copy=True)
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to ones (the tensor must be scalar in that
        case, matching the usual loss.backward() idiom).
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar tensor"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            g = grads.pop(id(node), None)
            if g is None:
                continue
            node._accumulate(g)
            if node._backward is None:
                continue
            for parent, pg in node._backward(g):
                if pg is None:
                    continue
                pid = id(parent)
                if pid in grads:
                    grads[pid] = grads[pid] + pg
                else:
                    grads[pid] = pg

    # ------------------------------------------------------------------
    # Op construction helper
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        op: str,
        backward: Callable[[np.ndarray], Iterable[Tuple["Tensor", Optional[np.ndarray]]]],
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, _parents=tuple(parents), _op=op)
        if requires:
            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _operand(self, other: ArrayLike) -> "Tensor":
        """Coerce a binary-op operand to a Tensor.

        Python/numpy *scalars* adopt this tensor's dtype (PyTorch-style
        weak scalars): ``fp32_tensor * 0.5`` stays fp32 instead of
        being promoted through a float64 0-d array.  Proper arrays keep
        numpy's ordinary promotion rules.
        """
        if isinstance(other, Tensor):
            return other
        arr = np.asarray(other)
        if arr.ndim == 0 and arr.dtype.kind in "fiu" and self.data.dtype.kind == "f":
            return Tensor(arr.astype(self.data.dtype))
        return Tensor(arr)

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._operand(other)
        out_data = self.data + other.data

        def backward(g: np.ndarray):
            return (
                (self, unbroadcast(g, self.shape)),
                (other, unbroadcast(g, other.shape)),
            )

        return Tensor._make(out_data, (self, other), "add", backward)

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = self._operand(other)
        out_data = self.data - other.data

        def backward(g: np.ndarray):
            return (
                (self, unbroadcast(g, self.shape)),
                (other, unbroadcast(-g, other.shape)),
            )

        return Tensor._make(out_data, (self, other), "sub", backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._operand(other) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._operand(other)
        out_data = self.data * other.data

        def backward(g: np.ndarray):
            return (
                (self, unbroadcast(g * other.data, self.shape)),
                (other, unbroadcast(g * self.data, other.shape)),
            )

        return Tensor._make(out_data, (self, other), "mul", backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._operand(other)
        out_data = self.data / other.data

        def backward(g: np.ndarray):
            return (
                (self, unbroadcast(g / other.data, self.shape)),
                (other, unbroadcast(-g * self.data / (other.data ** 2), other.shape)),
            )

        return Tensor._make(out_data, (self, other), "div", backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._operand(other) / self

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray):
            return ((self, -g),)

        return Tensor._make(-self.data, (self,), "neg", backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(g: np.ndarray):
            return ((self, g * exponent * self.data ** (exponent - 1)),)

        return Tensor._make(out_data, (self,), "pow", backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = self._operand(other)
        out_data = self.data @ other.data

        def backward(g: np.ndarray):
            if self.data.ndim == 1 and other.data.ndim == 1:
                return ((self, g * other.data), (other, g * self.data))
            if self.data.ndim == 1:
                # (k,) @ (k, n) -> (n,)
                return ((self, g @ other.data.T), (other, np.outer(self.data, g)))
            if other.data.ndim == 1:
                # (m, k) @ (k,) -> (m,)
                return ((self, np.outer(g, other.data)), (other, self.data.T @ g))
            return ((self, g @ other.data.T), (other, self.data.T @ g))

        return Tensor._make(out_data, (self, other), "matmul", backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray):
            g_arr = np.asarray(g)
            if axis is None:
                expanded = np.broadcast_to(g_arr, self.shape)
            else:
                if not keepdims:
                    g_arr = np.expand_dims(g_arr, axis)
                expanded = np.broadcast_to(g_arr, self.shape)
            return ((self, expanded.copy()),)

        return Tensor._make(out_data, (self,), "sum", backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray):
            g_arr = np.asarray(g)
            out = out_data
            if axis is not None and not keepdims:
                g_arr = np.expand_dims(g_arr, axis)
                out = np.expand_dims(out, axis)
            mask = (self.data == out).astype(self.data.dtype)
            # Split gradient evenly among ties to keep the op well-defined.
            denom = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            return ((self, g_arr * mask / denom),)

        return Tensor._make(out_data, (self,), "max", backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        old_shape = self.shape
        out_data = self.data.reshape(shape)

        def backward(g: np.ndarray):
            return ((self, g.reshape(old_shape)),)

        return Tensor._make(out_data, (self,), "reshape", backward)

    @property
    def T(self) -> "Tensor":
        def backward(g: np.ndarray):
            return ((self, g.T),)

        return Tensor._make(self.data.T, (self,), "transpose", backward)

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]

        def backward(g: np.ndarray):
            full = np.zeros_like(self.data)
            np.add.at(full, key, g)
            return ((self, full),)

        return Tensor._make(out_data, (self,), "getitem", backward)


def as_tensor(value: ArrayLike) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy when already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)
