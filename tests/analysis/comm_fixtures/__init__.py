"""Seeded cross-rank-communication violation fixtures.

Each module here is BOTH a static lint target (the ``comm-entry``
markers declare its workers as entry points for the comm passes) and a
runnable ``LocalTransport.launch`` worker (so the same bug is caught a
second time, dynamically, under ``REPRO_SANITIZE=schedule``).  The
``clean_twins`` module holds the matched negative controls.
"""
