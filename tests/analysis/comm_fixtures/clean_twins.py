"""Clean twins of the violation fixtures: same shapes, zero findings.

Each worker here mirrors one seeded-violation fixture with the bug
fixed — agreeing tags, a non-blocking ring, a collective every rank
reaches, a completed exchange — and must lint clean AND run clean
under ``REPRO_SANITIZE=schedule``.
"""

import numpy as np


# repro-lint: comm-entry
def matched_tags_worker(ep, payload):
    if ep.rank == 0:
        ep.send(1, np.ones(4), "alpha")
        return None
    if ep.rank == 1:
        return ep.recv(0, "alpha")
    return None


# repro-lint: comm-entry
def safe_ring_worker(ep, payload):
    succ = (ep.rank + 1) % ep.num_parts
    pred = (ep.rank - 1) % ep.num_parts
    ticket = ep.isend(succ, np.ones(2), "ring")
    got = ep.recv(pred, "ring")
    delivered = ticket.join(5.0)
    return got, delivered


# repro-lint: comm-entry
def shared_allreduce_worker(ep, payload):
    return ep.allreduce(np.ones(4), "grad")


# repro-lint: comm-entry
def completed_exchange_worker(ep, payload):
    peers = [j for j in range(ep.num_parts) if j != ep.rank]
    handle = ep.post_exchange(
        {j: np.zeros(1) for j in peers}, peers, "ghost"
    )
    received = ep.complete_exchange(handle)
    return sorted(received)
