"""Seeded violation: the two ends of a message disagree on the tag.

Rank 0 ships tag ``"alpha"``; rank 1 expects tag ``"beta"`` from rank
0.  The static ``comm-matching`` pass must name BOTH sites; at runtime
the transport's own tag check raises ``TransportError``.
"""

import numpy as np


# repro-lint: comm-entry
def crossed_tags_worker(ep, payload):
    if ep.rank == 0:
        ep.send(1, np.ones(4), "alpha")
        return None
    if ep.rank == 1:
        return ep.recv(0, "beta")
    return None
