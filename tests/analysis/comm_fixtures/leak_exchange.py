"""Seeded violation: a posted exchange handle that escapes uncompleted.

The helper posts the exchange and returns the handle; the worker never
passes it to ``complete_exchange``, so its deferred receives leak.
The static ``comm-exchange`` pass must track the handle through the
helper's return value; at runtime the schedule sanitizer raises
``ScheduleError`` when the rank returns with the handle still open.
"""

import numpy as np


def _post_ghost(ep, peers):
    return ep.post_exchange(
        {j: np.zeros(1) for j in peers}, peers, "ghost"
    )


# repro-lint: comm-entry
def leak_exchange_worker(ep, payload):
    peers = [j for j in range(ep.num_parts) if j != ep.rank]
    handle = _post_ghost(ep, peers)
    return handle
