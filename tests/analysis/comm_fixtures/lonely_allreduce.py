"""Seeded violation: a collective behind a rank conditional.

Only rank 0 enters the allreduce; every other rank returns
immediately.  The static ``comm-deadlock`` pass must flag the
rank-divergent participation; at runtime rank 0 blocks receiving from
a rank that has already returned, which the schedule sanitizer
confirms as a deadlock instead of letting the recv time out.
"""

import numpy as np


# repro-lint: comm-entry
def lonely_allreduce_worker(ep, payload):
    if ep.rank == 0:
        return ep.allreduce(np.ones(4), "grad")
    return None
