"""Seeded violation: a ring of blocking sends.

Every rank blocking-sends to its successor before receiving from its
predecessor.  Under MPI-strict rendezvous semantics no send can
complete until its receive is posted, and no receive is ever reached:
a classic head-to-head cycle.  The static ``comm-deadlock`` pass must
report the cycle naming every participant's site; at runtime the
schedule sanitizer's rendezvous channels confirm the deadlock and
raise ``DeadlockError`` (the repo's buffered queues would mask it).
"""

import numpy as np


# repro-lint: comm-entry
def send_cycle_worker(ep, payload):
    succ = (ep.rank + 1) % ep.num_parts
    pred = (ep.rank - 1) % ep.num_parts
    ep.send(succ, np.ones(2), "ring")
    return ep.recv(pred, "ring")
