"""End-to-end tests for the comm-matching/deadlock/exchange passes."""

import json
from pathlib import Path

import pytest

from repro.analysis.commcheck import analyze_modules
from repro.analysis.engine import collect_modules
from repro.analysis.lint import main as lint_main

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "comm_fixtures"
COMM_SELECT = "comm-matching,comm-deadlock,comm-exchange"


def _lint_file(fixture, capsys):
    code = lint_main([
        "--root", str(REPO_ROOT), "--no-baseline",
        "--select", COMM_SELECT, "--format", "json",
        str(FIXTURES / fixture),
    ])
    payload = json.loads(capsys.readouterr().out)
    return code, payload["new"]


def test_crossed_tags_names_both_sites(capsys):
    code, findings = _lint_file("crossed_tags.py", capsys)
    assert code == 1
    hits = [f for f in findings if f["rule"] == "comm-matching"]
    assert hits, findings
    msg = hits[0]["message"]
    # Both ends named: the receive site is the finding anchor, the
    # mismatched send site is spelled out in the message.
    assert "beta" in msg and "alpha" in msg
    assert "crossed_tags.py" in msg
    assert hits[0]["path"].endswith("crossed_tags.py")


def test_send_cycle_reports_blocking_cycle(capsys):
    code, findings = _lint_file("send_cycle.py", capsys)
    assert code == 1
    hits = [f for f in findings if f["rule"] == "comm-deadlock"]
    assert hits, findings
    msg = hits[0]["message"]
    assert "blocking-operation cycle" in msg
    assert "rank 0" in msg and "rank 1" in msg


def test_lonely_allreduce_reports_divergence(capsys):
    code, findings = _lint_file("lonely_allreduce.py", capsys)
    assert code == 1
    hits = [f for f in findings if f["rule"] == "comm-deadlock"]
    assert hits, findings
    assert "rank-divergent collective participation" in hits[0]["message"]


def test_leaked_exchange_reported_through_helper(capsys):
    code, findings = _lint_file("leak_exchange.py", capsys)
    assert code == 1
    hits = [f for f in findings if f["rule"] == "comm-exchange"]
    assert hits, findings
    assert "never completed on any path" in hits[0]["message"]


def test_clean_twins_are_clean(capsys):
    code, findings = _lint_file("clean_twins.py", capsys)
    assert code == 0
    assert findings == []


def test_src_tree_is_comm_clean(capsys):
    code = lint_main([
        "--root", str(REPO_ROOT), "--no-baseline",
        "--select", COMM_SELECT, "--format", "json",
    ])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0, payload["new"]
    assert payload["new"] == []


def test_default_entries_actually_verified():
    # Honesty check: "deadlock-free" must not mean "zero events were
    # interpreted".  Every default entry must produce a non-trivial
    # symbolic sequence at every world size.
    modules = collect_modules(REPO_ROOT, ["src"])
    result = analyze_modules(modules)
    info = {e["entry"]: e for e in result.entry_info}
    for name in (
        "run-rank-synchronous", "run-rank-pipelined",
        "allreduce-ring", "allreduce-tree",
        "trainer-synchronous", "trainer-pipelined",
    ):
        assert name in info, sorted(info)
        entry = info[name]
        assert not entry.get("partial"), entry
        for world, stats in entry["worlds"].items():
            assert stats["events"] > 0, (name, world, entry)
    # The ring allreduce at world 4 does 2*(m-1) send/recv pairs per
    # step across 4 ranks — far more than a token handful of events.
    ring = info["allreduce-ring"]["worlds"]
    assert max(s["events"] for s in ring.values()) >= 48, ring


def test_missing_default_entry_is_reported(tmp_path, capsys):
    # A tree that looks like the repo but lacks _run_rank must surface
    # a finding instead of silently verifying nothing.
    pkg = tmp_path / "src" / "repro" / "dist"
    pkg.mkdir(parents=True)
    (tmp_path / "src" / "repro" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "executor.py").write_text("def unrelated():\n    return 1\n")
    code = lint_main([
        "--root", str(tmp_path), "--no-baseline",
        "--select", COMM_SELECT, "--format", "json",
    ])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    msgs = [f["message"] for f in payload["new"]]
    assert any("_run_rank is missing" in m for m in msgs), msgs


def test_unanchored_marker_is_reported(tmp_path, capsys):
    target = tmp_path / "floating.py"
    target.write_text(
        "# repro-lint: comm-entry\n"
        "CONSTANT = 3\n"
    )
    code = lint_main([
        "--root", str(tmp_path), "--no-baseline",
        "--select", COMM_SELECT, "--format", "json",
        str(target),
    ])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    msgs = [f["message"] for f in payload["new"]]
    assert any("does not anchor" in m for m in msgs), msgs


def test_sarif_output_shape(capsys):
    code = lint_main([
        "--root", str(REPO_ROOT), "--no-baseline",
        "--select", COMM_SELECT, "--format", "sarif",
        str(FIXTURES / "crossed_tags.py"),
    ])
    assert code == 1
    sarif = json.loads(capsys.readouterr().out)
    assert sarif["version"] == "2.1.0"
    run = sarif["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    rule_ids = [r["id"] for r in driver["rules"]]
    assert "comm-matching" in rule_ids
    results = run["results"]
    assert results
    first = results[0]
    assert first["ruleId"] == "comm-matching"
    assert driver["rules"][first["ruleIndex"]]["id"] == first["ruleId"]
    loc = first["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"].endswith("crossed_tags.py")
    assert loc["region"]["startLine"] > 0


def test_profile_prints_pass_timings(capsys):
    code = lint_main([
        "--root", str(REPO_ROOT), "--no-baseline", "--profile",
        "--select", COMM_SELECT, "--format", "json",
        str(FIXTURES / "clean_twins.py"),
    ])
    assert code == 0
    err = capsys.readouterr().err
    assert "profile:" in err
    assert "comm-matching" in err


@pytest.mark.parametrize("fixture", [
    "crossed_tags.py", "send_cycle.py",
    "lonely_allreduce.py", "leak_exchange.py",
])
def test_every_violation_fixture_fails_lint(fixture, capsys):
    code, findings = _lint_file(fixture, capsys)
    assert code == 1 and findings
