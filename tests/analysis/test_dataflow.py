"""CFG builder + worklist solver: shape units and a property test.

The flow passes are only as sound as the CFG under them, so the shape
tests pin the tricky constructions (finally as a shared subgraph,
``with`` as try/finally, escape detours, catch-all handlers) and the
hypothesis test drives randomly nested ``if``/``while``/``try``/
``with``/``return``/``raise`` programs through ``validate()`` — single
entry, all nodes reachable, exits terminal — plus solver termination.
"""

import ast
import textwrap

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.dataflow import (
    CFGError,
    SolverDivergence,
    build_cfg,
    dotted_name,
    escaping_loads,
    function_cfgs,
    solve_forward,
)


def cfg_of(source):
    tree = ast.parse(textwrap.dedent(source))
    cfgs = function_cfgs(tree)
    assert len(cfgs) == 1
    return cfgs[0]


def kinds(cfg):
    return sorted(n.kind for n in cfg.nodes.values())


class TestShapes:
    def test_straight_line(self):
        cfg = cfg_of(
            """
            def f():
                a = 1
                b = a
                return b
            """
        )
        cfg.validate()
        # entry -> a -> b -> return -> exit, no branching.
        assert len(cfg.nodes) == 5

    def test_if_joins(self):
        cfg = cfg_of(
            """
            def f(c):
                if c:
                    x = 1
                else:
                    x = 2
                return x
            """
        )
        cfg.validate()
        header = next(
            n for n in cfg.nodes.values()
            if n.stmt is not None and isinstance(n.stmt, ast.If)
        )
        edge_kinds = {k for _t, k in header.succs}
        assert {"true", "false"} <= edge_kinds

    def test_while_loops_back(self):
        cfg = cfg_of(
            """
            def f(c):
                while c:
                    c = step(c)
                return c
            """
        )
        cfg.validate()
        header = next(
            n for n in cfg.nodes.values()
            if n.stmt is not None and isinstance(n.stmt, ast.While)
        )
        body = next(
            n for n in cfg.nodes.values()
            if n.stmt is not None and isinstance(n.stmt, ast.Assign)
        )
        assert any(t == header.uid for t, _k in body.succs)

    def test_finally_is_shared_and_reraises(self):
        cfg = cfg_of(
            """
            def f(x):
                try:
                    x.work()
                finally:
                    x.close()
            """
        )
        cfg.validate()
        fin = [n for n in cfg.nodes.values() if n.kind == "finally"]
        assert len(fin) == 1
        # The close() statement (inside finally) has both a normal
        # fall-through to exit and an exception re-raise edge.
        close = next(
            n for n in cfg.nodes.values()
            if n.stmt is not None and n.kind == "stmt"
            and "close" in ast.dump(n.stmt)
        )
        assert {k for _t, k in close.succs} >= {"normal", "exception"}

    def test_return_detours_through_finally(self):
        cfg = cfg_of(
            """
            def f(x):
                try:
                    return x.value()
                finally:
                    x.close()
            """
        )
        cfg.validate()
        ret = next(
            n for n in cfg.nodes.values()
            if n.stmt is not None and isinstance(n.stmt, ast.Return)
        )
        fin = next(n for n in cfg.nodes.values() if n.kind == "finally")
        assert any(t == fin.uid for t, _k in ret.succs)

    def test_with_exit_on_every_path(self):
        cfg = cfg_of(
            """
            def f(lock):
                with lock:
                    work()
            """
        )
        cfg.validate()
        assert "with-exit" in kinds(cfg)

    def test_bare_handler_keeps_exceptions_inside(self):
        cfg = cfg_of(
            """
            def f(x):
                try:
                    x.work()
                except BaseException:
                    cleanup()
                    raise
                return 1
            """
        )
        cfg.validate()
        work = next(
            n for n in cfg.nodes.values()
            if n.stmt is not None and n.kind == "stmt"
            and "work" in ast.dump(n.stmt)
        )
        handler_uids = {
            n.uid for n in cfg.nodes.values() if n.kind == "except"
        }
        exc_targets = {t for t, k in work.succs if k == "exception"}
        # except BaseException catches everything: no edge to exit.
        assert exc_targets <= handler_uids

    def test_narrow_handler_lets_exceptions_escape(self):
        cfg = cfg_of(
            """
            def f(x):
                try:
                    x.work()
                except ValueError:
                    pass
                return 1
            """
        )
        cfg.validate()
        work = next(
            n for n in cfg.nodes.values()
            if n.stmt is not None and n.kind == "stmt"
            and "work" in ast.dump(n.stmt)
        )
        exc_targets = {t for t, k in work.succs if k == "exception"}
        assert cfg.exit in exc_targets  # may not be a ValueError

    def test_dead_code_after_return_is_skipped(self):
        cfg = cfg_of(
            """
            def f():
                return 1
                x = unreachable()
            """
        )
        cfg.validate()  # would fail on an unreachable node
        assert not any(
            n.stmt is not None and isinstance(n.stmt, ast.Assign)
            for n in cfg.nodes.values()
        )

    def test_nested_functions_get_their_own_cfgs(self):
        tree = ast.parse(textwrap.dedent(
            """
            def outer():
                def inner():
                    return 2
                return inner
            """
        ))
        cfgs = function_cfgs(tree)
        assert sorted(c.name for c in cfgs) == ["inner", "outer"]
        for cfg in cfgs:
            cfg.validate()

    def test_validate_rejects_dangling_edge(self):
        cfg = cfg_of(
            """
            def f():
                return 1
            """
        )
        cfg.nodes[cfg.entry].succs.append((9999, "normal"))
        with pytest.raises(CFGError):
            cfg.validate()


class TestHelpers:
    def test_dotted_name(self):
        expr = ast.parse("a.b.c(x)").body[0].value
        assert dotted_name(expr.func) == "a.b.c"
        lam = ast.parse("(lambda: 0)()").body[0].value
        assert dotted_name(lam.func) is None

    def test_escaping_loads(self):
        root = ast.parse("sink(a); b.close(); c[0] = d").body
        escaped = set()
        for stmt in root:
            escaped |= set(
                escaping_loads(stmt, ("a", "b", "c", "d"))
            )
        # `a` is passed away, `d` is stored; `b` and `c` are only
        # receivers of attribute/subscript access.
        assert escaped == {"a", "d"}


class TestSolver:
    def test_reaches_fixpoint_on_loop(self):
        cfg = cfg_of(
            """
            def f(c):
                x = source()
                while c:
                    x = step(x)
                return x
            """
        )

        def transfer(node, state):
            stmt = node.stmt
            out = set(state)
            if stmt is not None and isinstance(stmt, ast.Assign):
                out.add(stmt.targets[0].id)
            frozen = frozenset(out)
            return frozen, frozen

        in_states = solve_forward(
            cfg, frozenset(), transfer, lambda a, b: a | b
        )
        assert "x" in in_states[cfg.exit]

    def test_divergence_guard(self):
        cfg = cfg_of(
            """
            def f(c):
                while c:
                    c = step(c)
            """
        )
        counter = [0]

        def transfer(node, state):
            counter[0] += 1
            return counter[0], counter[0]  # never stabilises

        with pytest.raises(SolverDivergence):
            solve_forward(cfg, 0, transfer, lambda a, b: max(a, b))


# ----------------------------------------------------------------------
# Property test: random structured programs
# ----------------------------------------------------------------------
def _stmt_strategy(depth):
    simple = st.sampled_from([
        "x = work()",
        "y = x",
        "sink(x)",
        "return x",
        "raise ValueError(x)",
        "pass",
    ])
    if depth <= 0:
        return simple.map(lambda s: [s])

    sub = _stmt_strategy(depth - 1)

    def block(stmts):
        return ["    " + line for group in stmts for line in group]

    nested = st.one_of(
        # if / if-else
        st.tuples(st.lists(sub, min_size=1, max_size=2),
                  st.lists(sub, min_size=0, max_size=2)).map(
            lambda t: ["if cond():"] + block(t[0]) + (
                ["else:"] + block(t[1]) if t[1] else [])
        ),
        # while
        st.lists(sub, min_size=1, max_size=2).map(
            lambda b: ["while cond():"] + block(b)
        ),
        # with
        st.lists(sub, min_size=1, max_size=2).map(
            lambda b: ["with ctx() as c:"] + block(b)
        ),
        # try/except (+ optional finally)
        st.tuples(st.lists(sub, min_size=1, max_size=2),
                  st.lists(sub, min_size=1, max_size=1),
                  st.booleans(),
                  st.sampled_from(["ValueError", "BaseException", ""])).map(
            lambda t: ["try:"] + block(t[0])
            + [f"except {t[3]}:" if t[3] else "except:"] + block(t[1])
            + (["finally:"] + block([["cleanup()"]]) if t[2] else [])
        ),
        # try/finally
        st.lists(sub, min_size=1, max_size=2).map(
            lambda b: ["try:"] + block(b)
            + ["finally:"] + block([["cleanup()"]])
        ),
    )
    return st.one_of(simple.map(lambda s: [s]), nested)


@st.composite
def _programs(draw):
    groups = draw(st.lists(_stmt_strategy(3), min_size=1, max_size=5))
    lines = ["def f():"]
    for group in groups:
        lines += ["    " + line for line in group]
    return "\n".join(lines) + "\n"


@settings(max_examples=200, deadline=None)
@given(_programs())
def test_cfg_well_formed_on_random_programs(source):
    tree = ast.parse(source)  # the strategy only emits valid syntax
    for cfg in function_cfgs(tree):
        cfg.validate()  # single entry, exits terminal, all reachable
        # Exit has no successors; entry has no predecessors.
        assert cfg.nodes[cfg.exit].succs == []
        preds = cfg.preds()
        assert preds[cfg.entry] == []

        # The solver terminates on a monotone lattice over this CFG.
        def transfer(node, state):
            stmt = node.stmt
            out = set(state)
            if stmt is not None and isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        out.add(target.id)
            frozen = frozenset(out)
            return frozen, frozen

        in_states = solve_forward(
            cfg, frozenset(), transfer, lambda a, b: a | b
        )
        assert cfg.exit in in_states
