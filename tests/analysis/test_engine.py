"""Engine mechanics: diagnostics, registry, suppressions, baseline."""

import json

import pytest

from repro.analysis.engine import (
    BASELINE_VERSION,
    Diagnostic,
    LintPass,
    SourceModule,
    collect_modules,
    diff_against_baseline,
    get_passes,
    load_baseline,
    pass_names,
    run_passes,
    save_baseline,
)


class TestDiagnostic:
    def test_key_is_content_addressed_not_line_addressed(self):
        a = Diagnostic(path="a.py", line=10, col=0, rule="r",
                       message="m", line_text="x = 8 * n")
        b = Diagnostic(path="a.py", line=99, col=4, rule="r",
                       message="m", line_text="x = 8 * n")
        assert a.key == b.key

    def test_format_includes_location_rule_and_hint(self):
        d = Diagnostic(path="a.py", line=3, col=4, rule="dtype-width",
                       message="boom", hint="use scalar_nbytes")
        out = d.format()
        assert "a.py:3:5" in out
        assert "[dtype-width]" in out
        assert "use scalar_nbytes" in out


class TestRegistry:
    def test_builtin_passes_registered(self):
        names = pass_names()
        # The ISSUE's six invariants, plus blocking-in-lock.
        for rule in ("dtype-width", "metering", "kernel-purity",
                     "discarded-result", "blocking-in-lock",
                     "lock-order", "determinism"):
            assert rule in names
        assert len(names) >= 6

    def test_get_passes_selection_and_unknown(self):
        selected = get_passes(["dtype-width", "lock-order"])
        assert [p.rule for p in selected] == ["dtype-width", "lock-order"]
        with pytest.raises(KeyError, match="unknown lint pass"):
            get_passes(["no-such-rule"])

    def test_passes_have_titles_and_rule_ids(self):
        for p in get_passes():
            assert p.rule and p.rule != "base"
            assert p.title


class TestSourceModule:
    def test_layer_marker_parsed(self):
        mod = SourceModule.from_source(
            "# repro-lint: layer=endpoint\nx = 1\n"
        )
        assert mod.has_layer("endpoint")
        assert not mod.has_layer("kernels")

    def test_same_line_suppression(self):
        mod = SourceModule.from_source(
            "x = 1  # repro-lint: ignore[dtype-width]\n"
        )
        assert mod.is_suppressed(1, "dtype-width")
        assert not mod.is_suppressed(1, "metering")

    def test_bare_ignore_waives_every_rule(self):
        mod = SourceModule.from_source("x = 1  # repro-lint: ignore\n")
        assert mod.is_suppressed(1, "dtype-width")
        assert mod.is_suppressed(1, "anything")

    def test_comment_line_marker_anchors_to_next_code_line(self):
        mod = SourceModule.from_source(
            "# repro-lint: ignore[blocking-in-lock] — bounded poll\n"
            "# (continued rationale)\n"
            "with self.lock:\n"
            "    pass\n"
        )
        assert mod.is_suppressed(3, "blocking-in-lock")
        assert not mod.is_suppressed(1, "blocking-in-lock")


class _FlagEveryAssign(LintPass):
    rule = "test-assign"
    title = "test pass"

    def run(self, module):
        import ast
        return [
            self.diag(module, node, "assign")
            for node in ast.walk(module.tree)
            if isinstance(node, ast.Assign)
        ]


class TestRunPasses:
    def test_suppression_filters_centrally(self):
        mod = SourceModule.from_source(
            "a = 1\nb = 2  # repro-lint: ignore[test-assign]\n"
        )
        found = run_passes([mod], [_FlagEveryAssign()])
        assert [d.line for d in found] == [1]

    def test_findings_sorted_by_location(self):
        mods = [
            SourceModule.from_source("a = 1\n", path="b.py"),
            SourceModule.from_source("a = 1\n", path="a.py"),
        ]
        found = run_passes(mods, [_FlagEveryAssign()])
        assert [d.path for d in found] == ["a.py", "b.py"]


class TestBaseline:
    def _diag(self, text, line=1):
        return Diagnostic(path="a.py", line=line, col=0, rule="r",
                          message="m", line_text=text)

    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        findings = [self._diag("x = 8"), self._diag("x = 8", line=9),
                    self._diag("y = 4")]
        entries = save_baseline(path, findings)
        # Identical stripped lines no longer collide: each occurrence
        # gets its own ``#n``-indexed entry.
        assert f"{findings[0].key}#1" in entries
        assert f"{findings[0].key}#2" in entries
        assert len(entries) == 3
        loaded = load_baseline(path)
        assert loaded == set(entries)
        payload = json.loads(path.read_text())
        assert payload["version"] == BASELINE_VERSION

    def test_missing_file_is_empty_baseline(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == set()

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError, match="version"):
            load_baseline(path)

    def test_v1_counted_baseline_migrates(self, tmp_path):
        d = self._diag("x = 8")
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(
            {"version": 1, "entries": {d.key: 2}}
        ))
        loaded = load_baseline(path)
        assert loaded == {f"{d.key}#1", f"{d.key}#2"}
        # A v1 pair of duplicate findings stays fully baselined...
        diff = diff_against_baseline(
            [d, self._diag("x = 8", line=9)], loaded
        )
        assert len(diff.known) == 2 and diff.new == [] and diff.stale == []

    def test_diff_splits_new_known_stale(self, tmp_path):
        known = self._diag("x = 8")
        gone = self._diag("z = 8")
        path = tmp_path / "baseline.json"
        save_baseline(path, [known, gone])
        new = self._diag("y = 4")
        diff = diff_against_baseline([known, new], load_baseline(path))
        assert [d.key for d in diff.known] == [known.key]
        assert [d.key for d in diff.new] == [new.key]
        assert diff.stale == [f"{gone.key}#1"]

    def test_surplus_occurrences_of_known_key_are_new(self, tmp_path):
        d = self._diag("x = 8")
        path = tmp_path / "baseline.json"
        save_baseline(path, [d])
        dupe = self._diag("x = 8", line=7)
        diff = diff_against_baseline([d, dupe], load_baseline(path))
        assert len(diff.known) == 1
        assert len(diff.new) == 1


class TestCollectModules:
    def test_collects_only_python_under_targets(self, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "a.py").write_text("x = 1\n")
        (tmp_path / "src" / "b.txt").write_text("not python\n")
        (tmp_path / "other").mkdir()
        (tmp_path / "other" / "c.py").write_text("y = 2\n")
        mods = collect_modules(tmp_path, ["src", "missing"])
        assert [m.path for m in mods] == ["src/a.py"]
