"""Seeded-violation fixtures for the flow-sensitive passes.

Per the acceptance bar each CFG rule gets a violating snippet that must
produce the expected rule at the expected line, and a clean twin that
must stay silent — including the twins that are only clean because the
analysis is flow-, escape- and exception-aware (try/finally, ownership
transfer, catch-all handlers).
"""

import textwrap

from repro.analysis.engine import SourceModule, get_passes, run_passes


def lint(source, rules):
    mod = SourceModule.from_source(textwrap.dedent(source))
    return run_passes([mod], get_passes(rules))


def lines(found):
    return [d.line for d in found]


class TestLifecycle:
    RULE = ["lifecycle"]

    def test_branch_that_skips_close_flagged(self):
        found = lint(
            """
            def f(cond):
                shm = SharedMemory(create=True, size=64)
                if cond:
                    return None
                shm.close()
                shm.unlink()
            """,
            self.RULE,
        )
        assert [d.rule for d in found] == ["lifecycle"]
        assert lines(found) == [3]  # reported at the acquisition site

    def test_exceptional_exit_that_skips_close_flagged(self):
        found = lint(
            """
            def f():
                shm = SharedMemory(create=True, size=64)
                shm.buf[0] = header()  # may raise -> cleanup skipped
                shm.close()
                shm.unlink()
            """,
            self.RULE,
        )
        assert lines(found) == [3]
        assert "exceptional" in found[0].message

    def test_try_finally_clean(self):
        found = lint(
            """
            def f():
                shm = SharedMemory(create=True, size=64)
                try:
                    fill(shm)
                finally:
                    shm.close()
                    shm.unlink()
            """,
            self.RULE,
        )
        assert found == []

    def test_with_statement_clean(self):
        found = lint(
            """
            def f():
                with SharedMemory(create=True, size=64) as shm:
                    fill(shm)
            """,
            self.RULE,
        )
        assert found == []

    def test_escape_transfers_ownership_clean(self):
        found = lint(
            """
            def f(registry):
                a, b = Pipe(duplex=True)
                registry.append(a)
                return b
            """,
            self.RULE,
        )
        assert found == []

    def test_pipe_end_never_closed_flagged(self):
        found = lint(
            """
            def f():
                a, b = Pipe(duplex=True)
                a.close()
            """,
            self.RULE,
        )
        # `b` never reaches close() and never escapes.
        assert len(found) == 1
        assert "'b'" in found[0].message

    def test_attach_must_not_unlink_flagged(self):
        found = lint(
            """
            def worker(name):
                shm = SharedMemory(name=name, track=False)
                try:
                    value = shm.buf[0]
                finally:
                    shm.close()
                shm.unlink()
            """,
            self.RULE,
        )
        assert len(found) == 1
        assert "creator-owns-unlink" in found[0].message
        assert lines(found) == [8]

    def test_chained_attach_unlink_flagged(self):
        found = lint(
            """
            def sweep(name):
                SharedMemory(name=name).unlink()
            """,
            self.RULE,
        )
        assert len(found) == 1
        assert "creator-owns-unlink" in found[0].message

    def test_attach_close_only_clean(self):
        found = lint(
            """
            def worker(name):
                ring = _ShmRing.attach(name)
                use(ring)
                ring.close()
            """,
            self.RULE,
        )
        assert found == []

    def test_bare_acquire_without_release_flagged(self):
        found = lint(
            """
            def f(lock):
                lock.acquire()
                work()
            """,
            self.RULE,
        )
        assert len(found) == 1
        assert "held-lock" in found[0].message

    def test_acquire_release_pair_clean(self):
        found = lint(
            """
            def f(lock):
                lock.acquire()
                try:
                    work()
                finally:
                    lock.release()
            """,
            self.RULE,
        )
        assert found == []

    def test_waiver_suppresses(self):
        found = lint(
            """
            def sweep(name):
                # justified: creator-side atexit backstop
                # repro-lint: ignore[lifecycle]
                SharedMemory(name=name).unlink()
            """,
            self.RULE,
        )
        assert found == []


class TestTypestate:
    RULE = ["typestate"]

    def test_send_after_close_flagged(self):
        found = lint(
            """
            def f(arr):
                ep = QueueEndpoint()
                ep.send(1, arr)
                ep.close()
                ep.send(1, arr)
            """,
            self.RULE,
        )
        assert [d.rule for d in found] == ["typestate"]
        assert lines(found) == [6]
        assert "closed endpoint" in found[0].message

    def test_double_close_flagged(self):
        found = lint(
            """
            def f():
                ep = QueueEndpoint()
                ep.close()
                ep.close()
            """,
            self.RULE,
        )
        assert lines(found) == [5]
        assert "twice" in found[0].message

    def test_close_on_one_branch_flagged_at_merge(self):
        found = lint(
            """
            def f(cond, arr):
                ep = QueueEndpoint()
                if cond:
                    ep.close()
                ep.send(1, arr)
            """,
            self.RULE,
        )
        assert lines(found) == [6]

    def test_double_complete_flagged(self):
        found = lint(
            """
            def f(ep, data):
                handle = ep.post_exchange(data, [1], "tag")
                ep.complete_exchange(handle)
                ep.complete_exchange(handle)
            """,
            self.RULE,
        )
        assert lines(found) == [5]
        assert "completed twice" in found[0].message

    def test_legal_protocol_clean(self):
        found = lint(
            """
            def f(arr, data):
                ep = QueueEndpoint()
                ep.send(1, arr)
                handle = ep.post_exchange(data, [1], "t")
                ep.complete_exchange(handle)
                ep.close()
            """,
            self.RULE,
        )
        assert found == []

    def test_sequential_relaunch_clean(self):
        found = lint(
            """
            def f(worker):
                transport = LocalTransport(2)
                transport.launch(worker)
                transport.launch(worker)
            """,
            self.RULE,
        )
        assert found == []

    def test_escaped_endpoint_not_tracked(self):
        found = lint(
            """
            def f(arr, registry):
                ep = QueueEndpoint()
                ep.close()
                registry.append(ep)
            """,
            self.RULE,
        )
        assert found == []


class TestExceptionSafety:
    RULE = ["exception-safety"]

    def test_mutation_under_bare_acquire_flagged(self):
        found = lint(
            """
            def f(self, lock, value):
                lock.acquire()
                self.table[0] = value
                self.count += 1
                lock.release()
            """,
            self.RULE,
        )
        assert [d.rule for d in found] == ["exception-safety"]
        assert lines(found) == [3]  # anchored at the acquire

    def test_try_finally_clean(self):
        found = lint(
            """
            def f(self, lock, value):
                lock.acquire()
                try:
                    self.table[0] = value
                finally:
                    lock.release()
            """,
            self.RULE,
        )
        assert found == []

    def test_with_lock_clean(self):
        found = lint(
            """
            def f(self, lock, value):
                with lock:
                    self.table[0] = value
            """,
            self.RULE,
        )
        assert found == []

    def test_read_only_critical_section_clean(self):
        found = lint(
            """
            def f(self, lock):
                lock.acquire()
                value = self.table[0]
                lock.release()
                return value
            """,
            self.RULE,
        )
        assert found == []


class TestFlowPassesOnRealTree:
    def test_src_is_clean(self):
        """The acceptance bar: all three flow passes run over the real
        tree with zero findings (real ones were fixed, not baselined)."""
        from pathlib import Path

        from repro.analysis.lint import run_lint

        root = Path(__file__).resolve().parents[2]
        found = run_lint(
            root, ["src"],
            select=["lifecycle", "typestate", "exception-safety"],
        )
        assert found == []
